// Demo Part 2 walkthrough (paper §3.2): "the demonstration platform allows
// the attendees to visualize, step by step, the query execution" — the
// collection phase, the computation phase, the combination phase — and
// "we can intentionally power off some concrete devices to generate a
// failure at will".
//
// This example replaces the Dash GUI with the ExecutionTrace timeline: it
// runs the survey query, powers off two chosen processor devices mid-run
// exactly like the demo operator would, and prints the phase-by-phase
// timeline with the failover visible.
//
//   $ ./examples/demo_walkthrough

#include <cstdio>

#include "core/framework.h"

using namespace edgelet;

int main() {
  core::FrameworkConfig config;
  config.fleet.num_contributors = 250;
  config.fleet.num_processors = 80;
  config.fleet.enable_churn = false;
  config.seed = 404;

  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  query::Query q;
  q.query_id = 3;
  q.name = "walkthrough survey";
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 60;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"}}};

  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 3
  // Use the Backup strategy so the intentional power-off triggers a
  // visible leader failover.
  resilience::ResilienceConfig resilience{0.1, 0.99};
  auto plan = framework.Plan(q, privacy, resilience,
                             exec::Strategy::kBackup);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan: n=%d, Backup strategy with %zu replicas per operator\n",
              plan->n, plan->sb_groups[0][0].size());

  // The "operator" powers off partition 0's primary snapshot builder 8s
  // in (before its snapshot completes) and one computer at 14s, so both
  // failovers are load-bearing for the delivered result.
  net::NodeId sb_victim = plan->sb_groups[0][0][0];
  net::NodeId comp_victim = plan->computer_groups[1][0][0];
  framework.sim()->ScheduleAt(8 * kSecond, [&framework, sb_victim]() {
    std::printf(">>> operator powers off snapshot builder dev%llu\n",
                static_cast<unsigned long long>(sb_victim));
    framework.network()->Kill(sb_victim);
  });
  framework.sim()->ScheduleAt(14 * kSecond, [&framework, comp_victim]() {
    std::printf(">>> operator powers off computer dev%llu\n",
                static_cast<unsigned long long>(comp_victim));
    framework.network()->Kill(comp_victim);
  });

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = false;  // only the operator's intentional kills
  ec.enable_trace = true;
  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const exec::QueryExecution* execution = framework.last_execution();
  if (execution != nullptr && execution->trace() != nullptr) {
    std::printf("\n--- Execution timeline (the GUI's step-by-step view) ---\n");
    std::printf("%s", execution->trace()->ToTimeline(40).c_str());
    std::printf("\n--- Phase summary ---\n%s",
                execution->trace()->PhaseSummary().c_str());
  }

  std::printf("\nresult %s after %s despite the two powered-off devices\n",
              report->success ? "DELIVERED" : "MISSING",
              FormatSimTime(report->completion_time).c_str());
  if (report->success) {
    std::printf("\n%s", report->result.ToString(12).c_str());
    auto validity = framework.VerifyGroupingSets(*plan, *report);
    if (validity.ok()) {
      std::printf("validity: %s\n", validity->valid ? "OK" : "VIOLATED");
    }
  }
  return report->success ? 0 : 1;
}
