// Opportunistic-polling scenario (paper §1): during a large event, the
// audience's TrustZone smartphones contribute interest/profile data to a
// real-time poll. Connectivity is highly intermittent; the Overcollection
// strategy plus store-and-forward delivery still get a valid answer out
// before the deadline.
//
//   $ ./examples/opportunistic_polling

#include <cstdio>

#include "core/framework.h"

using namespace edgelet;

int main() {
  // An audience of smartphones only, with aggressive churn: people walk in
  // and out of coverage.
  core::FrameworkConfig config;
  config.fleet.num_contributors = 2000;
  config.fleet.num_processors = 150;
  config.fleet.contributor_mix = {0.0, 1.0, 0.0};
  config.fleet.processor_mix = {0.0, 1.0, 0.0};
  config.fleet.enable_churn = true;
  config.network.store_and_forward = true;
  config.network.drop_probability = 0.02;
  config.network.latency.min_latency = 30 * kMillisecond;
  config.network.latency.mean_extra = 300 * kMillisecond;
  config.seed = 5150;

  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The poll: demographic profile of the audience, crossed two ways.
  // (The synthetic population's health schema stands in for the interest
  // profile; any common schema works.)
  query::Query q;
  q.query_id = 99;
  q.name = "audience poll";
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 300;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"region", "sex"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "age"}}};

  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 50;  // n = 6

  // Phones churn a lot: presume a high per-device failure rate. The
  // planner converts this into a larger overcollection degree m.
  resilience::ResilienceConfig resilience;
  resilience.failure_probability = 0.25;
  resilience.reliability_target = 0.99;

  auto plan = framework.Plan(q, privacy, resilience,
                             exec::Strategy::kOvercollection);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Poll plan: n=%d partitions, m=%d overcollected "
              "(presume %.0f%% churn-failures, target %.1f%%)\n",
              plan->n, plan->m, 100 * resilience.failure_probability,
              100 * resilience.reliability_target);

  exec::ExecutionConfig ec;
  ec.collection_window = 5 * kMinute;
  ec.deadline = 30 * kMinute;
  ec.combiner_margin = 2 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = resilience.failure_probability;
  ec.seed = 17;

  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\npoll %s after %s\n",
              report->success ? "COMPLETED" : "MISSED DEADLINE",
              FormatSimTime(report->completion_time).c_str());
  std::printf("devices killed: %zu, messages: %llu, traffic: %.1f KiB\n",
              report->processors_killed,
              static_cast<unsigned long long>(report->messages_sent),
              report->bytes_sent / 1024.0);
  if (!report->success) return 1;

  std::printf("\n--- Audience profile ---\n%s\n",
              report->result.ToString(40).c_str());

  auto validity = framework.VerifyGroupingSets(*plan, *report);
  if (validity.ok()) {
    std::printf("validity vs centralized rerun: %s\n",
                validity->valid ? "OK" : validity->detail.c_str());
  }
  return 0;
}
