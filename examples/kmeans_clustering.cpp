// Demo query (ii): K-Means over clinical features followed by a Group-By on
// the resulting clusters — "which characteristics most influence the
// dependency level of an elderly person" (paper §3.2).
//
//   $ ./examples/kmeans_clustering
//
// Shows the heartbeat-cadenced iterative execution and compares the
// distributed clustering against a centralized K-Means on the same
// population.

#include <cstdio>

#include "core/framework.h"

using namespace edgelet;

int main() {
  core::FrameworkConfig config;
  config.fleet.num_contributors = 600;
  config.fleet.num_processors = 80;
  config.fleet.enable_churn = false;
  config.network.drop_probability = 0.05;  // lossy links
  config.seed = 31337;

  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  query::Query q;
  q.query_id = 7;
  q.name = "dependency clustering";
  q.kind = query::QueryKind::kKMeans;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 120;
  q.kmeans.k = 4;
  q.kmeans.features = {"age", "bmi", "systolic_bp", "chronic_count"};
  q.kmeans.local_iterations = 2;
  q.kmeans.cluster_aggregates = {
      {query::AggregateFunction::kAvg, "dependency"},
      {query::AggregateFunction::kMin, "dependency"},
      {query::AggregateFunction::kMax, "dependency"}};

  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 40;  // n = 3 computers share the load
  resilience::ResilienceConfig resilience;
  resilience.failure_probability = 0.1;

  auto plan = framework.Plan(q, privacy, resilience,
                             exec::Strategy::kOvercollection);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan: n=%d (+m=%d), quota=%llu tuples per computer "
              "(crowd needs >= %llu qualifying contributors)\n",
              plan->n, plan->m,
              static_cast<unsigned long long>(plan->quota),
              static_cast<unsigned long long>(plan->MinQualifyingCrowd()));

  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 20 * kMinute;
  ec.combiner_margin = 2 * kMinute;
  ec.heartbeat_period = 30 * kSecond;
  ec.num_heartbeats = 12;
  ec.inject_failures = true;
  ec.failure_probability = resilience.failure_probability;
  ec.seed = 5;

  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("success: %s, completion %s, %llu messages\n",
              report->success ? "yes" : "no",
              FormatSimTime(report->completion_time).c_str(),
              static_cast<unsigned long long>(report->messages_sent));
  if (!report->success) return 1;

  std::printf("\n--- Clusters (centroids + per-cluster dependency) ---\n%s\n",
              report->result.ToString(10).c_str());

  // Accuracy vs a centralized K-Means over all qualifying individuals.
  auto central = framework.CentralizedKMeans(q);
  auto points = framework.QualifyingPoints(q);
  if (central.ok() && points.ok()) {
    ml::Matrix distributed;
    for (const auto& row : report->result.rows()) {
      std::vector<double> c;
      for (size_t f = 0; f < q.kmeans.features.size(); ++f) {
        c.push_back(row[2 + f].AsDouble());  // cluster, size, centroids...
      }
      distributed.push_back(std::move(c));
    }
    auto ratio =
        ml::InertiaRatio(*points, distributed, central->centroids);
    auto rmse =
        ml::MatchedCentroidRmse(distributed, central->centroids);
    if (ratio.ok() && rmse.ok()) {
      std::printf("accuracy: inertia ratio %.4f (1.0 = centralized), "
                  "matched-centroid RMSE %.3f\n",
                  *ratio, *rmse);
    }
  }

  // Interpretation: clusters ordered by dependency tell the querier which
  // clinical profile drives dependency.
  std::printf("\nInterpretation: compare AVG(dependency) across clusters — "
              "low-dependency clusters (GIR 5-6) vs frail ones (GIR 1-2).\n");
  return 0;
}
