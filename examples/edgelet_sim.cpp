// edgelet_sim — command-line front end for the Edgelet framework: configure
// a crowd, a query, privacy and resiliency knobs from flags; plan, execute
// on the discrete-event simulator, verify, and print everything. This is
// the scriptable equivalent of the demo platform's interactive GUI.
//
//   $ ./examples/edgelet_sim --help
//   $ ./examples/edgelet_sim --query=kmeans --failure-prob=0.2 --trace
//   $ ./examples/edgelet_sim --strategy=backup --separate=region,sex

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/framework.h"

using namespace edgelet;

namespace {

struct Options {
  std::string query = "survey";  // survey | kmeans
  std::string strategy = "overcollection";
  size_t contributors = 400;
  size_t processors = 80;
  uint64_t cardinality = 100;
  uint64_t max_tuples = 25;
  double failure_prob = 0.05;
  double reliability = 0.99;
  double drop_prob = 0.0;
  bool churn = false;
  bool trace = false;
  std::string separate;  // "a,b" pair to keep apart
  uint64_t seed = 1;
  int heartbeats = 8;
};

void PrintUsage() {
  std::printf(
      "edgelet_sim — plan and run one Edgelet query on a simulated crowd\n"
      "\n"
      "  --query=survey|kmeans     query kind (default survey)\n"
      "  --strategy=overcollection|backup\n"
      "  --contributors=N          crowd size (default 400)\n"
      "  --processors=N            processor pool (default 80)\n"
      "  --cardinality=C           snapshot cardinality (default 100)\n"
      "  --max-tuples=N            exposure cap per edgelet (default 25)\n"
      "  --separate=a,b            attribute pair that must not co-reside\n"
      "  --failure-prob=P          presumed AND injected failure rate\n"
      "  --reliability=T           completion target (default 0.99)\n"
      "  --drop-prob=P             per-message loss probability\n"
      "  --churn                   enable device churn\n"
      "  --heartbeats=N            K-Means rounds (default 8)\n"
      "  --trace                   print the execution timeline\n"
      "  --seed=S                  deterministic seed (default 1)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

bool ParseOptions(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0) return false;
    if (std::strcmp(argv[i], "--churn") == 0) {
      opts->churn = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opts->trace = true;
    } else if (ParseFlag(argv[i], "query", &value)) {
      opts->query = value;
    } else if (ParseFlag(argv[i], "strategy", &value)) {
      opts->strategy = value;
    } else if (ParseFlag(argv[i], "contributors", &value)) {
      opts->contributors = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "processors", &value)) {
      opts->processors = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "cardinality", &value)) {
      opts->cardinality = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "max-tuples", &value)) {
      opts->max_tuples = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "separate", &value)) {
      opts->separate = value;
    } else if (ParseFlag(argv[i], "failure-prob", &value)) {
      opts->failure_prob = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "reliability", &value)) {
      opts->reliability = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "drop-prob", &value)) {
      opts->drop_prob = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "heartbeats", &value)) {
      opts->heartbeats = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      opts->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseOptions(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  core::FrameworkConfig config;
  config.fleet.num_contributors = opts.contributors;
  config.fleet.num_processors = opts.processors;
  config.fleet.enable_churn = opts.churn;
  config.network.drop_probability = opts.drop_prob;
  config.seed = opts.seed;
  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  query::Query q;
  q.query_id = opts.seed;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = opts.cardinality;
  if (opts.query == "kmeans") {
    q.kind = query::QueryKind::kKMeans;
    q.name = "edgelet_sim clustering";
    q.kmeans.k = 4;
    q.kmeans.features = data::HealthNumericFeatures();
    q.kmeans.cluster_aggregates = {
        {query::AggregateFunction::kAvg, "dependency"}};
  } else {
    q.kind = query::QueryKind::kGroupingSets;
    q.name = "edgelet_sim survey";
    q.grouping_sets = query::GroupingSetsSpec{
        {{"region"}, {"sex"}},
        {{query::AggregateFunction::kCount, "*"},
         {query::AggregateFunction::kAvg, "bmi"},
         {query::AggregateFunction::kCountDistinct, "dependency"},
         {query::AggregateFunction::kQuantile, "systolic_bp", 0.5}}};
  }

  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = opts.max_tuples;
  if (!opts.separate.empty()) {
    size_t comma = opts.separate.find(',');
    if (comma == std::string::npos) {
      std::fprintf(stderr, "--separate needs 'a,b'\n");
      return 2;
    }
    privacy.separation = {{opts.separate.substr(0, comma),
                           opts.separate.substr(comma + 1)}};
  }

  resilience::ResilienceConfig resilience{opts.failure_prob,
                                          opts.reliability};
  exec::Strategy strategy = opts.strategy == "backup"
                                ? exec::Strategy::kBackup
                                : exec::Strategy::kOvercollection;

  auto plan = framework.Plan(q, privacy, resilience, strategy);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s, n=%d m=%d, %zu vertical group(s), quota=%llu, "
              "crowd needs >= %llu qualifying contributors\n",
              std::string(exec::StrategyName(strategy)).c_str(), plan->n,
              plan->m, plan->vgroup_columns.size(),
              static_cast<unsigned long long>(plan->quota),
              static_cast<unsigned long long>(plan->MinQualifyingCrowd()));
  auto exposure = core::Planner::Exposure(*plan);
  std::printf("%s", exposure.ToString().c_str());

  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 15 * kMinute;
  ec.combiner_margin = 90 * kSecond;
  ec.heartbeat_period = 25 * kSecond;
  ec.num_heartbeats = opts.heartbeats;
  ec.inject_failures = opts.failure_prob > 0;
  ec.failure_probability = opts.failure_prob;
  ec.enable_trace = opts.trace;
  ec.seed = opts.seed;

  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s after %s — %llu messages (%.1f KiB), %zu devices "
              "killed\n",
              report->success ? "COMPLETED" : "MISSED DEADLINE",
              FormatSimTime(report->completion_time).c_str(),
              static_cast<unsigned long long>(report->messages_sent),
              report->bytes_sent / 1024.0, report->processors_killed);

  if (opts.trace && framework.last_execution() != nullptr &&
      framework.last_execution()->trace() != nullptr) {
    std::printf("\n--- timeline ---\n%s",
                framework.last_execution()->trace()->ToTimeline().c_str());
  }
  if (!report->success) return 1;

  std::printf("\n--- result ---\n%s", report->result.ToString(30).c_str());
  if (q.kind == query::QueryKind::kGroupingSets) {
    auto validity = framework.VerifyGroupingSets(*plan, *report);
    if (validity.ok()) {
      std::printf("\nvalidity (algebraic aggregates vs centralized rerun "
                  "over the same snapshot): %s\n",
                  validity->valid
                      ? "OK"
                      : ("VIOLATED — " + validity->detail).c_str());
    }
  } else {
    auto central = framework.CentralizedKMeans(q);
    auto points = framework.QualifyingPoints(q);
    if (central.ok() && points.ok()) {
      ml::Matrix distributed;
      for (const auto& row : report->result.rows()) {
        std::vector<double> c;
        for (size_t f = 0; f < q.kmeans.features.size(); ++f) {
          c.push_back(row[2 + f].AsDouble());
        }
        distributed.push_back(std::move(c));
      }
      auto ratio =
          ml::InertiaRatio(*points, distributed, central->centroids);
      if (ratio.ok()) {
        std::printf("\naccuracy: inertia ratio %.4f vs centralized\n",
                    *ratio);
      }
    }
  }
  return 0;
}
