// Quickstart: plan and run one privacy-preserving, resilient Grouping Sets
// query over a simulated crowd of TEE-enabled personal devices.
//
//   $ ./examples/quickstart
//
// Walks through the full Edgelet pipeline: fleet construction, planning
// (horizontal partitioning + overcollection), distributed execution on the
// discrete-event network simulator, and validity verification against a
// centralized run over the same snapshot.

#include <cstdio>

#include "core/framework.h"

using namespace edgelet;

int main() {
  // 1. A crowd: 300 individuals with health records on their personal
  //    devices (PCs, smartphones, DomYcile-style home boxes), plus a pool
  //    of 60 devices volunteering as Data Processors.
  core::FrameworkConfig config;
  config.fleet.num_contributors = 300;
  config.fleet.num_processors = 60;
  config.fleet.enable_churn = false;  // keep the quickstart deterministic
  config.seed = 2023;

  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Fleet ready: %zu contributors, %zu processors\n",
              framework.fleet()->contributors().size(),
              framework.fleet()->processors().size());

  // 2. The query: Santé Publique France asks for statistics over a
  //    representative snapshot of 100 individuals older than 65.
  query::Query q;
  q.query_id = 1;
  q.name = "health survey (quickstart)";
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 100;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"sex"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"},
       {query::AggregateFunction::kAvg, "systolic_bp"}}};

  // 3. Privacy + resiliency knobs (the demo's Part 1).
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 25;  // => n = 4 horizontal partitions
  resilience::ResilienceConfig resilience;
  resilience.failure_probability = 0.10;
  resilience.reliability_target = 0.99;

  auto plan = framework.Plan(q, privacy, resilience,
                             exec::Strategy::kOvercollection);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- Planned QEP (cf. paper Fig. 2/3) ---\n%s\n",
              plan->qep.ToString().c_str());
  auto exposure = core::Planner::Exposure(*plan);
  std::printf("%s\n", exposure.ToString().c_str());

  // 4. Execute on the simulated uncertain network, with devices actually
  //    crashing at the presumed rate.
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 15 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = resilience.failure_probability;
  ec.seed = 7;

  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("--- Execution ---\n");
  std::printf("success           : %s\n", report->success ? "yes" : "no");
  std::printf("completion time   : %s\n",
              FormatSimTime(report->completion_time).c_str());
  std::printf("processors killed : %zu\n", report->processors_killed);
  std::printf("messages sent     : %llu\n",
              static_cast<unsigned long long>(report->messages_sent));
  std::printf("snapshot coverage : %zu contributors\n",
              report->snapshot_contributors_by_vgroup.empty()
                  ? 0
                  : report->snapshot_contributors_by_vgroup[0].size());
  if (!report->success) return 1;

  std::printf("\n--- Result (GROUPING SETS (region), (sex)) ---\n%s\n",
              report->result.ToString(30).c_str());

  // 5. Verify the Validity property: the same snapshot, computed centrally,
  //    must give the same answer.
  auto validity = framework.VerifyGroupingSets(*plan, *report);
  if (!validity.ok()) {
    std::fprintf(stderr, "verification error: %s\n",
                 validity.status().ToString().c_str());
    return 1;
  }
  std::printf("validity: %s (%s; max abs error %.2e)\n",
              validity->valid ? "OK" : "VIOLATED",
              validity->detail.c_str(), validity->max_abs_error);
  return validity->valid ? 0 : 1;
}
