// Data-altruism scenario (paper §1 and §3.2): Santé Publique France runs a
// population health survey over records held on secure home boxes and
// personal devices, under realistic churn and failures, with vertical
// partitioning protecting a quasi-identifier pair.
//
//   $ ./examples/health_survey

#include <cstdio>

#include "core/framework.h"

using namespace edgelet;

namespace {

void PrintSection(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace

int main() {
  // A DomYcile-like deployment: mostly home boxes (always powered, slow,
  // opportunistically connected) plus caregiver PCs and phones.
  core::FrameworkConfig config;
  config.fleet.num_contributors = 800;
  config.fleet.num_processors = 120;
  config.fleet.contributor_mix = {0.1, 0.2, 0.7};  // boxes dominate
  config.fleet.processor_mix = {0.5, 0.3, 0.2};    // processing skews to PCs
  config.fleet.enable_churn = true;                // uncertain communications
  config.network.store_and_forward = true;         // opportunistic delivery
  config.network.latency.min_latency = 50 * kMillisecond;
  config.network.latency.mean_extra = 500 * kMillisecond;
  config.seed = 778;

  core::EdgeletFramework framework(config);
  if (Status s = framework.Init(); !s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // GROUPING SETS query crossing several statistics over one snapshot of
  // 240 elderly people: per-region, per-sex, and per-dependency-level
  // clinical profiles.
  query::Query q;
  q.query_id = 42;
  q.name = "Santé Publique France survey";
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 240;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"sex"}, {"dependency"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"},
       {query::AggregateFunction::kAvg, "chronic_count"},
       {query::AggregateFunction::kStdDev, "systolic_bp"}}};

  // Privacy: at most 40 raw records on any device, and {region, sex} is a
  // quasi-identifier pair that must never co-reside in one enclave.
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 40;
  privacy.separation = {{"region", "sex"}};

  resilience::ResilienceConfig resilience;
  resilience.failure_probability = 0.08;
  resilience.reliability_target = 0.995;

  auto plan = framework.Plan(q, privacy, resilience,
                             exec::Strategy::kOvercollection);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  PrintSection("Plan");
  std::printf("n=%d horizontal partitions (+%d overcollected)\n", plan->n,
              plan->m);
  std::printf("%zu vertical groups:\n", plan->vgroup_columns.size());
  for (size_t g = 0; g < plan->vgroup_columns.size(); ++g) {
    std::printf("  group %zu: {", g);
    for (size_t i = 0; i < plan->vgroup_columns[g].size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  plan->vgroup_columns[g][i].c_str());
    }
    std::printf("} evaluating %zu grouping set(s)\n",
                plan->vgroup_set_indices[g].size());
  }
  auto exposure = core::Planner::Exposure(*plan);
  std::printf("%s", exposure.ToString().c_str());

  PrintSection("Execution under churn + failures");
  exec::ExecutionConfig ec;
  ec.collection_window = 10 * kMinute;  // opportunistic contacts take time
  ec.deadline = 45 * kMinute;
  ec.combiner_margin = 3 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = resilience.failure_probability;
  ec.seed = 9;

  auto report = framework.Execute(*plan, ec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("success            : %s\n", report->success ? "yes" : "no");
  std::printf("completion         : %s (deadline %s)\n",
              FormatSimTime(report->completion_time).c_str(),
              FormatSimTime(ec.deadline).c_str());
  std::printf("partitions used    : %zu of %d+%d\n",
              report->partitions_used.size(), plan->n, plan->m);
  std::printf("processors killed  : %zu\n", report->processors_killed);
  std::printf("contributors heard : %zu\n",
              report->contributors_participating);
  std::printf("messages sent      : %llu (%.1f KiB)\n",
              static_cast<unsigned long long>(report->messages_sent),
              report->bytes_sent / 1024.0);

  if (!report->success) {
    std::printf("query missed its deadline — rerun with a higher "
                "failure presumption to get more overcollection\n");
    return 1;
  }

  PrintSection("Survey result");
  std::printf("%s", report->result.ToString(40).c_str());

  PrintSection("Validity check (centralized re-execution on same snapshot)");
  auto validity = framework.VerifyGroupingSets(*plan, *report);
  if (!validity.ok()) {
    std::fprintf(stderr, "verification error: %s\n",
                 validity.status().ToString().c_str());
    return 1;
  }
  std::printf("%s — %zu rows compared, max abs error %.2e\n",
              validity->valid ? "VALID" : "INVALID",
              validity->rows_compared, validity->max_abs_error);
  return validity->valid ? 0 : 1;
}
