#include <gtest/gtest.h>

#include "core/planner.h"

namespace edgelet::core {
namespace {

using exec::Strategy;

query::Query GsQuery() {
  query::Query q;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 100;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{query::AggregateFunction::kCount, "*"}}};
  return q;
}

query::Query KmQuery() {
  query::Query q;
  q.kind = query::QueryKind::kKMeans;
  q.snapshot_cardinality = 100;
  q.kmeans.features = {"bmi"};
  return q;
}

TEST(RecommendStrategyTest, DistributiveDefaultsToOvercollection) {
  EXPECT_EQ(RecommendStrategy(GsQuery(), {}), Strategy::kOvercollection);
  EXPECT_EQ(RecommendStrategy(KmQuery(), {}), Strategy::kOvercollection);
}

TEST(RecommendStrategyTest, ScarceCrowdForcesBackup) {
  StrategyContext context;
  context.crowd_is_scarce = true;
  EXPECT_EQ(RecommendStrategy(GsQuery(), context), Strategy::kBackup);
  EXPECT_EQ(RecommendStrategy(KmQuery(), context), Strategy::kBackup);
}

TEST(RecommendStrategyTest, ExactIterativeMlNeedsBackup) {
  StrategyContext context;
  context.exact_result_required = true;
  // Mergeable Grouping Sets stay exact under Overcollection...
  EXPECT_EQ(RecommendStrategy(GsQuery(), context),
            Strategy::kOvercollection);
  // ...but heartbeat K-Means is approximate by construction.
  EXPECT_EQ(RecommendStrategy(KmQuery(), context), Strategy::kBackup);
}

}  // namespace
}  // namespace edgelet::core
