// The tentpole guarantee of the parallel discrete-event engine: a full
// framework execution — fleet, churn, crash failures, an end-to-end
// Grouping Sets query — produces a byte-identical ExecutionReport on the
// serial engine and on the sharded engine at every shard count. The
// fingerprint is FNV-1a over the canonical report serialization, so any
// divergence in result rows, completion time, message counts, or sampled
// crowds shows up here.

#include <gtest/gtest.h>

#include <vector>

#include "core/framework.h"

namespace edgelet::core {
namespace {

using query::AggregateFunction;
using query::CompareOp;

uint64_t RunFingerprint(uint64_t seed, size_t sim_shards,
                        size_t cohort_size = 1) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 160;
  cfg.fleet.contributor_cohort_size = cohort_size;
  cfg.fleet.num_processors = 36;
  // Churn on: every device draws dwell times from its NodeRng stream, the
  // part of the determinism story that used to hang off a single global
  // RNG.
  cfg.fleet.enable_churn = true;
  cfg.seed = seed;
  cfg.sim_shards = sim_shards;
  EdgeletFramework fw(cfg);
  EXPECT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 47;
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{50})}};
  q.snapshot_cardinality = 36;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}},
      {{AggregateFunction::kCount, "*"}, {AggregateFunction::kAvg, "bmi"}}};

  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 18;
  auto d = fw.Plan(q, privacy, {0.1, 0.99}, exec::Strategy::kOvercollection);
  EXPECT_TRUE(d.ok()) << d.status().ToString();

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = 0.1;
  ec.seed = seed + 5;
  auto report = fw.Execute(*d, ec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return exec::ReportFingerprint(*report);
}

TEST(ParsimDeterminismTest, FingerprintIdenticalAcrossShardCounts) {
  for (uint64_t seed : {11u, 29u}) {
    const uint64_t serial = RunFingerprint(seed, 1);
    for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
      EXPECT_EQ(RunFingerprint(seed, shards), serial)
          << "seed " << seed << ", " << shards << " shards";
    }
  }
}

// Cohort fleets (many contributor members folded onto one device, the 1M+
// sweep configuration) must uphold the same contract: a whole cohort lives
// on one shard, so per-member contribution order — and therefore the full
// report — is a pure function of the seed, not the shard count.
TEST(ParsimDeterminismTest, CohortFingerprintIdenticalAcrossShardCounts) {
  const uint64_t serial = RunFingerprint(11, 1, /*cohort_size=*/8);
  for (size_t shards : {size_t{2}, size_t{4}}) {
    EXPECT_EQ(RunFingerprint(11, shards, /*cohort_size=*/8), serial)
        << shards << " shards";
  }
  // Different fold factor => different device ids and send times; guards
  // against the cohort path degenerating to a constant report.
  EXPECT_NE(RunFingerprint(11, 2, /*cohort_size=*/4), serial);
}

TEST(ParsimDeterminismTest, DistinctSeedsStillDiffer) {
  // Guards against the fingerprint collapsing to a constant (which would
  // make the equality test above vacuous).
  EXPECT_NE(RunFingerprint(11, 2), RunFingerprint(29, 2));
}

}  // namespace
}  // namespace edgelet::core
