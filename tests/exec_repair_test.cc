// Mid-query failure detection + deadline-aware partition repair: spare
// pools, recruitment, re-solicitation, and the repair-vs-fail-safe
// decision. Covers the acceptance gates of the repair subsystem: repair
// completes validly where plain overcollection cannot; infeasible repairs
// fail safe strictly before the deadline; the subsystem is shard-count
// invariant; and repair never converts a fault into a successful-but-
// invalid result.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chaos/chaos.h"
#include "core/framework.h"
#include "core/validity_oracle.h"
#include "exec/repair.h"

namespace edgelet::core {
namespace {

using chaos::ChaosInjector;
using chaos::FaultKind;
using chaos::FaultKindName;
using exec::Strategy;
using query::AggregateFunction;

query::Query MiniQuery(uint64_t id = 1) {
  query::Query q;
  q.query_id = id;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 20;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};
  return q;
}

FrameworkConfig SmallFleet(uint64_t seed) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = seed;
  return cfg;
}

exec::ExecutionConfig RepairExec(bool repair_on) {
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 4 * kMinute;
  ec.inject_failures = false;
  ec.repair.enabled = repair_on;
  return ec;
}

// Every device hosting a snapshot builder or computer of the plan.
std::vector<net::NodeId> ChainDevices(const exec::Deployment& d) {
  std::set<net::NodeId> nodes;
  for (const auto& partition : d.sb_groups) {
    for (const auto& group : partition) {
      nodes.insert(group.begin(), group.end());
    }
  }
  for (const auto& partition : d.computer_groups) {
    for (const auto& group : partition) {
      nodes.insert(group.begin(), group.end());
    }
  }
  return {nodes.begin(), nodes.end()};
}

void KillAllAt(EdgeletFramework* fw, const std::vector<net::NodeId>& nodes,
               SimDuration after) {
  net::Network* network = fw->network();
  for (net::NodeId id : nodes) {
    fw->sim()->ScheduleAt(id, fw->sim()->now() + after,
                          [network, id]() { network->Kill(id); });
  }
}

TEST(RepairPlanTest, PlannerReservesRankOrderedSparePool) {
  EdgeletFramework fw(SmallFleet(/*seed=*/7));
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_FALSE(d->spare_pool.empty())
      << "leftover processors must be reserved as spares";

  // Spares are disjoint from every assigned operator device.
  std::set<net::NodeId> assigned;
  for (net::NodeId id : ChainDevices(*d)) assigned.insert(id);
  assigned.insert(d->combiner_group.begin(), d->combiner_group.end());
  for (net::NodeId spare : d->spare_pool) {
    EXPECT_EQ(assigned.count(spare), 0u)
        << "spare " << spare << " is also an assigned operator";
  }
  // Primary deployment + spares account for the whole processor pool.
  EXPECT_EQ(assigned.size() + d->spare_pool.size(), 30u);
}

// The tentpole scenario: crash every operator of every partition early, so
// live complete partitions drop to zero — strictly more failures than the
// planned m tolerates. Plain overcollection must fail; with the repair
// subsystem the controller detects the crashes, recruits spares, re-
// solicits the crowd, and the execution completes validly.
TEST(RepairTest, RepairRecoversWhereOvercollectionCannot) {
  // Repair disabled: the same crash schedule is fatal.
  {
    EdgeletFramework fw(SmallFleet(/*seed=*/7));
    ASSERT_TRUE(fw.Init().ok());
    auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
    ASSERT_TRUE(d.ok());
    KillAllAt(&fw, ChainDevices(*d), 4 * kSecond);
    auto report = fw.Execute(*d, RepairExec(/*repair_on=*/false));
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->success);
    EXPECT_EQ(report->completion_time, kSimTimeNever);
    EXPECT_EQ(report->repairs_attempted, 0u);
    ValidityOracle oracle(&fw);
    auto audit = oracle.Audit(*d, *report);
    ASSERT_TRUE(audit.ok());
    EXPECT_EQ(audit->verdict, TrialVerdict::kFailedSafe);
  }
  // Repair enabled: same plan, same kills, valid completion.
  {
    EdgeletFramework fw(SmallFleet(/*seed=*/7));
    ASSERT_TRUE(fw.Init().ok());
    auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
    ASSERT_TRUE(d.ok());
    KillAllAt(&fw, ChainDevices(*d), 4 * kSecond);
    auto report = fw.Execute(*d, RepairExec(/*repair_on=*/true));
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->success) << "repair did not recover the execution";
    EXPECT_GE(report->failures_detected, 1u);
    EXPECT_GE(report->repairs_attempted, 1u);
    EXPECT_GE(report->repairs_succeeded, 1u);
    EXPECT_EQ(report->early_abort_time, kSimTimeNever);
    // The merged snapshot must be attributed to repair-generation epochs,
    // never to a dead original's rank.
    bool has_repair_epoch = false;
    for (uint32_t e : report->epochs_used) {
      if (e >= exec::kRepairEpochBase) has_repair_epoch = true;
    }
    EXPECT_TRUE(has_repair_epoch);
    ValidityOracle oracle(&fw);
    auto audit = oracle.Audit(*d, *report);
    ASSERT_TRUE(audit.ok());
    EXPECT_EQ(audit->verdict, TrialVerdict::kValid) << audit->detail;
  }
}

// Deadline semantics: when the remaining budget cannot fit collection
// remainder + compute + emission + combiner margins, the controller must
// not recruit — it terminates the execution at detection time, strictly
// before the deadline, and the run classifies as failed-safe.
TEST(RepairTest, InfeasibleTimeBudgetFailsSafeStrictlyBeforeDeadline) {
  EdgeletFramework fw(SmallFleet(/*seed=*/7));
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  KillAllAt(&fw, ChainDevices(*d), 4 * kSecond);
  exec::ExecutionConfig ec = RepairExec(/*repair_on=*/true);
  // Squeeze the budget: 2 min deadline with 1 min combiner margin and
  // 30 s + 30 s repair margins leaves no feasible repair at any detection
  // time.
  ec.deadline = 2 * kMinute;
  ec.repair.compute_margin = 30 * kSecond;
  ec.repair.emission_margin = 30 * kSecond;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->completion_time, kSimTimeNever);
  EXPECT_GE(report->failures_detected, 1u);
  EXPECT_EQ(report->repairs_attempted, 0u);
  ASSERT_NE(report->early_abort_time, kSimTimeNever);
  EXPECT_LT(report->early_abort_time, ec.deadline)
      << "fail-safe must trigger strictly before the deadline";
  ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->verdict, TrialVerdict::kFailedSafe);
}

TEST(RepairTest, ExhaustedSparePoolFailsSafeEarly) {
  EdgeletFramework fw(SmallFleet(/*seed=*/7));
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  // One spare cannot re-provision a full chain (builder + computer).
  d->spare_pool.resize(1);
  KillAllAt(&fw, ChainDevices(*d), 4 * kSecond);
  auto report = fw.Execute(*d, RepairExec(/*repair_on=*/true));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->repairs_attempted, 0u);
  ASSERT_NE(report->early_abort_time, kSimTimeNever);
  EXPECT_LT(report->early_abort_time, RepairExec(true).deadline);
}

// With an empty spare pool the subsystem must gate itself off entirely:
// no controller, no beacons, no early abort — the pre-repair behavior.
TEST(RepairTest, EmptySparePoolDisablesRepair) {
  auto run = [](bool repair_requested) {
    EdgeletFramework fw(SmallFleet(/*seed=*/9));
    EXPECT_TRUE(fw.Init().ok());
    auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
    EXPECT_TRUE(d.ok());
    d->spare_pool.clear();
    auto report = fw.Execute(*d, RepairExec(repair_requested));
    EXPECT_TRUE(report.ok());
    return exec::ReportFingerprint(*report);
  };
  // Bit-identical with and without the request: the gate removed every
  // repair-path side effect (beacons, detector draws, chunked run).
  EXPECT_EQ(run(true), run(false));
}

// Acceptance gate: ReportFingerprint must be identical for sim_shards in
// {1, 2, 4, 8} with the detector and repair active (heartbeats, recruit
// traffic and controller decisions all replay deterministically under the
// sharded engine).
TEST(RepairTest, RepairIsShardCountInvariant) {
  auto fingerprint = [](size_t shards) {
    FrameworkConfig cfg = SmallFleet(/*seed=*/13);
    cfg.sim_shards = shards;
    EdgeletFramework fw(cfg);
    EXPECT_TRUE(fw.Init().ok());
    auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
    EXPECT_TRUE(d.ok());
    exec::ExecutionConfig ec = RepairExec(/*repair_on=*/true);
    // Heavy injected crash load so detection, recruitment and (depending
    // on the draw) repair or fail-safe all execute.
    ec.inject_failures = true;
    ec.failure_probability = 0.35;
    ec.seed = 13;
    auto report = fw.Execute(*d, ec);
    EXPECT_TRUE(report.ok());
    return exec::ReportFingerprint(*report);
  };
  const uint64_t serial = fingerprint(1);
  EXPECT_EQ(fingerprint(2), serial);
  EXPECT_EQ(fingerprint(4), serial);
  EXPECT_EQ(fingerprint(8), serial);
}

// Repair must never turn a fault into a successful-but-invalid result:
// sweep chaos kinds x rates with repair active (plus injected crashes so
// the controller has something to do) and assert the validity invariant.
TEST(RepairTest, ChaosWithRepairNeverYieldsInvalid) {
  const FaultKind kKinds[] = {FaultKind::kDrop, FaultKind::kBurst,
                              FaultKind::kDuplicate, FaultKind::kDelay,
                              FaultKind::kCorrupt};
  const double kRates[] = {0.15, 0.30};
  int valid = 0, failed_safe = 0;
  for (FaultKind kind : kKinds) {
    for (double rate : kRates) {
      EdgeletFramework fw(SmallFleet(/*seed=*/17));
      ASSERT_TRUE(fw.Init().ok());
      auto d =
          fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
      ASSERT_TRUE(d.ok());
      ChaosInjector injector(chaos::MakeFaultScenario(kind, /*seed=*/1234,
                                                      rate));
      injector.AttachTo(fw.network());
      exec::ExecutionConfig ec = RepairExec(/*repair_on=*/true);
      ec.inject_failures = true;
      ec.failure_probability = 0.25;
      ec.seed = 17;
      auto report = fw.Execute(*d, ec);
      injector.Detach();
      ASSERT_TRUE(report.ok());
      ValidityOracle oracle(&fw);
      auto audit = oracle.Audit(*d, *report);
      ASSERT_TRUE(audit.ok()) << audit.status().ToString();
      EXPECT_NE(audit->verdict, TrialVerdict::kInvalid)
          << "successful-but-invalid under " << FaultKindName(kind)
          << " at rate " << rate << " with repair enabled";
      (audit->verdict == TrialVerdict::kValid ? valid : failed_safe)++;
    }
  }
  EXPECT_GE(valid, 1) << valid << " valid / " << failed_safe
                      << " failed-safe of 10 repair cells";
}

// Satellite: the liveness/failover timing knobs must have exactly one
// source of truth (exec/defaults.h). Before unification,
// ExecutionConfig::failover_timeout (20 s) silently disagreed with
// ReplicaRole::Config (15 s), and resend_interval was duplicated across
// four actor configs.
TEST(RepairDefaultsTest, TimingDefaultsShareOneSourceOfTruth) {
  exec::ExecutionConfig ec;
  exec::ReplicaRole::Config rc;
  EXPECT_EQ(ec.ping_period, exec::kDefaultPingPeriod);
  EXPECT_EQ(rc.ping_period, exec::kDefaultPingPeriod);
  EXPECT_EQ(ec.failover_timeout, exec::kDefaultFailoverTimeout);
  EXPECT_EQ(rc.failover_timeout, exec::kDefaultFailoverTimeout);

  exec::SnapshotBuilderActor::Config sb;
  exec::ComputerActor::Config comp;
  exec::CombinerActor::Config comb;
  EXPECT_EQ(ec.resend_interval, exec::kDefaultResendInterval);
  EXPECT_EQ(sb.resend_interval, exec::kDefaultResendInterval);
  EXPECT_EQ(comp.resend_interval, exec::kDefaultResendInterval);
  EXPECT_EQ(comb.resend_interval, exec::kDefaultResendInterval);
}

TEST(RepairDefaultsTest, RepairOpIdsAreUniquePerOperator) {
  std::set<uint64_t> ids;
  for (uint32_t gen : {0u, 1u, 256u, 300u}) {
    for (uint32_t p = 0; p < 4; ++p) {
      for (uint32_t vg = 0; vg < 3; ++vg) {
        ids.insert(exec::RepairOpId(exec::RecruitRole::kSnapshotBuilder, p,
                                    vg, gen));
        ids.insert(exec::RepairOpId(exec::RecruitRole::kComputer, p, vg,
                                    gen));
      }
    }
  }
  EXPECT_EQ(ids.size(), 4u * 4u * 3u * 2u);
}

}  // namespace
}  // namespace edgelet::core
