#include "tee/enclave.h"

#include <gtest/gtest.h>

namespace edgelet::tee {
namespace {

class EnclaveTest : public ::testing::Test {
 protected:
  EnclaveTest() : authority_(42) {
    authority_.set_expected_measurement(
        crypto::Sha256::Hash("edgelet-query-v1"));
  }

  Enclave MakeEnclave(uint64_t id) {
    return Enclave(id, "edgelet-query-v1", &authority_);
  }

  TrustAuthority authority_;
};

TEST_F(EnclaveTest, AttestationVerifies) {
  Enclave e = MakeEnclave(1);
  EXPECT_TRUE(authority_.Verify(e.report()));
}

TEST_F(EnclaveTest, ForgedReportRejected) {
  Enclave e = MakeEnclave(1);
  AttestationReport forged = e.report();
  forged.enclave_id = 99;  // replay under a different identity
  EXPECT_FALSE(authority_.Verify(forged));
}

TEST_F(EnclaveTest, ForgedMeasurementRejected) {
  Enclave e = MakeEnclave(1);
  AttestationReport forged = e.report();
  forged.measurement[0] ^= 1;
  EXPECT_FALSE(authority_.Verify(forged));
}

TEST_F(EnclaveTest, ProvisionSucceedsForGenuineCode) {
  Enclave e = MakeEnclave(1);
  EXPECT_FALSE(e.provisioned());
  EXPECT_TRUE(e.Provision().ok());
  EXPECT_TRUE(e.provisioned());
}

TEST_F(EnclaveTest, TamperedCodeCannotProvision) {
  Enclave e = MakeEnclave(1);
  e.TamperCode("edgelet-query-v1-with-backdoor");
  // The report is genuine (hardware measures what runs)…
  EXPECT_TRUE(authority_.Verify(e.report()));
  // …but the measurement doesn't match the published code.
  Status s = e.Provision();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(EnclaveTest, SecureChannelRoundTrip) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());

  Bytes aad = BytesFromString("from=1,to=2,type=7,seq=0");
  Bytes msg = BytesFromString("partial aggregate: sum=123, count=5");
  auto sealed = a.SealFor(2, /*seq=*/0, aad, msg);
  ASSERT_TRUE(sealed.ok());
  EXPECT_NE(*sealed, msg);  // actually encrypted

  auto opened = b.OpenFrom(1, /*seq=*/0, aad, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, msg);
}

TEST_F(EnclaveTest, ChannelIsDirectional) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());

  Bytes aad;
  auto sealed = a.SealFor(2, 5, aad, BytesFromString("x"));
  ASSERT_TRUE(sealed.ok());
  // Opening with the wrong purported sender fails (nonce derives from the
  // true sender id).
  EXPECT_FALSE(b.OpenFrom(3, 5, aad, *sealed).ok());
  // Wrong sequence fails too.
  EXPECT_FALSE(b.OpenFrom(1, 6, aad, *sealed).ok());
}

TEST_F(EnclaveTest, ThirdEnclaveCannotDecryptPairTraffic) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  Enclave c = MakeEnclave(3);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());
  ASSERT_TRUE(c.Provision().ok());

  Bytes aad;
  auto sealed = a.SealFor(2, 0, aad, BytesFromString("secret"));
  ASSERT_TRUE(sealed.ok());
  // c opening "from 1" uses key(1,3) != key(1,2).
  EXPECT_FALSE(c.OpenFrom(1, 0, aad, *sealed).ok());
}

TEST_F(EnclaveTest, SealForIntoMatchesSealForByteExactly) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());

  Bytes aad = BytesFromString("hdr");
  Bytes msg = BytesFromString("partial aggregate: sum=123, count=5");
  auto sealed = a.SealFor(2, /*seq=*/3, aad, msg);
  ASSERT_TRUE(sealed.ok());

  // Scratch reused across both calls; contents must match the one-shot API.
  Bytes scratch = BytesFromString("stale content from a previous message");
  ASSERT_TRUE(
      a.SealForInto(2, /*seq=*/3, aad.data(), aad.size(), msg, &scratch)
          .ok());
  EXPECT_EQ(scratch, *sealed);

  Bytes opened = BytesFromString("also stale");
  ASSERT_TRUE(
      b.OpenFromInto(1, /*seq=*/3, aad.data(), aad.size(), scratch, &opened)
          .ok());
  EXPECT_EQ(opened, msg);
}

TEST_F(EnclaveTest, OpenFromIntoRejectsTampering) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());

  Bytes aad;
  auto sealed = a.SealFor(2, 0, aad, BytesFromString("secret"));
  ASSERT_TRUE(sealed.ok());
  (*sealed)[0] ^= 1;
  Bytes out;
  EXPECT_FALSE(b.OpenFromInto(1, 0, nullptr, 0, *sealed, &out).ok());
}

TEST_F(EnclaveTest, PairwiseKeyCacheSurvivesReprovision) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  ASSERT_TRUE(a.Provision().ok());
  ASSERT_TRUE(b.Provision().ok());

  // Exercise the cached-key path many times in both directions.
  Bytes aad;
  for (uint64_t seq = 0; seq < 8; ++seq) {
    auto sealed = a.SealFor(2, seq, aad, BytesFromString("ping"));
    ASSERT_TRUE(sealed.ok());
    auto opened = b.OpenFrom(1, seq, aad, *sealed);
    ASSERT_TRUE(opened.ok());
  }
  // Tampering invalidates the cache along with provisioning; a fresh
  // provision against genuine code restores working channels.
  a.TamperCode("evil");
  EXPECT_FALSE(a.SealFor(2, 99, aad, BytesFromString("x")).ok());
  a.TamperCode("edgelet-query-v1");
  ASSERT_TRUE(a.Provision().ok());
  auto sealed = a.SealFor(2, 100, aad, BytesFromString("pong"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_TRUE(b.OpenFrom(1, 100, aad, *sealed).ok());
}

TEST_F(EnclaveTest, UnprovisionedCannotUseChannels) {
  Enclave a = MakeEnclave(1);
  EXPECT_FALSE(a.SealFor(2, 0, {}, BytesFromString("x")).ok());
  EXPECT_FALSE(a.OpenFrom(2, 0, {}, Bytes(32, 0)).ok());
}

TEST_F(EnclaveTest, SealedStorageRoundTrip) {
  Enclave e = MakeEnclave(1);
  Bytes data = BytesFromString("medical record #1337");
  Bytes sealed = e.SealToStorage(data);
  EXPECT_NE(sealed, data);
  auto unsealed = e.UnsealFromStorage(sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(*unsealed, data);
}

TEST_F(EnclaveTest, SealedStorageBoundToEnclave) {
  Enclave a = MakeEnclave(1);
  Enclave b = MakeEnclave(2);
  Bytes sealed = a.SealToStorage(BytesFromString("private"));
  EXPECT_FALSE(b.UnsealFromStorage(sealed).ok());
}

TEST_F(EnclaveTest, SealedStorageDetectsTampering) {
  Enclave e = MakeEnclave(1);
  Bytes sealed = e.SealToStorage(BytesFromString("private"));
  sealed.back() ^= 1;
  EXPECT_FALSE(e.UnsealFromStorage(sealed).ok());
}

TEST_F(EnclaveTest, SealedStorageUsesFreshNonces) {
  Enclave e = MakeEnclave(1);
  Bytes d = BytesFromString("same plaintext");
  Bytes s1 = e.SealToStorage(d);
  Bytes s2 = e.SealToStorage(d);
  EXPECT_NE(s1, s2);  // sequence number advances
  EXPECT_EQ(*e.UnsealFromStorage(s1), d);
  EXPECT_EQ(*e.UnsealFromStorage(s2), d);
}

TEST_F(EnclaveTest, SealedGlassExposureAccounting) {
  Enclave e = MakeEnclave(1);
  EXPECT_FALSE(e.sealed_glass_compromised());
  e.set_sealed_glass_compromised(true);
  EXPECT_TRUE(e.sealed_glass_compromised());

  e.RecordClearTextTuples(100, 8);
  e.RecordClearTextTuples(50, 8);
  EXPECT_EQ(e.cleartext_tuples_observed(), 150u);
  EXPECT_EQ(e.cleartext_cells_observed(), 1200u);
}

TEST_F(EnclaveTest, DifferentAuthoritiesDoNotTrustEachOther) {
  TrustAuthority other(43);
  Enclave e = MakeEnclave(1);
  EXPECT_FALSE(other.Verify(e.report()));
}

TEST_F(EnclaveTest, ProvisionWithoutExpectedMeasurementAcceptsAnyGenuine) {
  TrustAuthority open_authority(7);
  Enclave e(1, "any-code", &open_authority);
  EXPECT_TRUE(e.Provision().ok());
}

}  // namespace
}  // namespace edgelet::tee
