#include <gtest/gtest.h>

#include "ml/kmeans.h"
#include "ml/metrics.h"

namespace edgelet::ml {
namespace {

Matrix Blobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {12, 12}, {-12, 12}};
  Matrix points;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + rng.NextGaussian() * 0.6,
                        centers[b][1] + rng.NextGaussian() * 0.6});
    }
  }
  return points;
}

TEST(MiniBatchTest, StepMovesCentroidsTowardData) {
  Matrix points(50, {10.0, 10.0});
  Matrix centroids = {{0.0, 0.0}};
  std::vector<uint64_t> counts;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        RunMiniBatchStep(points, 10, &rng, &centroids, &counts).ok());
  }
  EXPECT_NEAR(centroids[0][0], 10.0, 0.5);
  EXPECT_NEAR(centroids[0][1], 10.0, 0.5);
  EXPECT_GT(counts[0], 0u);
}

TEST(MiniBatchTest, EmptyPointsIsNoop) {
  Matrix centroids = {{1.0, 1.0}};
  std::vector<uint64_t> counts;
  Rng rng(1);
  ASSERT_TRUE(RunMiniBatchStep({}, 10, &rng, &centroids, &counts).ok());
  EXPECT_EQ(centroids[0], (std::vector<double>{1.0, 1.0}));
}

TEST(MiniBatchTest, NoCentroidsFails) {
  Matrix centroids;
  std::vector<uint64_t> counts;
  Rng rng(1);
  EXPECT_FALSE(
      RunMiniBatchStep({{1.0}}, 10, &rng, &centroids, &counts).ok());
}

TEST(MiniBatchTest, BatchLargerThanDataClamped) {
  Matrix points = {{5.0}, {7.0}};
  Matrix centroids = {{0.0}};
  std::vector<uint64_t> counts;
  Rng rng(1);
  ASSERT_TRUE(
      RunMiniBatchStep(points, 1000, &rng, &centroids, &counts).ok());
  EXPECT_GT(centroids[0][0], 0.0);
}

TEST(MiniBatchTest, FullRunRecoversBlobs) {
  Matrix points = Blobs(200, 5);
  MiniBatchConfig config;
  config.k = 3;
  config.batch_size = 50;
  config.iterations = 60;
  config.seed = 2;
  auto result = RunMiniBatchKMeans(points, config);
  ASSERT_TRUE(result.ok());
  Matrix truth = {{0, 0}, {12, 12}, {-12, 12}};
  auto rmse = MatchedCentroidRmse(result->centroids, truth);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 1.0);
  uint64_t total = 0;
  for (uint64_t c : result->counts) total += c;
  EXPECT_EQ(total, points.size());  // final hard assignment covers all
}

TEST(MiniBatchTest, DeterministicForSeed) {
  Matrix points = Blobs(100, 7);
  MiniBatchConfig config;
  config.k = 3;
  config.seed = 9;
  auto a = RunMiniBatchKMeans(points, config);
  auto b = RunMiniBatchKMeans(points, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(MiniBatchTest, ComparableToLloydOnSeparableData) {
  Matrix points = Blobs(150, 11);
  MiniBatchConfig mb;
  mb.k = 3;
  mb.batch_size = 64;
  mb.iterations = 80;
  mb.seed = 3;
  KMeansConfig full;
  full.k = 3;
  full.seed = 3;
  auto mini = RunMiniBatchKMeans(points, mb);
  auto lloyd = RunKMeans(points, full);
  ASSERT_TRUE(mini.ok() && lloyd.ok());
  auto mini_inertia = Inertia(points, mini->centroids);
  auto lloyd_inertia = Inertia(points, lloyd->centroids);
  ASSERT_TRUE(mini_inertia.ok() && lloyd_inertia.ok());
  // The paper's premise: resampling per iteration stays close to (and can
  // even beat) full-batch quality.
  EXPECT_LT(*mini_inertia, 1.3 * *lloyd_inertia);
}

}  // namespace
}  // namespace edgelet::ml
