#include <gtest/gtest.h>

#include "privacy/exposure.h"
#include "privacy/vertical_partitioner.h"

namespace edgelet::privacy {
namespace {

using query::OperatorRole;
using query::Qep;

TEST(SeparationTest, ViolationDetection) {
  std::vector<SeparationConstraint> constraints = {{"age", "region"}};
  EXPECT_TRUE(ViolatesSeparation({"age", "region", "bmi"}, constraints));
  EXPECT_FALSE(ViolatesSeparation({"age", "bmi"}, constraints));
  EXPECT_FALSE(ViolatesSeparation({"region"}, constraints));
  EXPECT_FALSE(ViolatesSeparation({}, constraints));
}

TEST(VerticalPartitionerTest, NoConstraintsMergesIntoOneGroup) {
  auto r = PartitionAttributes({{"age", "bmi"}, {"region", "bmi"}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 1u);
  EXPECT_EQ(r->set_to_group, (std::vector<size_t>{0, 0}));
}

TEST(VerticalPartitionerTest, ConstraintForcesSeparateGroups) {
  std::vector<SeparationConstraint> constraints = {{"age", "region"}};
  auto r = PartitionAttributes({{"age", "bmi"}, {"region", "bmi"}},
                               constraints);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  for (const auto& g : r->groups) {
    EXPECT_FALSE(ViolatesSeparation(g, constraints));
  }
  // bmi may legitimately appear in both groups.
}

TEST(VerticalPartitionerTest, CoAccessViolationIsPlanningError) {
  std::vector<SeparationConstraint> constraints = {{"age", "region"}};
  auto r = PartitionAttributes({{"age", "region"}}, constraints);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(VerticalPartitionerTest, SizeCapSplitsGroups) {
  auto r = PartitionAttributes({{"a", "b"}, {"c", "d"}}, {},
                               /*max_attributes_per_group=*/2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 2u);
}

TEST(VerticalPartitionerTest, SizeCapTooSmallFails) {
  auto r = PartitionAttributes({{"a", "b", "c"}}, {},
                               /*max_attributes_per_group=*/2);
  EXPECT_FALSE(r.ok());
}

TEST(VerticalPartitionerTest, EmptyInputFails) {
  EXPECT_FALSE(PartitionAttributes({}, {}).ok());
}

TEST(VerticalPartitionerTest, DuplicatesWithinSetDeduplicated) {
  auto r = PartitionAttributes({{"a", "a", "b"}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups[0], (std::vector<std::string>{"a", "b"}));
}

TEST(VerticalPartitionerTest, ManyPairwiseConstraints) {
  // a,b,c pairwise separated: three singleton-based groups.
  std::vector<SeparationConstraint> constraints = {
      {"a", "b"}, {"a", "c"}, {"b", "c"}};
  auto r = PartitionAttributes({{"a", "x"}, {"b", "x"}, {"c", "x"}},
                               constraints);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 3u);
  for (const auto& g : r->groups) {
    EXPECT_FALSE(ViolatesSeparation(g, constraints));
  }
}

// --- Exposure ------------------------------------------------------------

Qep PlanWithPartitions(int n, int m, std::vector<std::string> attrs) {
  Qep qep;
  qep.SetPartitioning(n, m);
  uint64_t querier = qep.AddVertex({.role = OperatorRole::kQuerier});
  uint64_t combiner = qep.AddVertex({.role = OperatorRole::kCombiner});
  EXPECT_TRUE(qep.AddEdge(combiner, querier).ok());
  for (int p = 0; p < n + m; ++p) {
    uint64_t sb = qep.AddVertex({.role = OperatorRole::kSnapshotBuilder,
                                 .partition = p,
                                 .attributes = attrs});
    uint64_t comp = qep.AddVertex({.role = OperatorRole::kComputer,
                                   .partition = p,
                                   .vgroup = 0,
                                   .attributes = attrs});
    EXPECT_TRUE(qep.AddEdge(sb, comp).ok());
    EXPECT_TRUE(qep.AddEdge(comp, combiner).ok());
  }
  return qep;
}

TEST(ExposureTest, HorizontalPartitioningBoundsTuples) {
  Qep qep1 = PlanWithPartitions(1, 0, {"age", "bmi"});
  Qep qep10 = PlanWithPartitions(10, 0, {"age", "bmi"});
  auto r1 = ComputeExposure(qep1, 2000);
  auto r10 = ComputeExposure(qep10, 2000);
  EXPECT_EQ(r1.max_tuples_per_edgelet, 2000u);
  EXPECT_EQ(r10.max_tuples_per_edgelet, 200u);
  EXPECT_DOUBLE_EQ(r1.worst_snapshot_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r10.worst_snapshot_fraction, 0.1);
}

TEST(ExposureTest, QuotaIsCeilOfCOverN) {
  Qep qep = PlanWithPartitions(3, 0, {"age"});
  auto r = ComputeExposure(qep, 1000);
  EXPECT_EQ(r.max_tuples_per_edgelet, 334u);  // ceil(1000/3)
}

TEST(ExposureTest, AggregatingOperatorsExposeNothing) {
  Qep qep = PlanWithPartitions(2, 1, {"age", "bmi"});
  auto r = ComputeExposure(qep, 100);
  for (const auto& op : r.per_operator) {
    if (op.role == "Combiner" || op.role == "Querier" ||
        op.role == "DataContributor") {
      EXPECT_EQ(op.tuples, 0u) << op.role;
    }
  }
}

TEST(ExposureTest, CellsReflectAttributeCount) {
  Qep wide = PlanWithPartitions(4, 0, {"a", "b", "c", "d"});
  Qep narrow = PlanWithPartitions(4, 0, {"a"});
  auto rw = ComputeExposure(wide, 400);
  auto rn = ComputeExposure(narrow, 400);
  EXPECT_EQ(rw.max_cells_per_edgelet, 400u);  // 100 tuples x 4 attrs
  EXPECT_EQ(rn.max_cells_per_edgelet, 100u);
}

TEST(ExposureTest, ValidateSeparationOnPlan) {
  std::vector<SeparationConstraint> constraints = {{"age", "region"}};
  Qep bad = PlanWithPartitions(2, 0, {"age", "region"});
  EXPECT_FALSE(ValidateSeparation(bad, constraints).ok());
  Qep good = PlanWithPartitions(2, 0, {"age", "bmi"});
  EXPECT_TRUE(ValidateSeparation(good, constraints).ok());
}

TEST(ExposureTest, ContributorsExemptFromSeparation) {
  // A contributor holds its own full record; that is not leakage.
  Qep qep;
  qep.AddVertex({.role = OperatorRole::kDataContributor,
                 .attributes = {"age", "region"}});
  EXPECT_TRUE(ValidateSeparation(qep, {{"age", "region"}}).ok());
}

TEST(ExposureTest, ReportRendersKeyNumbers) {
  Qep qep = PlanWithPartitions(10, 2, {"age"});
  auto r = ComputeExposure(qep, 1000);
  std::string s = r.ToString();
  EXPECT_NE(s.find("100"), std::string::npos);
}

}  // namespace
}  // namespace edgelet::privacy
