// Unit coverage for the deterministic fault injector: each fault kind's
// observable effect on the network, outage-window semantics, and the
// determinism contract (identical fault schedule on replay and for any
// parsim shard count).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "chaos/chaos.h"
#include "net/network.h"
#include "net/parsim/parallel_simulator.h"
#include "net/simulator.h"

namespace edgelet::chaos {
namespace {

// Records every delivery: payload copy plus arrival time.
class SinkNode : public net::Node {
 public:
  std::vector<Bytes> payloads;
  std::vector<SimTime> times;
  net::Network* network = nullptr;

  void OnMessage(const net::Message& msg) override {
    payloads.push_back(msg.payload);
    if (network != nullptr) times.push_back(network->engine()->now());
  }
};

net::NetworkConfig QuietNet() {
  net::NetworkConfig cfg;
  cfg.latency.min_latency = 1 * kMillisecond;
  cfg.latency.mean_extra = 0;
  cfg.drop_probability = 0.0;
  return cfg;
}

Bytes TestPayload() { return Bytes{1, 2, 3, 4, 5, 6, 7, 8}; }

// Schedules `count` sends a -> b, one per second starting at t=1s, in the
// sender's event context (the injector contract).
void ScheduleSends(net::SimEngine* sim, net::Network* network, net::NodeId a,
                   net::NodeId b, int count) {
  for (int i = 0; i < count; ++i) {
    sim->ScheduleAt(a, (i + 1) * kSecond, [network, a, b, i]() {
      net::Message msg;
      msg.from = a;
      msg.to = b;
      msg.type = 1;
      msg.seq = static_cast<uint64_t>(i);
      msg.payload = TestPayload();
      network->Send(std::move(msg));
    });
  }
}

class ChaosInjectorTest : public ::testing::Test {
 protected:
  ChaosInjectorTest() : sim_(7), network_(&sim_, QuietNet()) {
    a_ = network_.Register(&sender_);
    b_ = network_.Register(&sink_);
    sink_.network = &network_;
  }

  net::Simulator sim_;
  net::Network network_;
  SinkNode sender_;
  SinkNode sink_;
  net::NodeId a_ = 0;
  net::NodeId b_ = 0;
};

TEST_F(ChaosInjectorTest, CertainDropSwallowsEverything) {
  ChaosInjector injector(MakeFaultScenario(FaultKind::kDrop, 11, 1.0));
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 10);
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(sink_.payloads.empty());
  net::NetworkStats stats = network_.stats();
  EXPECT_EQ(stats.chaos_dropped, 10u);
  EXPECT_EQ(stats.messages_delivered, 0u);
  injector.Detach();
  EXPECT_EQ(network_.fault_injector(), nullptr);
}

TEST_F(ChaosInjectorTest, BurstDropsTheConfiguredRunLength) {
  // burst_start 1.0 with length 4: message 0 starts a burst (dropped) and
  // messages 1-3 fall to the countdown; message 4 starts the next burst.
  ChaosConfig cc = MakeFaultScenario(FaultKind::kBurst, 11, 1.0);
  ASSERT_EQ(cc.burst_length, 4u);
  ChaosInjector injector(cc);
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 8);
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(sink_.payloads.empty());
  EXPECT_EQ(network_.stats().chaos_dropped, 8u);
}

TEST_F(ChaosInjectorTest, DuplicatesDeliverExtraIdenticalCopies) {
  ChaosConfig cc = MakeFaultScenario(FaultKind::kDuplicate, 11, 1.0);
  cc.max_duplicates = 1;  // exactly one extra copy per send
  ChaosInjector injector(cc);
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 5);
  sim_.RunUntil(kMinute);
  ASSERT_EQ(sink_.payloads.size(), 10u);
  for (const Bytes& p : sink_.payloads) EXPECT_EQ(p, TestPayload());
  net::NetworkStats stats = network_.stats();
  EXPECT_EQ(stats.chaos_duplicates, 5u);
  EXPECT_EQ(stats.messages_delivered, 10u);
}

TEST_F(ChaosInjectorTest, DelaySpikePostponesDelivery) {
  ChaosConfig cc = MakeFaultScenario(FaultKind::kDelay, 11, 1.0);
  cc.delay_spike_mean = 10 * kSecond;
  ChaosInjector injector(cc);
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 6);
  sim_.RunUntil(10 * kMinute);
  ASSERT_EQ(sink_.payloads.size(), 6u);
  EXPECT_EQ(network_.stats().chaos_delayed, 6u);
  // Every arrival is strictly later than send time + min latency; with a
  // 10 s mean at least one spike exceeds the 1 ms floor by a lot.
  SimDuration max_over = 0;
  for (size_t i = 0; i < sink_.times.size(); ++i) {
    // Sends go out at 1s, 2s, ...; arrival order may differ (reordering).
    SimTime arrival = sink_.times[i];
    SimTime earliest_send = 1 * kSecond;
    ASSERT_GE(arrival, earliest_send + 1 * kMillisecond);
    max_over = std::max(max_over, arrival - earliest_send);
  }
  EXPECT_GT(max_over, kSecond);
}

TEST_F(ChaosInjectorTest, CorruptionFlipsPayloadBitsInPlace) {
  ChaosInjector injector(MakeFaultScenario(FaultKind::kCorrupt, 11, 1.0));
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 5);
  sim_.RunUntil(kMinute);
  ASSERT_EQ(sink_.payloads.size(), 5u);
  for (const Bytes& p : sink_.payloads) {
    ASSERT_EQ(p.size(), TestPayload().size());  // flips, not truncation
    EXPECT_NE(p, TestPayload());
  }
  EXPECT_EQ(network_.stats().chaos_corrupted, 5u);
}

TEST_F(ChaosInjectorTest, BlackholeWindowSilencesAffectedNodes) {
  ChaosConfig cc;
  cc.outages.push_back({10 * kSecond, 20 * kSecond, {a_}, false});
  ChaosInjector injector(cc);
  injector.AttachTo(&network_);
  // Sends at 1s..30s: those inside [10s, 20s) vanish.
  ScheduleSends(&sim_, &network_, a_, b_, 30);
  sim_.RunUntil(kMinute);
  EXPECT_EQ(sink_.payloads.size(), 20u);
  EXPECT_EQ(network_.stats().chaos_dropped, 10u);
}

TEST_F(ChaosInjectorTest, PartitionOnlyCutsCrossTrafficOnly) {
  // Third node c on a's side of the cut: a -> c keeps flowing while the
  // cross-cut a -> b traffic is lost.
  SinkNode c_sink;
  net::NodeId c = network_.Register(&c_sink);
  ChaosConfig cc;
  cc.outages.push_back({0, kMinute, {a_, c}, /*partition_only=*/true});
  ChaosInjector injector(cc);
  injector.AttachTo(&network_);
  ScheduleSends(&sim_, &network_, a_, b_, 5);  // crosses the cut
  ScheduleSends(&sim_, &network_, a_, c, 5);   // same side
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(sink_.payloads.empty());
  EXPECT_EQ(c_sink.payloads.size(), 5u);
  EXPECT_EQ(network_.stats().chaos_dropped, 5u);
}

TEST_F(ChaosInjectorTest, ReattachReplaysTheIdenticalFaultSchedule) {
  ChaosConfig cc = MakeFaultScenario(FaultKind::kDrop, 42, 0.4);
  auto run_once = [&]() {
    net::Simulator sim(7);
    net::Network network(&sim, QuietNet());
    SinkNode sender, sink;
    net::NodeId a = network.Register(&sender);
    net::NodeId b = network.Register(&sink);
    ChaosInjector injector(cc);
    injector.AttachTo(&network);
    ScheduleSends(&sim, &network, a, b, 50);
    sim.RunUntil(kMinute);
    return network.stats().chaos_dropped;
  };
  uint64_t first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 50u);
  EXPECT_EQ(run_once(), first);
}

// The core determinism claim: the same chaos scenario produces the same
// fault schedule under the serial engine and under parsim at any shard
// count. Many senders spread across shards all draw from their own chaos
// streams concurrently.
TEST(ChaosParsimTest, FaultScheduleIsShardCountInvariant) {
  constexpr int kNodes = 8;
  constexpr int kSendsPerNode = 40;
  ChaosConfig cc = MakeFaultScenario(FaultKind::kDrop, 99, 0.3);
  cc.duplicate_probability = 0.2;
  cc.delay_spike_probability = 0.1;
  cc.delay_spike_mean = 3 * kSecond;

  auto run = [&](std::unique_ptr<net::SimEngine> sim) {
    net::Network network(sim.get(), QuietNet());
    std::vector<std::unique_ptr<SinkNode>> nodes;
    std::vector<net::NodeId> ids;
    for (int i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<SinkNode>());
      ids.push_back(network.Register(nodes.back().get()));
    }
    ChaosInjector injector(cc);
    injector.AttachTo(&network);
    // Every node sends to the next one on a fixed schedule.
    for (int i = 0; i < kNodes; ++i) {
      ScheduleSends(sim.get(), &network, ids[i], ids[(i + 1) % kNodes],
                    kSendsPerNode);
    }
    sim->RunUntil(10 * kMinute);
    net::NetworkStats stats = network.stats();
    size_t delivered = 0;
    for (const auto& n : nodes) delivered += n->payloads.size();
    return std::tuple<uint64_t, uint64_t, uint64_t, size_t>(
        stats.chaos_dropped, stats.chaos_duplicates, stats.chaos_delayed,
        delivered);
  };

  auto serial = run(std::make_unique<net::Simulator>(5));
  EXPECT_GT(std::get<0>(serial), 0u);
  EXPECT_GT(std::get<1>(serial), 0u);
  for (size_t shards : {1u, 2u, 4u}) {
    net::parsim::ParallelSimulator::Options opt;
    opt.num_shards = shards;
    opt.lookahead = QuietNet().latency.min_latency;
    auto parallel =
        run(std::make_unique<net::parsim::ParallelSimulator>(5, opt));
    EXPECT_EQ(parallel, serial) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace edgelet::chaos
