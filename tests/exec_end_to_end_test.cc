// Parameterized end-to-end sweeps: every combination of resiliency
// strategy, vertical partitioning, and failure injection must deliver a
// valid result when the plan's presumption covers the injected rate.

#include <gtest/gtest.h>

#include "core/framework.h"

namespace edgelet::core {
namespace {

using exec::Strategy;
using query::AggregateFunction;
using query::CompareOp;

struct SweepCase {
  std::string label;
  Strategy strategy;
  bool separate_attributes;
  double failure_probability;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.label;
}

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, DeliversValidResultWithinPresumption) {
  const SweepCase& param = GetParam();

  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 400;
  cfg.fleet.num_processors = 120;
  cfg.fleet.enable_churn = false;
  cfg.seed = 1234;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 77;
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 60;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"sex"}},
      {{AggregateFunction::kCount, "*"},
       {AggregateFunction::kAvg, "bmi"},
       {AggregateFunction::kMax, "systolic_bp"}}};

  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 3
  if (param.separate_attributes) {
    privacy.separation = {{"region", "sex"}};
  }
  resilience::ResilienceConfig resilience{
      std::max(param.failure_probability, 0.05), 0.995};

  auto d = fw.Plan(q, privacy, resilience, param.strategy);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  if (param.separate_attributes) {
    EXPECT_EQ(d->vgroup_columns.size(), 2u);
  }

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = param.failure_probability > 0;
  ec.failure_probability = param.failure_probability;
  ec.seed = 99;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success) << param.label;

  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok()) << validity.status().ToString();
  EXPECT_TRUE(validity->valid) << validity->detail;
  EXPECT_GT(validity->rows_compared, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyPrivacyFailureMatrix, EndToEndSweep,
    ::testing::Values(
        SweepCase{"over_flat_clean", Strategy::kOvercollection, false, 0.0},
        SweepCase{"over_flat_faulty", Strategy::kOvercollection, false, 0.1},
        SweepCase{"over_vertical_clean", Strategy::kOvercollection, true,
                  0.0},
        SweepCase{"over_vertical_faulty", Strategy::kOvercollection, true,
                  0.1},
        SweepCase{"backup_flat_clean", Strategy::kBackup, false, 0.0},
        SweepCase{"backup_flat_faulty", Strategy::kBackup, false, 0.1},
        SweepCase{"backup_vertical_clean", Strategy::kBackup, true, 0.0},
        SweepCase{"backup_vertical_faulty", Strategy::kBackup, true, 0.1}),
    CaseName);

// Sketch-based aggregates (COUNT DISTINCT, QUANTILE) through the full
// distributed path. Sketches merge deterministically, and the per-vgroup
// centralized rerun rebuilds sketches over the same rows — but in a
// different insertion order, so the comparison uses the estimates, not
// byte equality. COUNT DISTINCT over few distinct values is exact; the
// median lands within the sketch's rank error.
TEST(SketchAggregatesEndToEnd, DistinctAndQuantileFlowThrough) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 400;
  cfg.fleet.num_processors = 60;
  cfg.fleet.enable_churn = false;
  cfg.seed = 777;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 88;
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 90;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"sex"}},
      {{AggregateFunction::kCount, "*"},
       {AggregateFunction::kCountDistinct, "dependency"},
       {AggregateFunction::kQuantile, "bmi", 0.5}}};

  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 30;  // n = 3
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success);

  ASSERT_EQ(report->result.num_rows(), 2u);  // F / M
  auto cd_idx = report->result.schema().IndexOf("COUNT_DISTINCT(dependency)");
  auto q_idx = report->result.schema().IndexOf("Q50(bmi)");
  ASSERT_TRUE(cd_idx.ok() && q_idx.ok());
  for (const auto& row : report->result.rows()) {
    int64_t distinct = row[*cd_idx].AsInt64();
    EXPECT_GE(distinct, 3);  // dependency levels 1..6, most present
    EXPECT_LE(distinct, 6);
    double median_bmi = row[*q_idx].AsDouble();
    EXPECT_GT(median_bmi, 18.0);
    EXPECT_LT(median_bmi, 36.0);
  }

  // Cross-check the distinct counts against the exact ground truth over
  // the same snapshot rows.
  std::set<uint64_t> keys(report->snapshot_contributors_by_vgroup[0].begin(),
                          report->snapshot_contributors_by_vgroup[0].end());
  auto id_idx = fw.population().schema().IndexOf("contributor_id");
  auto sex_idx = fw.population().schema().IndexOf("sex");
  auto dep_idx = fw.population().schema().IndexOf("dependency");
  ASSERT_TRUE(id_idx.ok() && sex_idx.ok() && dep_idx.ok());
  std::map<std::string, std::set<int64_t>> truth;
  for (const auto& row : fw.population().rows()) {
    if (!keys.count(static_cast<uint64_t>(row[*id_idx].AsInt64()))) continue;
    truth[row[*sex_idx].AsString()].insert(row[*dep_idx].AsInt64());
  }
  auto sex_out = report->result.schema().IndexOf("sex");
  ASSERT_TRUE(sex_out.ok());
  for (const auto& row : report->result.rows()) {
    int64_t got = row[*cd_idx].AsInt64();
    int64_t expected =
        static_cast<int64_t>(truth[row[*sex_out].AsString()].size());
    // HLL with p=10 on <=6 distinct values is exact.
    EXPECT_EQ(got, expected);
  }
}

// Store-and-forward duplicate delivery must not double-count a
// contributor (the snapshot builder deduplicates by contributor key).
TEST(SnapshotDedupEndToEnd, ChurnReplaysDoNotInflateSnapshots) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 300;
  cfg.fleet.num_processors = 60;
  cfg.fleet.enable_churn = true;  // devices flap; mailboxes replay
  cfg.seed = 31;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 5;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 50;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};

  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 25;  // n = 2
  auto d = fw.Plan(q, privacy, {0.15, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());

  exec::ExecutionConfig ec;
  ec.collection_window = 3 * kMinute;
  ec.deadline = 20 * kMinute;
  ec.combiner_margin = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  if (!report->success) GTEST_SKIP() << "churn made this run miss; fine";

  // The merged snapshot must contain n * quota DISTINCT contributors.
  const auto& keys = report->snapshot_contributors_by_vgroup[0];
  std::set<uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size());
  EXPECT_EQ(keys.size(), static_cast<size_t>(d->n) * d->quota);
  // And COUNT(*) across regions equals the snapshot cardinality.
  int64_t total = 0;
  auto count_idx = report->result.schema().IndexOf("COUNT(*)");
  ASSERT_TRUE(count_idx.ok());
  for (const auto& row : report->result.rows()) {
    total += row[*count_idx].AsInt64();
  }
  EXPECT_EQ(total, static_cast<int64_t>(d->n * d->quota));
}

// Temporary disconnection (not a crash): a snapshot builder goes offline
// for two minutes mid-collection. Store-and-forward parks contributions in
// its mailbox; on reconnection the snapshot completes and the query still
// meets its (generous) deadline. This is the paper's OppNet story: a
// temporarily unreachable edgelet is delay, not loss.
TEST(DisconnectionToleranceEndToEnd, OfflineBuilderRecoversViaMailbox) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 200;
  cfg.fleet.num_processors = 60;
  cfg.fleet.enable_churn = false;
  cfg.network.store_and_forward = true;
  cfg.seed = 61;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 6;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 40;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 2
  resilience::ResilienceConfig resilience{0.0, 0.9};  // no overcollection
  auto d = fw.Plan(q, privacy, resilience, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->m, 0);  // the offline builder is NOT expendable

  net::NodeId victim = d->sb_groups[0][0][0];
  fw.sim()->ScheduleAt(5 * kSecond, [&fw, victim]() {
    fw.network()->SetOnline(victim, false);
  });
  fw.sim()->ScheduleAt(3 * kMinute, [&fw, victim]() {
    fw.network()->SetOnline(victim, true);  // mailbox replays here
  });

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  // Completion waited for the reconnection.
  EXPECT_GT(report->completion_time, 3 * kMinute);
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;

  // Control: without store-and-forward the same disconnection is fatal
  // for an m=0 plan.
  FrameworkConfig cfg2 = cfg;
  cfg2.network.store_and_forward = false;
  EdgeletFramework fw2(cfg2);
  ASSERT_TRUE(fw2.Init().ok());
  auto d2 = fw2.Plan(q, privacy, resilience, Strategy::kOvercollection);
  ASSERT_TRUE(d2.ok());
  net::NodeId victim2 = d2->sb_groups[0][0][0];
  fw2.sim()->ScheduleAt(5 * kSecond, [&fw2, victim2]() {
    fw2.network()->SetOnline(victim2, false);
  });
  fw2.sim()->ScheduleAt(3 * kMinute, [&fw2, victim2]() {
    fw2.network()->SetOnline(victim2, true);
  });
  auto report2 = fw2.Execute(*d2, ec);
  ASSERT_TRUE(report2.ok());
  EXPECT_FALSE(report2->success);
}

}  // namespace
}  // namespace edgelet::core
