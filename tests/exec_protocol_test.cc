#include "exec/protocol.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "exec/execution.h"

namespace edgelet::exec {
namespace {

data::Table SmallTable() {
  data::HealthDataParams params;
  params.num_individuals = 5;
  return data::GenerateHealthData(params, 3);
}

TEST(ProtocolTest, ContributionRoundTrip) {
  ContributionMsg msg;
  msg.query_id = 42;
  msg.contributor_key = 1337;
  msg.rows = SmallTable();
  auto back = ContributionMsg::Decode(msg.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->query_id, 42u);
  EXPECT_EQ(back->contributor_key, 1337u);
  EXPECT_EQ(back->rows, msg.rows);
}

TEST(ProtocolTest, SnapshotSliceRoundTrip) {
  SnapshotSliceMsg msg;
  msg.query_id = 1;
  msg.partition = 3;
  msg.vgroup = 2;
  msg.epoch = 1;
  msg.rows = SmallTable();
  auto back = SnapshotSliceMsg::Decode(msg.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->partition, 3u);
  EXPECT_EQ(back->vgroup, 2u);
  EXPECT_EQ(back->epoch, 1u);
  EXPECT_EQ(back->rows, msg.rows);
}

TEST(ProtocolTest, GsPartialRoundTrip) {
  query::GroupingSetsSpec spec{
      {{"region"}},
      {{query::AggregateFunction::kCount, "*"}}};
  auto result = query::GroupingSetsResult::Compute(SmallTable(), spec);
  ASSERT_TRUE(result.ok());
  GsPartialMsg msg;
  msg.query_id = 9;
  msg.partition = 1;
  msg.vgroup = 0;
  msg.epoch = 2;
  msg.result = *result;
  auto back = GsPartialMsg::Decode(msg.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->partition, 1u);
  auto t1 = back->result.Finalize();
  auto t2 = result->Finalize();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(*t1, *t2);
}

TEST(ProtocolTest, KmMessagesRoundTrip) {
  KmKnowledgeMsg k;
  k.query_id = 5;
  k.partition = 2;
  k.round = 7;
  k.knowledge = {{{1.0, 2.0}, {3.0, 4.0}}, {10, 20}};
  auto kb = KmKnowledgeMsg::Decode(k.Encode());
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->round, 7u);
  EXPECT_EQ(kb->knowledge, k.knowledge);

  KmFinalMsg f;
  f.query_id = 5;
  f.partition = 2;
  f.knowledge = k.knowledge;
  query::AggregateState s;
  ASSERT_TRUE(s.Add(data::Value(3.5)).ok());
  f.stats.per_cluster = {{s}, {s}};
  auto fb = KmFinalMsg::Decode(f.Encode());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fb->knowledge, f.knowledge);
  ASSERT_EQ(fb->stats.per_cluster.size(), 2u);
  EXPECT_EQ(fb->stats.per_cluster[0][0], s);
}

TEST(ProtocolTest, FinalResultRoundTrip) {
  FinalResultMsg msg;
  msg.query_id = 11;
  msg.partitions = {0, 2, 5};
  msg.epochs = {0, 1, 0, 0, 2, 0};  // 2 vgroups per partition
  msg.result = SmallTable();
  auto back = FinalResultMsg::Decode(msg.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->partitions, msg.partitions);
  EXPECT_EQ(back->epochs, msg.epochs);
  EXPECT_EQ(back->result, msg.result);
}

TEST(ProtocolTest, LeaderPingRoundTrip) {
  LeaderPingMsg ping{0xDEADBEEF12345678ULL, 3};
  auto back = LeaderPingMsg::Decode(ping.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->group_id, ping.group_id);
  EXPECT_EQ(back->rank, 3u);
}

TEST(ProtocolTest, TruncatedMessagesFail) {
  ContributionMsg msg;
  msg.query_id = 1;
  msg.rows = SmallTable();
  Bytes full = msg.Encode();
  for (size_t cut : {0u, 4u, 12u}) {
    Bytes truncated(full.begin(), full.begin() + cut);
    EXPECT_FALSE(ContributionMsg::Decode(truncated).ok()) << cut;
  }
}

TEST(ClusterStatsTest, PermuteReorders) {
  query::AggregateState a, b;
  ASSERT_TRUE(a.Add(data::Value(1.0)).ok());
  ASSERT_TRUE(b.Add(data::Value(2.0)).ok());
  ClusterStats stats;
  stats.per_cluster = {{a}, {b}};
  stats.Permute({1, 0});  // cluster 0 -> index 1, cluster 1 -> index 0
  EXPECT_EQ(stats.per_cluster[1][0], a);
  EXPECT_EQ(stats.per_cluster[0][0], b);
}

TEST(ClusterStatsTest, PermuteWithBadIndicesKeepsInPlace) {
  query::AggregateState a;
  ASSERT_TRUE(a.Add(data::Value(1.0)).ok());
  ClusterStats stats;
  stats.per_cluster = {{a}};
  stats.Permute({7});  // out of range: identity fallback
  EXPECT_EQ(stats.per_cluster[0][0], a);
}

TEST(ClusterStatsTest, MergeAccumulates) {
  query::AggregateState a, b;
  ASSERT_TRUE(a.Add(data::Value(1.0)).ok());
  ASSERT_TRUE(b.Add(data::Value(3.0)).ok());
  ClusterStats s1, s2;
  s1.per_cluster = {{a}};
  s2.per_cluster = {{b}};
  ASSERT_TRUE(s1.MergeFrom(s2).ok());
  EXPECT_DOUBLE_EQ(
      s1.per_cluster[0][0].Finalize(query::AggregateFunction::kAvg)
          .AsDouble(),
      2.0);
}

TEST(ClusterStatsTest, MergeIntoEmptyAdopts) {
  query::AggregateState a;
  ASSERT_TRUE(a.Add(data::Value(5.0)).ok());
  ClusterStats empty, other;
  other.per_cluster = {{a}};
  ASSERT_TRUE(empty.MergeFrom(other).ok());
  EXPECT_EQ(empty.per_cluster.size(), 1u);
}

TEST(ClusterStatsTest, MergeShapeMismatchFails) {
  ClusterStats s1, s2;
  s1.per_cluster = {{query::AggregateState{}}};
  s2.per_cluster = {{query::AggregateState{}}, {query::AggregateState{}}};
  EXPECT_FALSE(s1.MergeFrom(s2).ok());
}

TEST(ProtocolTest, StrategyNames) {
  EXPECT_EQ(StrategyName(Strategy::kOvercollection), "Overcollection");
  EXPECT_EQ(StrategyName(Strategy::kBackup), "Backup");
}

}  // namespace
}  // namespace edgelet::exec
