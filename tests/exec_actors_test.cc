// Actor-level tests: drive snapshot builders, computers, and combiners
// directly with hand-crafted sealed messages to pin down quota handling,
// deduplication, epoch selection, and first-n combination.

#include <gtest/gtest.h>

#include "exec/combiner.h"
#include "exec/computer.h"
#include "exec/snapshot_builder.h"

namespace edgelet::exec {
namespace {

data::Schema MiniSchema() {
  return data::Schema({{"region", data::ValueType::kString},
                       {"bmi", data::ValueType::kDouble}});
}

query::GroupingSetsSpec MiniSpec() {
  return query::GroupingSetsSpec{
      {{"region"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"}}};
}

class ActorTest : public ::testing::Test {
 protected:
  ActorTest() : sim_(1), network_(&sim_, NoDropConfig()), authority_(9) {
    authority_.set_expected_measurement(crypto::Sha256::Hash("code"));
  }

  static net::NetworkConfig NoDropConfig() {
    net::NetworkConfig cfg;
    cfg.latency.min_latency = 1 * kMillisecond;
    cfg.latency.mean_extra = 0;
    return cfg;
  }

  device::Device* NewDevice() {
    auto profile = device::DeviceProfile::Pc();
    profile.churn = net::ChurnModel::AlwaysOn();
    devices_.push_back(std::make_unique<device::Device>(
        &network_, &authority_, profile, "code"));
    EXPECT_TRUE(devices_.back()->enclave().Provision().ok());
    return devices_.back().get();
  }

  // Sends one sealed contribution row from `from` to `to`.
  void SendContribution(device::Device* from, net::NodeId to, uint64_t key,
                        const char* region, double bmi) {
    ContributionMsg msg;
    msg.query_id = 1;
    msg.contributor_key = key;
    msg.rows = data::Table(MiniSchema());
    msg.rows.AppendUnchecked(
        {data::Value(region), data::Value(bmi)});
    ASSERT_TRUE(from->SendSealed(to, kContribution, msg.Encode()).ok());
  }

  ReplicaRole::Config Singleton(device::Device* dev) {
    ReplicaRole::Config cfg;
    cfg.group_id = 1;
    cfg.members = {dev->id()};
    return cfg;
  }

  net::Simulator sim_;
  net::Network network_;
  tee::TrustAuthority authority_;
  std::vector<std::unique_ptr<device::Device>> devices_;
};

// Captures decoded slices a computer would receive.
class SliceSink : public ActorBase {
 public:
  SliceSink(net::Simulator* sim, device::Device* dev)
      : ActorBase(sim, dev) {}
  std::vector<SnapshotSliceMsg> slices;

 protected:
  void HandleMessage(const net::Message& msg) override {
    if (msg.type != kSnapshotSlice) return;
    auto payload = dev()->OpenPayload(msg);
    ASSERT_TRUE(payload.ok());
    auto slice = SnapshotSliceMsg::Decode(*payload);
    ASSERT_TRUE(slice.ok());
    slices.push_back(std::move(*slice));
  }
};

TEST_F(ActorTest, SnapshotBuilderStopsAtQuota) {
  device::Device* sb_dev = NewDevice();
  device::Device* sink_dev = NewDevice();
  SliceSink sink(&sim_, sink_dev);

  SnapshotBuilderActor::Config cfg;
  cfg.query_id = 1;
  cfg.partition = 0;
  cfg.vgroup = 0;
  cfg.quota = 3;
  cfg.computers = {sink_dev->id()};
  cfg.columns = {"region", "bmi"};
  cfg.replica = Singleton(sb_dev);
  SnapshotBuilderActor sb(&sim_, sb_dev, cfg);
  sb.Start();

  for (uint64_t key = 1; key <= 5; ++key) {
    device::Device* contributor = NewDevice();
    SendContribution(contributor, sb_dev->id(), key, "north", 20.0 + key);
  }
  sim_.RunUntil(kMinute);

  EXPECT_TRUE(sb.snapshot_complete());
  EXPECT_EQ(sb.tuples_collected(), 3u);
  EXPECT_EQ(sb.included_contributors().size(), 3u);
  ASSERT_EQ(sink.slices.size(), 1u);
  EXPECT_EQ(sink.slices[0].rows.num_rows(), 3u);
  EXPECT_EQ(sink.slices[0].epoch, 0u);
  // Exposure recorded inside the builder's enclave.
  EXPECT_GE(sb_dev->enclave().cleartext_tuples_observed(), 3u);
}

TEST_F(ActorTest, SnapshotBuilderDeduplicatesContributors) {
  device::Device* sb_dev = NewDevice();
  device::Device* sink_dev = NewDevice();
  SliceSink sink(&sim_, sink_dev);

  SnapshotBuilderActor::Config cfg;
  cfg.query_id = 1;
  cfg.partition = 0;
  cfg.vgroup = 0;
  cfg.quota = 3;
  cfg.computers = {sink_dev->id()};
  cfg.columns = {"region", "bmi"};
  cfg.replica = Singleton(sb_dev);
  SnapshotBuilderActor sb(&sim_, sb_dev, cfg);
  sb.Start();

  device::Device* contributor = NewDevice();
  // Same contributor replays its contribution (store-and-forward echo).
  SendContribution(contributor, sb_dev->id(), 7, "north", 21.0);
  SendContribution(contributor, sb_dev->id(), 7, "north", 21.0);
  SendContribution(contributor, sb_dev->id(), 7, "north", 21.0);
  sim_.RunUntil(kMinute);
  EXPECT_FALSE(sb.snapshot_complete());
  EXPECT_EQ(sb.tuples_collected(), 1u);
}

TEST_F(ActorTest, SnapshotBuilderIgnoresWrongQuery) {
  device::Device* sb_dev = NewDevice();
  device::Device* sink_dev = NewDevice();
  SliceSink sink(&sim_, sink_dev);

  SnapshotBuilderActor::Config cfg;
  cfg.query_id = 42;  // expects query 42, receives query 1
  cfg.partition = 0;
  cfg.vgroup = 0;
  cfg.quota = 1;
  cfg.computers = {sink_dev->id()};
  cfg.columns = {"region", "bmi"};
  cfg.replica = Singleton(sb_dev);
  SnapshotBuilderActor sb(&sim_, sb_dev, cfg);
  sb.Start();

  device::Device* contributor = NewDevice();
  SendContribution(contributor, sb_dev->id(), 1, "north", 20.0);
  sim_.RunUntil(kMinute);
  EXPECT_FALSE(sb.snapshot_complete());
}

// Captures decoded GS partials a combiner would receive.
class PartialSink : public ActorBase {
 public:
  PartialSink(net::Simulator* sim, device::Device* dev)
      : ActorBase(sim, dev) {}
  std::vector<GsPartialMsg> partials;

 protected:
  void HandleMessage(const net::Message& msg) override {
    if (msg.type != kGsPartial) return;
    auto payload = dev()->OpenPayload(msg);
    ASSERT_TRUE(payload.ok());
    auto partial = GsPartialMsg::Decode(*payload);
    ASSERT_TRUE(partial.ok());
    partials.push_back(std::move(*partial));
  }
};

TEST_F(ActorTest, ComputerTakesFirstEpochOnly) {
  device::Device* comp_dev = NewDevice();
  device::Device* comb_dev = NewDevice();
  device::Device* sb_dev = NewDevice();
  PartialSink sink(&sim_, comb_dev);

  ComputerActor::Config cfg;
  cfg.query_id = 1;
  cfg.partition = 0;
  cfg.vgroup = 0;
  cfg.mode = ComputerActor::Mode::kGroupingSets;
  cfg.gs_spec = MiniSpec();
  cfg.set_indices = {0};
  cfg.combiners = {comb_dev->id()};
  cfg.replica = Singleton(comp_dev);
  ComputerActor computer(&sim_, comp_dev, cfg);
  computer.Start();

  auto send_slice = [&](uint32_t epoch, double bmi) {
    SnapshotSliceMsg slice;
    slice.query_id = 1;
    slice.partition = 0;
    slice.vgroup = 0;
    slice.epoch = epoch;
    slice.rows = data::Table(MiniSchema());
    slice.rows.AppendUnchecked({data::Value("north"), data::Value(bmi)});
    ASSERT_TRUE(
        sb_dev->SendSealed(comp_dev->id(), kSnapshotSlice, slice.Encode())
            .ok());
  };
  send_slice(0, 11.0);
  sim_.RunUntil(10 * kSecond);
  send_slice(1, 99.0);  // late re-emission from a failover replica
  sim_.RunUntil(kMinute);

  ASSERT_FALSE(sink.partials.empty());
  EXPECT_EQ(sink.partials[0].epoch, 0u);
  auto table = sink.partials[0].result.Finalize();
  ASSERT_TRUE(table.ok());
  // AVG(bmi) from the first slice (11.0), not the late one.
  auto avg_idx = table->schema().IndexOf("AVG(bmi)");
  ASSERT_TRUE(avg_idx.ok());
  EXPECT_DOUBLE_EQ(table->row(0)[*avg_idx].AsDouble(), 11.0);
}

// Captures the final result at a querier device.
TEST_F(ActorTest, CombinerMergesExactlyFirstNPartitions) {
  device::Device* comb_dev = NewDevice();
  device::Device* querier_dev = NewDevice();
  device::Device* comp_dev = NewDevice();
  QuerierActor querier(&sim_, querier_dev, 1);

  CombinerActor::Config cfg;
  cfg.query_id = 1;
  cfg.mode = CombinerActor::Mode::kGroupingSets;
  cfg.n_needed = 2;
  cfg.num_vgroups = 1;
  cfg.gs_spec = MiniSpec();
  cfg.querier_targets = {querier_dev->id()};
  cfg.emit_at = kSimTimeNever;
  cfg.active_emit = true;
  cfg.result_resends = 0;
  cfg.replica = Singleton(comb_dev);
  CombinerActor combiner(&sim_, comb_dev, cfg);
  combiner.Start();

  auto send_partial = [&](uint32_t partition, double bmi) {
    data::Table t(MiniSchema());
    t.AppendUnchecked({data::Value("north"), data::Value(bmi)});
    auto result = query::GroupingSetsResult::Compute(t, MiniSpec());
    ASSERT_TRUE(result.ok());
    GsPartialMsg msg;
    msg.query_id = 1;
    msg.partition = partition;
    msg.vgroup = 0;
    msg.epoch = 0;
    msg.result = std::move(*result);
    ASSERT_TRUE(
        comp_dev->SendSealed(comb_dev->id(), kGsPartial, msg.Encode()).ok());
  };
  // Partitions arrive in order 2, 0, 1: the combiner must merge the FIRST
  // TWO complete ones (2 and 0), not partition 1.
  send_partial(2, 10.0);
  sim_.RunUntil(5 * kSecond);
  send_partial(0, 20.0);
  sim_.RunUntil(10 * kSecond);
  send_partial(1, 99.0);
  sim_.RunUntil(kMinute);

  ASSERT_TRUE(querier.has_result());
  const FinalResultMsg& result = querier.result();
  EXPECT_EQ(result.partitions, (std::vector<uint32_t>{2, 0}));
  // COUNT(*) = 2 rows; AVG(bmi) = 15 (partitions 2 and 0 only).
  auto count_idx = result.result.schema().IndexOf("COUNT(*)");
  auto avg_idx = result.result.schema().IndexOf("AVG(bmi)");
  ASSERT_TRUE(count_idx.ok() && avg_idx.ok());
  EXPECT_EQ(result.result.row(0)[*count_idx].AsInt64(), 2);
  EXPECT_DOUBLE_EQ(result.result.row(0)[*avg_idx].AsDouble(), 15.0);
}

TEST_F(ActorTest, CombinerIgnoresDuplicateVgroupPartials) {
  device::Device* comb_dev = NewDevice();
  device::Device* querier_dev = NewDevice();
  device::Device* comp_dev = NewDevice();
  QuerierActor querier(&sim_, querier_dev, 1);

  CombinerActor::Config cfg;
  cfg.query_id = 1;
  cfg.mode = CombinerActor::Mode::kGroupingSets;
  cfg.n_needed = 1;
  cfg.num_vgroups = 1;
  cfg.gs_spec = MiniSpec();
  cfg.querier_targets = {querier_dev->id()};
  cfg.emit_at = kSimTimeNever;
  cfg.active_emit = true;
  cfg.result_resends = 0;
  cfg.replica = Singleton(comb_dev);
  CombinerActor combiner(&sim_, comb_dev, cfg);
  combiner.Start();

  data::Table t(MiniSchema());
  t.AppendUnchecked({data::Value("north"), data::Value(30.0)});
  auto partial = query::GroupingSetsResult::Compute(t, MiniSpec());
  ASSERT_TRUE(partial.ok());
  GsPartialMsg msg;
  msg.query_id = 1;
  msg.partition = 0;
  msg.vgroup = 0;
  msg.epoch = 0;
  msg.result = *partial;
  // The same partial re-emitted 3 times (lossy-link redundancy).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        comp_dev->SendSealed(comb_dev->id(), kGsPartial, msg.Encode()).ok());
  }
  sim_.RunUntil(kMinute);

  ASSERT_TRUE(querier.has_result());
  auto count_idx = querier.result().result.schema().IndexOf("COUNT(*)");
  ASSERT_TRUE(count_idx.ok());
  // Not triple-counted.
  EXPECT_EQ(querier.result().result.row(0)[*count_idx].AsInt64(), 1);
}

TEST_F(ActorTest, CombinerEvictsPoisonedPartitionAndUsesSpare) {
  device::Device* comb_dev = NewDevice();
  device::Device* querier_dev = NewDevice();
  device::Device* comp_dev = NewDevice();
  QuerierActor querier(&sim_, querier_dev, 1);

  CombinerActor::Config cfg;
  cfg.query_id = 1;
  cfg.mode = CombinerActor::Mode::kGroupingSets;
  cfg.n_needed = 2;
  cfg.num_vgroups = 1;
  cfg.total_partitions = 3;  // n=2 plus one spare
  cfg.gs_spec = MiniSpec();
  cfg.querier_targets = {querier_dev->id()};
  cfg.emit_at = kSimTimeNever;
  cfg.active_emit = true;
  cfg.result_resends = 0;
  cfg.replica = Singleton(comb_dev);
  CombinerActor combiner(&sim_, comb_dev, cfg);
  combiner.Start();

  // Partition 0 completes first with a partial whose spec cannot merge
  // with the deployed one — the forced merge failure that used to wedge
  // the combiner forever (combining_ stayed set, spares unreachable).
  query::GroupingSetsSpec poison_spec{
      {{"region"}}, {{query::AggregateFunction::kCount, "*"}}};
  data::Table pt(MiniSchema());
  pt.AppendUnchecked({data::Value("north"), data::Value(1.0)});
  auto poison = query::GroupingSetsResult::Compute(pt, poison_spec);
  ASSERT_TRUE(poison.ok());
  GsPartialMsg bad;
  bad.query_id = 1;
  bad.partition = 0;
  bad.vgroup = 0;
  bad.epoch = 0;
  bad.result = *poison;
  ASSERT_TRUE(
      comp_dev->SendSealed(comb_dev->id(), kGsPartial, bad.Encode()).ok());
  sim_.RunUntil(5 * kSecond);

  auto send_good = [&](uint32_t partition, double bmi) {
    data::Table t(MiniSchema());
    t.AppendUnchecked({data::Value("north"), data::Value(bmi)});
    auto result = query::GroupingSetsResult::Compute(t, MiniSpec());
    ASSERT_TRUE(result.ok());
    GsPartialMsg msg;
    msg.query_id = 1;
    msg.partition = partition;
    msg.vgroup = 0;
    msg.epoch = 0;
    msg.result = std::move(*result);
    ASSERT_TRUE(
        comp_dev->SendSealed(comb_dev->id(), kGsPartial, msg.Encode()).ok());
  };
  // Partition 1 completes: n=2 reached with {0, 1}; the combine fails on
  // the poison, evicts partition 0, and waits for a replacement.
  send_good(1, 10.0);
  sim_.RunUntil(10 * kSecond);
  EXPECT_FALSE(querier.has_result());
  EXPECT_EQ(combiner.partitions_complete(), 1u);  // poison evicted

  // The spare (partition 2) arrives and takes the evicted slot.
  send_good(2, 20.0);
  sim_.RunUntil(kMinute);

  ASSERT_TRUE(querier.has_result());
  EXPECT_EQ(querier.result().partitions, (std::vector<uint32_t>{1, 2}));
  auto avg_idx = querier.result().result.schema().IndexOf("AVG(bmi)");
  ASSERT_TRUE(avg_idx.ok());
  EXPECT_DOUBLE_EQ(querier.result().result.row(0)[*avg_idx].AsDouble(), 15.0);
}

TEST_F(ActorTest, CombinerRejectsOutOfRangeWireFields) {
  device::Device* comb_dev = NewDevice();
  device::Device* querier_dev = NewDevice();
  device::Device* comp_dev = NewDevice();
  QuerierActor querier(&sim_, querier_dev, 1);

  CombinerActor::Config cfg;
  cfg.query_id = 1;
  cfg.mode = CombinerActor::Mode::kGroupingSets;
  cfg.n_needed = 1;
  cfg.num_vgroups = 2;
  cfg.total_partitions = 2;
  cfg.gs_spec = MiniSpec();
  cfg.querier_targets = {querier_dev->id()};
  cfg.emit_at = kSimTimeNever;
  cfg.active_emit = true;
  cfg.result_resends = 0;
  cfg.replica = Singleton(comb_dev);
  CombinerActor combiner(&sim_, comb_dev, cfg);
  combiner.Start();

  auto send_partial = [&](uint32_t partition, uint32_t vgroup) {
    data::Table t(MiniSchema());
    t.AppendUnchecked({data::Value("north"), data::Value(10.0)});
    auto result = query::GroupingSetsResult::Compute(t, MiniSpec());
    ASSERT_TRUE(result.ok());
    GsPartialMsg msg;
    msg.query_id = 1;
    msg.partition = partition;
    msg.vgroup = vgroup;
    msg.epoch = 0;
    msg.result = std::move(*result);
    ASSERT_TRUE(
        comp_dev->SendSealed(comb_dev->id(), kGsPartial, msg.Encode()).ok());
  };
  // Two out-of-range vgroups for partition 0: before validation these two
  // distinct keys satisfied by_vgroup.size() == num_vgroups (completing
  // the partition with garbage) and then wrote epochs[5] out of bounds.
  send_partial(0, 5);
  send_partial(0, 7);
  // And a partial naming a partition the plan never deployed.
  send_partial(9, 0);
  sim_.RunUntil(30 * kSecond);
  EXPECT_FALSE(querier.has_result());
  EXPECT_EQ(combiner.partitions_complete(), 0u);

  // Honest partials still complete the partition and emit.
  send_partial(0, 0);
  send_partial(0, 1);
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(querier.has_result());
}

TEST_F(ActorTest, StandbyCombinerStopsResendsAfterYieldingLeadership) {
  device::Device* leader_dev = NewDevice();
  device::Device* standby_dev = NewDevice();
  device::Device* querier_dev = NewDevice();
  device::Device* comp_dev = NewDevice();
  QuerierActor querier(&sim_, querier_dev, 1);

  // leader_dev carries a bare ReplicaRole (rank 0); the combiner under
  // test is the rank-1 standby in Backup mode (only the leader emits).
  ReplicaRole::Config group;
  group.group_id = 1;
  group.members = {leader_dev->id(), standby_dev->id()};
  group.ping_period = 2 * kSecond;
  group.failover_timeout = 5 * kSecond;
  group.stop_at = 10 * kMinute;
  ReplicaRole leader_role(&sim_, leader_dev, group);
  leader_dev->set_message_handler([&leader_role](const net::Message& msg) {
    if (msg.type != kLeaderPing) return;
    auto ping = LeaderPingMsg::Decode(msg.payload);
    if (ping.ok()) leader_role.HandlePing(*ping);
  });
  leader_role.Start();

  CombinerActor::Config cfg;
  cfg.query_id = 1;
  cfg.mode = CombinerActor::Mode::kGroupingSets;
  cfg.n_needed = 1;
  cfg.num_vgroups = 1;
  cfg.gs_spec = MiniSpec();
  cfg.querier_targets = {querier_dev->id()};
  cfg.emit_at = kSimTimeNever;
  cfg.active_emit = false;  // Backup mode: leader-only emission
  cfg.result_resends = 3;
  cfg.resend_interval = 10 * kSecond;
  cfg.replica = group;
  CombinerActor standby(&sim_, standby_dev, cfg);
  standby.Start();

  // Leader goes dark; the standby promotes (~7 s), emits, and schedules
  // backoff resends at +10 s / +30 s / +70 s.
  sim_.ScheduleAt(kSecond,
                  [&]() { network_.SetOnline(leader_dev->id(), false); });
  data::Table t(MiniSchema());
  t.AppendUnchecked({data::Value("north"), data::Value(10.0)});
  auto partial = query::GroupingSetsResult::Compute(t, MiniSpec());
  ASSERT_TRUE(partial.ok());
  GsPartialMsg msg;
  msg.query_id = 1;
  msg.partition = 0;
  msg.vgroup = 0;
  msg.epoch = 0;
  msg.result = *partial;
  ASSERT_TRUE(
      comp_dev->SendSealed(standby_dev->id(), kGsPartial, msg.Encode()).ok());

  // The leader returns before the second resend: its pings make the
  // standby yield, and every still-scheduled resend must go quiet — the
  // old code kept firing them for as long as result_ready_ held.
  sim_.ScheduleAt(20 * kSecond,
                  [&]() { network_.SetOnline(leader_dev->id(), true); });
  sim_.RunUntil(5 * kMinute);

  ASSERT_TRUE(querier.has_result());
  EXPECT_FALSE(standby.replica_is_leader());
  // First emission (~7 s) plus the one resend (~17 s) that fired while
  // still leader; the +30 s / +70 s resends were suppressed.
  EXPECT_EQ(querier.duplicates(), 1u);
}

}  // namespace
}  // namespace edgelet::exec
