#include "query/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/generator.h"
#include "data/partition.h"
#include "query/groupby.h"

namespace edgelet::query {
namespace {

// Exact quantile of a sample, by sorting.
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::min<double>(q * values.size(), values.size() - 1));
  return values[rank];
}

TEST(QuantileSketchTest, EmptyFails) {
  QuantileSketch s;
  EXPECT_FALSE(s.Quantile(0.5).ok());
  EXPECT_EQ(s.count(), 0u);
}

TEST(QuantileSketchTest, ExactWhileUncompacted) {
  QuantileSketch s(128);
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(*s.Quantile(0.0), 1.0, 1.0);
  EXPECT_NEAR(*s.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(*s.Quantile(1.0), 100.0, 0.0);
}

TEST(QuantileSketchTest, ApproximatesLargeStreams) {
  QuantileSketch s(128);
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    double v = rng.NextGaussian(100, 15);
    values.push_back(v);
    s.Add(v);
  }
  EXPECT_LT(s.RetainedItems(), 3000u);  // actually sketching
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double exact = ExactQuantile(values, q);
    auto approx = s.Quantile(q);
    ASSERT_TRUE(approx.ok());
    // Rank error tolerance: compare by value with a generous band (the
    // distribution is smooth, so small rank error => small value error).
    EXPECT_NEAR(*approx, exact, 2.0) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeApproximatesUnion) {
  Rng rng(7);
  QuantileSketch a(128), b(128);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble(0, 1000);
    all.push_back(v);
    (i % 2 ? a : b).Add(v);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 20000u);
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(*a.Quantile(q), ExactQuantile(all, q), 25.0) << q;
  }
}

TEST(QuantileSketchTest, MergeWidthMismatchFails) {
  QuantileSketch a(64), b(128);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(QuantileSketchTest, SerializationRoundTrip) {
  QuantileSketch s(64);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) s.Add(rng.NextGaussian());
  Writer w;
  s.Serialize(&w);
  Reader r(w.data());
  auto back = QuantileSketch::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
  EXPECT_DOUBLE_EQ(*back->Quantile(0.5), *s.Quantile(0.5));
}

TEST(QuantileSketchTest, DeserializeRejectsCorruption) {
  Writer w;
  w.PutVarint(64);   // k
  w.PutVarint(10);   // count
  w.PutVarint(100);  // absurd level count
  Reader r(w.data());
  EXPECT_FALSE(QuantileSketch::Deserialize(&r).ok());
}

TEST(QuantileSketchTest, QuantileClamped) {
  QuantileSketch s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_TRUE(s.Quantile(-0.5).ok());
  EXPECT_TRUE(s.Quantile(1.5).ok());
}

// --- QUANTILE through the aggregation engine -------------------------------

TEST(QuantileAggregateTest, OutputNameEncodesRank) {
  AggregateSpec median{AggregateFunction::kQuantile, "bmi", 0.5};
  EXPECT_EQ(median.OutputName(), "Q50(bmi)");
  AggregateSpec p90{AggregateFunction::kQuantile, "bmi", 0.9};
  EXPECT_EQ(p90.OutputName(), "Q90(bmi)");
}

TEST(QuantileAggregateTest, SpecSerializationCarriesParameter) {
  AggregateSpec spec{AggregateFunction::kQuantile, "age", 0.75};
  Writer w;
  spec.Serialize(&w);
  Reader r(w.data());
  auto back = AggregateSpec::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, spec);
}

TEST(QuantileAggregateTest, MedianPerGroup) {
  data::Schema schema({{"g", data::ValueType::kString},
                       {"v", data::ValueType::kDouble}});
  data::Table t(schema);
  for (int i = 1; i <= 99; ++i) {
    ASSERT_TRUE(t.Append({data::Value("a"),
                          data::Value(static_cast<double>(i))}).ok());
  }
  GroupBySpec spec{{"g"}, {{AggregateFunction::kQuantile, "v", 0.5}}};
  auto agg = GroupedAggregation::Compute(t, spec);
  ASSERT_TRUE(agg.ok());
  data::Table out = agg->Finalize();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_NEAR(out.row(0)[1].AsDouble(), 50.0, 1.0);
  EXPECT_EQ(out.schema().column(1).name, "Q50(v)");
}

TEST(QuantileAggregateTest, MergeAcrossPartitionsStaysAccurate) {
  data::HealthDataParams params;
  params.num_individuals = 4000;
  data::Table table = data::GenerateHealthData(params, 21);
  GroupBySpec spec{{}, {{AggregateFunction::kQuantile, "bmi", 0.5}}};

  auto exact_values = table.NumericColumn("bmi");
  ASSERT_TRUE(exact_values.ok());
  double exact = ExactQuantile(*exact_values, 0.5);

  auto parts = data::PartitionByHash(table, "contributor_id", 8);
  ASSERT_TRUE(parts.ok());
  GroupedAggregation merged;
  for (const auto& p : *parts) {
    auto partial = GroupedAggregation::Compute(p, spec);
    ASSERT_TRUE(partial.ok());
    ASSERT_TRUE(merged.Merge(*partial).ok());
  }
  data::Table out = merged.Finalize();
  EXPECT_NEAR(out.row(0)[0].AsDouble(), exact, 0.5);
}

TEST(QuantileAggregateTest, NullIgnoredStringFails) {
  AggregateState s;
  ASSERT_TRUE(s.AddQuantile(data::Value::Null()).ok());
  EXPECT_TRUE(s.Finalize(AggregateFunction::kQuantile).is_null());
  EXPECT_FALSE(s.AddQuantile(data::Value("oops")).ok());
}

TEST(QuantileAggregateTest, StateSerializationCarriesSketch) {
  AggregateState s;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        s.AddQuantile(data::Value(static_cast<double>(i))).ok());
  }
  Writer w;
  s.Serialize(&w);
  Reader r(w.data());
  auto back = AggregateState::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

}  // namespace
}  // namespace edgelet::query
