#include "core/framework.h"

#include <gtest/gtest.h>

#include <set>

namespace edgelet::core {
namespace {

using exec::Strategy;
using query::AggregateFunction;
using query::CompareOp;
using query::QueryKind;

query::Query HealthSurveyQuery(uint64_t id = 1) {
  query::Query q;
  q.query_id = id;
  q.name = "health survey";
  q.kind = QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 40;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"sex"}},
      {{AggregateFunction::kCount, "*"}, {AggregateFunction::kAvg, "bmi"}}};
  return q;
}

query::Query ClusteringQuery(uint64_t id = 2) {
  query::Query q;
  q.query_id = id;
  q.name = "dependency clustering";
  q.kind = QueryKind::kKMeans;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 60;
  q.kmeans.k = 3;
  q.kmeans.features = {"bmi", "systolic_bp"};
  q.kmeans.cluster_aggregates = {{AggregateFunction::kAvg, "dependency"}};
  return q;
}

FrameworkConfig StableConfig(uint64_t seed = 1) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 120;
  cfg.fleet.num_processors = 40;
  cfg.fleet.enable_churn = false;  // isolate from disconnections
  cfg.network.drop_probability = 0.0;
  cfg.seed = seed;
  return cfg;
}

exec::ExecutionConfig QuickExecution(uint64_t seed = 1) {
  exec::ExecutionConfig cfg;
  cfg.collection_window = 60 * kSecond;
  cfg.deadline = 10 * kMinute;
  cfg.combiner_margin = 60 * kSecond;
  cfg.heartbeat_period = 20 * kSecond;
  cfg.num_heartbeats = 6;
  cfg.inject_failures = false;
  cfg.seed = seed;
  return cfg;
}

// --- Planner --------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : framework_(StableConfig()) {
    EXPECT_TRUE(framework_.Init().ok());
  }
  EdgeletFramework framework_;
};

TEST_F(PlannerTest, HorizontalPartitioningFromExposureCap) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->n, 4);  // ceil(40 / 10)
  EXPECT_EQ(d->quota, 10u);
  EXPECT_GT(d->m, 0);  // default 5% failure presumption needs overcollection
}

TEST_F(PlannerTest, NoCapMeansSinglePartition) {
  auto d = framework_.Plan(HealthSurveyQuery(), {}, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->n, 1);
  EXPECT_EQ(d->quota, 40u);
}

TEST_F(PlannerTest, OvercollectionGrowsWithFailureProbability) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  resilience::ResilienceConfig low{0.02, 0.99};
  resilience::ResilienceConfig high{0.25, 0.99};
  auto dl = framework_.Plan(HealthSurveyQuery(), privacy, low,
                            Strategy::kOvercollection);
  auto dh = framework_.Plan(HealthSurveyQuery(), privacy, high,
                            Strategy::kOvercollection);
  ASSERT_TRUE(dl.ok() && dh.ok());
  EXPECT_LT(dl->m, dh->m);
}

TEST_F(PlannerTest, SeparationConstraintSplitsVerticalGroups) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  privacy.separation = {{"region", "sex"}};
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->vgroup_columns.size(), 2u);
  for (const auto& group : d->vgroup_columns) {
    EXPECT_FALSE(privacy::ViolatesSeparation(group, privacy.separation));
  }
  // Each grouping set is computed by exactly one vertical group.
  std::set<size_t> sets_covered;
  for (const auto& indices : d->vgroup_set_indices) {
    sets_covered.insert(indices.begin(), indices.end());
  }
  EXPECT_EQ(sets_covered.size(), 2u);
}

TEST_F(PlannerTest, ImpossibleSeparationFailsPlanning) {
  PrivacyConfig privacy;
  privacy.separation = {{"region", "bmi"}};  // AVG(bmi) BY region needs both
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
}

TEST_F(PlannerTest, KMeansRefusesSeparatedFeatures) {
  PrivacyConfig privacy;
  privacy.separation = {{"bmi", "systolic_bp"}};
  auto d = framework_.Plan(ClusteringQuery(), privacy, {},
                           Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
}

TEST_F(PlannerTest, BackupStrategySizesReplicas) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 2
  resilience::ResilienceConfig resilience{0.1, 0.99};
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, resilience,
                           Strategy::kBackup);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->m, 0);
  EXPECT_GT(d->sb_groups[0][0].size(), 1u);  // replicated operators
  EXPECT_EQ(d->combiner_group.size(), d->sb_groups[0][0].size());
}

TEST_F(PlannerTest, OvercollectionUsesSingletonGroupsAndActiveBackup) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  for (const auto& partition : d->sb_groups) {
    for (const auto& group : partition) EXPECT_EQ(group.size(), 1u);
  }
  EXPECT_EQ(d->combiner_group.size(), 2u);  // Combiner + Active Backup
}

TEST_F(PlannerTest, DistinctDevicesPerOperator) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  std::set<net::NodeId> seen;
  auto check = [&seen](net::NodeId id) {
    EXPECT_TRUE(seen.insert(id).second) << "device reused: " << id;
  };
  for (const auto& p : d->sb_groups) {
    for (const auto& g : p) {
      for (auto id : g) check(id);
    }
  }
  for (const auto& p : d->computer_groups) {
    for (const auto& g : p) {
      for (auto id : g) check(id);
    }
  }
  for (auto id : d->combiner_group) check(id);
}

TEST_F(PlannerTest, PoolTooSmallFails) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 1;  // n = 40 partitions
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlannerTest, QepShapeMatchesFigure3) {
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = framework_.Plan(HealthSurveyQuery(), privacy, {},
                           Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  const query::Qep& qep = d->qep;
  EXPECT_TRUE(qep.Validate().ok());
  EXPECT_EQ(qep.CountByRole(query::OperatorRole::kSnapshotBuilder),
            static_cast<size_t>(d->n + d->m));
  EXPECT_EQ(qep.CountByRole(query::OperatorRole::kCombiner), 1u);
  EXPECT_EQ(qep.CountByRole(query::OperatorRole::kCombinerBackup), 1u);
  EXPECT_EQ(qep.CountByRole(query::OperatorRole::kQuerier), 1u);
  EXPECT_EQ(qep.CountByRole(query::OperatorRole::kDataContributor), 120u);
}

TEST_F(PlannerTest, ExposureDropsWithHorizontalPartitioning) {
  PrivacyConfig coarse;
  coarse.max_tuples_per_edgelet = 40;
  PrivacyConfig fine;
  fine.max_tuples_per_edgelet = 5;
  auto dc = framework_.Plan(HealthSurveyQuery(), coarse, {},
                            Strategy::kOvercollection);
  auto df = framework_.Plan(HealthSurveyQuery(), fine, {},
                            Strategy::kOvercollection);
  ASSERT_TRUE(dc.ok() && df.ok());
  auto ec = Planner::Exposure(*dc);
  auto ef = Planner::Exposure(*df);
  EXPECT_GT(ec.max_tuples_per_edgelet, ef.max_tuples_per_edgelet);
}

// --- End-to-end executions ---------------------------------------------------

TEST(FrameworkTest, InitBuildsPopulationAndFleet) {
  EdgeletFramework fw(StableConfig());
  ASSERT_TRUE(fw.Init().ok());
  EXPECT_EQ(fw.population().num_rows(), 120u);
  EXPECT_EQ(fw.fleet()->contributors().size(), 120u);
  EXPECT_NE(fw.querier_node(), 0u);
  // Double init rejected.
  EXPECT_FALSE(fw.Init().ok());
}

TEST(FrameworkTest, GroupingSetsEndToEndNoFailures) {
  EdgeletFramework fw(StableConfig(11));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = fw.Plan(q, privacy, {}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  auto report = fw.Execute(*d, QuickExecution(11));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->success);
  EXPECT_LT(report->completion_time, 10 * kMinute);
  EXPECT_EQ(report->partitions_used.size(), static_cast<size_t>(d->n));
  // Each vertical chain's snapshot covers exactly C = n * quota rows.
  ASSERT_EQ(report->snapshot_contributors_by_vgroup.size(),
            d->vgroup_columns.size());
  EXPECT_EQ(report->snapshot_contributors_by_vgroup[0].size(),
            static_cast<size_t>(d->n) * d->quota);
  EXPECT_FALSE(report->result.empty());

  // Validity: distributed == centralized over the same snapshot.
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok()) << validity.status().ToString();
  EXPECT_TRUE(validity->valid) << validity->detail;
  EXPECT_GT(validity->rows_compared, 0u);
}

TEST(FrameworkTest, GroupingSetsWithVerticalPartitioning) {
  EdgeletFramework fw(StableConfig(13));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  privacy.separation = {{"region", "sex"}};
  auto d = fw.Plan(q, privacy, {}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d->vgroup_columns.size(), 2u);

  auto report = fw.Execute(*d, QuickExecution(13));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success);
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FrameworkTest, SurvivesFailuresWithinPresumption) {
  EdgeletFramework fw(StableConfig(17));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  resilience::ResilienceConfig resilience{0.15, 0.995};
  auto d = fw.Plan(q, privacy, resilience, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  exec::ExecutionConfig ec = QuickExecution(17);
  ec.inject_failures = true;
  ec.failure_probability = 0.15;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->success);
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FrameworkTest, FailsWithoutOvercollectionOnSingleEarlyFailure) {
  EdgeletFramework fw(StableConfig(19));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  // Plan for a benign world (m == 0)...
  resilience::ResilienceConfig optimistic{0.0, 0.5};
  auto d = fw.Plan(q, privacy, optimistic, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->m, 0);

  // ...then lose one snapshot builder before it can finish: with m = 0
  // every partition is a single point of failure.
  net::NodeId victim = d->sb_groups[0][0][0];
  fw.sim()->ScheduleAt(fw.sim()->now() + 1 * kSecond,
                       [&fw, victim]() { fw.network()->Kill(victim); });
  auto report = fw.Execute(*d, QuickExecution(19));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);

  // The same single failure is absorbed once the plan overcollects.
  EdgeletFramework fw2(StableConfig(19));
  ASSERT_TRUE(fw2.Init().ok());
  resilience::ResilienceConfig guarded{0.1, 0.99};
  auto d2 = fw2.Plan(q, privacy, guarded, Strategy::kOvercollection);
  ASSERT_TRUE(d2.ok());
  ASSERT_GT(d2->m, 0);
  net::NodeId victim2 = d2->sb_groups[0][0][0];
  fw2.sim()->ScheduleAt(fw2.sim()->now() + 1 * kSecond,
                        [&fw2, victim2]() { fw2.network()->Kill(victim2); });
  auto report2 = fw2.Execute(*d2, QuickExecution(19));
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->success);
}

TEST(FrameworkTest, BackupStrategyEndToEnd) {
  EdgeletFramework fw(StableConfig(23));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 2
  resilience::ResilienceConfig resilience{0.1, 0.99};
  auto d = fw.Plan(q, privacy, resilience, Strategy::kBackup);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  auto report = fw.Execute(*d, QuickExecution(23));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success);
  EXPECT_EQ(report->strategy, Strategy::kBackup);
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FrameworkTest, BackupStrategyFailsOverOnLeaderDeath) {
  EdgeletFramework fw(StableConfig(29));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 2
  resilience::ResilienceConfig resilience{0.1, 0.99};
  auto d = fw.Plan(q, privacy, resilience, Strategy::kBackup);
  ASSERT_TRUE(d.ok());
  ASSERT_GT(d->sb_groups[0][0].size(), 1u);

  // Assassinate the rank-0 snapshot builder of partition 0 early, before
  // the snapshot completes.
  net::NodeId victim = d->sb_groups[0][0][0];
  fw.sim()->ScheduleAt(fw.sim()->now() + 5 * kSecond,
                       [&fw, victim]() { fw.network()->Kill(victim); });

  auto report = fw.Execute(*d, QuickExecution(29));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->success);  // a standby replica took over
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FrameworkTest, KMeansEndToEnd) {
  EdgeletFramework fw(StableConfig(31));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = ClusteringQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 3
  auto d = fw.Plan(q, privacy, {}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  auto report = fw.Execute(*d, QuickExecution(31));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success);
  // Result: one row per cluster with centroid coordinates and aggregates.
  EXPECT_EQ(report->result.num_rows(), 3u);
  EXPECT_TRUE(report->result.schema().Contains("centroid_bmi"));
  EXPECT_TRUE(report->result.schema().Contains("AVG(dependency)"));

  // Accuracy: distributed centroids must be close to a centralized run on
  // all qualifying points.
  auto central = fw.CentralizedKMeans(q);
  ASSERT_TRUE(central.ok());
  auto points = fw.QualifyingPoints(q);
  ASSERT_TRUE(points.ok());

  ml::Matrix distributed;
  auto bmi_idx = report->result.schema().IndexOf("centroid_bmi");
  auto bp_idx = report->result.schema().IndexOf("centroid_systolic_bp");
  ASSERT_TRUE(bmi_idx.ok() && bp_idx.ok());
  for (const auto& row : report->result.rows()) {
    distributed.push_back(
        {row[*bmi_idx].AsDouble(), row[*bp_idx].AsDouble()});
  }
  auto ratio = ml::InertiaRatio(*points, distributed, central->centroids);
  ASSERT_TRUE(ratio.ok());
  EXPECT_LT(*ratio, 1.5) << "distributed clustering too far from central";
}

TEST(FrameworkTest, KMeansDegradesGracefullyUnderMessageLoss) {
  // Overcollection inflates the crowd requirement to ~(n+m)/n * C, so the
  // population must be large enough for every partition to fill its quota
  // even with 15% message loss.
  FrameworkConfig cfg = StableConfig(37);
  cfg.fleet.num_contributors = 400;
  cfg.fleet.num_processors = 80;
  cfg.network.drop_probability = 0.15;  // lossy links
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = ClusteringQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;
  resilience::ResilienceConfig resilience{0.3, 0.99};
  auto d = fw.Plan(q, privacy, resilience, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto report = fw.Execute(*d, QuickExecution(37));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Heartbeat progression means a result is still produced.
  EXPECT_TRUE(report->success);
}

TEST(FrameworkTest, SequentialQueriesOnOneFleet) {
  EdgeletFramework fw(StableConfig(41));
  ASSERT_TRUE(fw.Init().ok());
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  for (uint64_t qid = 1; qid <= 2; ++qid) {
    query::Query q = HealthSurveyQuery(qid);
    auto d = fw.Plan(q, privacy, {}, Strategy::kOvercollection);
    ASSERT_TRUE(d.ok());
    auto report = fw.Execute(*d, QuickExecution(41 + qid));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->success) << "query " << qid;
  }
}

TEST(FrameworkTest, ReportsExposureAndTraffic) {
  EdgeletFramework fw(StableConfig(43));
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = HealthSurveyQuery();
  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = fw.Plan(q, privacy, {}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  auto report = fw.Execute(*d, QuickExecution(43));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->success);
  EXPECT_GT(report->messages_sent, 0u);
  EXPECT_GT(report->bytes_sent, 0u);
  // Observed exposure never exceeds what a builder legitimately collects:
  // contributions can arrive beyond the quota, but they are dropped; the
  // recorded ceiling stays within a small multiple of the quota.
  EXPECT_GT(report->max_observed_exposure_tuples, 0u);
}

TEST(CompareResultTablesTest, DetectsMismatches) {
  data::Schema schema({{"k", data::ValueType::kString},
                       {"v", data::ValueType::kDouble}});
  data::Table a(schema), b(schema), c(schema), d(schema);
  ASSERT_TRUE(a.Append({data::Value("x"), data::Value(1.0)}).ok());
  ASSERT_TRUE(b.Append({data::Value("x"), data::Value(1.0 + 1e-12)}).ok());
  ASSERT_TRUE(c.Append({data::Value("x"), data::Value(2.0)}).ok());
  ASSERT_TRUE(d.Append({data::Value("y"), data::Value(1.0)}).ok());

  EXPECT_TRUE(CompareResultTables(a, b).valid);   // within tolerance
  EXPECT_FALSE(CompareResultTables(a, c).valid);  // numeric mismatch
  EXPECT_FALSE(CompareResultTables(a, d).valid);  // key mismatch
  data::Table empty(schema);
  EXPECT_FALSE(CompareResultTables(a, empty).valid);  // row count
}

}  // namespace
}  // namespace edgelet::core
