#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace edgelet {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i]() { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto a = pool.Submit([]() { return 21 * 2; });
  auto b = pool.Submit([]() { return std::string("edgelet"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "edgelet");
}

TEST(ThreadPoolTest, ResultsKeepSubmissionIdentity) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
  }  // destructor must wait for all 50, not just in-flight ones
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&order, i]() { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace edgelet
