// The standing correctness gate behind all perf work: sweep fault kinds ×
// rates × strategies under the deterministic chaos injector and assert the
// paper's validity invariant — every *successful* execution is *valid*
// (equivalent to a centralized run over the recorded crowd sample); faults
// may only ever push a trial into failed-safe. Also pins the two
// regression scenarios this subsystem was built to catch: the combiner
// wedge on a poisoned partial merge, and chaos replay determinism across
// parsim shard counts.

#include <gtest/gtest.h>

#include <vector>

#include "chaos/chaos.h"
#include "core/framework.h"
#include "core/validity_oracle.h"
#include "exec/protocol.h"

namespace edgelet::core {
namespace {

using chaos::ChaosConfig;
using chaos::ChaosInjector;
using chaos::FaultKind;
using chaos::FaultKindName;
using exec::Strategy;
using query::AggregateFunction;

query::Query MiniQuery(uint64_t id = 1) {
  query::Query q;
  q.query_id = id;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 20;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};
  return q;
}

FrameworkConfig SmallFleet(uint64_t seed) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 60;
  cfg.fleet.num_processors = 24;
  cfg.fleet.enable_churn = false;
  cfg.seed = seed;
  return cfg;
}

exec::ExecutionConfig QuickExec() {
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 4 * kMinute;
  ec.inject_failures = false;
  return ec;
}

// Runs one (kind, rate, strategy) cell and returns the oracle verdict.
TrialVerdict RunCell(FaultKind kind, double rate, Strategy strategy) {
  EdgeletFramework fw(SmallFleet(/*seed=*/17));
  EXPECT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, strategy);
  EXPECT_TRUE(d.ok());
  ChaosInjector injector(
      chaos::MakeFaultScenario(kind, /*seed=*/1234, rate));
  injector.AttachTo(fw.network());
  auto report = fw.Execute(*d, QuickExec());
  injector.Detach();
  EXPECT_TRUE(report.ok());
  ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  EXPECT_TRUE(audit.ok()) << audit.status().ToString();
  if (!audit.ok()) return TrialVerdict::kFailedSafe;
  return audit->verdict;
}

TEST(ChaosMatrixTest, EverySuccessfulExecutionIsValid) {
  const FaultKind kKinds[] = {FaultKind::kDrop, FaultKind::kBurst,
                              FaultKind::kDuplicate, FaultKind::kDelay,
                              FaultKind::kCorrupt};
  const double kRates[] = {0.05, 0.15, 0.30};
  const Strategy kStrategies[] = {Strategy::kOvercollection,
                                  Strategy::kBackup};
  int valid = 0, failed_safe = 0;
  for (FaultKind kind : kKinds) {
    for (double rate : kRates) {
      for (Strategy strategy : kStrategies) {
        TrialVerdict verdict = RunCell(kind, rate, strategy);
        EXPECT_NE(verdict, TrialVerdict::kInvalid)
            << "successful-but-invalid execution under fault kind "
            << FaultKindName(kind) << " at rate " << rate << " with strategy "
            << exec::StrategyName(strategy);
        (verdict == TrialVerdict::kValid ? valid : failed_safe)++;
      }
    }
  }
  // The matrix must not be vacuous: the framework rides out a healthy
  // share of these fault schedules (resends + overcollection + backup).
  EXPECT_GE(valid, 10) << valid << " valid / " << failed_safe
                       << " failed-safe of 30 cells";
}

// The bug this PR fixes: a partial whose GroupingSets spec cannot merge
// used to wedge the combiner forever (combining_ never reset), so the m
// spare partitions Overcollection pays for were unreachable and the
// execution timed out. With eviction + retry the spare completes the
// result, and the delivered answer still matches the centralized rerun.
TEST(ChaosMatrixTest, PoisonedPartialMergeRecoversThroughSparePartition) {
  EdgeletFramework fw(SmallFleet(/*seed=*/3));
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_GE(d->m, 1) << "scenario needs at least one spare partition";

  // A poisoned partial: correct query id, in-range partition/vgroup, but a
  // GroupingSets spec that cannot merge with the deployed one. Crafted by
  // a (compromised) processor device and sealed like any honest partial.
  query::GroupingSetsSpec poison_spec{
      {{}}, {{AggregateFunction::kCount, "*"}}};
  data::Table t(data::Schema({{"x", data::ValueType::kInt64}}));
  t.AppendUnchecked({data::Value(int64_t{1})});
  auto poison = query::GroupingSetsResult::Compute(t, poison_spec);
  ASSERT_TRUE(poison.ok());
  exec::GsPartialMsg msg;
  msg.query_id = d->query.query_id;
  msg.partition = 0;
  msg.vgroup = 0;
  msg.epoch = 0;
  msg.result = *poison;
  Bytes payload = msg.Encode();

  // Deliver the poison to EVERY combiner (Combiner + Active Backup) early,
  // before any honest partial: partition 0 "completes" with the poison on
  // both, so without eviction both wedge and nothing reaches the querier.
  device::Device* sender = fw.fleet()->by_node(d->combiner_group[0]);
  ASSERT_NE(sender, nullptr);
  for (net::NodeId combiner : d->combiner_group) {
    fw.sim()->ScheduleAt(
        sender->id(), 2 * kSecond, [sender, combiner, payload]() {
          (void)sender->SendSealed(combiner, exec::kGsPartial, payload);
        });
  }

  auto report = fw.Execute(*d, QuickExec());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success)
      << "combiner wedged: spare partition was never consumed";
  // The poisoned partition must not appear in the merged set.
  for (uint32_t p : report->partitions_used) EXPECT_NE(p, 0u);
  ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->verdict, TrialVerdict::kValid) << audit->detail;
}

// Chaos replay determinism: a fixed chaos seed must produce bit-identical
// executions under the serial engine and parsim at any shard count — the
// injector draws only from per-sender counter-based streams, in the
// sender's event context.
TEST(ChaosMatrixTest, ChaosScenarioIsShardCountInvariant) {
  auto fingerprint = [](size_t shards) {
    FrameworkConfig cfg = SmallFleet(/*seed=*/11);
    cfg.sim_shards = shards;
    EdgeletFramework fw(cfg);
    EXPECT_TRUE(fw.Init().ok());
    auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
    EXPECT_TRUE(d.ok());
    ChaosConfig cc = chaos::MakeFaultScenario(FaultKind::kDrop,
                                              /*seed=*/777, /*rate=*/0.2);
    cc.duplicate_probability = 0.15;
    cc.delay_spike_probability = 0.1;
    ChaosInjector injector(cc);
    injector.AttachTo(fw.network());
    auto report = fw.Execute(*d, QuickExec());
    injector.Detach();
    EXPECT_TRUE(report.ok());
    return exec::ReportFingerprint(*report);
  };
  uint64_t serial = fingerprint(1);
  EXPECT_EQ(fingerprint(2), serial);
  EXPECT_EQ(fingerprint(4), serial);
}

}  // namespace
}  // namespace edgelet::core
