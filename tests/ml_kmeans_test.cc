#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "data/partition.h"
#include "ml/metrics.h"

namespace edgelet::ml {
namespace {

// Three well-separated 2-D blobs.
Matrix Blobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  Matrix points;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + rng.NextGaussian() * 0.5,
                        centers[b][1] + rng.NextGaussian() * 0.5});
    }
  }
  return points;
}

TEST(KMeansTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(KMeansTest, ExtractPoints) {
  data::HealthDataParams params;
  params.num_individuals = 50;
  data::Table t = data::GenerateHealthData(params, 2);
  auto points = ExtractPoints(t, {"age", "bmi"});
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 50u);
  EXPECT_EQ((*points)[0].size(), 2u);
  EXPECT_FALSE(ExtractPoints(t, {"sex"}).ok());  // non-numeric
  EXPECT_FALSE(ExtractPoints(t, {"ghost"}).ok());
}

TEST(KMeansTest, PlusPlusInitPicksDistinctSpreadCentroids) {
  Matrix points = Blobs(50, 1);
  Rng rng(5);
  auto centroids = KMeansPlusPlusInit(points, 3, &rng);
  ASSERT_TRUE(centroids.ok());
  EXPECT_EQ(centroids->size(), 3u);
  // Spread: pairwise distance should be large (one per blob with high
  // probability thanks to D^2 weighting).
  double min_pair = 1e18;
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      min_pair = std::min(min_pair,
                          SquaredDistance((*centroids)[i], (*centroids)[j]));
    }
  }
  EXPECT_GT(min_pair, 25.0);
}

TEST(KMeansTest, PlusPlusHandlesDegenerateInputs) {
  Rng rng(1);
  Matrix identical(10, {1.0, 2.0});
  auto c = KMeansPlusPlusInit(identical, 3, &rng);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 3u);
  EXPECT_FALSE(KMeansPlusPlusInit({}, 2, &rng).ok());
  EXPECT_FALSE(KMeansPlusPlusInit(identical, 0, &rng).ok());
}

TEST(KMeansTest, LloydStepReducesInertia) {
  Matrix points = Blobs(100, 3);
  Rng rng(7);
  auto init = KMeansPlusPlusInit(points, 3, &rng);
  ASSERT_TRUE(init.ok());
  auto s1 = RunLloydStep(points, *init);
  ASSERT_TRUE(s1.ok());
  auto s2 = RunLloydStep(points, s1->knowledge.centroids);
  ASSERT_TRUE(s2.ok());
  EXPECT_LE(s2->inertia, s1->inertia + 1e-9);
}

TEST(KMeansTest, LloydCountsSumToPoints) {
  Matrix points = Blobs(40, 9);
  Rng rng(11);
  auto init = KMeansPlusPlusInit(points, 3, &rng);
  ASSERT_TRUE(init.ok());
  auto step = RunLloydStep(points, *init);
  ASSERT_TRUE(step.ok());
  uint64_t total = 0;
  for (uint64_t c : step->knowledge.counts) total += c;
  EXPECT_EQ(total, points.size());
}

TEST(KMeansTest, EmptyClusterKeepsCentroid) {
  Matrix points = {{0, 0}, {0.1, 0}};
  Matrix centroids = {{0, 0}, {100, 100}};  // second gets nothing
  auto step = RunLloydStep(points, centroids);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->knowledge.counts[1], 0u);
  EXPECT_EQ(step->knowledge.centroids[1], (std::vector<double>{100, 100}));
}

TEST(KMeansTest, FullRunRecoversBlobs) {
  Matrix points = Blobs(100, 13);
  KMeansConfig config;
  config.k = 3;
  config.seed = 4;
  auto result = RunKMeans(points, config);
  ASSERT_TRUE(result.ok());
  auto inertia = Inertia(points, result->centroids);
  ASSERT_TRUE(inertia.ok());
  // Blobs have sigma 0.5 in 2D: per-point E[d^2] ~ 0.5, total ~150.
  EXPECT_LT(*inertia, 400.0);
  // Each recovered centroid is near one of the true centers.
  Matrix truth = {{0, 0}, {10, 10}, {-10, 10}};
  auto rmse = MatchedCentroidRmse(result->centroids, truth);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 0.5);
}

TEST(KMeansTest, DeterministicForSeed) {
  Matrix points = Blobs(60, 17);
  KMeansConfig config;
  config.k = 3;
  config.seed = 21;
  auto a = RunKMeans(points, config);
  auto b = RunKMeans(points, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(KMeansTest, MergeKnowledgeWeightedBarycenter) {
  KMeansKnowledge a{{{0.0, 0.0}}, {10}};
  KMeansKnowledge b{{{10.0, 10.0}}, {30}};
  auto merged = MergeKnowledge({a, b});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->centroids[0][0], 7.5);
  EXPECT_EQ(merged->counts[0], 40u);
}

TEST(KMeansTest, MergeHandlesZeroWeights) {
  KMeansKnowledge a{{{5.0, 5.0}}, {0}};
  KMeansKnowledge b{{{9.0, 9.0}}, {0}};
  auto merged = MergeKnowledge({a, b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->centroids[0], (std::vector<double>{5.0, 5.0}));
}

TEST(KMeansTest, MergeShapeMismatchFails) {
  KMeansKnowledge a{{{1.0, 2.0}}, {1}};
  KMeansKnowledge b{{{1.0, 2.0}, {3.0, 4.0}}, {1, 1}};
  EXPECT_FALSE(MergeKnowledge({a, b}).ok());
  EXPECT_FALSE(MergeKnowledge({}).ok());
}

TEST(KMeansTest, KnowledgeSerializationRoundTrip) {
  KMeansKnowledge k{{{1.5, -2.5}, {3.0, 4.0}}, {7, 9}};
  Writer w;
  k.Serialize(&w);
  Reader r(w.data());
  auto back = KMeansKnowledge::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, k);
}

// The federated property the paper's execution relies on: one global Lloyd
// step == merging per-partition Lloyd steps computed from the SAME
// centroids.
TEST(KMeansTest, DistributedLloydStepEqualsCentralized) {
  Matrix points = Blobs(80, 23);
  Rng rng(3);
  auto init = KMeansPlusPlusInit(points, 3, &rng);
  ASSERT_TRUE(init.ok());

  auto central = RunLloydStep(points, *init);
  ASSERT_TRUE(central.ok());

  // Split points into 4 arbitrary partitions.
  std::vector<Matrix> parts(4);
  for (size_t i = 0; i < points.size(); ++i) {
    parts[i % 4].push_back(points[i]);
  }
  std::vector<KMeansKnowledge> partials;
  for (const auto& p : parts) {
    auto step = RunLloydStep(p, *init);
    ASSERT_TRUE(step.ok());
    partials.push_back(step->knowledge);
  }
  auto merged = MergeKnowledge(partials);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->centroids.size(), central->knowledge.centroids.size());
  for (size_t c = 0; c < merged->centroids.size(); ++c) {
    EXPECT_EQ(merged->counts[c], central->knowledge.counts[c]);
    for (size_t d = 0; d < merged->centroids[c].size(); ++d) {
      EXPECT_NEAR(merged->centroids[c][d],
                  central->knowledge.centroids[c][d], 1e-9);
    }
  }
}

TEST(KMeansTest, AssignFindsNearest) {
  Matrix centroids = {{0, 0}, {10, 0}};
  auto a = Assign({{1, 0}, {9, 0}, {4.9, 0}, {5.1, 0}}, centroids);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{0, 1, 0, 1}));
}

TEST(KMeansTest, AssignValidatesInputs) {
  EXPECT_FALSE(Assign({{1, 2}}, {}).ok());
  EXPECT_FALSE(Assign({{1, 2, 3}}, {{1, 2}}).ok());
}

// --- Metrics -----------------------------------------------------------------

TEST(HungarianTest, IdentityAssignment) {
  Matrix cost = {{0, 9, 9}, {9, 0, 9}, {9, 9, 0}};
  auto a = HungarianAssign(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, PermutedAssignment) {
  Matrix cost = {{9, 0, 9}, {9, 9, 0}, {0, 9, 9}};
  auto a = HungarianAssign(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{1, 2, 0}));
}

TEST(HungarianTest, MinimizesTotalCost) {
  Matrix cost = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  auto a = HungarianAssign(cost);
  ASSERT_TRUE(a.ok());
  double total = 0;
  for (int i = 0; i < 3; ++i) total += cost[i][(*a)[i]];
  EXPECT_DOUBLE_EQ(total, 5.0);  // 1 + 2 + 2
}

TEST(HungarianTest, RejectsBadMatrices) {
  EXPECT_FALSE(HungarianAssign({}).ok());
  EXPECT_FALSE(HungarianAssign({{1, 2}, {3}}).ok());
}

TEST(MetricsTest, MatchedRmseInvariantToPermutation) {
  Matrix a = {{0, 0}, {10, 10}};
  Matrix b = {{10, 10}, {0, 0}};  // same set, swapped
  auto rmse = MatchedCentroidRmse(a, b);
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, 0.0, 1e-12);
}

TEST(MetricsTest, MatchedRmseMeasuresDrift) {
  Matrix a = {{0, 0}};
  Matrix b = {{3, 4}};
  auto rmse = MatchedCentroidRmse(a, b);
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, 5.0 / std::sqrt(2.0), 1e-9);
}

TEST(MetricsTest, InertiaRatioAtLeastOneForWorseCentroids) {
  Matrix points = Blobs(60, 29);
  KMeansConfig config;
  config.k = 3;
  auto good = RunKMeans(points, config);
  ASSERT_TRUE(good.ok());
  Matrix bad = {{0, 0}, {1, 0}, {0, 1}};  // all near one blob
  auto ratio = InertiaRatio(points, bad, good->centroids);
  ASSERT_TRUE(ratio.ok());
  EXPECT_GT(*ratio, 1.0);
}

TEST(MetricsTest, RandIndex) {
  EXPECT_DOUBLE_EQ(*RandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(*RandIndex({0, 1, 0, 1}, {0, 0, 1, 1}), 1.0 / 3.0);
  EXPECT_FALSE(RandIndex({0}, {0, 1}).ok());
  EXPECT_DOUBLE_EQ(*RandIndex({0}, {5}), 1.0);
}

}  // namespace
}  // namespace edgelet::ml
