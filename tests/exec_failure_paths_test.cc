// Negative-path coverage: executions and plans that must fail cleanly, and
// degraded runs that must degrade the way the paper predicts.

#include <gtest/gtest.h>

#include "core/framework.h"

namespace edgelet::core {
namespace {

using exec::Strategy;
using query::AggregateFunction;
using query::CompareOp;

query::Query MiniQuery(uint64_t id = 1) {
  query::Query q;
  q.query_id = id;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 20;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};
  return q;
}

TEST(FailurePathsTest, ExecuteBeforeInitFails) {
  FrameworkConfig cfg;
  EdgeletFramework fw(cfg);
  exec::Deployment empty;
  EXPECT_FALSE(fw.Execute(empty, {}).ok());
  EXPECT_FALSE(fw.Plan(MiniQuery(), {}, {}, Strategy::kOvercollection).ok());
}

TEST(FailurePathsTest, ImpossibleReliabilityTargetFailsPlanning) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 50;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  // 90% failure probability with a 0.999999 target: unreachable within the
  // processor pool (and within max_m).
  resilience::ResilienceConfig impossible{0.9, 0.999999};
  auto d = fw.Plan(MiniQuery(), {}, impossible, Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
}

TEST(FailurePathsTest, CrowdTooSmallMissesDeadline) {
  // Only 10 qualifying contributors for a snapshot of 20: no partition can
  // ever fill its quota, so the query must time out (not crash, not
  // deliver an undersized snapshot).
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 10;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->completion_time, kSimTimeNever);
  EXPECT_TRUE(report->result.empty());
}

TEST(FailurePathsTest, NoQualifyingContributorsTimesOut) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 50;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = MiniQuery();
  // Impossible predicate: nobody is older than 200.
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{200})}};
  auto d = fw.Plan(q, {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->contributors_participating, 0u);
}

TEST(FailurePathsTest, BothCombinersDeadMeansNoResult) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 3;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->combiner_group.size(), 2u);
  // Kill the Combiner AND its Active Backup before anything completes.
  for (net::NodeId id : d->combiner_group) {
    fw.sim()->ScheduleAt(fw.sim()->now() + kSecond,
                         [&fw, id]() { fw.network()->Kill(id); });
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
}

TEST(FailurePathsTest, SingleCombinerDeathAbsorbedByActiveBackup) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 3;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  net::NodeId primary = d->combiner_group[0];
  fw.sim()->ScheduleAt(fw.sim()->now() + kSecond,
                       [&fw, primary]() { fw.network()->Kill(primary); });
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);  // the Active Backup delivered
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FailurePathsTest, QuerierReceivesDuplicatesFromActiveBackup) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 5;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.05, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->success);
  // Two active combiners each emit (plus re-emissions): everything beyond
  // the first accepted delivery is counted as a deduplicated duplicate.
  EXPECT_GE(report->duplicate_results, 1u);
}

TEST(FailurePathsTest, UnknownColumnsFailAtPlanTimeNotRunTime) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 20;
  cfg.fleet.num_processors = 10;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = MiniQuery();
  q.grouping_sets.sets = {{"no_such_column"}};
  auto d = fw.Plan(q, {}, {}, Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace edgelet::core
