// Negative-path coverage: executions and plans that must fail cleanly, and
// degraded runs that must degrade the way the paper predicts.

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/validity_oracle.h"
#include "exec/protocol.h"

namespace edgelet::core {
namespace {

using exec::Strategy;
using query::AggregateFunction;
using query::CompareOp;

query::Query MiniQuery(uint64_t id = 1) {
  query::Query q;
  q.query_id = id;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 20;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{AggregateFunction::kCount, "*"}}};
  return q;
}

TEST(FailurePathsTest, ExecuteBeforeInitFails) {
  FrameworkConfig cfg;
  EdgeletFramework fw(cfg);
  exec::Deployment empty;
  EXPECT_FALSE(fw.Execute(empty, {}).ok());
  EXPECT_FALSE(fw.Plan(MiniQuery(), {}, {}, Strategy::kOvercollection).ok());
}

TEST(FailurePathsTest, ImpossibleReliabilityTargetFailsPlanning) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 50;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  // 90% failure probability with a 0.999999 target: unreachable within the
  // processor pool (and within max_m).
  resilience::ResilienceConfig impossible{0.9, 0.999999};
  auto d = fw.Plan(MiniQuery(), {}, impossible, Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
}

TEST(FailurePathsTest, CrowdTooSmallMissesDeadline) {
  // Only 10 qualifying contributors for a snapshot of 20: no partition can
  // ever fill its quota, so the query must time out (not crash, not
  // deliver an undersized snapshot).
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 10;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->completion_time, kSimTimeNever);
  EXPECT_TRUE(report->result.empty());
}

TEST(FailurePathsTest, NoQualifyingContributorsTimesOut) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 50;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = MiniQuery();
  // Impossible predicate: nobody is older than 200.
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{200})}};
  auto d = fw.Plan(q, {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_EQ(report->contributors_participating, 0u);
}

TEST(FailurePathsTest, BothCombinersDeadMeansNoResult) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 3;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->combiner_group.size(), 2u);
  // Kill the Combiner AND its Active Backup before anything completes.
  for (net::NodeId id : d->combiner_group) {
    fw.sim()->ScheduleAt(fw.sim()->now() + kSecond,
                         [&fw, id]() { fw.network()->Kill(id); });
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
}

TEST(FailurePathsTest, SingleCombinerDeathAbsorbedByActiveBackup) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 3;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  net::NodeId primary = d->combiner_group[0];
  fw.sim()->ScheduleAt(fw.sim()->now() + kSecond,
                       [&fw, primary]() { fw.network()->Kill(primary); });
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);  // the Active Backup delivered
  auto validity = fw.VerifyGroupingSets(*d, *report);
  ASSERT_TRUE(validity.ok());
  EXPECT_TRUE(validity->valid) << validity->detail;
}

TEST(FailurePathsTest, QuerierReceivesDuplicatesFromActiveBackup) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 5;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.05, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->success);
  // Two active combiners each emit (plus re-emissions): everything beyond
  // the first accepted delivery is counted as a deduplicated duplicate.
  EXPECT_GE(report->duplicate_results, 1u);
}

TEST(FailurePathsTest, OutOfRangeWirePartialsCannotCorruptTheResult) {
  // A compromised processor seals partials with garbage wire fields: a
  // vgroup past num_vgroups (which used to both satisfy the completion
  // count and write out of bounds via epochs[vg]) and a partition the plan
  // never deployed. Both must be rejected at the combiner; the execution
  // must still deliver the honest — and centrally verifiable — answer.
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 100;
  cfg.fleet.num_processors = 30;
  cfg.fleet.enable_churn = false;
  cfg.seed = 3;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.1, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());

  // Junk rows under the *correct* spec, so a combiner that accepted them
  // would merge them cleanly into a wrong (but successful) result.
  data::Table junk(data::Schema({{"region", data::ValueType::kString}}));
  junk.AppendUnchecked({data::Value("nowhere")});
  auto junk_result =
      query::GroupingSetsResult::Compute(junk, d->query.grouping_sets);
  ASSERT_TRUE(junk_result.ok());
  device::Device* sender = fw.fleet()->by_node(d->combiner_group[0]);
  ASSERT_NE(sender, nullptr);
  auto send_junk = [&](uint32_t partition, uint32_t vgroup) {
    exec::GsPartialMsg msg;
    msg.query_id = d->query.query_id;
    msg.partition = partition;
    msg.vgroup = vgroup;
    msg.epoch = 0;
    msg.result = *junk_result;
    Bytes payload = msg.Encode();
    for (net::NodeId combiner : d->combiner_group) {
      fw.sim()->ScheduleAt(
          sender->id(), 2 * kSecond, [sender, combiner, payload]() {
            (void)sender->SendSealed(combiner, exec::kGsPartial, payload);
          });
    }
  };
  send_junk(/*partition=*/0, /*vgroup=*/99);
  send_junk(/*partition=*/77, /*vgroup=*/0);

  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->success);
  for (uint32_t p : report->partitions_used) {
    EXPECT_LT(p, static_cast<uint32_t>(d->n + d->m));
  }
  ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->verdict, TrialVerdict::kValid) << audit->detail;
  EXPECT_STREQ(TrialVerdictName(audit->verdict), "valid");
}

TEST(FailurePathsTest, OracleClassifiesTimeoutAsFailedSafe) {
  // Crowd too small to fill any partition: the execution fails, and the
  // oracle must classify that as failed-safe (the invariant's permitted
  // failure mode), not as an audit error.
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 10;
  cfg.fleet.num_processors = 20;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  auto d = fw.Plan(MiniQuery(), {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 2 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->success);
  ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->verdict, TrialVerdict::kFailedSafe);
  EXPECT_STREQ(TrialVerdictName(audit->verdict), "failed-safe");
}

TEST(FailurePathsTest, UnknownColumnsFailAtPlanTimeNotRunTime) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 20;
  cfg.fleet.num_processors = 10;
  cfg.fleet.enable_churn = false;
  EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q = MiniQuery();
  q.grouping_sets.sets = {{"no_such_column"}};
  auto d = fw.Plan(q, {}, {}, Strategy::kOvercollection);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace edgelet::core
