#include "query/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace edgelet::query {
namespace {

using data::Value;

AggregateState StateOf(const std::vector<double>& values) {
  AggregateState s;
  for (double v : values) EXPECT_TRUE(s.Add(Value(v)).ok());
  return s;
}

TEST(AggregateSpecTest, OutputName) {
  EXPECT_EQ((AggregateSpec{AggregateFunction::kAvg, "bmi"}).OutputName(),
            "AVG(bmi)");
  EXPECT_EQ((AggregateSpec{AggregateFunction::kCount, "*"}).OutputName(),
            "COUNT(*)");
}

TEST(AggregateSpecTest, SerializationRoundTrip) {
  AggregateSpec spec{AggregateFunction::kVariance, "systolic_bp"};
  Writer w;
  spec.Serialize(&w);
  Reader r(w.data());
  auto back = AggregateSpec::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, spec);
}

TEST(AggregateStateTest, CountSumMinMaxAvg) {
  AggregateState s = StateOf({2.0, 4.0, 6.0});
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kSum).AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kMin).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kMax).AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kAvg).AsDouble(), 4.0);
}

TEST(AggregateStateTest, VarianceAndStdDev) {
  AggregateState s = StateOf({1.0, 2.0, 3.0, 4.0});
  // Population variance of {1,2,3,4} = 1.25.
  EXPECT_NEAR(s.Finalize(AggregateFunction::kVariance).AsDouble(), 1.25,
              1e-12);
  EXPECT_NEAR(s.Finalize(AggregateFunction::kStdDev).AsDouble(),
              std::sqrt(1.25), 1e-12);
}

TEST(AggregateStateTest, IntValuesWiden) {
  AggregateState s;
  ASSERT_TRUE(s.Add(Value(int64_t{10})).ok());
  ASSERT_TRUE(s.Add(Value(int64_t{20})).ok());
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kAvg).AsDouble(), 15.0);
}

TEST(AggregateStateTest, NullsIgnoredExceptCountStar) {
  AggregateState s;
  ASSERT_TRUE(s.Add(Value(1.0)).ok());
  ASSERT_TRUE(s.Add(Value::Null()).ok());
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount).AsInt64(), 1);

  AggregateState star;
  ASSERT_TRUE(star.Add(Value(1.0), true).ok());
  ASSERT_TRUE(star.Add(Value::Null(), true).ok());
  EXPECT_EQ(star.Finalize(AggregateFunction::kCount).AsInt64(), 2);
}

TEST(AggregateStateTest, EmptyStateFinalizes) {
  AggregateState s;
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount).AsInt64(), 0);
  EXPECT_TRUE(s.Finalize(AggregateFunction::kSum).is_null());
  EXPECT_TRUE(s.Finalize(AggregateFunction::kMin).is_null());
  EXPECT_TRUE(s.Finalize(AggregateFunction::kAvg).is_null());
  EXPECT_TRUE(s.Finalize(AggregateFunction::kVariance).is_null());
}

TEST(AggregateStateTest, StringsCountOnly) {
  AggregateState s;
  ASSERT_TRUE(s.Add(Value("abc")).ok());
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount).AsInt64(), 1);
  EXPECT_TRUE(s.Finalize(AggregateFunction::kSum).is_null());
}

// The key property behind Overcollection validity: merging partition
// partials equals computing on the union.
TEST(AggregateStateTest, MergeEqualsUnion) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> all;
    std::vector<AggregateState> parts(4);
    AggregateState whole;
    for (int i = 0; i < 100; ++i) {
      double v = rng.NextGaussian(50, 20);
      all.push_back(v);
      ASSERT_TRUE(parts[rng.NextBelow(4)].Add(Value(v)).ok());
      ASSERT_TRUE(whole.Add(Value(v)).ok());
    }
    AggregateState merged;
    for (const auto& p : parts) merged.Merge(p);
    for (auto fn : {AggregateFunction::kCount, AggregateFunction::kSum,
                    AggregateFunction::kMin, AggregateFunction::kMax,
                    AggregateFunction::kAvg, AggregateFunction::kVariance}) {
      Value a = merged.Finalize(fn);
      Value b = whole.Finalize(fn);
      if (fn == AggregateFunction::kCount) {
        EXPECT_EQ(a.AsInt64(), b.AsInt64());
      } else {
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(),
                    1e-9 * std::max(1.0, std::abs(b.AsDouble())));
      }
    }
  }
}

TEST(AggregateStateTest, MergeWithEmptyIsIdentity) {
  AggregateState s = StateOf({5.0, 7.0});
  AggregateState empty;
  AggregateState merged = s;
  merged.Merge(empty);
  EXPECT_EQ(merged, s);
  AggregateState other;
  other.Merge(s);
  EXPECT_EQ(other, s);
}

TEST(AggregateStateTest, SerializationRoundTrip) {
  AggregateState s = StateOf({1.5, -2.5, 100.0});
  Writer w;
  s.Serialize(&w);
  Reader r(w.data());
  auto back = AggregateState::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

// Property sweep: merge-equals-union must hold for every function across
// random splits.
class AggregateMergeProperty
    : public ::testing::TestWithParam<AggregateFunction> {};

TEST_P(AggregateMergeProperty, MergeCommutesWithUnion) {
  AggregateFunction fn = GetParam();
  Rng rng(static_cast<uint64_t>(fn) + 99);
  std::vector<AggregateState> parts(7);
  AggregateState whole;
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(-100, 100);
    ASSERT_TRUE(parts[rng.NextBelow(7)].Add(Value(v)).ok());
    ASSERT_TRUE(whole.Add(Value(v)).ok());
  }
  // Merge in a scrambled order — merging must be order-independent.
  AggregateState merged;
  std::vector<int> order{3, 0, 6, 2, 5, 1, 4};
  for (int i : order) merged.Merge(parts[i]);
  Value a = merged.Finalize(fn);
  Value b = whole.Finalize(fn);
  if (fn == AggregateFunction::kCount) {
    EXPECT_EQ(a.AsInt64(), b.AsInt64());
  } else {
    EXPECT_NEAR(a.AsDouble(), b.AsDouble(),
                1e-8 * std::max(1.0, std::abs(b.AsDouble())));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, AggregateMergeProperty,
    ::testing::Values(AggregateFunction::kCount, AggregateFunction::kSum,
                      AggregateFunction::kMin, AggregateFunction::kMax,
                      AggregateFunction::kAvg, AggregateFunction::kVariance,
                      AggregateFunction::kStdDev));

}  // namespace
}  // namespace edgelet::query
