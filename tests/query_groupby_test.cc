#include "query/groupby.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "data/partition.h"
#include "query/grouping_sets.h"

namespace edgelet::query {
namespace {

using data::Table;
using data::Value;

Table PeopleTable() {
  data::Schema schema({{"region", data::ValueType::kString},
                       {"sex", data::ValueType::kString},
                       {"age", data::ValueType::kInt64},
                       {"bmi", data::ValueType::kDouble}});
  Table t(schema);
  auto add = [&](const char* region, const char* sex, int64_t age,
                 double bmi) {
    ASSERT_TRUE(
        t.Append({Value(region), Value(sex), Value(age), Value(bmi)}).ok());
  };
  add("north", "F", 70, 22.0);
  add("north", "M", 75, 27.0);
  add("south", "F", 80, 24.0);
  add("south", "F", 85, 26.0);
  add("south", "M", 90, 30.0);
  return t;
}

TEST(GroupByTest, GlobalAggregate) {
  GroupBySpec spec{{}, {{AggregateFunction::kAvg, "age"}}};
  auto agg = GroupedAggregation::Compute(PeopleTable(), spec);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->num_groups(), 1u);
  Table out = agg->Finalize();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.row(0)[0].AsDouble(), 80.0);
}

TEST(GroupByTest, SingleKey) {
  GroupBySpec spec{{"region"},
                   {{AggregateFunction::kCount, "*"},
                    {AggregateFunction::kAvg, "bmi"}}};
  auto agg = GroupedAggregation::Compute(PeopleTable(), spec);
  ASSERT_TRUE(agg.ok());
  Table out = agg->Finalize();
  ASSERT_EQ(out.num_rows(), 2u);
  // Deterministic (serialized-key) order; find rows by key.
  for (const auto& row : out.rows()) {
    if (row[0].AsString() == "north") {
      EXPECT_EQ(row[1].AsInt64(), 2);
      EXPECT_DOUBLE_EQ(row[2].AsDouble(), 24.5);
    } else {
      EXPECT_EQ(row[0].AsString(), "south");
      EXPECT_EQ(row[1].AsInt64(), 3);
      EXPECT_NEAR(row[2].AsDouble(), 26.6666666667, 1e-9);
    }
  }
}

TEST(GroupByTest, CompositeKey) {
  GroupBySpec spec{{"region", "sex"}, {{AggregateFunction::kCount, "*"}}};
  auto agg = GroupedAggregation::Compute(PeopleTable(), spec);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->num_groups(), 4u);  // north/F north/M south/F south/M
}

TEST(GroupByTest, UnknownColumnFails) {
  GroupBySpec spec{{"nope"}, {{AggregateFunction::kCount, "*"}}};
  EXPECT_FALSE(GroupedAggregation::Compute(PeopleTable(), spec).ok());
  GroupBySpec spec2{{"region"}, {{AggregateFunction::kSum, "nope"}}};
  EXPECT_FALSE(GroupedAggregation::Compute(PeopleTable(), spec2).ok());
}

TEST(GroupByTest, StarOnlyValidForCount) {
  GroupBySpec spec{{"region"}, {{AggregateFunction::kSum, "*"}}};
  EXPECT_FALSE(GroupedAggregation::Compute(PeopleTable(), spec).ok());
}

TEST(GroupByTest, MergeSpecMismatchFails) {
  GroupBySpec s1{{"region"}, {{AggregateFunction::kCount, "*"}}};
  GroupBySpec s2{{"sex"}, {{AggregateFunction::kCount, "*"}}};
  auto a = GroupedAggregation::Compute(PeopleTable(), s1);
  auto b = GroupedAggregation::Compute(PeopleTable(), s2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->Merge(*b).ok());
}

TEST(GroupByTest, DefaultConstructedAdoptsSpecOnMerge) {
  GroupBySpec spec{{"region"}, {{AggregateFunction::kCount, "*"}}};
  auto a = GroupedAggregation::Compute(PeopleTable(), spec);
  ASSERT_TRUE(a.ok());
  GroupedAggregation acc;
  EXPECT_TRUE(acc.Merge(*a).ok());
  EXPECT_EQ(acc.num_groups(), a->num_groups());
}

// Validity property (paper): distributed-and-merged == centralized, for the
// realistic health workload partitioned by contributor hash.
TEST(GroupByTest, PartitionedMergeEqualsCentralized) {
  data::HealthDataParams params;
  params.num_individuals = 2000;
  Table table = data::GenerateHealthData(params, 31);
  GroupBySpec spec{{"region", "sex"},
                   {{AggregateFunction::kCount, "*"},
                    {AggregateFunction::kAvg, "bmi"},
                    {AggregateFunction::kMin, "age"},
                    {AggregateFunction::kMax, "systolic_bp"},
                    {AggregateFunction::kVariance, "chronic_count"}}};

  auto central = GroupedAggregation::Compute(table, spec);
  ASSERT_TRUE(central.ok());

  auto parts = data::PartitionByHash(table, "contributor_id", 8);
  ASSERT_TRUE(parts.ok());
  GroupedAggregation merged;
  for (const auto& p : *parts) {
    auto partial = GroupedAggregation::Compute(p, spec);
    ASSERT_TRUE(partial.ok());
    ASSERT_TRUE(merged.Merge(*partial).ok());
  }

  Table a = merged.Finalize();
  Table b = central->Finalize();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema(), b.schema());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      const Value& va = a.row(i)[c];
      const Value& vb = b.row(i)[c];
      if (va.type() == data::ValueType::kDouble) {
        EXPECT_NEAR(va.AsDouble(), vb.AsDouble(),
                    1e-8 * std::max(1.0, std::abs(vb.AsDouble())));
      } else {
        EXPECT_EQ(va, vb);
      }
    }
  }
}

TEST(GroupByTest, SerializationRoundTrip) {
  GroupBySpec spec{{"region"},
                   {{AggregateFunction::kCount, "*"},
                    {AggregateFunction::kAvg, "bmi"}}};
  auto agg = GroupedAggregation::Compute(PeopleTable(), spec);
  ASSERT_TRUE(agg.ok());
  Writer w;
  agg->Serialize(&w);
  Reader r(w.data());
  auto back = GroupedAggregation::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Finalize(), agg->Finalize());
}

// --- Grouping sets -----------------------------------------------------------

GroupingSetsSpec DemoSpec() {
  return GroupingSetsSpec{
      {{"region"}, {"sex"}, {"region", "sex"}},
      {{AggregateFunction::kCount, "*"}, {AggregateFunction::kAvg, "bmi"}}};
}

TEST(GroupingSetsTest, ColumnHelpers) {
  GroupingSetsSpec spec = DemoSpec();
  EXPECT_EQ(spec.AllKeyColumns(),
            (std::vector<std::string>{"region", "sex"}));
  EXPECT_EQ(spec.ColumnsForSet(0),
            (std::vector<std::string>{"region", "bmi"}));
  EXPECT_EQ(spec.AllColumns(),
            (std::vector<std::string>{"region", "sex", "bmi"}));
}

TEST(GroupingSetsTest, ComputeAllSets) {
  auto result = GroupingSetsResult::Compute(PeopleTable(), DemoSpec());
  ASSERT_TRUE(result.ok());
  auto table = result->Finalize();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  // region: 2 groups, sex: 2 groups, region x sex: 4 groups.
  EXPECT_EQ(table->num_rows(), 8u);
  // grouping_set column present and first.
  EXPECT_EQ(table->schema().column(0).name, "grouping_set");
}

TEST(GroupingSetsTest, NullsForAbsentKeys) {
  auto result = GroupingSetsResult::Compute(PeopleTable(), DemoSpec());
  ASSERT_TRUE(result.ok());
  auto table = result->Finalize();
  ASSERT_TRUE(table.ok());
  for (const auto& row : table->rows()) {
    int64_t set = row[0].AsInt64();
    bool region_null = row[1].is_null();
    bool sex_null = row[2].is_null();
    if (set == 0) {
      EXPECT_FALSE(region_null);
      EXPECT_TRUE(sex_null);
    } else if (set == 1) {
      EXPECT_TRUE(region_null);
      EXPECT_FALSE(sex_null);
    } else {
      EXPECT_FALSE(region_null);
      EXPECT_FALSE(sex_null);
    }
  }
}

TEST(GroupingSetsTest, PartialSetsAndStitching) {
  // Vertical partitioning: computer A evaluates sets {0}, computer B sets
  // {1, 2}; the combiner stitches.
  GroupingSetsSpec spec = DemoSpec();
  auto a = GroupingSetsResult::ComputeSets(PeopleTable(), spec, {0});
  auto b = GroupingSetsResult::ComputeSets(PeopleTable(), spec, {1, 2});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->HasSet(0));
  EXPECT_FALSE(a->HasSet(1));
  // Unstitched finalize fails (incomplete).
  EXPECT_FALSE(a->Finalize().ok());

  GroupingSetsResult acc;
  ASSERT_TRUE(acc.Merge(*a).ok());
  ASSERT_TRUE(acc.Merge(*b).ok());
  auto stitched = acc.Finalize();
  ASSERT_TRUE(stitched.ok());

  auto full = GroupingSetsResult::Compute(PeopleTable(), spec);
  ASSERT_TRUE(full.ok());
  auto expected = full->Finalize();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*stitched, *expected);
}

TEST(GroupingSetsTest, MergeAcrossHorizontalPartitions) {
  data::HealthDataParams params;
  params.num_individuals = 1200;
  Table table = data::GenerateHealthData(params, 77);
  GroupingSetsSpec spec{
      {{"region"}, {"dependency"}},
      {{AggregateFunction::kCount, "*"}, {AggregateFunction::kAvg, "age"}}};

  auto central = GroupingSetsResult::Compute(table, spec);
  ASSERT_TRUE(central.ok());
  auto expected = central->Finalize();
  ASSERT_TRUE(expected.ok());

  auto parts = data::PartitionByHash(table, "contributor_id", 5);
  ASSERT_TRUE(parts.ok());
  GroupingSetsResult acc;
  for (const auto& p : *parts) {
    auto partial = GroupingSetsResult::Compute(p, spec);
    ASSERT_TRUE(partial.ok());
    ASSERT_TRUE(acc.Merge(*partial).ok());
  }
  auto merged = acc.Finalize();
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->num_rows(), expected->num_rows());
  for (size_t i = 0; i < merged->num_rows(); ++i) {
    for (size_t c = 0; c < merged->schema().num_columns(); ++c) {
      const Value& va = merged->row(i)[c];
      const Value& vb = expected->row(i)[c];
      if (va.type() == data::ValueType::kDouble) {
        EXPECT_NEAR(va.AsDouble(), vb.AsDouble(), 1e-9);
      } else {
        EXPECT_EQ(va, vb);
      }
    }
  }
}

TEST(GroupingSetsTest, SerializationRoundTrip) {
  auto result = GroupingSetsResult::Compute(PeopleTable(), DemoSpec());
  ASSERT_TRUE(result.ok());
  Writer w;
  result->Serialize(&w);
  Reader r(w.data());
  auto back = GroupingSetsResult::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  auto t1 = result->Finalize();
  auto t2 = back->Finalize();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(*t1, *t2);
}

TEST(GroupingSetsTest, PartialSerializationPreservesPresence) {
  auto a = GroupingSetsResult::ComputeSets(PeopleTable(), DemoSpec(), {1});
  ASSERT_TRUE(a.ok());
  Writer w;
  a->Serialize(&w);
  Reader r(w.data());
  auto back = GroupingSetsResult::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->HasSet(0));
  EXPECT_TRUE(back->HasSet(1));
  EXPECT_FALSE(back->HasSet(2));
}

}  // namespace
}  // namespace edgelet::query
