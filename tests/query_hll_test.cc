#include "query/hll.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "data/generator.h"
#include "data/partition.h"
#include "query/groupby.h"

namespace edgelet::query {
namespace {

TEST(HllTest, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, PrecisionClamped) {
  EXPECT_EQ(HyperLogLog(2).precision(), 4);
  EXPECT_EQ(HyperLogLog(20).precision(), 16);
  EXPECT_EQ(HyperLogLog(10).num_registers(), 1024u);
}

TEST(HllTest, SmallCardinalitiesNearExact) {
  // Linear counting regime: estimates should be within ~2%.
  for (int n : {1, 5, 10, 50, 100}) {
    HyperLogLog hll(12);
    for (int i = 0; i < n; ++i) {
      hll.AddHash(Mix64(static_cast<uint64_t>(i) + 1));
    }
    EXPECT_NEAR(hll.Estimate(), n, std::max(1.0, 0.03 * n)) << n;
  }
}

TEST(HllTest, LargeCardinalityWithinErrorBound) {
  // Standard error ~ 1.04/sqrt(2^p); allow 4 sigma.
  const int kPrecision = 12;
  const int kN = 200000;
  HyperLogLog hll(kPrecision);
  for (int i = 0; i < kN; ++i) {
    hll.AddHash(Mix64(static_cast<uint64_t>(i) + 7));
  }
  double sigma = 1.04 / std::sqrt(static_cast<double>(1 << kPrecision));
  EXPECT_NEAR(hll.Estimate(), kN, 4 * sigma * kN);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 20; ++i) {
      hll.AddHash(Mix64(static_cast<uint64_t>(i) + 1));
    }
  }
  EXPECT_NEAR(hll.Estimate(), 20, 2.0);
}

TEST(HllTest, MergeEqualsUnion) {
  Rng rng(5);
  HyperLogLog a(11), b(11), whole(11);
  std::set<uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextBelow(3000);  // overlapping sets
    uint64_t h = Mix64(v + 1);
    truth.insert(v);
    if (i % 2 == 0) {
      a.AddHash(h);
    } else {
      b.AddHash(h);
    }
    whole.AddHash(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
  EXPECT_NEAR(a.Estimate(), static_cast<double>(truth.size()),
              0.15 * truth.size());
}

TEST(HllTest, MergePrecisionMismatchFails) {
  HyperLogLog a(10), b(12);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HllTest, SerializationRoundTrip) {
  HyperLogLog hll(10);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) hll.AddHash(rng.NextU64());
  Writer w;
  hll.Serialize(&w);
  Reader r(w.data());
  auto back = HyperLogLog::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, hll);
  EXPECT_TRUE(r.AtEnd());
}

TEST(HllTest, EmptySketchSerializesSmall) {
  HyperLogLog hll(12);  // 4096 registers, all zero
  Writer w;
  hll.Serialize(&w);
  EXPECT_LT(w.size(), 16u);  // run-length encoded
}

TEST(HllTest, DeserializeRejectsCorruption) {
  Writer w;
  w.PutU8(10);
  w.PutU8(1);
  w.PutVarint(5000);  // run longer than register file
  Reader r(w.data());
  EXPECT_FALSE(HyperLogLog::Deserialize(&r).ok());
}

// --- COUNT DISTINCT through the aggregation engine ---------------------------

TEST(CountDistinctTest, ExactForSmallGroups) {
  data::Schema schema({{"region", data::ValueType::kString},
                       {"person", data::ValueType::kInt64}});
  data::Table t(schema);
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(t.Append({data::Value(i % 2 ? "north" : "south"),
                          data::Value(i % 10)})  // 10 distinct per region
                    .ok());
  }
  GroupBySpec spec{{"region"},
                   {{AggregateFunction::kCountDistinct, "person"},
                    {AggregateFunction::kCount, "person"}}};
  auto agg = GroupedAggregation::Compute(t, spec);
  ASSERT_TRUE(agg.ok());
  data::Table out = agg->Finalize();
  ASSERT_EQ(out.num_rows(), 2u);
  for (const auto& row : out.rows()) {
    EXPECT_EQ(row[1].AsInt64(), 5);   // 5 distinct persons per region
    EXPECT_EQ(row[2].AsInt64(), 15);  // 15 rows per region
  }
}

TEST(CountDistinctTest, MergeAcrossPartitionsMatchesCentralized) {
  data::HealthDataParams params;
  params.num_individuals = 3000;
  data::Table table = data::GenerateHealthData(params, 9);
  GroupBySpec spec{{}, {{AggregateFunction::kCountDistinct, "dependency"}}};

  auto central = GroupedAggregation::Compute(table, spec);
  ASSERT_TRUE(central.ok());

  auto parts = data::PartitionByHash(table, "contributor_id", 6);
  ASSERT_TRUE(parts.ok());
  GroupedAggregation merged;
  for (const auto& p : *parts) {
    auto partial = GroupedAggregation::Compute(p, spec);
    ASSERT_TRUE(partial.ok());
    ASSERT_TRUE(merged.Merge(*partial).ok());
  }
  // Sketch merging is exact: identical registers, identical estimate.
  EXPECT_EQ(merged.Finalize(), central->Finalize());
  // And dependency has 6 distinct levels.
  EXPECT_EQ(central->Finalize().row(0)[0].AsInt64(), 6);
}

TEST(CountDistinctTest, NullsIgnored) {
  AggregateState s;
  s.AddDistinct(data::Value::Null());
  EXPECT_EQ(s.Finalize(AggregateFunction::kCountDistinct).AsInt64(), 0);
  s.AddDistinct(data::Value("x"));
  s.AddDistinct(data::Value("x"));
  EXPECT_EQ(s.Finalize(AggregateFunction::kCountDistinct).AsInt64(), 1);
}

TEST(CountDistinctTest, SerializationCarriesSketch) {
  AggregateState s;
  for (int i = 0; i < 100; ++i) {
    s.AddDistinct(data::Value(static_cast<int64_t>(i)));
  }
  Writer w;
  s.Serialize(&w);
  Reader r(w.data());
  auto back = AggregateState::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Finalize(AggregateFunction::kCountDistinct),
            s.Finalize(AggregateFunction::kCountDistinct));
}

TEST(CountDistinctTest, StarRejected) {
  data::Schema schema({{"x", data::ValueType::kInt64}});
  data::Table t(schema);
  GroupBySpec spec{{}, {{AggregateFunction::kCountDistinct, "*"}}};
  EXPECT_FALSE(GroupedAggregation::Compute(t, spec).ok());
}

}  // namespace
}  // namespace edgelet::query
