#include <gtest/gtest.h>

#include "data/generator.h"
#include "query/predicate.h"
#include "query/qep.h"
#include "query/query.h"

namespace edgelet::query {
namespace {

using data::Value;

// --- Predicates -----------------------------------------------------------

TEST(PredicateTest, NumericComparisons) {
  data::Schema schema({{"age", data::ValueType::kInt64}});
  data::Tuple row{Value(int64_t{70})};
  auto eval = [&](CompareOp op, int64_t lit) {
    Predicate p{"age", op, Value(lit)};
    auto r = p.Evaluate(row, schema);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  EXPECT_TRUE(eval(CompareOp::kGt, 65));
  EXPECT_FALSE(eval(CompareOp::kGt, 70));
  EXPECT_TRUE(eval(CompareOp::kGe, 70));
  EXPECT_TRUE(eval(CompareOp::kLt, 80));
  EXPECT_TRUE(eval(CompareOp::kLe, 70));
  EXPECT_TRUE(eval(CompareOp::kEq, 70));
  EXPECT_TRUE(eval(CompareOp::kNe, 71));
  EXPECT_FALSE(eval(CompareOp::kNe, 70));
}

TEST(PredicateTest, MixedNumericTypesCompare) {
  data::Schema schema({{"bmi", data::ValueType::kDouble}});
  data::Tuple row{Value(27.5)};
  Predicate p{"bmi", CompareOp::kGt, Value(int64_t{25})};
  auto r = p.Evaluate(row, schema);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(PredicateTest, StringComparison) {
  data::Schema schema({{"sex", data::ValueType::kString}});
  data::Tuple row{Value("F")};
  Predicate p{"sex", CompareOp::kEq, Value("F")};
  EXPECT_TRUE(*p.Evaluate(row, schema));
}

TEST(PredicateTest, NullNeverMatches) {
  data::Schema schema({{"age", data::ValueType::kInt64}});
  data::Tuple row{Value::Null()};
  for (auto op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                  CompareOp::kGe}) {
    Predicate p{"age", op, Value(int64_t{1})};
    auto r = p.Evaluate(row, schema);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r);
  }
}

TEST(PredicateTest, TypeMismatchFails) {
  data::Schema schema({{"age", data::ValueType::kInt64}});
  data::Tuple row{Value(int64_t{70})};
  Predicate p{"age", CompareOp::kEq, Value("seventy")};
  EXPECT_FALSE(p.Evaluate(row, schema).ok());
}

TEST(PredicateTest, ApplyConjunction) {
  data::HealthDataParams params;
  params.num_individuals = 500;
  data::Table t = data::GenerateHealthData(params, 3);
  std::vector<Predicate> preds = {
      {"age", CompareOp::kGt, Value(int64_t{65})},
      {"sex", CompareOp::kEq, Value("F")}};
  auto filtered = ApplyPredicates(t, preds);
  ASSERT_TRUE(filtered.ok());
  EXPECT_GT(filtered->num_rows(), 0u);
  EXPECT_LT(filtered->num_rows(), t.num_rows());
  for (const auto& row : filtered->rows()) {
    EXPECT_GT(row[1].AsInt64(), 65);
    EXPECT_EQ(row[2].AsString(), "F");
  }
}

TEST(PredicateTest, SerializationRoundTrip) {
  Predicate p{"age", CompareOp::kGe, Value(int64_t{65})};
  Writer w;
  p.Serialize(&w);
  Reader r(w.data());
  auto back = Predicate::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), p.ToString());
}

TEST(PredicateTest, ToStringReadable) {
  Predicate p{"age", CompareOp::kGt, Value(int64_t{65})};
  EXPECT_EQ(p.ToString(), "age > 65");
  Predicate q{"sex", CompareOp::kEq, Value("F")};
  EXPECT_EQ(q.ToString(), "sex = 'F'");
}

// --- Query -----------------------------------------------------------------

Query DemoGroupingSetsQuery() {
  Query q;
  q.name = "health survey";
  q.kind = QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, Value(int64_t{65})}};
  q.snapshot_cardinality = 2000;
  q.grouping_sets =
      GroupingSetsSpec{{{"region"}, {"sex"}},
                       {{AggregateFunction::kCount, "*"},
                        {AggregateFunction::kAvg, "bmi"}}};
  return q;
}

Query DemoKMeansQuery() {
  Query q;
  q.name = "dependency clustering";
  q.kind = QueryKind::kKMeans;
  q.snapshot_cardinality = 2000;
  q.kmeans.k = 4;
  q.kmeans.features = data::HealthNumericFeatures();
  q.kmeans.cluster_aggregates = {{AggregateFunction::kAvg, "dependency"}};
  return q;
}

TEST(QueryTest, RequiredColumnsGroupingSets) {
  Query q = DemoGroupingSetsQuery();
  EXPECT_EQ(q.RequiredColumns(),
            (std::vector<std::string>{"region", "sex", "bmi"}));
}

TEST(QueryTest, RequiredColumnsKMeans) {
  Query q = DemoKMeansQuery();
  auto cols = q.RequiredColumns();
  EXPECT_EQ(cols.size(), 5u);  // 4 features + dependency
}

TEST(QueryTest, ValidateAgainstSchema) {
  data::Schema schema = data::HealthSchema();
  EXPECT_TRUE(DemoGroupingSetsQuery().Validate(schema).ok());
  EXPECT_TRUE(DemoKMeansQuery().Validate(schema).ok());

  Query bad = DemoGroupingSetsQuery();
  bad.grouping_sets.sets[0][0] = "ghost_column";
  EXPECT_FALSE(bad.Validate(schema).ok());

  Query bad2 = DemoKMeansQuery();
  bad2.kmeans.k = 0;
  EXPECT_FALSE(bad2.Validate(schema).ok());

  Query bad3 = DemoKMeansQuery();
  bad3.kmeans.features = {"sex"};  // not numeric
  EXPECT_FALSE(bad3.Validate(schema).ok());

  Query bad4 = DemoGroupingSetsQuery();
  bad4.snapshot_cardinality = 0;
  EXPECT_FALSE(bad4.Validate(schema).ok());

  Query bad5 = DemoGroupingSetsQuery();
  bad5.grouping_sets.aggregates.clear();
  EXPECT_FALSE(bad5.Validate(schema).ok());
}

TEST(QueryTest, SerializationRoundTrip) {
  for (const Query& q : {DemoGroupingSetsQuery(), DemoKMeansQuery()}) {
    Writer w;
    q.Serialize(&w);
    Reader r(w.data());
    auto back = Query::Deserialize(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->name, q.name);
    EXPECT_EQ(back->kind, q.kind);
    EXPECT_EQ(back->snapshot_cardinality, q.snapshot_cardinality);
    EXPECT_EQ(back->grouping_sets, q.grouping_sets);
    EXPECT_EQ(back->kmeans, q.kmeans);
    EXPECT_EQ(back->predicates.size(), q.predicates.size());
  }
}

// --- QEP ---------------------------------------------------------------------

Qep SmallPlan() {
  Qep qep;
  qep.SetPartitioning(2, 1);
  uint64_t querier = qep.AddVertex({.role = OperatorRole::kQuerier});
  uint64_t combiner = qep.AddVertex({.role = OperatorRole::kCombiner});
  uint64_t backup = qep.AddVertex({.role = OperatorRole::kCombinerBackup});
  EXPECT_TRUE(qep.AddEdge(combiner, querier).ok());
  EXPECT_TRUE(qep.AddEdge(backup, querier).ok());
  for (int p = 0; p < 3; ++p) {
    uint64_t sb = qep.AddVertex({.role = OperatorRole::kSnapshotBuilder,
                                 .partition = p,
                                 .attributes = {"region", "bmi"}});
    uint64_t comp = qep.AddVertex({.role = OperatorRole::kComputer,
                                   .partition = p,
                                   .vgroup = 0,
                                   .attributes = {"region", "bmi"}});
    EXPECT_TRUE(qep.AddEdge(sb, comp).ok());
    EXPECT_TRUE(qep.AddEdge(comp, combiner).ok());
    EXPECT_TRUE(qep.AddEdge(comp, backup).ok());
  }
  return qep;
}

TEST(QepTest, RolesAndCounts) {
  Qep qep = SmallPlan();
  EXPECT_EQ(qep.CountByRole(OperatorRole::kSnapshotBuilder), 3u);
  EXPECT_EQ(qep.CountByRole(OperatorRole::kComputer), 3u);
  EXPECT_EQ(qep.CountByRole(OperatorRole::kCombiner), 1u);
  EXPECT_EQ(qep.CountByRole(OperatorRole::kQuerier), 1u);
  EXPECT_EQ(qep.total_partitions(), 3);
}

TEST(QepTest, ValidatePasses) {
  Qep qep = SmallPlan();
  EXPECT_TRUE(qep.Validate().ok()) << qep.Validate().ToString();
}

TEST(QepTest, ValidateCatchesMissingCombiner) {
  Qep qep;
  qep.AddVertex({.role = OperatorRole::kQuerier});
  EXPECT_FALSE(qep.Validate().ok());
}

TEST(QepTest, ValidateCatchesNonTerminalQuerier) {
  Qep qep;
  uint64_t q1 = qep.AddVertex({.role = OperatorRole::kQuerier});
  uint64_t c = qep.AddVertex({.role = OperatorRole::kCombiner});
  ASSERT_TRUE(qep.AddEdge(q1, c).ok());
  EXPECT_FALSE(qep.Validate().ok());
}

TEST(QepTest, ValidateCatchesPartitionOutOfRange) {
  Qep qep = SmallPlan();
  qep.SetPartitioning(1, 0);  // 3 partitions now out of range
  EXPECT_FALSE(qep.Validate().ok());
}

TEST(QepTest, ValidateCatchesDanglingProcessor) {
  Qep qep = SmallPlan();
  qep.AddVertex({.role = OperatorRole::kComputer, .partition = 0});
  EXPECT_FALSE(qep.Validate().ok());
}

TEST(QepTest, AddEdgeBoundsChecked) {
  Qep qep;
  EXPECT_FALSE(qep.AddEdge(0, 1).ok());
}

TEST(QepTest, ToStringMentionsStructure) {
  Qep qep = SmallPlan();
  std::string s = qep.ToString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
  EXPECT_NE(s.find("SnapshotBuilder x3"), std::string::npos);
  EXPECT_NE(s.find("Computer x3"), std::string::npos);
}

}  // namespace
}  // namespace edgelet::query
