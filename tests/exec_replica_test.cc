#include "exec/replica.h"

#include <gtest/gtest.h>

#include "device/fleet.h"

namespace edgelet::exec {
namespace {

// Harness: a replica group of `size` devices with rank order = creation
// order; each device routes kLeaderPing to its ReplicaRole.
class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest() : sim_(1), network_(&sim_, {}), authority_(1) {}

  void BuildGroup(size_t size, SimTime stop_at = kSimTimeNever) {
    std::vector<net::NodeId> members;
    for (size_t i = 0; i < size; ++i) {
      auto profile = device::DeviceProfile::Pc();
      profile.churn = net::ChurnModel::AlwaysOn();
      devices_.push_back(std::make_unique<device::Device>(
          &network_, &authority_, profile, "code"));
      members.push_back(devices_.back()->id());
    }
    for (size_t i = 0; i < size; ++i) {
      ReplicaRole::Config cfg;
      cfg.group_id = 7;
      cfg.members = members;
      cfg.ping_period = 2 * kSecond;
      cfg.failover_timeout = 5 * kSecond;
      cfg.stop_at = stop_at;
      roles_.push_back(std::make_unique<ReplicaRole>(
          &sim_, devices_[i].get(), cfg));
      device::Device* dev = devices_[i].get();
      ReplicaRole* role = roles_.back().get();
      dev->set_message_handler([role](const net::Message& msg) {
        if (msg.type != kLeaderPing) return;
        auto ping = LeaderPingMsg::Decode(msg.payload);
        if (ping.ok()) role->HandlePing(*ping);
      });
    }
    for (auto& r : roles_) r->Start();
  }

  net::Simulator sim_;
  net::Network network_;
  tee::TrustAuthority authority_;
  std::vector<std::unique_ptr<device::Device>> devices_;
  std::vector<std::unique_ptr<ReplicaRole>> roles_;
};

TEST_F(ReplicaTest, RanksFollowMemberOrder) {
  BuildGroup(3, /*stop_at=*/kMinute);
  EXPECT_FALSE(roles_[0]->misconfigured());
  EXPECT_EQ(roles_[0]->rank(), 0u);
  EXPECT_EQ(roles_[1]->rank(), 1u);
  EXPECT_EQ(roles_[2]->rank(), 2u);
  EXPECT_TRUE(roles_[0]->is_leader());
  EXPECT_FALSE(roles_[1]->is_leader());
  EXPECT_FALSE(roles_[2]->is_leader());
}

TEST_F(ReplicaTest, SingletonGroupIsSilentLeader) {
  BuildGroup(1);
  EXPECT_TRUE(roles_[0]->is_leader());
  sim_.Run();  // no pings scheduled: queue drains immediately
  EXPECT_EQ(network_.stats().messages_sent, 0u);
}

TEST_F(ReplicaTest, StableLeaderPreventsPromotion) {
  BuildGroup(3, /*stop_at=*/2 * kMinute);
  sim_.RunUntil(2 * kMinute);
  EXPECT_TRUE(roles_[0]->is_leader());
  EXPECT_FALSE(roles_[1]->is_leader());
  EXPECT_FALSE(roles_[2]->is_leader());
  EXPECT_GT(network_.stats().messages_sent, 0u);  // pings flowed
}

TEST_F(ReplicaTest, Rank1PromotesWhenLeaderDies) {
  BuildGroup(3, /*stop_at=*/2 * kMinute);
  bool promoted = false;
  roles_[1]->set_on_promote([&] { promoted = true; });
  sim_.ScheduleAt(10 * kSecond,
                  [this] { network_.Kill(devices_[0]->id()); });
  sim_.RunUntil(2 * kMinute);
  EXPECT_TRUE(promoted);
  EXPECT_TRUE(roles_[1]->is_leader());
}

TEST_F(ReplicaTest, PromotionCascadesInRankOrder) {
  BuildGroup(3, /*stop_at=*/5 * kMinute);
  SimTime t1 = 0, t2 = 0;
  roles_[1]->set_on_promote([&] { t1 = sim_.now(); });
  roles_[2]->set_on_promote([&] { t2 = sim_.now(); });
  // Kill ranks 0 and 1: rank 2 must take over, after rank 1 would have.
  sim_.ScheduleAt(10 * kSecond, [this] {
    network_.Kill(devices_[0]->id());
    network_.Kill(devices_[1]->id());
  });
  sim_.RunUntil(5 * kMinute);
  EXPECT_EQ(t1, 0u);  // dead rank 1 never promoted
  EXPECT_GT(t2, 10 * kSecond);
  EXPECT_TRUE(roles_[2]->is_leader());
}

TEST_F(ReplicaTest, Rank2WaitsLongerThanRank1) {
  BuildGroup(3, /*stop_at=*/5 * kMinute);
  SimTime promote1 = 0, promote2 = 0;
  roles_[1]->set_on_promote([&] { promote1 = sim_.now(); });
  roles_[2]->set_on_promote([&] { promote2 = sim_.now(); });
  sim_.ScheduleAt(kSecond, [this] { network_.Kill(devices_[0]->id()); });
  sim_.RunUntil(5 * kMinute);
  // Rank 1 promotes; its pings keep rank 2 from promoting.
  EXPECT_GT(promote1, 0u);
  EXPECT_EQ(promote2, 0u);
}

TEST_F(ReplicaTest, ReturningLeaderReclaimsLeadership) {
  BuildGroup(2, /*stop_at=*/10 * kMinute);
  // Leader goes offline (not dead) long enough for rank 1 to promote,
  // then returns; pings resume and rank 1 yields.
  sim_.ScheduleAt(5 * kSecond,
                  [this] { network_.SetOnline(devices_[0]->id(), false); });
  sim_.ScheduleAt(60 * kSecond,
                  [this] { network_.SetOnline(devices_[0]->id(), true); });
  sim_.RunUntil(2 * kMinute);
  EXPECT_TRUE(roles_[0]->is_leader());
  EXPECT_FALSE(roles_[1]->is_leader());
}

TEST_F(ReplicaTest, StopsAtConfiguredTime) {
  BuildGroup(2, /*stop_at=*/30 * kSecond);
  sim_.RunUntil(kMinute);
  uint64_t sent_at_stop = network_.stats().messages_sent;
  sim_.RunUntil(10 * kMinute);
  // No further pings after stop_at.
  EXPECT_EQ(network_.stats().messages_sent, sent_at_stop);
}

TEST_F(ReplicaTest, IgnoresPingsFromOtherGroups) {
  BuildGroup(2, /*stop_at=*/kMinute);
  LeaderPingMsg foreign{999, 0};
  roles_[1]->HandlePing(foreign);  // must not count as lower-rank ping
  // Kill the real leader; rank 1 should still promote on schedule.
  network_.Kill(devices_[0]->id());
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(roles_[1]->is_leader());
}

TEST_F(ReplicaTest, DeviceAbsentFromMembersIsFlaggedMisconfigured) {
  // Before the fix this device silently got rank == members.size(): it
  // never pinged, never counted as a lower rank for anyone, and never
  // promoted — a dead replica that looked alive.
  auto profile = device::DeviceProfile::Pc();
  profile.churn = net::ChurnModel::AlwaysOn();
  device::Device outsider(&network_, &authority_, profile, "code");
  ReplicaRole::Config cfg;
  cfg.group_id = 7;
  cfg.members = {outsider.id() + 100, outsider.id() + 101};
  ReplicaRole role(&sim_, &outsider, cfg);
  EXPECT_TRUE(role.misconfigured());
  EXPECT_FALSE(role.is_leader());
  EXPECT_EQ(role.rank(), cfg.members.size());
}

TEST_F(ReplicaTest, MisconfiguredRoleAbortsOnStart) {
  auto profile = device::DeviceProfile::Pc();
  profile.churn = net::ChurnModel::AlwaysOn();
  device::Device outsider(&network_, &authority_, profile, "code");
  ReplicaRole::Config cfg;
  cfg.group_id = 7;
  cfg.members = {outsider.id() + 100};
  ReplicaRole role(&sim_, &outsider, cfg);
  ASSERT_TRUE(role.misconfigured());
  EXPECT_DEATH(role.Start(), "not a member");
}

}  // namespace
}  // namespace edgelet::exec
