#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/bytes.h"

namespace edgelet {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);
  w.PutDouble(3.14159);

  Reader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU16(), 0xBEEF);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_TRUE(*r.GetBool());
  EXPECT_FALSE(*r.GetBool());
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, LittleEndianLayout) {
  Writer w;
  w.PutU32(0x01020304);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(SerializeTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,    1,    127,  128,
                            300,  16383, 16384, 1ULL << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    Writer w;
    w.PutVarint(v);
    Reader r(w.data());
    EXPECT_EQ(*r.GetVarint(), v) << v;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerializeTest, VarintEncodingSize) {
  Writer w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.PutVarint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(SerializeTest, SignedVarintRoundTrip) {
  const int64_t cases[] = {0,  -1, 1,  -64, 64, -65,
                           1000000, -1000000,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t v : cases) {
    Writer w;
    w.PutVarintSigned(v);
    Reader r(w.data());
    EXPECT_EQ(*r.GetVarintSigned(), v) << v;
  }
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  Writer w;
  w.PutString("hello, edgelet");
  w.PutString("");
  Bytes blob = {0x00, 0xFF, 0x7F, 0x80};
  w.PutBytes(blob);

  Reader r(w.data());
  EXPECT_EQ(*r.GetString(), "hello, edgelet");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetBytes(), blob);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadsFail) {
  Writer w;
  w.PutU64(1);
  Reader r(w.data().data(), 4);
  auto res = r.GetU64();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, TruncatedStringFails) {
  Writer w;
  w.PutString("abcdef");
  Reader r(w.data().data(), 3);  // length prefix says 6, only 2 available
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerializeTest, OverlongVarintFails) {
  Bytes b(11, 0xFF);  // 11 continuation bytes > max 10 for 64-bit
  Reader r(b);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(SerializeTest, BoolByteValidation) {
  Bytes b = {2};
  Reader r(b);
  auto res = r.GetBool();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, DoubleSpecialValues) {
  Writer w;
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(-0.0);
  Reader r(w.data());
  EXPECT_EQ(*r.GetDouble(), std::numeric_limits<double>::infinity());
  double neg_zero = *r.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(ToHex(b), "deadbeef");
  auto back = FromHex("deadbeef");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
  auto upper = FromHex("DEADBEEF");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*upper, b);
}

TEST(BytesTest, HexRejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(ToHex(Bytes{}), "");
  auto b = FromHex("");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());
}

}  // namespace
}  // namespace edgelet
