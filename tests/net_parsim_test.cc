// Engine-level contract tests for the window-barrier parallel simulator:
// serial equivalence of the event schedule, window-boundary edge cases,
// cross-shard cancellation, and handle uniqueness. The framework-level
// fingerprint equality lives in exec_parsim_determinism_test.cc.

#include "net/parsim/parallel_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "net/network.h"
#include "net/simulator.h"

namespace edgelet::net {
namespace {

constexpr SimDuration kLookahead = 1000;

std::unique_ptr<parsim::ParallelSimulator> MakeParallel(size_t shards,
                                                        uint64_t seed = 1) {
  parsim::ParallelSimulator::Options options;
  options.num_shards = shards;
  options.lookahead = kLookahead;
  return std::make_unique<parsim::ParallelSimulator>(seed, options);
}

// A deterministic multi-node workload: each node's callbacks append to that
// node's private log (so recording is single-writer per shard) and forward
// work to the next node at >= lookahead distance, plus occasional
// zero-delay self-sends. The resulting per-node logs must be identical on
// every engine.
struct Workload {
  explicit Workload(size_t num_nodes) : logs(num_nodes + 1) {}

  void Seed(SimEngine* engine, size_t num_nodes) {
    for (NodeId node = 1; node <= num_nodes; ++node) {
      engine->ScheduleAt(node, node * 7,
                         [this, engine, node, num_nodes]() {
                           Tick(engine, node, num_nodes, 0);
                         });
    }
  }

  void Tick(SimEngine* engine, NodeId node, size_t num_nodes, int depth) {
    logs[node].push_back(engine->now());
    if (depth >= 6) return;
    NodeId next = node % num_nodes + 1;
    engine->ScheduleAfter(next, kLookahead + node * 3 + depth,
                          [this, engine, next, num_nodes, depth]() {
                            Tick(engine, next, num_nodes, depth + 1);
                          });
    if (depth % 2 == 0) {
      // Zero-delay self-send: must run inside the same window, after the
      // scheduling event.
      engine->ScheduleAfter(node, 0, [this, engine, node]() {
        logs[node].push_back(engine->now() | (uint64_t{1} << 62));
      });
    }
  }

  std::vector<std::vector<uint64_t>> logs;
};

TEST(ParsimTest, MatchesSerialScheduleForAnyShardCount) {
  constexpr size_t kNodes = 23;
  Workload serial(kNodes);
  Simulator sim(1);
  serial.Seed(&sim, kNodes);
  sim.Run();
  size_t serial_executed = sim.events_executed();

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Workload par(kNodes);
    auto engine = MakeParallel(shards);
    par.Seed(engine.get(), kNodes);
    engine->Run();
    EXPECT_EQ(engine->lookahead_violations(), 0u) << shards << " shards";
    EXPECT_EQ(engine->events_executed(), serial_executed)
        << shards << " shards";
    EXPECT_EQ(par.logs, serial.logs) << shards << " shards";
  }
}

TEST(ParsimTest, EventExactlyAtWindowBoundaryRuns) {
  auto engine = MakeParallel(2);
  std::vector<std::pair<NodeId, SimTime>> order;  // driven by node 1 only
  // Window is [7, 7 + lookahead); the cross-shard event lands exactly at
  // the exclusive end — legal (not a violation) and must run next window.
  engine->ScheduleAt(1, 7, [&]() {
    engine->ScheduleAt(2, 7 + kLookahead, [&, e = engine.get()]() {
      order.emplace_back(2, e->now());
    });
    order.emplace_back(1, engine->now());
  });
  engine->Run();
  EXPECT_EQ(engine->lookahead_violations(), 0u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<NodeId, SimTime>{1, 7}));
  EXPECT_EQ(order[1], (std::pair<NodeId, SimTime>{2, 7 + kLookahead}));
}

TEST(ParsimTest, ZeroDelaySelfSendStaysInWindow) {
  auto engine = MakeParallel(4);
  std::vector<int> order;
  engine->ScheduleAt(3, 500, [&]() {
    order.push_back(1);
    engine->ScheduleAfter(3, 0, [&]() { order.push_back(2); });
  });
  // A same-time event for another node co-resident on the shard would be a
  // different story; self-sends are always safe.
  size_t executed = engine->RunUntil(500);
  EXPECT_EQ(executed, 2u);  // both ran without leaving the window
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine->lookahead_violations(), 0u);
}

TEST(ParsimTest, CrossShardScheduleInsideWindowCountsViolation) {
  auto engine = MakeParallel(2);
  bool ran = false;
  engine->ScheduleAt(1, 100, [&]() {
    // Node 2 lives on the other shard; lookahead/2 is inside the window.
    engine->ScheduleAfter(2, kLookahead / 2, [&]() { ran = true; });
  });
  engine->Run();
  EXPECT_TRUE(ran);  // still executed (late), just flagged
  EXPECT_EQ(engine->lookahead_violations(), 1u);
}

TEST(ParsimTest, CrossShardCancelBeyondLookaheadIsDeterministic) {
  auto engine = MakeParallel(2);
  bool victim_ran = false;
  uint64_t victim = kInvalidEventId;
  // Node 1 (shard 1) schedules the victim onto node 2 (shard 0) three
  // lookaheads out — a genuine cross-shard schedule, so the handle is a
  // remote handle (bit 63) naming the destination shard.
  engine->ScheduleAt(1, 50, [&]() {
    victim = engine->ScheduleAt(2, 3 * kLookahead,
                                [&]() { victim_ran = true; });
    EXPECT_NE(victim & (uint64_t{1} << 63), 0u);
    EXPECT_EQ((victim >> 56) & 0x7F, engine->ShardOf(2));
  });
  // One window later — with the victim still more than a lookahead away —
  // node 1 cancels it; the cancel crosses the barrier and lands in time.
  bool cancel_enqueued = false;
  engine->ScheduleAt(1, kLookahead + 200, [&]() {
    cancel_enqueued = engine->Cancel(victim);
  });
  engine->Run();
  EXPECT_TRUE(cancel_enqueued);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(engine->lookahead_violations(), 0u);
  EXPECT_EQ(engine->pending_events(), 0u);
}

TEST(ParsimTest, CrossShardCancelWithinWindowArrivesTooLate) {
  auto engine = MakeParallel(2);
  bool victim_ran = false;
  // Victim (node 2, shard 0) and canceller (node 1, shard 1) both sit in
  // the first window [50, 50 + lookahead): the deferred cancel is only
  // applied at the barrier, after the victim already executed. This is the
  // documented semantics: cross-shard Cancel is deterministic only for
  // targets >= lookahead away.
  uint64_t victim = engine->ScheduleAt(2, 100, [&]() { victim_ran = true; });
  engine->ScheduleAt(1, 50, [&]() { engine->Cancel(victim); });
  engine->Run();
  EXPECT_TRUE(victim_ran);
}

TEST(ParsimTest, CoordinatorCancelWhileIdle) {
  auto engine = MakeParallel(4);
  bool a_ran = false, b_ran = false;
  uint64_t a = engine->ScheduleAt(1, 10, [&]() { a_ran = true; });
  uint64_t b = engine->ScheduleAt(2, 10, [&]() { b_ran = true; });
  EXPECT_TRUE(engine->Cancel(a));
  EXPECT_FALSE(engine->Cancel(a));  // double cancel
  engine->Run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(engine->Cancel(b));  // already executed
  EXPECT_FALSE(engine->Cancel(kInvalidEventId));
}

TEST(ParsimTest, EventIdsUniqueAcrossShardsAndEncodeShard) {
  auto engine = MakeParallel(8);
  std::set<uint64_t> ids;
  for (NodeId node = 1; node <= 40; ++node) {
    for (int k = 0; k < 5; ++k) {
      uint64_t id = engine->ScheduleAt(node, 10 + k, []() {});
      EXPECT_TRUE(ids.insert(id).second) << "duplicate id";
      EXPECT_EQ((id >> 56) & 0x7F, engine->ShardOf(node));
    }
  }
  EXPECT_EQ(engine->pending_events(), ids.size());
  for (uint64_t id : ids) EXPECT_TRUE(engine->Cancel(id));
  EXPECT_EQ(engine->pending_events(), 0u);
  engine->Run();
  EXPECT_EQ(engine->events_executed(), 0u);
}

TEST(ParsimTest, RunUntilIsInclusiveAndResumable) {
  auto engine = MakeParallel(2);
  std::vector<SimTime> fired;  // node 1 only: single-writer
  for (SimTime t : {100u, 200u, 300u}) {
    engine->ScheduleAt(1, t, [&fired, t]() { fired.push_back(t); });
  }
  EXPECT_EQ(engine->RunUntil(200), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(engine->now(), 200u);
  EXPECT_EQ(engine->RunUntil(kSimTimeNever), 1u);
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 200, 300}));
}

// A lookahead wider than the network's true minimum latency means
// cross-shard deliveries land inside the window that sent them — the
// misconfiguration lookahead_violations_ exists to expose. The correctly
// configured engine (lookahead == min_latency) must count zero on the same
// workload.
TEST(ParsimTest, MisconfiguredLookaheadCountsViolationsCorrectOneDoesNot) {
  auto run = [](SimDuration engine_lookahead) {
    parsim::ParallelSimulator::Options options;
    options.num_shards = 2;
    options.lookahead = engine_lookahead;
    parsim::ParallelSimulator engine(1, options);
    // The "network" schedules cross-shard deliveries kLookahead/2 out —
    // its true minimum latency. Node 1 (shard 1) -> node 2 (shard 0).
    for (int i = 0; i < 4; ++i) {
      engine.ScheduleAt(1, 100 + i * 2 * kLookahead, [&engine]() {
        engine.ScheduleAfter(2, kLookahead / 2, []() {});
      });
    }
    engine.Run();
    return engine.lookahead_violations();
  };
  EXPECT_EQ(run(kLookahead / 2), 0u);   // lookahead == true min latency
  EXPECT_EQ(run(kLookahead), 4u);       // lookahead 2x too large: every
                                        // cross-shard send is flagged
}

// Window batching: a workload where one shard is busy while every other
// shard's next event is far away must be covered by solo windows (one
// shard running alone past the static window width), with far fewer
// rounds than the unbatched engine would spend — while still matching the
// serial schedule exactly.
// Node 1 ticks a long dense local chain; node 2's lone event sits far in
// the future. Both logs are single-writer (one node each).
struct Sparse {
  static constexpr int kChainLen = 200;
  static constexpr SimDuration kStep = kLookahead / 4;
  SimEngine* engine = nullptr;
  std::vector<SimTime> chain_log;  // node 1 only
  SimTime far_fired = 0;           // node 2 only

  void Seed() {
    engine->ScheduleAt(1, 5, [this]() { Tick(kChainLen - 1); });
    engine->ScheduleAt(2, 500 * kLookahead,
                       [this]() { far_fired = engine->now(); });
  }
  void Tick(int remaining) {
    chain_log.push_back(engine->now());
    if (remaining > 0) {
      engine->ScheduleAfter(1, kStep,
                            [this, remaining]() { Tick(remaining - 1); });
    }
  }
};

TEST(ParsimTest, SparseWorkloadBatchesIntoSoloWindows) {
  Sparse serial_w;
  Simulator serial(1);
  serial_w.engine = &serial;
  serial_w.Seed();
  serial.Run();
  ASSERT_EQ(serial_w.chain_log.size(), size_t{Sparse::kChainLen});

  Sparse par_w;
  auto engine = MakeParallel(4);
  par_w.engine = engine.get();
  par_w.Seed();
  engine->Run();

  EXPECT_EQ(par_w.chain_log, serial_w.chain_log);
  EXPECT_EQ(par_w.far_fired, serial_w.far_fired);
  EXPECT_EQ(engine->lookahead_violations(), 0u);
  auto stats = engine->batch_stats();
  EXPECT_GT(stats.solo_windows, 0u);
  // Unbatched, the chain alone spans kChainLen * kStep / lookahead = 50
  // windows plus ~450 empty-gap windows before node 2 fires. Batching must
  // collapse the whole run into a handful of rounds.
  EXPECT_LT(stats.windows, 10u);
}

// The boomerang hazard of solo batching: while shard(1) runs alone, a
// transfer it emits at tau can wake shard(0), whose reply legally lands
// back on shard(1) at tau + lookahead — inside the naively extended
// window. The dynamic clamp (exec_limit <= tau + L - 1) must stop the solo
// shard there, or the reply merges after later local events already ran.
// Node 1: dense local chain. Midway it pings node 2 exactly one lookahead
// out; node 2 replies to node 1 another lookahead later. The reply's time
// sits inside what the solo span would have covered without the clamp, so
// node 1's log order (chain tick at the reply's time first — lower origin
// — then the reply, then the rest of the chain) is the discriminator.
struct Boomerang {
  static constexpr int kChainLen = 100;
  static constexpr SimDuration kStep = kLookahead / 10;
  SimEngine* engine = nullptr;
  std::vector<uint64_t> log1;  // node 1 only
  std::vector<uint64_t> log2;  // node 2 only

  void Seed() {
    engine->ScheduleAt(1, 3, [this]() { Tick(kChainLen - 1); });
    engine->ScheduleAt(1, 3 + 20 * kStep, [this]() {
      engine->ScheduleAfter(2, kLookahead, [this]() {
        log2.push_back(engine->now());
        engine->ScheduleAfter(1, kLookahead, [this]() {
          log1.push_back(engine->now() | (uint64_t{1} << 62));
        });
      });
    });
  }
  void Tick(int remaining) {
    log1.push_back(engine->now());
    if (remaining > 0) {
      engine->ScheduleAfter(1, kStep,
                            [this, remaining]() { Tick(remaining - 1); });
    }
  }
};

TEST(ParsimTest, SoloBatchBoomerangReplyMatchesSerial) {
  Boomerang serial_w;
  Simulator serial(1);
  serial_w.engine = &serial;
  serial_w.Seed();
  serial.Run();
  ASSERT_EQ(serial_w.log2.size(), 1u);

  for (size_t shards : {size_t{2}, size_t{4}}) {
    Boomerang par_w;
    auto engine = MakeParallel(shards);
    par_w.engine = engine.get();
    par_w.Seed();
    engine->Run();
    EXPECT_EQ(par_w.log1, serial_w.log1) << shards << " shards";
    EXPECT_EQ(par_w.log2, serial_w.log2) << shards << " shards";
    EXPECT_EQ(engine->lookahead_violations(), 0u) << shards << " shards";
  }
}

// Satellite regression: a mailbox-TTL purge racing a reconnect across a
// window barrier. The receiver reconnects one window after the TTL
// elapsed; serial and sharded engines must agree on whether the queued
// message expired (it does) and report identical stats.
TEST(ParsimTest, MailboxTtlPurgeAcrossBarrierMatchesSerial) {
  struct Probe : Node {
    void OnMessage(const Message& msg) override { (void)msg; ++delivered; }
    int delivered = 0;
  };

  auto run = [](SimEngine* engine) {
    NetworkConfig cfg;
    cfg.latency.min_latency = kLookahead;
    cfg.latency.mean_extra = 0;
    cfg.store_and_forward = true;
    cfg.mailbox_ttl = 3 * kLookahead;
    Network net(engine, cfg);
    Probe sender_node;
    auto receiver = std::make_unique<Probe>();
    NodeId sender = net.Register(&sender_node);
    NodeId rx = net.Register(receiver.get());
    // Receiver goes dark just before the delivery lands.
    engine->ScheduleAt(rx, kLookahead / 2,
                       [&net, rx]() { net.SetOnline(rx, false); });
    engine->ScheduleAt(sender, 1, [&net, sender, rx]() {
      Message m;
      m.from = sender;
      m.to = rx;
      m.type = 7;
      m.payload = BytesFromString("x");
      net.Send(m);
    });
    // Reconnect well past the TTL: the flush must purge, not deliver.
    engine->ScheduleAt(rx, 6 * kLookahead,
                       [&net, rx]() { net.SetOnline(rx, true); });
    engine->Run();
    NetworkStats stats = net.stats();
    EXPECT_EQ(receiver->delivered, 0);
    return std::make_pair(stats.expired_in_mailbox, stats.messages_delivered);
  };

  Simulator serial(5);
  auto expected = run(&serial);
  EXPECT_EQ(expected.first, 1u);
  for (size_t shards : {size_t{2}, size_t{4}}) {
    auto engine = MakeParallel(shards, 5);
    EXPECT_EQ(run(engine.get()), expected) << shards << " shards";
    EXPECT_EQ(engine->lookahead_violations(), 0u);
  }
}

}  // namespace
}  // namespace edgelet::net
