#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/partition.h"
#include "data/schema.h"
#include "data/table.h"
#include "data/value.h"

namespace edgelet::data {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble}});
}

Table TestTable() {
  Table t(TestSchema());
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value("alice"), Value(9.5)}).ok());
  EXPECT_TRUE(t.Append({Value(int64_t{2}), Value("bob"), Value(7.25)}).ok());
  EXPECT_TRUE(t.Append({Value(int64_t{3}), Value("carol"), Value(8.0)}).ok());
  return t;
}

// --- Value ------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{3}).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value(1.5).ToDouble(), 1.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value(int64_t{7}), Value(int64_t{7}));
  EXPECT_NE(Value(int64_t{7}), Value(7.0));  // different types
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, SerializationRoundTrip) {
  std::vector<Value> values = {Value::Null(), Value(int64_t{-5}),
                               Value(int64_t{1} << 40), Value(3.25),
                               Value(""), Value("héllo")};
  Writer w;
  for (const auto& v : values) v.Serialize(&w);
  Reader r(w.data());
  for (const auto& v : values) {
    auto got = Value::Deserialize(&r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueTest, DeserializeRejectsBadTag) {
  Bytes b = {9};
  Reader r(b);
  EXPECT_FALSE(Value::Deserialize(&r).ok());
}

// --- Schema -----------------------------------------------------------------

TEST(SchemaTest, IndexOfAndContains) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.IndexOf("name"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_TRUE(s.Contains("score"));
  EXPECT_FALSE(s.Contains("bogus"));
}

TEST(SchemaTest, Project) {
  Schema s = TestSchema();
  auto p = s.Project({"score", "id"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2u);
  EXPECT_EQ(p->column(0).name, "score");
  EXPECT_EQ(p->column(1).name, "id");
  EXPECT_FALSE(s.Project({"nope"}).ok());
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema s = TestSchema();
  Writer w;
  s.Serialize(&w);
  Reader r(w.data());
  auto back = Schema::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, AppendValidates) {
  Table t(TestSchema());
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value("a"), Value(1.0)}).ok());
  // Wrong arity.
  EXPECT_FALSE(t.Append({Value(int64_t{1})}).ok());
  // Wrong type.
  EXPECT_FALSE(t.Append({Value("x"), Value("a"), Value(1.0)}).ok());
  // NULL fits anywhere.
  EXPECT_TRUE(t.Append({Value::Null(), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, At) {
  Table t = TestTable();
  EXPECT_EQ(t.At(1, "name")->AsString(), "bob");
  EXPECT_FALSE(t.At(9, "name").ok());
  EXPECT_FALSE(t.At(0, "zzz").ok());
}

TEST(TableTest, Project) {
  Table t = TestTable();
  auto p = t.Project({"name"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_rows(), 3u);
  EXPECT_EQ(p->row(2)[0].AsString(), "carol");
}

TEST(TableTest, Filter) {
  Table t = TestTable();
  Table f = t.Filter([](const Tuple& r) { return r[2].AsDouble() >= 8.0; });
  EXPECT_EQ(f.num_rows(), 2u);
}

TEST(TableTest, ConcatChecksSchema) {
  Table a = TestTable();
  Table b = TestTable();
  EXPECT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 6u);
  Table other(Schema({{"x", ValueType::kInt64}}));
  EXPECT_FALSE(a.Concat(other).ok());
}

TEST(TableTest, SortRowsIsDeterministic) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Append({Value(int64_t{2}), Value("b"), Value(1.0)}).ok());
  ASSERT_TRUE(t.Append({Value(int64_t{1}), Value("a"), Value(2.0)}).ok());
  t.SortRows();
  EXPECT_EQ(t.row(0)[0].AsInt64(), 1);
  EXPECT_EQ(t.row(1)[0].AsInt64(), 2);
}

TEST(TableTest, NumericColumn) {
  Table t = TestTable();
  auto c = t.NumericColumn("score");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 3u);
  EXPECT_DOUBLE_EQ((*c)[0], 9.5);
  auto ids = t.NumericColumn("id");
  ASSERT_TRUE(ids.ok());
  EXPECT_DOUBLE_EQ((*ids)[2], 3.0);
  EXPECT_FALSE(t.NumericColumn("name").ok());
}

TEST(TableTest, SerializationRoundTrip) {
  Table t = TestTable();
  Writer w;
  t.Serialize(&w);
  Reader r(w.data());
  auto back = Table::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TableTest, DeserializeTruncatedFails) {
  Table t = TestTable();
  Writer w;
  t.Serialize(&w);
  Bytes truncated(w.data().begin(), w.data().begin() + w.size() / 2);
  Reader r(truncated);
  EXPECT_FALSE(Table::Deserialize(&r).ok());
}

// --- CSV ----------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  Table t = TestTable();
  std::string csv = TableToCsv(t);
  auto back = TableFromCsv(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->row(0)[1].AsString(), "alice");
  EXPECT_DOUBLE_EQ(back->row(1)[2].AsDouble(), 7.25);
}

TEST(CsvTest, QuotedFields) {
  Table t(Schema({{"s", ValueType::kString}}));
  ASSERT_TRUE(t.Append({Value("has,comma")}).ok());
  ASSERT_TRUE(t.Append({Value("has\"quote")}).ok());
  ASSERT_TRUE(t.Append({Value("has\nnewline")}).ok());
  std::string csv = TableToCsv(t);
  auto back = TableFromCsv(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->row(0)[0].AsString(), "has,comma");
  EXPECT_EQ(back->row(1)[0].AsString(), "has\"quote");
  EXPECT_EQ(back->row(2)[0].AsString(), "has\nnewline");
}

TEST(CsvTest, NullsAsEmptyFields) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Append({Value::Null(), Value("x"), Value::Null()}).ok());
  auto back = TableFromCsv(TableToCsv(t), t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->row(0)[0].is_null());
  EXPECT_TRUE(back->row(0)[2].is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(TableFromCsv("a,b\n1,2\n", TestSchema()).ok());
}

TEST(CsvTest, BadNumericRejected) {
  Schema s({{"id", ValueType::kInt64}});
  EXPECT_FALSE(TableFromCsv("id\nnot_a_number\n", s).ok());
}

// --- Partitioning ----------------------------------------------------------------

TEST(PartitionTest, HashPartitionCoversAllRows) {
  Table t(Schema({{"id", ValueType::kInt64}}));
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Append({Value(i)}).ok());
  }
  auto parts = PartitionByHash(t, "id", 7);
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (const auto& p : *parts) total += p.num_rows();
  EXPECT_EQ(total, 1000u);
  // Hash partitioning should be roughly balanced.
  for (const auto& p : *parts) {
    EXPECT_GT(p.num_rows(), 80u);
    EXPECT_LT(p.num_rows(), 220u);
  }
}

TEST(PartitionTest, AssignmentIsStable) {
  EXPECT_EQ(PartitionForKey(12345, 8), PartitionForKey(12345, 8));
}

TEST(PartitionTest, RejectsBadInputs) {
  Table t(Schema({{"id", ValueType::kInt64}}));
  EXPECT_FALSE(PartitionByHash(t, "id", 0).ok());
  EXPECT_FALSE(PartitionByHash(t, "nope", 3).ok());
  Table s(Schema({{"name", ValueType::kString}}));
  EXPECT_FALSE(PartitionByHash(s, "name", 3).ok());
}

TEST(PartitionTest, NullKeyRejected) {
  Table t(Schema({{"id", ValueType::kInt64}}));
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  EXPECT_FALSE(PartitionByHash(t, "id", 3).ok());
}

TEST(PartitionTest, VerticalGroupsWithAlwaysInclude) {
  Table t = TestTable();
  auto parts =
      PartitionVertically(t, {{"name"}, {"score"}}, {"id"});
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].schema().ToString(), "(id:INT64, name:STRING)");
  EXPECT_EQ((*parts)[1].schema().ToString(), "(id:INT64, score:DOUBLE)");
  EXPECT_EQ((*parts)[0].num_rows(), 3u);
}

TEST(PartitionTest, VerticalDeduplicatesAlwaysInclude) {
  Table t = TestTable();
  auto parts = PartitionVertically(t, {{"id", "name"}}, {"id"});
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[0].schema().num_columns(), 2u);
}

}  // namespace
}  // namespace edgelet::data
