#include "resilience/overcollection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace edgelet::resilience {
namespace {

TEST(ProbAtLeastTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(ProbAtLeast(0, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(11, 10, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(5, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(5, 10, 0.0), 0.0);
}

TEST(ProbAtLeastTest, MatchesClosedForms) {
  // P[>=1 of 2 @ 0.5] = 0.75
  EXPECT_NEAR(ProbAtLeast(1, 2, 0.5), 0.75, 1e-12);
  // P[>=2 of 2 @ 0.9] = 0.81
  EXPECT_NEAR(ProbAtLeast(2, 2, 0.9), 0.81, 1e-12);
  // P[>=2 of 3 @ 0.5] = 0.5
  EXPECT_NEAR(ProbAtLeast(2, 3, 0.5), 0.5, 1e-12);
}

TEST(ProbAtLeastTest, MonotoneInSurvival) {
  double prev = 0.0;
  for (double s = 0.05; s < 1.0; s += 0.05) {
    double p = ProbAtLeast(8, 12, s);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ProbAtLeastTest, MonotoneInTotal) {
  double prev = 0.0;
  for (int total = 10; total <= 30; ++total) {
    double p = ProbAtLeast(10, total, 0.8);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(ProbAtLeastTest, AgreesWithMonteCarlo) {
  edgelet::Rng rng(8);
  const int need = 7, total = 10;
  const double s = 0.85;
  const int trials = 200000;
  int ok_count = 0;
  for (int t = 0; t < trials; ++t) {
    int alive = 0;
    for (int i = 0; i < total; ++i) alive += rng.NextBernoulli(s);
    ok_count += (alive >= need);
  }
  double mc = static_cast<double>(ok_count) / trials;
  EXPECT_NEAR(ProbAtLeast(need, total, s), mc, 0.005);
}

TEST(ProbAtLeastTest, LargeNStable) {
  // 1000 partitions: log-space computation must not under/overflow.
  double p = ProbAtLeast(1000, 1100, 0.95);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_GT(p, 0.99);  // E[alive] = 1045 >> 1000
}

TEST(MinOvercollectionTest, ZeroFailureNeedsNoOvercollection) {
  auto m = MinOvercollection(10, 0.0, 0.999);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 0);
}

TEST(MinOvercollectionTest, GrowsWithFailureProbability) {
  int prev = 0;
  for (double p : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    auto m = MinOvercollection(10, p, 0.99);
    ASSERT_TRUE(m.ok());
    EXPECT_GE(*m, prev);
    prev = *m;
  }
  EXPECT_GT(prev, 0);
}

TEST(MinOvercollectionTest, GrowsWithTarget) {
  auto low = MinOvercollection(10, 0.1, 0.9);
  auto high = MinOvercollection(10, 0.1, 0.99999);
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(*high, *low);
}

TEST(MinOvercollectionTest, ResultActuallyMeetsTarget) {
  for (double p : {0.02, 0.1, 0.25}) {
    for (int n : {2, 10, 50}) {
      auto m = MinOvercollection(n, p, 0.99);
      ASSERT_TRUE(m.ok());
      double s = PartitionSurvivalProbability(p, 2);
      EXPECT_GE(ProbAtLeast(n, n + *m, s), 0.99);
      if (*m > 0) {
        EXPECT_LT(ProbAtLeast(n, n + *m - 1, s), 0.99)
            << "m not minimal for n=" << n << " p=" << p;
      }
    }
  }
}

TEST(MinOvercollectionTest, MoreOpsPerPartitionNeedsMoreOvercollection) {
  auto m2 = MinOvercollection(10, 0.1, 0.99, /*ops_per_partition=*/2);
  auto m4 = MinOvercollection(10, 0.1, 0.99, /*ops_per_partition=*/4);
  ASSERT_TRUE(m2.ok() && m4.ok());
  EXPECT_GE(*m4, *m2);
}

TEST(MinOvercollectionTest, OvercollectionStaysCheap) {
  // Paper narrative: for realistic p, m << n.
  auto m = MinOvercollection(100, 0.05, 0.99);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(*m, 30);
}

TEST(MinOvercollectionTest, RejectsBadArguments) {
  EXPECT_FALSE(MinOvercollection(0, 0.1, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, -0.1, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, 1.0, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 0.0).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 1.5).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 0.99, 0).ok());
}

TEST(MinOvercollectionTest, UnreachableTargetFails) {
  EXPECT_FALSE(MinOvercollection(10, 0.9, 0.999999, 2, /*max_m=*/3).ok());
}

TEST(MinBackupReplicasTest, ZeroFailureNeedsNone) {
  auto b = MinBackupReplicas(20, 0.0, 0.999);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 0);
}

TEST(MinBackupReplicasTest, MeetsTargetAndMinimal) {
  for (double p : {0.05, 0.2}) {
    for (int ops : {5, 20}) {
      auto b = MinBackupReplicas(ops, p, 0.99);
      ASSERT_TRUE(b.ok());
      auto meets = [&](int reps) {
        return std::pow(1.0 - std::pow(p, reps + 1), ops) >= 0.99;
      };
      EXPECT_TRUE(meets(*b));
      if (*b > 0) {
        EXPECT_FALSE(meets(*b - 1));
      }
    }
  }
}

TEST(MinBackupReplicasTest, MoreOperatorsNeedMoreReplicas) {
  auto few = MinBackupReplicas(2, 0.2, 0.999);
  auto many = MinBackupReplicas(500, 0.2, 0.999);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GE(*many, *few);
}

TEST(PartitionSurvivalTest, Basics) {
  EXPECT_DOUBLE_EQ(PartitionSurvivalProbability(0.0, 3), 1.0);
  EXPECT_NEAR(PartitionSurvivalProbability(0.1, 2), 0.81, 1e-12);
  EXPECT_DOUBLE_EQ(PartitionSurvivalProbability(1.0, 1), 0.0);
}

}  // namespace
}  // namespace edgelet::resilience
