#include "resilience/overcollection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "resilience/failure_detector.h"

namespace edgelet::resilience {
namespace {

// Independent reference for the binomial tail, written against a different
// formulation than the library's (log-space term recursion there; direct
// lgamma-based log-PMF summation here) so a shared algebra slip cannot
// cancel out.
double RefProbAtLeast(int need, int total, double s) {
  if (need <= 0) return 1.0;
  if (need > total) return 0.0;
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 1.0;
  double sum = 0.0;
  for (int k = need; k <= total; ++k) {
    double log_pmf = std::lgamma(total + 1.0) - std::lgamma(k + 1.0) -
                     std::lgamma(total - k + 1.0) + k * std::log(s) +
                     (total - k) * std::log1p(-s);
    sum += std::exp(log_pmf);
  }
  return std::min(sum, 1.0);
}

// Reference minimal-m search against RefProbAtLeast.
int RefMinOvercollection(int n, double p, double target, int ops) {
  double s = std::pow(1.0 - p, ops);
  for (int m = 0;; ++m) {
    if (RefProbAtLeast(n, n + m, s) >= target) return m;
  }
}

TEST(ProbAtLeastTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(ProbAtLeast(0, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(11, 10, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(5, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeast(5, 10, 0.0), 0.0);
}

TEST(ProbAtLeastTest, MatchesClosedForms) {
  // P[>=1 of 2 @ 0.5] = 0.75
  EXPECT_NEAR(ProbAtLeast(1, 2, 0.5), 0.75, 1e-12);
  // P[>=2 of 2 @ 0.9] = 0.81
  EXPECT_NEAR(ProbAtLeast(2, 2, 0.9), 0.81, 1e-12);
  // P[>=2 of 3 @ 0.5] = 0.5
  EXPECT_NEAR(ProbAtLeast(2, 3, 0.5), 0.5, 1e-12);
}

TEST(ProbAtLeastTest, MonotoneInSurvival) {
  double prev = 0.0;
  for (double s = 0.05; s < 1.0; s += 0.05) {
    double p = ProbAtLeast(8, 12, s);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ProbAtLeastTest, MonotoneInTotal) {
  double prev = 0.0;
  for (int total = 10; total <= 30; ++total) {
    double p = ProbAtLeast(10, total, 0.8);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(ProbAtLeastTest, AgreesWithMonteCarlo) {
  edgelet::Rng rng(8);
  const int need = 7, total = 10;
  const double s = 0.85;
  const int trials = 200000;
  int ok_count = 0;
  for (int t = 0; t < trials; ++t) {
    int alive = 0;
    for (int i = 0; i < total; ++i) alive += rng.NextBernoulli(s);
    ok_count += (alive >= need);
  }
  double mc = static_cast<double>(ok_count) / trials;
  EXPECT_NEAR(ProbAtLeast(need, total, s), mc, 0.005);
}

TEST(ProbAtLeastTest, LargeNStable) {
  // 1000 partitions: log-space computation must not under/overflow.
  double p = ProbAtLeast(1000, 1100, 0.95);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_GT(p, 0.99);  // E[alive] = 1045 >> 1000
}

TEST(MinOvercollectionTest, ZeroFailureNeedsNoOvercollection) {
  auto m = MinOvercollection(10, 0.0, 0.999);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 0);
}

TEST(MinOvercollectionTest, GrowsWithFailureProbability) {
  int prev = 0;
  for (double p : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    auto m = MinOvercollection(10, p, 0.99);
    ASSERT_TRUE(m.ok());
    EXPECT_GE(*m, prev);
    prev = *m;
  }
  EXPECT_GT(prev, 0);
}

TEST(MinOvercollectionTest, GrowsWithTarget) {
  auto low = MinOvercollection(10, 0.1, 0.9);
  auto high = MinOvercollection(10, 0.1, 0.99999);
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(*high, *low);
}

TEST(MinOvercollectionTest, ResultActuallyMeetsTarget) {
  for (double p : {0.02, 0.1, 0.25}) {
    for (int n : {2, 10, 50}) {
      auto m = MinOvercollection(n, p, 0.99);
      ASSERT_TRUE(m.ok());
      double s = PartitionSurvivalProbability(p, 2);
      EXPECT_GE(ProbAtLeast(n, n + *m, s), 0.99);
      if (*m > 0) {
        EXPECT_LT(ProbAtLeast(n, n + *m - 1, s), 0.99)
            << "m not minimal for n=" << n << " p=" << p;
      }
    }
  }
}

TEST(MinOvercollectionTest, MoreOpsPerPartitionNeedsMoreOvercollection) {
  auto m2 = MinOvercollection(10, 0.1, 0.99, /*ops_per_partition=*/2);
  auto m4 = MinOvercollection(10, 0.1, 0.99, /*ops_per_partition=*/4);
  ASSERT_TRUE(m2.ok() && m4.ok());
  EXPECT_GE(*m4, *m2);
}

TEST(MinOvercollectionTest, OvercollectionStaysCheap) {
  // Paper narrative: for realistic p, m << n.
  auto m = MinOvercollection(100, 0.05, 0.99);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(*m, 30);
}

TEST(MinOvercollectionTest, RejectsBadArguments) {
  EXPECT_FALSE(MinOvercollection(0, 0.1, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, -0.1, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, 1.0, 0.99).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 0.0).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 1.5).ok());
  EXPECT_FALSE(MinOvercollection(10, 0.1, 0.99, 0).ok());
}

TEST(MinOvercollectionTest, UnreachableTargetFails) {
  EXPECT_FALSE(MinOvercollection(10, 0.9, 0.999999, 2, /*max_m=*/3).ok());
}

TEST(MinBackupReplicasTest, ZeroFailureNeedsNone) {
  auto b = MinBackupReplicas(20, 0.0, 0.999);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 0);
}

TEST(MinBackupReplicasTest, MeetsTargetAndMinimal) {
  for (double p : {0.05, 0.2}) {
    for (int ops : {5, 20}) {
      auto b = MinBackupReplicas(ops, p, 0.99);
      ASSERT_TRUE(b.ok());
      auto meets = [&](int reps) {
        return std::pow(1.0 - std::pow(p, reps + 1), ops) >= 0.99;
      };
      EXPECT_TRUE(meets(*b));
      if (*b > 0) {
        EXPECT_FALSE(meets(*b - 1));
      }
    }
  }
}

TEST(MinBackupReplicasTest, MoreOperatorsNeedMoreReplicas) {
  auto few = MinBackupReplicas(2, 0.2, 0.999);
  auto many = MinBackupReplicas(500, 0.2, 0.999);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GE(*many, *few);
}

TEST(PartitionSurvivalTest, Basics) {
  EXPECT_DOUBLE_EQ(PartitionSurvivalProbability(0.0, 3), 1.0);
  EXPECT_NEAR(PartitionSurvivalProbability(0.1, 2), 0.81, 1e-12);
  EXPECT_DOUBLE_EQ(PartitionSurvivalProbability(1.0, 1), 0.0);
}

// Pins the planner's Overcollection sizing against the independent
// reference: a partition with v vertical groups runs 2*v single-instance
// operators (one builder AND one computer per group), and MinOvercollection
// fed ops_per_partition = 2*v must agree with a from-scratch minimal-m
// search for every vgroups count the planner produces.
TEST(MinOvercollectionTest, BinomialSizingMatchesIndependentReference) {
  for (int vgroups : {1, 2, 3}) {
    for (double p : {0.05, 0.1, 0.25}) {
      for (int n : {2, 8, 20}) {
        const int ops = 2 * vgroups;
        auto m = MinOvercollection(n, p, 0.99, ops);
        ASSERT_TRUE(m.ok()) << "vgroups=" << vgroups << " p=" << p;
        EXPECT_EQ(*m, RefMinOvercollection(n, p, 0.99, ops))
            << "vgroups=" << vgroups << " p=" << p << " n=" << n;
      }
    }
  }
}

// The sizing bug the planner fix removes: modeling a v-vgroup partition as
// 1 + v operators (as if its builders shared one device) overstates the
// partition survival probability, so the resulting m misses the
// reliability target for every multi-vgroup plan. At v = 1 the two
// formulas coincide (1 + 1 == 2 * 1).
TEST(MinOvercollectionTest, OldOnePlusVgroupsFormulaUnderProvisions) {
  EXPECT_EQ(2 * 1, 1 + 1);
  bool any_under = false;
  for (int vgroups : {2, 3}) {
    for (double p : {0.1, 0.25}) {
      const int n = 10;
      auto m_old = MinOvercollection(n, p, 0.99, /*ops=*/1 + vgroups);
      ASSERT_TRUE(m_old.ok());
      // True per-partition survival: all 2*v operators alive.
      double s_true = std::pow(1.0 - p, 2 * vgroups);
      double achieved = RefProbAtLeast(n, n + *m_old, s_true);
      EXPECT_LE(achieved, 0.99 + 1e-12)
          << "old formula accidentally sufficient at vgroups=" << vgroups
          << " p=" << p;
      if (achieved < 0.99) any_under = true;
    }
  }
  EXPECT_TRUE(any_under)
      << "old formula never actually missed the target in this sweep";
}

// ---------------------------------------------------------------------------
// Heartbeat/lease failure detector.

FailureDetectorConfig DetectorConfig() {
  FailureDetectorConfig cfg;
  cfg.lease_period = 5 * kSecond;
  cfg.miss_threshold = 3;
  cfg.suspicion_backoff = 2.0;
  cfg.max_backoff_steps = 3;
  cfg.jitter_fraction = 0.1;
  cfg.seed = 42;
  return cfg;
}

TEST(FailureDetectorTest, SuspectsAfterLeaseExpiry) {
  FailureDetector fd(DetectorConfig());
  fd.Register(1, /*now=*/0);
  // Base lease = 15 s plus up to 1.5 s jitter.
  SimTime deadline = fd.SuspicionDeadline(1);
  EXPECT_GE(deadline, 15 * kSecond);
  EXPECT_LE(deadline, 15 * kSecond + 1500 * kMillisecond);
  EXPECT_TRUE(fd.Scan(deadline).empty());
  auto suspects = fd.Scan(deadline + 1);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 1u);
  EXPECT_TRUE(fd.IsSuspected(1));
  EXPECT_EQ(fd.detections(), 1u);
  // Reported exactly once until cleared.
  EXPECT_TRUE(fd.Scan(deadline + 10 * kSecond).empty());
}

TEST(FailureDetectorTest, HeartbeatRenewsLease) {
  FailureDetector fd(DetectorConfig());
  fd.Register(1, /*now=*/0);
  for (int beat = 1; beat <= 10; ++beat) {
    fd.Heartbeat(1, beat * 5 * kSecond);
    EXPECT_TRUE(fd.Scan(beat * 5 * kSecond).empty());
  }
  EXPECT_FALSE(fd.IsSuspected(1));
  EXPECT_EQ(fd.detections(), 0u);
  EXPECT_GT(fd.SuspicionDeadline(1), 50 * kSecond + 15 * kSecond);
}

TEST(FailureDetectorTest, FalseSuspicionWidensLease) {
  FailureDetector fd(DetectorConfig());
  fd.Register(1, /*now=*/0);
  SimTime first_deadline = fd.SuspicionDeadline(1);
  ASSERT_EQ(fd.Scan(first_deadline + 1).size(), 1u);
  // The "dead" operator speaks: false suspicion, lease doubles.
  SimTime beat = first_deadline + 2 * kSecond;
  fd.Heartbeat(1, beat);
  EXPECT_FALSE(fd.IsSuspected(1));
  EXPECT_EQ(fd.false_suspicions(), 1u);
  SimTime widened = fd.SuspicionDeadline(1);
  // New lease ~= 2 * 15 s (+ jitter) from the heartbeat.
  EXPECT_GE(widened - beat, 30 * kSecond);
  EXPECT_LE(widened - beat, 30 * kSecond + 3 * kSecond);
  // Backoff saturates at max_backoff_steps (lease <= 15 s * 2^3 + jitter).
  for (int i = 0; i < 10; ++i) {
    SimTime d = fd.SuspicionDeadline(1);
    fd.Scan(d + 1);
    fd.Heartbeat(1, d + 2);
  }
  SimTime last_beat = fd.SuspicionDeadline(1);  // probe via one more beat
  fd.Heartbeat(1, last_beat);
  EXPECT_LE(fd.SuspicionDeadline(1) - last_beat,
            15 * kSecond * 8 + 12 * kSecond);
}

TEST(FailureDetectorTest, DeterministicAcrossInstancesAndOrder) {
  // Two detectors with the same seed must assign each op the same jitter
  // regardless of registration order: the stream is keyed by op id alone.
  FailureDetector a(DetectorConfig());
  FailureDetector b(DetectorConfig());
  a.Register(1, 0);
  a.Register(2, 0);
  a.Register(3, 0);
  b.Register(3, 0);
  b.Register(1, 0);
  b.Register(2, 0);
  for (uint64_t op : {1u, 2u, 3u}) {
    EXPECT_EQ(a.SuspicionDeadline(op), b.SuspicionDeadline(op)) << op;
  }
  // Scan reports in op-id order independent of registration order.
  EXPECT_EQ(a.Scan(100 * kSecond), b.Scan(100 * kSecond));
}

TEST(FailureDetectorTest, DeregisterStopsMonitoring) {
  FailureDetector fd(DetectorConfig());
  fd.Register(1, 0);
  fd.Register(2, 0);
  EXPECT_EQ(fd.monitored_count(), 2u);
  fd.Deregister(1);
  EXPECT_EQ(fd.monitored_count(), 1u);
  EXPECT_FALSE(fd.IsRegistered(1));
  EXPECT_EQ(fd.SuspicionDeadline(1), kSimTimeNever);
  auto suspects = fd.Scan(100 * kSecond);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 2u);
}

TEST(FailureDetectorTest, ReRegisterResetsLeaseAndSuspicion) {
  FailureDetector fd(DetectorConfig());
  fd.Register(1, 0);
  ASSERT_EQ(fd.Scan(100 * kSecond).size(), 1u);
  EXPECT_TRUE(fd.IsSuspected(1));
  // Re-registration (the repair controller replacing the operator's
  // generation) opens a fresh lease.
  fd.Register(1, 100 * kSecond);
  EXPECT_FALSE(fd.IsSuspected(1));
  EXPECT_GE(fd.SuspicionDeadline(1), 100 * kSecond + 15 * kSecond);
  EXPECT_TRUE(fd.Scan(100 * kSecond).empty());
}

}  // namespace
}  // namespace edgelet::resilience
