#include "device/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generator.h"

namespace edgelet::device {
namespace {


// Direct-device tests drive the simulator to drain; churn would reschedule
// transitions forever, so pin the profiles to always-on.
DeviceProfile NoChurn(DeviceProfile p) {
  p.churn = net::ChurnModel::AlwaysOn();
  return p;
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : sim_(1),
        network_(&sim_, net::NetworkConfig{}),
        authority_(42) {}

  net::Simulator sim_;
  net::Network network_;
  tee::TrustAuthority authority_;
};

TEST_F(DeviceTest, ProfilesAreCalibrated) {
  EXPECT_EQ(DeviceProfile::Pc().cls, DeviceClass::kPcSgx);
  EXPECT_EQ(DeviceProfile::Smartphone().cls,
            DeviceClass::kSmartphoneTrustZone);
  EXPECT_EQ(DeviceProfile::HomeBox().cls, DeviceClass::kHomeBoxTpm);
  // The home box (STM32) is much slower than the PC.
  EXPECT_GT(DeviceProfile::HomeBox().compute_factor,
            10 * DeviceProfile::Pc().compute_factor);
  EXPECT_EQ(DeviceClassName(DeviceClass::kHomeBoxTpm), "HomeBox/TPM");
}

TEST_F(DeviceTest, ComputeCostScalesWithProfile) {
  Device pc(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  Device box(&network_, &authority_, NoChurn(DeviceProfile::HomeBox()), "code");
  EXPECT_GT(box.ComputeCost(1000), pc.ComputeCost(1000));
  EXPECT_EQ(pc.ComputeCost(0), 0u);
  EXPECT_EQ(pc.ComputeCost(2000), 2 * pc.ComputeCost(1000));
}

TEST_F(DeviceTest, SealedMessagingEndToEnd) {
  Device a(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  Device b(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  ASSERT_TRUE(a.enclave().Provision().ok());
  ASSERT_TRUE(b.enclave().Provision().ok());

  Bytes received;
  b.set_message_handler([&](const net::Message& msg) {
    auto opened = b.OpenPayload(msg);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    received = *opened;
  });
  ASSERT_TRUE(a.SendSealed(b.id(), 7, BytesFromString("hello box")).ok());
  sim_.Run();
  EXPECT_EQ(StringFromBytes(received), "hello box");
}

TEST_F(DeviceTest, OpenPayloadIntoReusesScratch) {
  Device a(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  Device b(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  ASSERT_TRUE(a.enclave().Provision().ok());
  ASSERT_TRUE(b.enclave().Provision().ok());

  Bytes scratch;  // one buffer across all deliveries
  std::vector<std::string> received;
  b.set_message_handler([&](const net::Message& msg) {
    Status s = b.OpenPayloadInto(msg, &scratch);
    ASSERT_TRUE(s.ok()) << s.ToString();
    received.push_back(StringFromBytes(scratch));
  });
  ASSERT_TRUE(a.SendSealed(b.id(), 7, BytesFromString("first message")).ok());
  ASSERT_TRUE(a.SendSealed(b.id(), 7, BytesFromString("2nd")).ok());
  sim_.Run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "first message");
  EXPECT_EQ(received[1], "2nd");
}

TEST_F(DeviceTest, SealedPayloadIsCiphertextOnTheWire) {
  Device a(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  Device b(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  ASSERT_TRUE(a.enclave().Provision().ok());
  ASSERT_TRUE(b.enclave().Provision().ok());
  Bytes wire;
  b.set_message_handler(
      [&](const net::Message& msg) { wire = msg.payload; });
  Bytes secret = BytesFromString("raw medical record");
  ASSERT_TRUE(a.SendSealed(b.id(), 1, secret).ok());
  sim_.Run();
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(wire.size(), secret.size() + 16);  // AEAD tag
  EXPECT_NE(Bytes(wire.begin(), wire.end() - 16), secret);
}

TEST_F(DeviceTest, UnprovisionedSendFails) {
  Device a(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  EXPECT_FALSE(a.SendSealed(99, 1, BytesFromString("x")).ok());
}

TEST_F(DeviceTest, SequenceNumbersAdvancePerMessage) {
  Device a(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  Device b(&network_, &authority_, NoChurn(DeviceProfile::Pc()), "code");
  ASSERT_TRUE(a.enclave().Provision().ok());
  ASSERT_TRUE(b.enclave().Provision().ok());
  std::vector<uint64_t> seqs;
  int opened_count = 0;
  b.set_message_handler([&](const net::Message& msg) {
    seqs.push_back(msg.seq);
    if (b.OpenPayload(msg).ok()) ++opened_count;
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.SendSealed(b.id(), 1, BytesFromString("m")).ok());
  }
  sim_.Run();
  ASSERT_EQ(seqs.size(), 5u);
  std::sort(seqs.begin(), seqs.end());
  for (int i = 1; i < 5; ++i) EXPECT_NE(seqs[i - 1], seqs[i]);
  EXPECT_EQ(opened_count, 5);
}

TEST_F(DeviceTest, FleetConstruction) {
  FleetConfig cfg;
  cfg.num_contributors = 50;
  cfg.num_processors = 10;
  Fleet fleet(&network_, &authority_, cfg, 7);
  EXPECT_EQ(fleet.contributors().size(), 50u);
  EXPECT_EQ(fleet.processors().size(), 10u);
  EXPECT_EQ(fleet.size(), 60u);
  net::NodeId some = fleet.processors()[3]->id();
  EXPECT_EQ(fleet.by_node(some), fleet.processors()[3]);
  EXPECT_EQ(fleet.by_node(999999), nullptr);
}

TEST_F(DeviceTest, FleetMixRoughlyRespected) {
  FleetConfig cfg;
  cfg.num_contributors = 1000;
  cfg.num_processors = 0;
  cfg.contributor_mix = {0.5, 0.5, 0.0};
  Fleet fleet(&network_, &authority_, cfg, 11);
  int pc = 0, phone = 0, box = 0;
  for (Device* d : fleet.contributors()) {
    switch (d->profile().cls) {
      case DeviceClass::kPcSgx:
        ++pc;
        break;
      case DeviceClass::kSmartphoneTrustZone:
        ++phone;
        break;
      case DeviceClass::kHomeBoxTpm:
        ++box;
        break;
    }
  }
  EXPECT_EQ(box, 0);
  EXPECT_NEAR(pc, 500, 60);
  EXPECT_NEAR(phone, 500, 60);
}

TEST_F(DeviceTest, FleetDataDistribution) {
  FleetConfig cfg;
  cfg.num_contributors = 20;
  cfg.num_processors = 2;
  Fleet fleet(&network_, &authority_, cfg, 3);
  data::HealthDataParams params;
  params.num_individuals = 20;
  data::Table table = data::GenerateHealthData(params, 5);
  ASSERT_TRUE(fleet.DistributeData(table).ok());
  for (size_t i = 0; i < 20; ++i) {
    const data::Table& local = fleet.contributors()[i]->local_data();
    ASSERT_EQ(local.num_rows(), 1u);
    EXPECT_EQ(local.row(0), table.row(i));
  }
  // Wrong cardinality rejected.
  data::HealthDataParams small;
  small.num_individuals = 5;
  EXPECT_FALSE(
      fleet.DistributeData(data::GenerateHealthData(small, 5)).ok());
}

TEST_F(DeviceTest, FleetProvisionAll) {
  FleetConfig cfg;
  cfg.num_contributors = 5;
  cfg.num_processors = 5;
  Fleet fleet(&network_, &authority_, cfg, 3);
  ASSERT_TRUE(fleet.ProvisionAll().ok());
  for (Device* d : fleet.processors()) {
    EXPECT_TRUE(d->enclave().provisioned());
  }
}

TEST_F(DeviceTest, ChurnDisabledMakesDevicesAlwaysOn) {
  FleetConfig cfg;
  cfg.num_contributors = 0;
  cfg.num_processors = 30;
  cfg.enable_churn = false;
  Fleet fleet(&network_, &authority_, cfg, 3);
  sim_.RunUntil(2 * kHour);
  for (Device* d : fleet.processors()) {
    EXPECT_TRUE(network_.IsOnline(d->id()));
  }
}

TEST_F(DeviceTest, FailurePlanProbability) {
  std::vector<net::NodeId> targets;
  for (net::NodeId i = 1; i <= 2000; ++i) targets.push_back(i);
  Rng rng(9);
  FailurePlan plan = PlanFailures(targets, 0.25, 0, 1000, &rng);
  EXPECT_NEAR(plan.kills.size(), 500, 60);
  for (const auto& [id, when] : plan.kills) {
    EXPECT_LT(when, 1000u);
  }
  FailurePlan none = PlanFailures(targets, 0.0, 0, 1000, &rng);
  EXPECT_TRUE(none.kills.empty());
  FailurePlan all = PlanFailures(targets, 1.0, 0, 1000, &rng);
  EXPECT_EQ(all.kills.size(), targets.size());
}

TEST_F(DeviceTest, ScheduledFailuresKill) {
  FleetConfig cfg;
  cfg.num_contributors = 0;
  cfg.num_processors = 4;
  cfg.enable_churn = false;
  Fleet fleet(&network_, &authority_, cfg, 3);
  FailurePlan plan;
  plan.kills.emplace_back(fleet.processors()[0]->id(), 100);
  plan.kills.emplace_back(fleet.processors()[1]->id(), 200);
  ScheduleFailures(&network_, plan);
  sim_.Run();
  EXPECT_TRUE(network_.IsDead(fleet.processors()[0]->id()));
  EXPECT_TRUE(network_.IsDead(fleet.processors()[1]->id()));
  EXPECT_FALSE(network_.IsDead(fleet.processors()[2]->id()));
}

}  // namespace
}  // namespace edgelet::device
