#include "common/status.h"

#include <gtest/gtest.h>

namespace edgelet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnMacro(int x) {
  EDGELET_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseReturnMacro(1).ok());
  EXPECT_TRUE(UseReturnMacro(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EDGELET_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

}  // namespace
}  // namespace edgelet
