#include "exec/trace.h"

#include <gtest/gtest.h>

#include "core/framework.h"

namespace edgelet::exec {
namespace {

TEST(TraceTest, RecordAndCount) {
  ExecutionTrace trace;
  trace.Record(10, TraceEventKind::kContributionSent, 1);
  trace.Record(20, TraceEventKind::kContributionSent, 2);
  trace.Record(30, TraceEventKind::kResultDelivered, 3, -1, -1, "done");
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kContributionSent), 2u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kResultDelivered), 1u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kDeviceKilled), 0u);
}

TEST(TraceTest, TimelineRendersEvents) {
  ExecutionTrace trace;
  trace.Record(5 * kSecond, TraceEventKind::kSnapshotComplete, 7, 2, 0,
               "20 tuples");
  std::string timeline = trace.ToTimeline();
  EXPECT_NE(timeline.find("snapshot-complete"), std::string::npos);
  EXPECT_NE(timeline.find("part=2"), std::string::npos);
  EXPECT_NE(timeline.find("20 tuples"), std::string::npos);
}

TEST(TraceTest, BulkContributionsSummarized) {
  ExecutionTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.Record(i, TraceEventKind::kContributionSent, i + 1);
  }
  std::string timeline = trace.ToTimeline();
  EXPECT_NE(timeline.find("100 contributions"), std::string::npos);
  // Not one line per contribution.
  EXPECT_LT(std::count(timeline.begin(), timeline.end(), '\n'), 5);
}

TEST(TraceTest, PhaseSummarySkipsEmptyPhases) {
  ExecutionTrace trace;
  trace.Record(1, TraceEventKind::kResultDelivered, 1);
  std::string summary = trace.PhaseSummary();
  EXPECT_NE(summary.find("result delivered"), std::string::npos);
  EXPECT_EQ(summary.find("devices killed"), std::string::npos);
}

TEST(TraceTest, EndToEndExecutionProducesCoherentTrace) {
  core::FrameworkConfig cfg;
  cfg.fleet.num_contributors = 150;
  cfg.fleet.num_processors = 40;
  cfg.fleet.enable_churn = false;
  cfg.seed = 55;
  core::EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 1;
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 40;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{query::AggregateFunction::kCount, "*"}}};

  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 10;
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());

  ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = false;
  ec.enable_trace = true;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->success);

  const QueryExecution* execution = fw.last_execution();
  ASSERT_NE(execution, nullptr);
  const ExecutionTrace* trace = execution->trace();
  ASSERT_NE(trace, nullptr);

  // Coherence: contributions >= snapshot quota coverage; one snapshot per
  // surviving chain; exactly one delivery; phases ordered.
  EXPECT_GE(trace->CountOf(TraceEventKind::kContributionSent),
            static_cast<size_t>(d->n) * d->quota);
  EXPECT_GE(trace->CountOf(TraceEventKind::kSnapshotComplete),
            static_cast<size_t>(d->n));
  EXPECT_GE(trace->CountOf(TraceEventKind::kPartialEmitted),
            static_cast<size_t>(d->n));
  EXPECT_EQ(trace->CountOf(TraceEventKind::kResultDelivered), 1u);

  SimTime first_contribution = kSimTimeNever, delivery = 0;
  for (const auto& e : trace->events()) {
    if (e.kind == TraceEventKind::kContributionSent) {
      first_contribution = std::min(first_contribution, e.time);
    }
    if (e.kind == TraceEventKind::kResultDelivered) delivery = e.time;
  }
  EXPECT_LT(first_contribution, delivery);
}

TEST(TraceTest, DisabledByDefault) {
  core::FrameworkConfig cfg;
  cfg.fleet.num_contributors = 20;
  cfg.fleet.num_processors = 10;
  cfg.fleet.enable_churn = false;
  core::EdgeletFramework fw(cfg);
  ASSERT_TRUE(fw.Init().ok());
  query::Query q;
  q.kind = query::QueryKind::kGroupingSets;
  q.snapshot_cardinality = 5;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}}, {{query::AggregateFunction::kCount, "*"}}};
  auto d = fw.Plan(q, {}, {0.0, 0.9}, Strategy::kOvercollection);
  ASSERT_TRUE(d.ok());
  ExecutionConfig ec;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  ASSERT_TRUE(report.ok());
  ASSERT_NE(fw.last_execution(), nullptr);
  EXPECT_EQ(fw.last_execution()->trace(), nullptr);
}

}  // namespace
}  // namespace edgelet::exec
