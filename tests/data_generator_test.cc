#include "data/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace edgelet::data {
namespace {

TEST(GeneratorTest, ProducesRequestedCount) {
  HealthDataParams params;
  params.num_individuals = 500;
  Table t = GenerateHealthData(params, 1);
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_EQ(t.schema(), HealthSchema());
}

TEST(GeneratorTest, DeterministicForSeed) {
  HealthDataParams params;
  params.num_individuals = 200;
  Table a = GenerateHealthData(params, 99);
  Table b = GenerateHealthData(params, 99);
  EXPECT_EQ(a, b);
  Table c = GenerateHealthData(params, 100);
  EXPECT_FALSE(a == c);
}

TEST(GeneratorTest, ContributorIdsUniqueAndSequential) {
  HealthDataParams params;
  params.num_individuals = 300;
  Table t = GenerateHealthData(params, 5);
  std::set<int64_t> ids;
  for (const auto& row : t.rows()) {
    ids.insert(row[0].AsInt64());
  }
  EXPECT_EQ(ids.size(), 300u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 300);
}

TEST(GeneratorTest, ValuesWithinDomain) {
  HealthDataParams params;
  params.num_individuals = 2000;
  params.min_age = 65;
  Table t = GenerateHealthData(params, 7);
  auto age_idx = t.schema().IndexOf("age");
  auto bmi_idx = t.schema().IndexOf("bmi");
  auto dep_idx = t.schema().IndexOf("dependency");
  auto sex_idx = t.schema().IndexOf("sex");
  ASSERT_TRUE(age_idx.ok() && bmi_idx.ok() && dep_idx.ok() && sex_idx.ok());
  for (const auto& row : t.rows()) {
    int64_t age = row[*age_idx].AsInt64();
    EXPECT_GE(age, 65);
    EXPECT_LE(age, 100);
    double bmi = row[*bmi_idx].AsDouble();
    EXPECT_GE(bmi, 14.0);
    EXPECT_LE(bmi, 45.0);
    int64_t dep = row[*dep_idx].AsInt64();
    EXPECT_GE(dep, 1);
    EXPECT_LE(dep, 6);
    const std::string& sex = row[*sex_idx].AsString();
    EXPECT_TRUE(sex == "F" || sex == "M");
  }
}

TEST(GeneratorTest, LatentProfilesCoverRequestedRange) {
  HealthDataParams params;
  params.num_individuals = 1000;
  params.num_profiles = 3;
  Table t = GenerateHealthData(params, 11);
  auto idx = t.schema().IndexOf("latent_profile");
  ASSERT_TRUE(idx.ok());
  std::set<int64_t> profiles;
  for (const auto& row : t.rows()) profiles.insert(row[*idx].AsInt64());
  EXPECT_EQ(profiles.size(), 3u);
  EXPECT_EQ(*profiles.begin(), 0);
  EXPECT_EQ(*profiles.rbegin(), 2);
}

TEST(GeneratorTest, ProfilesAreStatisticallySeparable) {
  // Frail profile (2) must have lower mean dependency than robust (0).
  HealthDataParams params;
  params.num_individuals = 4000;
  params.num_profiles = 3;
  Table t = GenerateHealthData(params, 13);
  auto dep_idx = *t.schema().IndexOf("dependency");
  auto prof_idx = *t.schema().IndexOf("latent_profile");
  double sum[3] = {0, 0, 0};
  int count[3] = {0, 0, 0};
  for (const auto& row : t.rows()) {
    int p = static_cast<int>(row[prof_idx].AsInt64());
    sum[p] += static_cast<double>(row[dep_idx].AsInt64());
    ++count[p];
  }
  ASSERT_GT(count[0], 0);
  ASSERT_GT(count[2], 0);
  EXPECT_GT(sum[0] / count[0], sum[2] / count[2] + 1.0);
}

TEST(GeneratorTest, NumericFeatureNamesExistInSchema) {
  Schema s = HealthSchema();
  for (const auto& f : HealthNumericFeatures()) {
    EXPECT_TRUE(s.Contains(f)) << f;
  }
}

}  // namespace
}  // namespace edgelet::data
