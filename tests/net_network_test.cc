#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace edgelet::net {
namespace {

// Records everything it receives.
class RecordingNode : public Node {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  void OnOnline() override { ++online_events; }
  void OnOffline() override { ++offline_events; }

  std::vector<Message> received;
  int online_events = 0;
  int offline_events = 0;
};

Message Make(NodeId from, NodeId to, uint32_t type = 1) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.payload = BytesFromString("payload");
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1) {}

  Network MakeNetwork(NetworkConfig cfg = {}) { return Network(&sim_, cfg); }

  Simulator sim_;
};

TEST_F(NetworkTest, DeliversBetweenOnlineNodes) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.Send(Make(ida, idb));
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, ida);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  EXPECT_GT(sim_.now(), 0u);  // latency elapsed
}

TEST_F(NetworkTest, LatencyRespectsFloor) {
  NetworkConfig cfg;
  cfg.latency.min_latency = 50 * kMillisecond;
  cfg.latency.mean_extra = 10 * kMillisecond;
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.Send(Make(ida, idb));
  sim_.Run();
  EXPECT_GE(sim_.now(), 50 * kMillisecond);
}

TEST_F(NetworkTest, DropProbabilityLosesMessages) {
  NetworkConfig cfg;
  cfg.drop_probability = 0.5;
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  const int n = 2000;
  for (int i = 0; i < n; ++i) net.Send(Make(ida, idb));
  sim_.Run();
  EXPECT_GT(net.stats().dropped_random, 800u);
  EXPECT_LT(net.stats().dropped_random, 1200u);
  EXPECT_EQ(b.received.size() + net.stats().dropped_random,
            static_cast<size_t>(n));
}

TEST_F(NetworkTest, SenderOfflineDrops) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.SetOnline(ida, false);
  net.Send(Make(ida, idb));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_sender_offline, 1u);
}

TEST_F(NetworkTest, StoreAndForwardDeliversOnReconnect) {
  Network net = MakeNetwork();  // store_and_forward defaults to true
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.SetOnline(idb, false);
  net.Send(Make(ida, idb));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());  // parked in mailbox
  net.SetOnline(idb, true);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, WithoutStoreAndForwardOfflineReceiverDrops) {
  NetworkConfig cfg;
  cfg.store_and_forward = false;
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.SetOnline(idb, false);
  net.Send(Make(ida, idb));
  sim_.Run();
  net.SetOnline(idb, true);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_receiver_offline, 1u);
}

TEST_F(NetworkTest, MailboxTtlExpiresOldMessages) {
  NetworkConfig cfg;
  cfg.mailbox_ttl = 1 * kSecond;
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.SetOnline(idb, false);
  net.Send(Make(ida, idb));
  sim_.Run();
  // Reconnect long after the TTL.
  sim_.ScheduleAt(sim_.now() + 10 * kSecond,
                  [&] { net.SetOnline(idb, true); });
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().expired_in_mailbox, 1u);
}

TEST_F(NetworkTest, KilledNodeNeverReceives) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.Send(Make(ida, idb));
  net.Kill(idb);
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(net.IsDead(idb));
  EXPECT_FALSE(net.IsOnline(idb));
  EXPECT_EQ(net.stats().dropped_dead, 1u);
}

TEST_F(NetworkTest, KilledNodeCannotSend) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  net.Kill(ida);
  net.Send(Make(ida, idb));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, ReviveAfterKillIsIgnored) {
  Network net = MakeNetwork();
  RecordingNode a;
  NodeId ida = net.Register(&a);
  net.Kill(ida);
  net.SetOnline(ida, true);
  EXPECT_FALSE(net.IsOnline(ida));
}

TEST_F(NetworkTest, OnlineOfflineCallbacks) {
  Network net = MakeNetwork();
  RecordingNode a;
  NodeId ida = net.Register(&a);
  net.SetOnline(ida, false);
  net.SetOnline(ida, false);  // idempotent
  net.SetOnline(ida, true);
  EXPECT_EQ(a.offline_events, 1);
  EXPECT_EQ(a.online_events, 1);
}

TEST_F(NetworkTest, ChurnGeneratesTransitions) {
  Network net = MakeNetwork();
  RecordingNode a;
  net.Register(&a, ChurnModel::Intermittent(10 * kSecond, 5 * kSecond));
  sim_.RunUntil(10 * kMinute);
  EXPECT_GT(a.online_events + a.offline_events, 10);
}

TEST_F(NetworkTest, ChurnWithStoreAndForwardEventuallyDelivers) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb =
      net.Register(&b, ChurnModel::Intermittent(5 * kSecond, 20 * kSecond));
  // Fire messages periodically for a while.
  for (int i = 0; i < 50; ++i) {
    sim_.ScheduleAt(i * kSecond, [&net, ida, idb] {
      net.Send(Make(ida, idb));
    });
  }
  sim_.RunUntil(10 * kMinute);
  // Everything sent is eventually delivered (no TTL, no random drop).
  EXPECT_EQ(b.received.size(), 50u);
}

TEST_F(NetworkTest, StatsCountBytes) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  Message m = Make(ida, idb);
  size_t wire = m.WireSize();
  net.Send(m);
  sim_.Run();
  EXPECT_EQ(net.stats().bytes_sent, wire);
  EXPECT_EQ(net.stats().bytes_delivered, wire);
}

TEST_F(NetworkTest, BandwidthAddsSerializationDelay) {
  NetworkConfig cfg;
  cfg.latency.min_latency = 0;
  cfg.latency.mean_extra = 0;
  cfg.bytes_per_second = 1000;  // 1 KB/s
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  Message m = Make(ida, idb);
  m.payload = Bytes(972, 0x00);  // 1000 wire bytes => 1 s
  net.Send(m);
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim_.now(), 1 * kSecond);
}

TEST_F(NetworkTest, ZeroBandwidthMeansNoSerializationDelay) {
  NetworkConfig cfg;
  cfg.latency.min_latency = 5 * kMillisecond;
  cfg.latency.mean_extra = 0;
  cfg.bytes_per_second = 0;
  Network net(&sim_, cfg);
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);
  Message m = Make(ida, idb);
  m.payload = Bytes(100000, 0x00);
  net.Send(m);
  sim_.Run();
  EXPECT_EQ(sim_.now(), 5 * kMillisecond);
}

TEST_F(NetworkTest, MessageAadFixedMatchesMessageAad) {
  Message m = Make(0x1122334455667788ull, 2, 0xdeadbeef);
  m.seq = 0x99aabbccddeeff00ull;
  Bytes heap = MessageAad(m);
  MessageAadBuf fixed = MessageAadFixed(m);
  ASSERT_EQ(heap.size(), fixed.size());
  EXPECT_TRUE(std::equal(fixed.begin(), fixed.end(), heap.begin()));
}

TEST_F(NetworkTest, PayloadBuffersRecycleThroughThePool) {
  Network net = MakeNetwork();
  RecordingNode a, b;
  NodeId ida = net.Register(&a);
  NodeId idb = net.Register(&b);

  // First message: pool is cold, payload is a fresh allocation.
  Message m = Make(ida, idb);
  m.payload = net.AcquirePayloadBuffer();
  m.payload.assign(64, 0x42);
  net.Send(std::move(m));
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.stats().payload_buffers_reused, 0u);

  // The delivered payload was recycled; the next acquisition reuses it.
  Bytes buf = net.AcquirePayloadBuffer();
  EXPECT_EQ(net.stats().payload_buffers_reused, 1u);
  EXPECT_GE(buf.capacity(), 64u);
  EXPECT_TRUE(buf.empty());
  net.RecyclePayloadBuffer(std::move(buf));

  // Dropped messages recycle too (receiver dead).
  net.Kill(idb);
  Message m2 = Make(ida, idb);
  m2.payload = net.AcquirePayloadBuffer();
  EXPECT_EQ(net.stats().payload_buffers_reused, 2u);
  m2.payload.assign(64, 0x43);
  net.Send(std::move(m2));
  sim_.Run();
  Bytes again = net.AcquirePayloadBuffer();
  EXPECT_EQ(net.stats().payload_buffers_reused, 3u);
  EXPECT_GE(again.capacity(), 64u);
}

TEST_F(NetworkTest, MessageAadBindsHeader) {
  Message m1 = Make(1, 2, 7);
  m1.seq = 9;
  Message m2 = m1;
  m2.seq = 10;
  EXPECT_NE(MessageAad(m1), MessageAad(m2));
  Message m3 = m1;
  m3.to = 3;
  EXPECT_NE(MessageAad(m1), MessageAad(m3));
}

}  // namespace
}  // namespace edgelet::net
