// Unit tests for the SoA ShardQueue slab: global (time, tiebreak) pop
// order across callback-chunk boundaries, Reserve preallocation, slot and
// chunk recycling in steady state, and generation-counted cancellation.
// The engine-level behaviour built on top lives in net_parsim_test.cc.

#include "net/parsim/shard_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace edgelet::net::parsim {
namespace {

TEST(ShardQueueTest, PopsInGlobalKeyOrderAcrossChunkBoundaries) {
  // More events than three callback chunks hold, inserted in a scrambled
  // order so growth and sifts interleave; extraction must be the sorted
  // (time, tiebreak) order regardless of how the slab grew.
  const size_t kEvents = 3 * ShardQueue::kFnChunkSize + 500;
  ShardQueue q;
  std::vector<uint64_t> fired;
  fired.reserve(kEvents);
  for (size_t i = 0; i < kEvents; ++i) {
    // Multiplicative scramble: 7919 is coprime to kEvents (= 2^2*23*139),
    // so i -> k is a permutation and every key is unique.
    uint64_t k = i * 7919 % kEvents;
    SimTime t = 10 + (k % 97);  // many ties: tiebreak must break them
    uint64_t tie = MakeTiebreak(static_cast<NodeId>(1 + k % 5), k);
    q.Insert(t, tie, static_cast<NodeId>(1 + k % 5),
             [&fired, k]() { fired.push_back(k); });
  }
  EXPECT_EQ(q.live(), kEvents);
  EXPECT_GE(q.fn_chunk_count(), 4u);

  std::vector<std::pair<SimTime, uint64_t>> keys;
  ShardQueue::Ready ready;
  uint64_t remote_key = 0;
  while (q.PopRunnable(kSimTimeNever, &ready, &remote_key)) {
    keys.emplace_back(ready.time, 0);
    ready.fn();
    keys.back().second = MakeTiebreak(ready.owner, fired.back());
  }
  ASSERT_EQ(keys.size(), kEvents);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(q.live(), 0u);
}

TEST(ShardQueueTest, ReservePreallocatesChunksUpFront) {
  ShardQueue q;
  q.Reserve(10000);
  // ceil(10000 / 4096) chunks exist before any insert; no slots yet.
  EXPECT_EQ(q.fn_chunk_count(), 3u);
  EXPECT_EQ(q.slot_count(), 0u);
  for (size_t i = 0; i < 10000; ++i) {
    q.Insert(i, MakeTiebreak(1, i), 1, []() {});
  }
  // Filling the reserved capacity added nothing.
  EXPECT_EQ(q.fn_chunk_count(), 3u);
  EXPECT_EQ(q.slot_count(), 10000u);
  // Chunks are fixed-size, so the reservation really holds 3 full chunks;
  // only the slot one past that grows the slab, by exactly one chunk.
  for (size_t i = 10000; i < 3 * ShardQueue::kFnChunkSize; ++i) {
    q.Insert(i, MakeTiebreak(1, i), 1, []() {});
  }
  EXPECT_EQ(q.fn_chunk_count(), 3u);
  q.Insert(99999, MakeTiebreak(1, 99999), 1, []() {});
  EXPECT_EQ(q.fn_chunk_count(), 4u);
}

TEST(ShardQueueTest, SlotRecyclingKeepsSlabFlatAcrossCycles) {
  // The steady-state pattern of a long simulation: a bounded set of
  // in-flight events churning forever. Freed slots must recycle — the slab
  // footprint stays at the high-water mark instead of growing per insert.
  constexpr size_t kInFlight = 100;
  ShardQueue q;
  SimTime t = 0;
  uint64_t oseq = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (size_t i = 0; i < kInFlight; ++i) {
      q.Insert(t + i, MakeTiebreak(1, oseq++), 1, []() {});
    }
    ShardQueue::Ready ready;
    uint64_t remote_key = 0;
    size_t popped = 0;
    while (q.PopRunnable(kSimTimeNever, &ready, &remote_key)) ++popped;
    EXPECT_EQ(popped, kInFlight);
    EXPECT_EQ(q.slot_count(), kInFlight) << "cycle " << cycle;
    EXPECT_EQ(q.fn_chunk_count(), 1u) << "cycle " << cycle;
    t += kInFlight;
  }
}

TEST(ShardQueueTest, CancelTombstonesEntryAndReportsRemoteKey) {
  ShardQueue q;
  int ran = 0;
  auto bump = [&ran]() { ++ran; };
  ShardQueue::Ticket a = q.Insert(10, MakeTiebreak(1, 0), 1, bump, 111);
  ShardQueue::Ticket b = q.Insert(20, MakeTiebreak(1, 1), 1, bump, 222);
  ShardQueue::Ticket c = q.Insert(30, MakeTiebreak(1, 2), 1, bump, 0);
  (void)a;
  (void)c;

  uint64_t remote_key = 0;
  EXPECT_TRUE(q.CancelTicket(b, &remote_key));
  EXPECT_EQ(remote_key, 222u);
  EXPECT_FALSE(q.CancelTicket(b, &remote_key));  // generation moved on
  EXPECT_EQ(q.live(), 2u);

  // HeadTime prunes tombstones lazily; the cancelled entry never surfaces.
  EXPECT_EQ(q.HeadTime(), 10u);
  ShardQueue::Ready ready;
  EXPECT_TRUE(q.PopRunnable(kSimTimeNever, &ready, &remote_key));
  EXPECT_EQ(ready.time, 10u);
  EXPECT_EQ(remote_key, 111u);
  EXPECT_TRUE(q.PopRunnable(kSimTimeNever, &ready, &remote_key));
  EXPECT_EQ(ready.time, 30u);
  EXPECT_EQ(remote_key, 0u);
  EXPECT_FALSE(q.PopRunnable(kSimTimeNever, &ready, &remote_key));
  EXPECT_EQ(q.HeadTime(), kSimTimeNever);
}

TEST(ShardQueueTest, RecycledSlotInvalidatesStaleTicket) {
  ShardQueue q;
  ShardQueue::Ticket old = q.Insert(5, MakeTiebreak(1, 0), 1, []() {});
  EXPECT_TRUE(q.CancelTicket(old));
  // The freed slot is reused by the next insert with a bumped generation.
  ShardQueue::Ticket fresh = q.Insert(6, MakeTiebreak(1, 1), 1, []() {});
  EXPECT_EQ(fresh.slot, old.slot);
  EXPECT_NE(fresh.gen, old.gen);
  EXPECT_FALSE(q.CancelTicket(old));  // stale handle cannot hit the new event
  EXPECT_EQ(q.live(), 1u);
  EXPECT_EQ(q.HeadTime(), 6u);
}

TEST(ShardQueueTest, PopRespectsInclusiveLimit) {
  ShardQueue q;
  q.Insert(100, MakeTiebreak(1, 0), 1, []() {});
  q.Insert(200, MakeTiebreak(1, 1), 1, []() {});
  ShardQueue::Ready ready;
  uint64_t remote_key = 0;
  EXPECT_FALSE(q.PopRunnable(99, &ready, &remote_key));
  EXPECT_TRUE(q.PopRunnable(100, &ready, &remote_key));  // limit is inclusive
  EXPECT_EQ(ready.time, 100u);
  EXPECT_FALSE(q.PopRunnable(199, &ready, &remote_key));
  EXPECT_EQ(q.live(), 1u);
}

}  // namespace
}  // namespace edgelet::net::parsim
