#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"
#include "crypto/sha256.h"

namespace edgelet::crypto {
namespace {

Bytes Hex(std::string_view s) {
  auto r = FromHex(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::string DigestHex(const Digest256& d) {
  return ToHex(d.data(), d.size());
}

// --- SHA-256: NIST FIPS 180-4 vectors ------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/64 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 h;
    h.Update(msg);
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << len;
  }
}

// --- HMAC-SHA256: RFC 4231 ------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, Bytes{'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'});
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = BytesFromString("Jefe");
  Bytes data = BytesFromString("what do ya want for nothing?");
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);  // > block size, must be pre-hashed
  Bytes data = BytesFromString(
      "Test Using Larger Than Block-Size Key - Hash Key First");
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF: RFC 5869 --------------------------------------------------------

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = Hex("000102030405060708090a0b0c");
  Bytes info = Hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = HkdfSha256(salt, ikm, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, EmptySaltUsesZeros) {
  // RFC 5869 test case 3: salt and info empty.
  Bytes ikm(22, 0x0b);
  Bytes okm = HkdfSha256({}, ikm, {}, 42);
  EXPECT_EQ(ToHex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, OutputLengths) {
  Bytes ikm(32, 0x42);
  for (size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(HkdfSha256({}, ikm, {}, len).size(), len);
  }
}

// --- ChaCha20: RFC 8439 -----------------------------------------------------

Key256 TestKey() {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2.
  Key256 key = TestKey();
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = ChaCha20Block(key, nonce, 1);
  EXPECT_EQ(ToHex(block.data(), block.size()),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  // RFC 8439 §2.4.2.
  Key256 key = TestKey();
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  Bytes plaintext = BytesFromString(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes ct = ChaCha20Xor(key, nonce, 1, plaintext);
  EXPECT_EQ(ToHex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20Test, XorIsInvolution) {
  Key256 key = TestKey();
  Nonce96 nonce{};
  Bytes msg = BytesFromString("attack at dawn");
  Bytes ct = ChaCha20Xor(key, nonce, 7, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(ChaCha20Xor(key, nonce, 7, ct), msg);
}

TEST(ChaCha20Test, MultiBlockMessages) {
  Key256 key = TestKey();
  Nonce96 nonce{};
  for (size_t len : {0u, 1u, 63u, 64u, 65u, 128u, 1000u}) {
    Bytes msg(len, 0x5A);
    Bytes ct = ChaCha20Xor(key, nonce, 0, msg);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(ChaCha20Xor(key, nonce, 0, ct), msg);
  }
}

// --- Poly1305: RFC 8439 §2.5.2 ----------------------------------------------

TEST(Poly1305Test, Rfc8439Vector) {
  Bytes key_bytes = Hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  std::array<uint8_t, 32> key;
  std::memcpy(key.data(), key_bytes.data(), 32);
  Bytes msg = BytesFromString("Cryptographic Forum Research Group");
  Tag128 tag = Poly1305Mac(key, msg);
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305Test, EmptyMessage) {
  std::array<uint8_t, 32> key{};
  key[0] = 1;  // r = 1 (after clamp), s = 0
  Tag128 tag = Poly1305Mac(key, {});
  EXPECT_EQ(ToHex(tag.data(), tag.size()), "00000000000000000000000000000000");
}

// --- AEAD: RFC 8439 §2.8.2 ---------------------------------------------------

TEST(AeadTest, Rfc8439Vector) {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(0x80 + i);
  Nonce96 nonce = {0x07, 0x00, 0x00, 0x00, 0x40, 0x41,
                   0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  Bytes aad = Hex("50515253c0c1c2c3c4c5c6c7");
  Bytes plaintext = BytesFromString(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes sealed = AeadSeal(key, nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + 16);
  EXPECT_EQ(ToHex(Bytes(sealed.begin(), sealed.end() - 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116");
  EXPECT_EQ(ToHex(Bytes(sealed.end() - 16, sealed.end())),
            "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plaintext);
}

TEST(AeadTest, TamperedCiphertextRejected) {
  Key256 key{};
  Nonce96 nonce{};
  Bytes aad = BytesFromString("header");
  Bytes sealed = AeadSeal(key, nonce, aad, BytesFromString("secret"));
  sealed[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key, nonce, aad, sealed).ok());
}

TEST(AeadTest, TamperedTagRejected) {
  Key256 key{};
  Nonce96 nonce{};
  Bytes sealed = AeadSeal(key, nonce, {}, BytesFromString("secret"));
  sealed.back() ^= 1;
  EXPECT_FALSE(AeadOpen(key, nonce, {}, sealed).ok());
}

TEST(AeadTest, WrongAadRejected) {
  Key256 key{};
  Nonce96 nonce{};
  Bytes sealed =
      AeadSeal(key, nonce, BytesFromString("route A"), BytesFromString("x"));
  EXPECT_FALSE(AeadOpen(key, nonce, BytesFromString("route B"), sealed).ok());
}

TEST(AeadTest, WrongKeyRejected) {
  Key256 k1{}, k2{};
  k2[0] = 1;
  Nonce96 nonce{};
  Bytes sealed = AeadSeal(k1, nonce, {}, BytesFromString("x"));
  EXPECT_FALSE(AeadOpen(k2, nonce, {}, sealed).ok());
}

TEST(AeadTest, TooShortInputRejected) {
  Key256 key{};
  Nonce96 nonce{};
  EXPECT_FALSE(AeadOpen(key, nonce, {}, Bytes(15, 0)).ok());
}

TEST(AeadTest, EmptyPlaintextRoundTrip) {
  Key256 key{};
  Nonce96 nonce{};
  Bytes sealed = AeadSeal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), 16u);
  auto opened = AeadOpen(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST(AeadTest, NonceFromSequenceUnique) {
  auto n1 = NonceFromSequence(1, 1);
  auto n2 = NonceFromSequence(1, 2);
  auto n3 = NonceFromSequence(2, 1);
  EXPECT_NE(n1, n2);
  EXPECT_NE(n1, n3);
  EXPECT_NE(n2, n3);
}

TEST(ConstantTimeEqualsTest, Basic) {
  uint8_t a[4] = {1, 2, 3, 4};
  uint8_t b[4] = {1, 2, 3, 4};
  uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEquals(a, b, 4));
  EXPECT_FALSE(ConstantTimeEquals(a, c, 4));
  EXPECT_TRUE(ConstantTimeEquals(a, c, 3));
  EXPECT_TRUE(ConstantTimeEquals(a, c, 0));
}

// --- SHA-256: additional NIST FIPS 180-4 vector ---------------------------

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, ChunkedUpdateAllSplitsMatchOneShot) {
  Bytes msg(257, 0);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  Digest256 expected = Sha256::Hash(msg.data(), msg.size());
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.Finish(), expected) << "split at " << split;
  }
}

// --- ChaCha20: §2.6.2 one-time key generation, in-place equivalence -------

TEST(ChaCha20Test, Rfc8439Poly1305KeyGeneration) {
  // RFC 8439 §2.6.2: the Poly1305 one-time key is the first 32 bytes of the
  // ChaCha20 block at counter 0.
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(0x80 + i);
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x01,
                   0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  auto block = ChaCha20Block(key, nonce, 0);
  EXPECT_EQ(ToHex(block.data(), 32),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646");
}

TEST(ChaCha20Test, XorInPlaceMatchesXorAllLengths) {
  // Covers every code path: empty, sub-block, exact block, the batched
  // 4-block loop, the 8-block AVX2 loop (when present), and all tails.
  Key256 key = TestKey();
  Nonce96 nonce = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  Bytes msg(1300, 0);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  for (size_t len = 0; len <= 300; ++len) {
    Bytes expected = ChaCha20Xor(key, nonce, 1,
                                 Bytes(msg.begin(), msg.begin() + len));
    Bytes in_place(msg.begin(), msg.begin() + len);
    ChaCha20XorInPlace(key, nonce, 1, in_place.data(), len);
    EXPECT_EQ(in_place, expected) << "len " << len;
  }
  for (size_t len : {512u, 513u, 767u, 768u, 1024u, 1300u}) {
    Bytes expected = ChaCha20Xor(key, nonce, 1,
                                 Bytes(msg.begin(), msg.begin() + len));
    Bytes in_place(msg.begin(), msg.begin() + len);
    ChaCha20XorInPlace(key, nonce, 1, in_place.data(), len);
    EXPECT_EQ(in_place, expected) << "len " << len;
  }
}

TEST(ChaCha20Test, XorInPlaceUnalignedBuffer) {
  Key256 key = TestKey();
  Nonce96 nonce{};
  Bytes msg(600, 0xAB);
  Bytes expected = ChaCha20Xor(key, nonce, 3, msg);
  // Operate at an odd offset inside a larger buffer so no alignment can be
  // assumed by the kernel.
  Bytes padded(601, 0xAB);
  ChaCha20XorInPlace(key, nonce, 3, padded.data() + 1, 600);
  EXPECT_EQ(Bytes(padded.begin() + 1, padded.end()), expected);
}

// --- Poly1305: incremental streaming --------------------------------------

TEST(Poly1305Test, IncrementalAllSplitsMatchOneShot) {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i * 7 + 1);
  Bytes msg(83, 0);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  Tag128 expected = Poly1305Mac(key, msg);
  for (size_t split = 0; split <= msg.size(); ++split) {
    Poly1305 mac(key);
    mac.Update(msg.data(), split);
    mac.Update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(mac.Finalize(), expected) << "split at " << split;
  }
}

TEST(Poly1305Test, ByteAtATimeMatchesOneShot) {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(255 - i);
  Bytes msg(49, 0x3C);
  Poly1305 mac(key);
  for (uint8_t b : msg) mac.Update(&b, 1);
  EXPECT_EQ(mac.Finalize(), Poly1305Mac(key, msg));
}

// --- AEAD: in-place variants, round trips, and bit-flip rejection ---------

TEST(AeadTest, SealIntoMatchesSealWithScratchReuse) {
  Key256 key = TestKey();
  Bytes aad = BytesFromString("routing header");
  Bytes scratch;  // deliberately reused across all iterations
  for (size_t len : {0u, 1u, 16u, 100u, 1024u, 130u, 5u}) {
    Nonce96 nonce = NonceFromSequence(9, len);
    Bytes plaintext(len, static_cast<uint8_t>(len));
    Bytes expected = AeadSeal(key, nonce, aad, plaintext);
    AeadSealInto(key, nonce, aad.data(), aad.size(), plaintext.data(),
                 plaintext.size(), &scratch);
    EXPECT_EQ(scratch, expected) << "len " << len;
  }
}

TEST(AeadTest, OpenIntoMatchesOpenWithScratchReuse) {
  Key256 key = TestKey();
  Bytes aad = BytesFromString("hdr");
  Bytes scratch;
  for (size_t len : {1024u, 0u, 64u, 3u}) {
    Nonce96 nonce = NonceFromSequence(4, len);
    Bytes plaintext(len, 0x77);
    Bytes sealed = AeadSeal(key, nonce, aad, plaintext);
    ASSERT_TRUE(AeadOpenInto(key, nonce, aad.data(), aad.size(),
                             sealed.data(), sealed.size(), &scratch)
                    .ok());
    EXPECT_EQ(scratch, plaintext) << "len " << len;
  }
}

TEST(AeadTest, RoundTripAllLengthsThroughTwoBlocks) {
  Key256 key = TestKey();
  Bytes aad = BytesFromString("aad");
  for (size_t len = 0; len <= 130; ++len) {
    Nonce96 nonce = NonceFromSequence(1, len);
    Bytes plaintext(len, 0);
    for (size_t i = 0; i < len; ++i) plaintext[i] = static_cast<uint8_t>(i);
    Bytes sealed = AeadSeal(key, nonce, aad, plaintext);
    ASSERT_EQ(sealed.size(), len + 16u);
    auto opened = AeadOpen(key, nonce, aad, sealed);
    ASSERT_TRUE(opened.ok()) << "len " << len;
    EXPECT_EQ(*opened, plaintext) << "len " << len;
  }
}

TEST(AeadTest, EverySingleBitFlipRejected) {
  Key256 key = TestKey();
  Nonce96 nonce = NonceFromSequence(2, 42);
  Bytes aad = BytesFromString("route");
  Bytes plaintext = BytesFromString("twenty-four byte secret!");
  Bytes sealed = AeadSeal(key, nonce, aad, plaintext);

  // Any flipped bit anywhere in ciphertext or tag must fail authentication.
  for (size_t byte = 0; byte < sealed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes corrupt = sealed;
      corrupt[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_FALSE(AeadOpen(key, nonce, aad, corrupt).ok())
          << "byte " << byte << " bit " << bit;
    }
  }
  // Same for every bit of the associated data.
  for (size_t byte = 0; byte < aad.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad_aad = aad;
      bad_aad[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_FALSE(AeadOpen(key, nonce, bad_aad, sealed).ok())
          << "aad byte " << byte << " bit " << bit;
    }
  }
}

// --- NonceFromSequence: 64-bit channel ids --------------------------------

TEST(AeadTest, NonceFromSequenceUsesHighChannelBits) {
  // Regression: channel ids differing only above bit 32 used to truncate to
  // the same nonce, silently reusing (key, nonce) pairs across channels.
  uint64_t low = 1;
  uint64_t high = 1 | (1ull << 32);
  EXPECT_NE(NonceFromSequence(low, 7), NonceFromSequence(high, 7));
}

TEST(AeadTest, NonceFromSequenceLayoutPinned) {
  // Channel ids below 2^32 keep their historical byte-exact nonce layout:
  // LE32 channel, then LE64 sequence.
  Nonce96 n = NonceFromSequence(0x11223344u, 0x5566778899aabbccull);
  const uint8_t expected[12] = {0x44, 0x33, 0x22, 0x11, 0xcc, 0xbb,
                                0xaa, 0x99, 0x88, 0x77, 0x66, 0x55};
  EXPECT_TRUE(std::equal(n.begin(), n.end(), expected));
}

}  // namespace
}  // namespace edgelet::crypto
