#include "net/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace edgelet::net {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterAdvancesClock) {
  Simulator sim;
  SimTime seen = 0;
  sim.ScheduleAfter(100, [&] {
    seen = sim.now();
    sim.ScheduleAfter(50, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  size_t executed = sim.RunUntil(20);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  uint64_t id = sim.ScheduleAt(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  uint64_t id = sim.ScheduleAt(1, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicRngAttached) {
  Simulator a(77), b(77);
  EXPECT_EQ(a.rng().NextU64(), b.rng().NextU64());
}

TEST(SimulatorTest, CancelOtherEventFromInsideExecutingEvent) {
  Simulator sim;
  int fired = 0;
  uint64_t victim = sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(5, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelOwnIdInsideExecutingEventIsNoOp) {
  Simulator sim;
  uint64_t id = 0;
  bool cancel_result = true;
  id = sim.ScheduleAt(5, [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  // The event is already executing: it is no longer pending.
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, StaleHandleAfterSlotReuseDoesNotCancelNewEvent) {
  Simulator sim;
  int fired = 0;
  uint64_t a = sim.ScheduleAt(10, [&] { fired += 1; });
  EXPECT_TRUE(sim.Cancel(a));
  // Reuses a's internal storage; the stale handle must not reach it.
  uint64_t b = sim.ScheduleAt(20, [&] { fired += 10; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.Cancel(a));
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, PendingCountTracksCancellation) {
  Simulator sim;
  uint64_t a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.Cancel(a));  // double-cancel: count unchanged
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHeadEvents) {
  Simulator sim;
  int fired = 0;
  uint64_t a = sim.ScheduleAt(5, [&] { ++fired; });
  uint64_t b = sim.ScheduleAt(6, [&] { ++fired; });
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(100, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_TRUE(sim.Cancel(b));
  EXPECT_EQ(sim.RunUntil(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelledEventsDoNotAdvanceClock) {
  Simulator sim;
  uint64_t a = sim.ScheduleAt(5, [] {});
  sim.ScheduleAt(10, [] {});
  sim.Cancel(a);
  sim.Step();
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, RescheduleChurnRecyclesSlots) {
  // Cancel/schedule cycles (timeout patterns) must neither leak pending
  // count nor confuse later handles.
  Simulator sim(9);
  int fired = 0;
  uint64_t pending = sim.ScheduleAt(1000000, [&] { ++fired; });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sim.Cancel(pending));
    pending = sim.ScheduleAt(1000000 + i, [&] { ++fired; });
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ReserveEventsDoesNotDisturbState) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(3, [&] { ++fired; });
  sim.ReserveEvents(4096);
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim(3);
  SimTime last = 0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    SimTime t = sim.rng().NextBelow(100000);
    sim.ScheduleAt(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

}  // namespace
}  // namespace edgelet::net
