#include "net/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace edgelet::net {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterAdvancesClock) {
  Simulator sim;
  SimTime seen = 0;
  sim.ScheduleAfter(100, [&] {
    seen = sim.now();
    sim.ScheduleAfter(50, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  size_t executed = sim.RunUntil(20);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  uint64_t id = sim.ScheduleAt(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  uint64_t id = sim.ScheduleAt(1, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicRngAttached) {
  Simulator a(77), b(77);
  EXPECT_EQ(a.rng().NextU64(), b.rng().NextU64());
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim(3);
  SimTime last = 0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    SimTime t = sim.rng().NextBelow(100000);
    sim.ScheduleAt(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

}  // namespace
}  // namespace edgelet::net
