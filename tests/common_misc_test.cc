#include <gtest/gtest.h>

#include <cstdio>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "data/csv.h"
#include "data/generator.h"

namespace edgelet {
namespace {

// --- hashing -----------------------------------------------------------------

TEST(HashTest, Fnv1aKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(HashTest, Mix64AvalanchesSequentialInputs) {
  // Sequential ids must map to well-spread values: check that flipping the
  // low bit flips roughly half the output bits.
  int total_flips = 0;
  const int kPairs = 200;
  for (uint64_t i = 0; i < kPairs; ++i) {
    uint64_t diff = Mix64(2 * i) ^ Mix64(2 * i + 1);
    total_flips += __builtin_popcountll(diff);
  }
  double mean_flips = static_cast<double>(total_flips) / kPairs;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

// --- sim time ------------------------------------------------------------------

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimTime(500), "500us");
  EXPECT_EQ(FormatSimTime(1500), "1.500ms");
  EXPECT_EQ(FormatSimTime(2 * kSecond + 250 * kMillisecond), "2.250s");
  EXPECT_EQ(FormatSimTime(kSimTimeNever), "never");
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(1500 * kMillisecond), 1.5);
  EXPECT_EQ(FromSeconds(2.5), 2 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(FromSeconds(-1.0), 0u);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

// --- logging -------------------------------------------------------------------

TEST(LoggingTest, LevelGateDropsBelowThreshold) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluated = 0;
  auto count = [&evaluated]() {
    ++evaluated;
    return "x";
  };
  EDGELET_LOG(kDebug) << count();  // gated: operand never evaluated
  EXPECT_EQ(evaluated, 0);
  SetLogLevel(LogLevel::kTrace);
  EDGELET_LOG(kDebug) << count();
  EXPECT_EQ(evaluated, 1);
  SetLogLevel(old_level);
}

TEST(LoggingTest, SetGetRoundTrip) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  SetLogLevel(old_level);
}

// --- CSV file I/O ----------------------------------------------------------------

TEST(CsvFileTest, WriteReadRoundTrip) {
  data::HealthDataParams params;
  params.num_individuals = 40;
  data::Table table = data::GenerateHealthData(params, 17);
  std::string path = ::testing::TempDir() + "/edgelet_csv_test.csv";
  ASSERT_TRUE(data::WriteCsvFile(path, table).ok());
  auto back = data::ReadCsvFile(path, table.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), table.num_rows());
  // Doubles survive the %.6g round-trip approximately.
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(back->row(i)[0], table.row(i)[0]);  // contributor_id
    EXPECT_NEAR(back->row(i)[4].AsDouble(), table.row(i)[4].AsDouble(),
                1e-4);  // bmi
  }
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileFails) {
  auto r = data::ReadCsvFile("/nonexistent/nope.csv", data::HealthSchema());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --- randomized serialization property sweep --------------------------------------

data::Value RandomValue(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return data::Value::Null();
    case 1:
      return data::Value(rng->NextInt(-1000000, 1000000));
    case 2:
      return data::Value(rng->NextGaussian(0, 1e6));
    default: {
      std::string s;
      size_t len = rng->NextBelow(20);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->NextInt(32, 126)));
      }
      return data::Value(std::move(s));
    }
  }
}

class TableSerializationProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TableSerializationProperty, RandomTablesRoundTrip) {
  Rng rng(GetParam());
  // Random schema.
  size_t num_cols = 1 + rng.NextBelow(6);
  std::vector<data::Column> cols;
  for (size_t c = 0; c < num_cols; ++c) {
    data::ValueType t = static_cast<data::ValueType>(1 + rng.NextBelow(3));
    cols.push_back({"c" + std::to_string(c), t});
  }
  data::Table table{data::Schema(cols)};
  size_t rows = rng.NextBelow(50);
  for (size_t i = 0; i < rows; ++i) {
    data::Tuple t;
    for (size_t c = 0; c < num_cols; ++c) {
      // Respect the declared type (or NULL).
      if (rng.NextBernoulli(0.1)) {
        t.push_back(data::Value::Null());
        continue;
      }
      switch (cols[c].type) {
        case data::ValueType::kInt64:
          t.push_back(data::Value(rng.NextInt(-1e9, 1e9)));
          break;
        case data::ValueType::kDouble:
          t.push_back(data::Value(rng.NextGaussian()));
          break;
        default:
          t.push_back(RandomValue(&rng));
          // Coerce to string if the random value has the wrong type.
          if (t.back().type() != data::ValueType::kString &&
              !t.back().is_null()) {
            t.back() = data::Value(t.back().ToString());
          }
          break;
      }
    }
    table.AppendUnchecked(std::move(t));
  }

  Writer w;
  table.Serialize(&w);
  Reader r(w.data());
  auto back = data::Table::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, table);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableSerializationProperty,
                         ::testing::Range<uint64_t>(1, 21));

class ValueOrderingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderingProperty, StrictWeakOrdering) {
  Rng rng(GetParam() * 31);
  std::vector<data::Value> values;
  for (int i = 0; i < 40; ++i) values.push_back(RandomValue(&rng));
  // Irreflexivity + asymmetry + hash/equality consistency.
  for (const auto& a : values) {
    EXPECT_FALSE(a < a);
    for (const auto& b : values) {
      if (a < b) {
        EXPECT_FALSE(b < a);
      }
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash());
        EXPECT_FALSE(a < b);
        EXPECT_FALSE(b < a);
      }
    }
  }
  // Sortable without UB and stable result.
  std::sort(values.begin(), values.end(),
            [](const data::Value& a, const data::Value& b) { return a < b; });
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_FALSE(values[i] < values[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderingProperty,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace edgelet
