// The parallel trial harness (bench/trial_runner.h) relies on one
// invariant: a trial's ExecutionReport is a pure function of its
// (config, seed), so fanning trials across a thread pool changes only
// wall-clock time, never results. This test pins that invariant at the
// exec layer — the same seeds run serially and on a 4-worker pool must
// produce byte-identical serialized reports.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "core/framework.h"

namespace edgelet::core {
namespace {

using query::AggregateFunction;
using query::CompareOp;

uint64_t RunTrial(uint64_t seed) {
  FrameworkConfig cfg;
  cfg.fleet.num_contributors = 200;
  cfg.fleet.num_processors = 40;
  cfg.fleet.enable_churn = false;
  cfg.seed = seed;
  EdgeletFramework fw(cfg);
  EXPECT_TRUE(fw.Init().ok());

  query::Query q;
  q.query_id = 31;
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = 40;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}},
      {{AggregateFunction::kCount, "*"}, {AggregateFunction::kAvg, "bmi"}}};

  PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;
  auto d = fw.Plan(q, privacy, {0.1, 0.99}, exec::Strategy::kOvercollection);
  EXPECT_TRUE(d.ok()) << d.status().ToString();

  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = 0.1;
  ec.seed = seed + 5;
  auto report = fw.Execute(*d, ec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return exec::ReportFingerprint(*report);
}

const std::vector<uint64_t> kSeeds = {11, 22, 33, 44, 55, 66};

TEST(ExecDeterminismTest, SameSeedReproducesIdenticalReport) {
  for (uint64_t seed : {11u, 22u}) {
    EXPECT_EQ(RunTrial(seed), RunTrial(seed)) << "seed " << seed;
  }
}

TEST(ExecDeterminismTest, DistinctSeedsProduceDistinctReports) {
  // Not a hard guarantee, but with different fleets/failures a collision
  // would point at a fingerprint bug.
  EXPECT_NE(RunTrial(11), RunTrial(22));
}

TEST(ExecDeterminismTest, ParallelTrialsMatchSerialTrials) {
  std::vector<uint64_t> serial;
  for (uint64_t seed : kSeeds) serial.push_back(RunTrial(seed));

  ThreadPool pool(4);
  std::vector<std::future<uint64_t>> futures;
  for (uint64_t seed : kSeeds) {
    futures.push_back(pool.Submit([seed]() { return RunTrial(seed); }));
  }
  for (size_t i = 0; i < kSeeds.size(); ++i) {
    EXPECT_EQ(futures[i].get(), serial[i]) << "seed " << kSeeds[i];
  }
}

}  // namespace
}  // namespace edgelet::core
