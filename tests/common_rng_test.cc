#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace edgelet {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.NextBelow(10)];
  for (int count : seen) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double e = rng.NextExponential(0.5);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkIndependence) {
  Rng parent(41);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkDeterministic) {
  Rng p1(41), p2(41);
  Rng c1 = p1.Fork(9);
  Rng c2 = p2.Fork(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.NextU64(), c2.NextU64());
}

TEST(NodeRngTest, PureFunctionOfSeedAndStream) {
  // The stream is a pure function of (seed, stream id, draw index): a
  // node's k-th draw is the same no matter how draws of other nodes
  // interleave with it. This is what makes network sampling identical
  // across engine shard counts.
  NodeRng a1(99, 4), b1(99, 5);
  std::vector<uint64_t> a_seq, b_seq;
  for (int i = 0; i < 16; ++i) a_seq.push_back(a1.NextU64());
  for (int i = 0; i < 16; ++i) b_seq.push_back(b1.NextU64());

  NodeRng a2(99, 4), b2(99, 5);
  for (int i = 0; i < 16; ++i) {
    // Interleaved redraw must reproduce both sequences exactly.
    EXPECT_EQ(b2.NextU64(), b_seq[i]);
    EXPECT_EQ(a2.NextU64(), a_seq[i]);
  }
  EXPECT_EQ(a2.draw_index(), 16u);
}

TEST(NodeRngTest, StreamLayoutPinned) {
  // Golden values: the (seed, stream, index) -> u64 mapping is part of the
  // cross-engine determinism contract. Changing the derivation silently
  // re-randomizes every simulation; this pin makes that an explicit
  // decision.
  NodeRng a(42, 7);
  EXPECT_EQ(a.NextU64(), 0xF350090406A9B46DULL);
  EXPECT_EQ(a.NextU64(), 0x8908B17D890529CAULL);
  EXPECT_EQ(a.NextU64(), 0x22F96B638B0F9837ULL);
  NodeRng b(1, 1);
  EXPECT_EQ(b.NextU64(), 0xC35B5E8D70C0B284ULL);
  EXPECT_EQ(b.NextU64(), 0x67B5986FE3A436CFULL);
}

TEST(NodeRngTest, StreamsDiffer) {
  NodeRng a(1, 1), b(1, 2), c(2, 1);
  int ab = 0, ac = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    ab += (va == b.NextU64());
    ac += (va == c.NextU64());
  }
  EXPECT_LT(ab, 3);
  EXPECT_LT(ac, 3);
}

TEST(NodeRngTest, DistributionsBehave) {
  NodeRng rng(7, 3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);

  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);

  double esum = 0;
  for (int i = 0; i < 50000; ++i) esum += rng.NextExponential(0.5);
  EXPECT_NEAR(esum / 50000, 2.0, 0.1);

  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation.
  uint64_t s = 0;
  EXPECT_EQ(SplitMix64(&s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64(&s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64(&s), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace edgelet
