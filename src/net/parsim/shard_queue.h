#ifndef EDGELET_NET_PARSIM_SHARD_QUEUE_H_
#define EDGELET_NET_PARSIM_SHARD_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "net/message.h"

namespace edgelet::net::parsim {

// Deterministic event-ordering key: events execute in ascending
// (time, tiebreak) order, where tiebreak packs (origin node, per-origin
// sequence). Both quantities are derived from per-node execution only, so
// the key — unlike a global scheduling counter — is identical for any
// shard count. Origin ids must fit 24 bits (16.7M nodes) and per-origin
// sequences 40 bits (1.1e12 schedules per node).
inline uint64_t MakeTiebreak(NodeId origin, uint64_t oseq) {
  return (static_cast<uint64_t>(origin) << 40) |
         (oseq & ((uint64_t{1} << 40) - 1));
}

// One shard's event storage: a binary heap of trivially-copyable keys over
// a generation-counted callback slab (the PR 1 serial-queue design, shared
// here so the serial and parallel engines sort events with byte-identical
// comparators). Cancellation bumps the slot generation (a tombstone);
// slots recycle through a free list so steady state stops allocating.
// Single-threaded by construction — the owning engine serializes access.
class ShardQueue {
 public:
  // (slot, gen) pair the caller packs into an engine-level handle.
  struct Ticket {
    uint32_t slot = 0;
    uint32_t gen = 0;
  };

  // A popped, runnable event.
  struct Ready {
    SimTime time = 0;
    NodeId owner = kInvalidNode;
    std::function<void()> fn;
  };

  void Reserve(size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
  }

  Ticket Insert(SimTime t, uint64_t tiebreak, NodeId owner,
                std::function<void()> fn, uint64_t remote_key = 0) {
    uint32_t slot = AllocSlot(std::move(fn), owner, remote_key);
    uint32_t gen = slots_[slot].gen;
    heap_.push_back(HeapEntry{t, tiebreak, slot, gen});
    std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
    ++live_;
    return {slot, gen};
  }

  // Cancels the slot if the generation still matches. On success stores
  // the slot's remote key (0 if none) so the caller can drop its own
  // remote-handle mapping.
  bool CancelTicket(Ticket ticket, uint64_t* remote_key_out = nullptr) {
    if (ticket.slot >= slots_.size()) return false;
    Slot& s = slots_[ticket.slot];
    if (s.gen != ticket.gen) return false;
    if (remote_key_out != nullptr) *remote_key_out = s.remote_key;
    FreeSlot(ticket.slot);
    --live_;
    return true;
  }

  // Time of the earliest pending event (tombstones pruned), or
  // kSimTimeNever when empty.
  SimTime HeadTime() {
    PruneHead();
    return heap_.empty() ? kSimTimeNever : heap_.front().time;
  }

  // Pops the earliest event if its time is <= `limit`. The slot is freed
  // before returning so the callback may cancel/schedule freely. On
  // success stores the slot's remote key (0 if none).
  bool PopRunnable(SimTime limit, Ready* out, uint64_t* remote_key_out) {
    PruneHead();
    if (heap_.empty() || heap_.front().time > limit) return false;
    HeapEntry e = heap_.front();
    PopEntry();
    --live_;
    Slot& s = slots_[e.slot];
    out->time = e.time;
    out->owner = s.owner;
    out->fn = std::move(s.fn);
    *remote_key_out = s.remote_key;
    FreeSlot(e.slot);
    return true;
  }

  size_t live() const { return live_; }
  size_t slot_count() const { return slots_.size(); }

 private:
  // 24-byte POD heap key; sift operations never touch the std::function.
  struct HeapEntry {
    SimTime time;
    uint64_t tiebreak;  // (origin, oseq): deterministic tie order
    uint32_t slot;
    uint32_t gen;
  };
  // Min-heap on (time, tiebreak) via the std heap algorithms (which build
  // a max-heap w.r.t. the comparator, so "later" sorts toward the leaves).
  struct EntryLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.tiebreak > b.tiebreak;
    }
  };
  struct Slot {
    std::function<void()> fn;
    uint64_t remote_key = 0;
    NodeId owner = kInvalidNode;
    uint32_t gen = 1;
    uint32_t next_free = kNoFreeSlot;
  };
  static constexpr uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  uint32_t AllocSlot(std::function<void()> fn, NodeId owner,
                     uint64_t remote_key) {
    uint32_t slot;
    if (free_head_ != kNoFreeSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.owner = owner;
    s.remote_key = remote_key;
    return slot;
  }

  void FreeSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn = nullptr;
    s.remote_key = 0;
    // Bumping the generation tombstones every outstanding handle and heap
    // entry that still refers to this slot.
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  bool IsTombstone(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  void PopEntry() {
    std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
    heap_.pop_back();
  }

  void PruneHead() {
    while (!heap_.empty() && IsTombstone(heap_.front())) PopEntry();
  }

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
  size_t live_ = 0;
};

}  // namespace edgelet::net::parsim

#endif  // EDGELET_NET_PARSIM_SHARD_QUEUE_H_
