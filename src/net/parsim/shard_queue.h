#ifndef EDGELET_NET_PARSIM_SHARD_QUEUE_H_
#define EDGELET_NET_PARSIM_SHARD_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "net/message.h"

namespace edgelet::net::parsim {

// Deterministic event-ordering key: events execute in ascending
// (time, tiebreak) order, where tiebreak packs (origin node, per-origin
// sequence). Both quantities are derived from per-node execution only, so
// the key — unlike a global scheduling counter — is identical for any
// shard count. Origin ids must fit 24 bits (16.7M nodes) and per-origin
// sequences 40 bits (1.1e12 schedules per node).
inline uint64_t MakeTiebreak(NodeId origin, uint64_t oseq) {
  return (static_cast<uint64_t>(origin) << 40) |
         (oseq & ((uint64_t{1} << 40) - 1));
}

// One shard's event storage, laid out structure-of-arrays. The heap is
// three parallel vectors — times, tiebreaks, and packed (slot, gen) refs —
// so a sift compares and moves 24 hot bytes per level with no callback
// anywhere near the cache lines it touches. Slot metadata (generation,
// owner, remote key, free link) lives in plain parallel vectors for the
// same reason: the tombstone test that PruneHead runs per heap pop reads
// one uint32_t, not a 64-byte Slot struct dragging a std::function along.
//
// Callbacks themselves sit apart in batch-allocated fixed-size chunks
// (kFnChunkSize std::functions each). Chunks are address-stable: growth
// appends a new chunk and never moves — or even touches — existing
// callbacks, unlike a vector<Slot> reallocation which move-constructed
// every std::function in the slab.
//
// Because (time, tiebreak) keys are globally unique, the extraction order
// is the total key order regardless of heap internals — so this layout is
// bit-compatible with the PR 1 AoS slab it replaces. Cancellation bumps
// the slot generation (a tombstone); slots recycle through a free list so
// steady state stops allocating. Single-threaded by construction — the
// owning engine serializes access.
class ShardQueue {
 public:
  // Callbacks per batch-allocated chunk (power of two: index math is a
  // shift and mask).
  static constexpr size_t kFnChunkSize = 4096;

  // (slot, gen) pair the caller packs into an engine-level handle.
  struct Ticket {
    uint32_t slot = 0;
    uint32_t gen = 0;
  };

  // A popped, runnable event.
  struct Ready {
    SimTime time = 0;
    NodeId owner = kInvalidNode;
    std::function<void()> fn;
  };

  void Reserve(size_t n) {
    heap_time_.reserve(n);
    heap_tie_.reserve(n);
    heap_ref_.reserve(n);
    slot_gen_.reserve(n);
    slot_next_free_.reserve(n);
    slot_owner_.reserve(n);
    slot_remote_key_.reserve(n);
    while (fn_chunks_.size() * kFnChunkSize < n) AddChunk();
  }

  Ticket Insert(SimTime t, uint64_t tiebreak, NodeId owner,
                std::function<void()> fn, uint64_t remote_key = 0) {
    uint32_t slot = AllocSlot(std::move(fn), owner, remote_key);
    uint32_t gen = slot_gen_[slot];
    heap_time_.push_back(t);
    heap_tie_.push_back(tiebreak);
    heap_ref_.push_back(PackRef(slot, gen));
    SiftUp(heap_time_.size() - 1);
    ++live_;
    return {slot, gen};
  }

  // Cancels the slot if the generation still matches. On success stores
  // the slot's remote key (0 if none) so the caller can drop its own
  // remote-handle mapping.
  bool CancelTicket(Ticket ticket, uint64_t* remote_key_out = nullptr) {
    if (ticket.slot >= slot_gen_.size()) return false;
    if (slot_gen_[ticket.slot] != ticket.gen) return false;
    if (remote_key_out != nullptr) {
      *remote_key_out = slot_remote_key_[ticket.slot];
    }
    FreeSlot(ticket.slot);
    --live_;
    return true;
  }

  // Time of the earliest pending event (tombstones pruned), or
  // kSimTimeNever when empty.
  SimTime HeadTime() {
    PruneHead();
    return heap_time_.empty() ? kSimTimeNever : heap_time_.front();
  }

  // Pops the earliest event if its time is <= `limit`. The slot is freed
  // before returning so the callback may cancel/schedule freely. On
  // success stores the slot's remote key (0 if none).
  bool PopRunnable(SimTime limit, Ready* out, uint64_t* remote_key_out) {
    PruneHead();
    if (heap_time_.empty() || heap_time_.front() > limit) return false;
    uint64_t ref = heap_ref_.front();
    uint32_t slot = static_cast<uint32_t>(ref >> 32);
    out->time = heap_time_.front();
    out->owner = slot_owner_[slot];
    out->fn = std::move(FnAt(slot));
    *remote_key_out = slot_remote_key_[slot];
    PopEntry();
    --live_;
    FreeSlot(slot);
    return true;
  }

  size_t live() const { return live_; }
  size_t slot_count() const { return slot_gen_.size(); }
  size_t fn_chunk_count() const { return fn_chunks_.size(); }

 private:
  static constexpr uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  static constexpr size_t kFnChunkShift = 12;  // log2(kFnChunkSize)
  static constexpr size_t kFnChunkMask = kFnChunkSize - 1;
  static_assert(size_t{1} << kFnChunkShift == kFnChunkSize);

  static uint64_t PackRef(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) << 32) | gen;
  }

  std::function<void()>& FnAt(uint32_t slot) {
    return fn_chunks_[slot >> kFnChunkShift][slot & kFnChunkMask];
  }

  void AddChunk() {
    fn_chunks_.push_back(
        std::make_unique<std::function<void()>[]>(kFnChunkSize));
  }

  uint32_t AllocSlot(std::function<void()> fn, NodeId owner,
                     uint64_t remote_key) {
    uint32_t slot;
    if (free_head_ != kNoFreeSlot) {
      slot = free_head_;
      free_head_ = slot_next_free_[slot];
    } else {
      slot = static_cast<uint32_t>(slot_gen_.size());
      slot_gen_.push_back(1);
      slot_next_free_.push_back(kNoFreeSlot);
      slot_owner_.push_back(kInvalidNode);
      slot_remote_key_.push_back(0);
      if ((static_cast<size_t>(slot) >> kFnChunkShift) >= fn_chunks_.size()) {
        AddChunk();
      }
    }
    FnAt(slot) = std::move(fn);
    slot_owner_[slot] = owner;
    slot_remote_key_[slot] = remote_key;
    return slot;
  }

  void FreeSlot(uint32_t slot) {
    FnAt(slot) = nullptr;
    slot_remote_key_[slot] = 0;
    // Bumping the generation tombstones every outstanding handle and heap
    // entry that still refers to this slot.
    ++slot_gen_[slot];
    slot_next_free_[slot] = free_head_;
    free_head_ = slot;
  }

  // a orders strictly before b; keys are globally unique so no equal case.
  bool Earlier(SimTime ta, uint64_t tia, size_t b) const {
    return ta != heap_time_[b] ? ta < heap_time_[b] : tia < heap_tie_[b];
  }

  // Hole-shifting sifts: the moving key rides in registers while parents /
  // children shift through the hole, halving the stores of a swap chain.
  void SiftUp(size_t i) {
    SimTime t = heap_time_[i];
    uint64_t tie = heap_tie_[i];
    uint64_t ref = heap_ref_[i];
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Earlier(t, tie, parent)) break;
      heap_time_[i] = heap_time_[parent];
      heap_tie_[i] = heap_tie_[parent];
      heap_ref_[i] = heap_ref_[parent];
      i = parent;
    }
    heap_time_[i] = t;
    heap_tie_[i] = tie;
    heap_ref_[i] = ref;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_time_.size();
    SimTime t = heap_time_[i];
    uint64_t tie = heap_tie_[i];
    uint64_t ref = heap_ref_[i];
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= n) break;
      size_t right = child + 1;
      if (right < n &&
          Earlier(heap_time_[right], heap_tie_[right], child)) {
        child = right;
      }
      if (Earlier(t, tie, child)) break;
      heap_time_[i] = heap_time_[child];
      heap_tie_[i] = heap_tie_[child];
      heap_ref_[i] = heap_ref_[child];
      i = child;
    }
    heap_time_[i] = t;
    heap_tie_[i] = tie;
    heap_ref_[i] = ref;
  }

  bool HeadIsTombstone() const {
    uint64_t ref = heap_ref_.front();
    return slot_gen_[static_cast<uint32_t>(ref >> 32)] !=
           static_cast<uint32_t>(ref);
  }

  void PopEntry() {
    size_t last = heap_time_.size() - 1;
    if (last != 0) {
      heap_time_.front() = heap_time_[last];
      heap_tie_.front() = heap_tie_[last];
      heap_ref_.front() = heap_ref_[last];
    }
    heap_time_.pop_back();
    heap_tie_.pop_back();
    heap_ref_.pop_back();
    if (heap_time_.size() > 1) SiftDown(0);
  }

  void PruneHead() {
    while (!heap_time_.empty() && HeadIsTombstone()) PopEntry();
  }

  // Heap keys, index-parallel: a sift touches these three arrays only.
  std::vector<SimTime> heap_time_;
  std::vector<uint64_t> heap_tie_;
  std::vector<uint64_t> heap_ref_;  // (slot << 32) | gen
  // Slot metadata, index-parallel by slot id.
  std::vector<uint32_t> slot_gen_;
  std::vector<uint32_t> slot_next_free_;
  std::vector<NodeId> slot_owner_;
  std::vector<uint64_t> slot_remote_key_;
  // Callback slab: address-stable fixed-size chunks.
  std::vector<std::unique_ptr<std::function<void()>[]>> fn_chunks_;
  uint32_t free_head_ = kNoFreeSlot;
  size_t live_ = 0;
};

}  // namespace edgelet::net::parsim

#endif  // EDGELET_NET_PARSIM_SHARD_QUEUE_H_
