#ifndef EDGELET_NET_PARSIM_FLAT_MAP_H_
#define EDGELET_NET_PARSIM_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgelet::net::parsim {

// Open-addressing uint64 -> uint64 hash map for the per-shard remote-event
// index (remote handle -> packed local ticket). Replaces unordered_map,
// whose per-insert node allocation was the last steady-state allocation on
// the merge path: this table is two flat arrays with linear probing, so
// once it has grown to the working-set size, insert/erase never allocate.
//
// Key 0 is the empty sentinel. That is safe for this use because remote
// handles always carry bit 63 (see parallel_simulator.cc RemoteHandle), so
// a zero key cannot occur. Erase uses backward-shift deletion instead of
// tombstones: the table never degrades under the merge path's perfectly
// cyclic insert/erase traffic.
class FlatMap64 {
 public:
  void Reserve(size_t n) {
    size_t cap = 16;
    while (cap * 7 < n * 8) cap <<= 1;  // keep load factor under 7/8
    if (cap > keys_.size()) Rehash(cap);
  }

  size_t size() const { return size_; }

  // Inserts or overwrites.
  void Insert(uint64_t key, uint64_t value) {
    if ((size_ + 1) * 8 > keys_.size() * 7) {
      Rehash(keys_.empty() ? 16 : keys_.size() * 2);
    }
    size_t i = Hash(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) {
        vals_[i] = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
  }

  bool Find(uint64_t key, uint64_t* value_out) const {
    if (keys_.empty()) return false;
    size_t i = Hash(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) {
        *value_out = vals_[i];
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Removes `key`; stores its value first when found. Backward-shift
  // deletion: entries displaced past the hole by linear probing slide back
  // so every remaining entry stays reachable from its home slot.
  bool Erase(uint64_t key, uint64_t* value_out = nullptr) {
    if (keys_.empty()) return false;
    size_t i = Hash(key) & mask_;
    while (keys_[i] != key) {
      if (keys_[i] == 0) return false;
      i = (i + 1) & mask_;
    }
    if (value_out != nullptr) *value_out = vals_[i];
    size_t hole = i;
    for (;;) {
      size_t j = (hole + 1) & mask_;
      while (keys_[j] != 0) {
        size_t home = Hash(keys_[j]) & mask_;
        // j's entry may fill the hole only if its home slot does not lie
        // cyclically in (hole, j] — otherwise moving it would strand it
        // before its probe start.
        bool home_between = (hole < j) ? (hole < home && home <= j)
                                       : (hole < home || home <= j);
        if (!home_between) break;
        j = (j + 1) & mask_;
      }
      if (keys_[j] == 0) break;
      keys_[hole] = keys_[j];
      vals_[hole] = vals_[j];
      hole = j;
    }
    keys_[hole] = 0;
    --size_;
    return true;
  }

 private:
  // SplitMix64 finalizer: full-avalanche mix so the handle's structured
  // high bits (dest/src shard) do not cluster probes.
  static uint64_t Hash(uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint64_t> old_vals = std::move(vals_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != 0) Insert(old_keys[i], old_vals[i]);
    }
  }

  std::vector<uint64_t> keys_;  // 0 = empty
  std::vector<uint64_t> vals_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace edgelet::net::parsim

#endif  // EDGELET_NET_PARSIM_FLAT_MAP_H_
