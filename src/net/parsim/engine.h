#ifndef EDGELET_NET_PARSIM_ENGINE_H_
#define EDGELET_NET_PARSIM_ENGINE_H_

#include <cstdint>
#include <functional>

#include "common/sim_time.h"
#include "net/message.h"

namespace edgelet::net {

// Invalid event handle: returned when scheduling fails, accepted (and
// rejected) by Cancel.
constexpr uint64_t kInvalidEventId = 0;

// Discrete-event engine interface. Two implementations exist:
//
//   * net::Simulator           — the single-threaded engine.
//   * parsim::ParallelSimulator — a conservative (window-barrier) parallel
//     engine that shards nodes across worker threads.
//
// Both execute events in (time, origin, origin-sequence) order, where
// `origin` is the node whose callback scheduled the event and the origin
// sequence counts that node's schedule calls. Because the key is derived
// from per-node quantities only — never from a global scheduling order —
// the execution order of any one node's events is identical for every
// shard count, including the serial engine. That, plus per-node RNG
// streams (common/rng.h NodeRng) and shard-local stats buffers, is what
// makes an entire simulation bit-identical across engines.
//
// Contract for users scheduling onto *another* node's timeline (message
// deliveries): the target time must be at least `lookahead` in the future,
// where lookahead is the engine's window width (the minimum cross-node
// link latency). Events a node schedules for itself have no such bound —
// a zero-latency self-send stays intra-shard by construction.
class SimEngine {
 public:
  virtual ~SimEngine() = default;

  // Current simulated time of the calling context. Inside an event
  // callback this is the event's time (per-shard during a parallel run);
  // outside a run it is the time of the last executed event.
  virtual SimTime now() const = 0;

  // Schedules `fn` at absolute time `t` (>= now) on `owner`'s timeline;
  // the owner decides which shard executes the callback. owner 0 is the
  // engine-global timeline (shard 0 in a parallel engine). Returns an
  // event id unique across shards (the owning shard lives in the high
  // bits) that can be passed to Cancel.
  virtual uint64_t ScheduleAt(NodeId owner, SimTime t,
                              std::function<void()> fn) = 0;

  uint64_t ScheduleAfter(NodeId owner, SimDuration delay,
                         std::function<void()> fn) {
    SimTime at = now();
    at = (delay > kSimTimeNever - at) ? kSimTimeNever : at + delay;
    return ScheduleAt(owner, at, std::move(fn));
  }

  // Convenience overloads: the event stays on the calling context's
  // timeline (the node whose callback is executing, or the global
  // timeline outside a run).
  uint64_t ScheduleAt(SimTime t, std::function<void()> fn) {
    return ScheduleAt(CurrentContextNode(), t, std::move(fn));
  }
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAfter(CurrentContextNode(), delay, std::move(fn));
  }

  // Cancels a pending event; returns false if it already ran or was
  // cancelled. Called from an event callback for an event owned by a
  // *different* shard, the cancel is applied at the next window barrier
  // and the return value reports only that it was enqueued; it is
  // deterministic iff the target event is at least `lookahead` in the
  // future (the same bound that applies to cross-node scheduling).
  virtual bool Cancel(uint64_t event_id) = 0;

  // Runs until the queue drains or the next event is past `until`.
  // Returns the number of events executed. Must be called from outside
  // any event callback.
  virtual size_t RunUntil(SimTime until) = 0;
  size_t Run() { return RunUntil(kSimTimeNever); }

  // Pre-sizes internal queues for `n` in-flight events (split across
  // shards in a parallel engine).
  virtual void ReserveEvents(size_t n) = 0;

  virtual size_t events_executed() const = 0;
  virtual size_t pending_events() const = 0;

  // Seed this engine was constructed with; per-node RNG streams derive
  // from (seed, node_id, draw_index).
  virtual uint64_t seed() const = 0;

  // --- Sharding metadata -------------------------------------------------
  // Shard-local buffers (NetworkStats, payload pools, ExecutionTrace)
  // index by current_shard(); a serial engine is one shard.
  virtual size_t num_shards() const { return 1; }
  // Shard executing the calling context (0 outside a run).
  virtual size_t current_shard() const { return 0; }
  virtual size_t ShardOf(NodeId node) const {
    (void)node;
    return 0;
  }

 protected:
  // Node whose event callback is executing in the calling context, or 0.
  virtual NodeId CurrentContextNode() const = 0;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_PARSIM_ENGINE_H_
