#include "net/parsim/parallel_simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace edgelet::net::parsim {

namespace {

// Worker-thread context. A worker belongs to exactly one engine for its
// lifetime; the coordinator (and any other thread) leaves these unset, so
// `t_engine == this` is the "inside one of my event callbacks" test.
thread_local ParallelSimulator* t_engine = nullptr;
thread_local size_t t_shard = 0;

constexpr uint64_t kRemoteBit = uint64_t{1} << 63;
constexpr size_t kMaxShards = 128;  // 7 shard bits in every handle

size_t ClampShards(size_t n) { return std::max<size_t>(1, std::min(n, kMaxShards)); }

SimTime SatAdd(SimTime t, SimDuration d) {
  return (d > kSimTimeNever - t) ? kSimTimeNever : t + d;
}

// Local handle: [63]=0 [62:56]=shard [55:32]=slot [31:0]=generation.
uint64_t LocalHandle(size_t shard, ShardQueue::Ticket t) {
  assert(t.slot < (uint32_t{1} << 24));
  return (static_cast<uint64_t>(shard) << 56) |
         (static_cast<uint64_t>(t.slot) << 32) | t.gen;
}

// Remote handle: [63]=1 [62:56]=dest shard [55:48]=source shard
// [47:0]=per-(source,dest) sequence. The handle doubles as the key in the
// destination shard's remote map, so the uniqueness argument is the bit
// layout itself — and bit 63 is why key 0 can be FlatMap64's empty slot.
uint64_t RemoteHandle(size_t dest, size_t src, uint64_t rseq) {
  return kRemoteBit | (static_cast<uint64_t>(dest) << 56) |
         (static_cast<uint64_t>(src) << 48) |
         (rseq & ((uint64_t{1} << 48) - 1));
}

uint64_t PackTicket(ShardQueue::Ticket t) {
  return (static_cast<uint64_t>(t.slot) << 32) | t.gen;
}

ShardQueue::Ticket UnpackTicket(uint64_t packed) {
  return {static_cast<uint32_t>(packed >> 32), static_cast<uint32_t>(packed)};
}

}  // namespace

ParallelSimulator::ParallelSimulator(uint64_t seed, Options options)
    : seed_(seed),
      lookahead_(options.lookahead == 0 ? 1 : options.lookahead),
      sync_(static_cast<std::ptrdiff_t>(ClampShards(options.num_shards) + 1)) {
  const size_t n = ClampShards(options.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->outbox.resize(n);
    shard->cancel_outbox.resize(n);
    shard->rseq_out.resize(n);
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&ParallelSimulator::WorkerLoop, this, i);
  }
}

ParallelSimulator::~ParallelSimulator() {
  command_ = Command::kShutdown;
  sync_.arrive_and_wait();
  for (auto& worker : workers_) worker.join();
}

SimTime ParallelSimulator::now() const {
  return t_engine == this ? shards_[t_shard]->now : global_now_;
}

size_t ParallelSimulator::current_shard() const {
  return t_engine == this ? t_shard : 0;
}

NodeId ParallelSimulator::CurrentContextNode() const {
  return t_engine == this ? shards_[t_shard]->current_node : kInvalidNode;
}

uint64_t ParallelSimulator::NextOseq(Shard& shard, NodeId origin) {
  // Shards store counters only for the origins they own, densely. Growth
  // is geometric: dense node registration hits a new high index on every
  // call, and resize(index + 1) would make each one an O(n) copy.
  size_t index = static_cast<size_t>(origin / shards_.size());
  if (index >= shard.oseq.size()) {
    shard.oseq.resize(std::max(index + 1, shard.oseq.size() * 2), 0);
  }
  return shard.oseq[index]++;
}

void ParallelSimulator::MarkInbound(Shard& from, size_t dest) {
  // Empty -> nonempty transition for the (from, dest) outbox pair: flag
  // `from` in dest's source mask so dest's merge visits it this round.
  shards_[dest]->inbound_mask[from.index >> 6].fetch_or(
      uint64_t{1} << (from.index & 63), std::memory_order_relaxed);
}

uint64_t ParallelSimulator::ScheduleAt(NodeId owner, SimTime t,
                                       std::function<void()> fn) {
  const size_t dest = ShardOf(owner);
  if (t_engine != this) {
    // Coordinator context (engine idle between windows): direct insert as
    // origin 0. The origin-0 sequence is shard 0's counter for node 0 so
    // that owner-0 callbacks and coordinator schedules share one stream,
    // exactly like the serial engine's oseq_[0].
    assert(t >= global_now_);
    if (t < global_now_) t = global_now_;
    uint64_t tiebreak = MakeTiebreak(0, NextOseq(*shards_[0], 0));
    return LocalHandle(
        dest, shards_[dest]->queue.Insert(t, tiebreak, owner, std::move(fn)));
  }
  Shard& cur = *shards_[t_shard];
  const NodeId origin = cur.current_node;
  uint64_t tiebreak = MakeTiebreak(origin, NextOseq(cur, origin));
  if (t < cur.now) t = cur.now;
  if (dest == cur.index) {
    // Same-shard (in particular: self) schedules are unrestricted — a
    // zero-latency self-send executes inside the current window.
    return LocalHandle(dest,
                       cur.queue.Insert(t, tiebreak, owner, std::move(fn)));
  }
  // Cross-shard: buffer in the outbox, merged by the destination at the
  // next barrier. A target within lookahead of the scheduling event breaks
  // the cross-node contract and arrives causally late; count it — the
  // setup's lookahead was too large.
  if (t < SatAdd(cur.now, lookahead_)) {
    lookahead_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  // Solo-batch soundness clamp: another shard wakes no later than this
  // transfer's landing time, so its causality can reach back into this
  // shard from t + lookahead on — nothing at or past that may run in the
  // current round. (Outside a solo round the static window limit is
  // already tighter, making this a no-op.)
  SimTime cap = SatAdd(t, lookahead_) - 1;
  if (cap < cur.exec_limit) cur.exec_limit = cap;
  if (cur.outbox[dest].empty() && cur.cancel_outbox[dest].empty()) {
    MarkInbound(cur, dest);
  }
  uint64_t handle = RemoteHandle(dest, cur.index, cur.rseq_out[dest]++);
  cur.outbox[dest].push_back(
      Transfer{t, tiebreak, handle, owner, std::move(fn)});
  return handle;
}

bool ParallelSimulator::ApplyLocalCancel(size_t dest, uint64_t event_id) {
  Shard& shard = *shards_[dest];
  if (event_id & kRemoteBit) {
    uint64_t packed = 0;
    if (!shard.remote_map.Erase(event_id, &packed)) {
      return false;  // ran or cancelled
    }
    return shard.queue.CancelTicket(UnpackTicket(packed));
  }
  ShardQueue::Ticket ticket = UnpackTicket(event_id & ~(uint64_t{0x7F} << 56));
  uint64_t remote_key = 0;
  bool cancelled = shard.queue.CancelTicket(ticket, &remote_key);
  if (cancelled && remote_key != 0) shard.remote_map.Erase(remote_key);
  return cancelled;
}

bool ParallelSimulator::Cancel(uint64_t event_id) {
  if (event_id == kInvalidEventId) return false;
  const size_t dest = (event_id >> 56) & 0x7F;
  if (dest >= shards_.size()) return false;
  if (t_engine != this) return ApplyLocalCancel(dest, event_id);
  Shard& cur = *shards_[t_shard];
  if (dest == cur.index) return ApplyLocalCancel(dest, event_id);
  // Cross-shard: deferred to the barrier. Deterministic iff the target is
  // at least one lookahead away (the cross-node scheduling bound).
  if (cur.outbox[dest].empty() && cur.cancel_outbox[dest].empty()) {
    MarkInbound(cur, dest);
  }
  cur.cancel_outbox[dest].push_back(event_id);
  return true;
}

ParallelSimulator::WindowPlan ParallelSimulator::PlanWindow() const {
  // Lowest-index argmin: ties broken identically by every participant.
  SimTime next = kSimTimeNever;
  SimTime second = kSimTimeNever;
  size_t argmin = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    SimTime head = shards_[i]->head_published.load(std::memory_order_relaxed);
    if (head < next) {
      second = next;
      next = head;
      argmin = i;
    } else if (head < second) {
      second = head;
    }
  }
  WindowPlan plan;
  if (next == kSimTimeNever || next > until_) return plan;  // run = false
  plan.run = true;
  const SimTime horizon = SatAdd(next, lookahead_);
  if (second >= horizon) {
    // No other shard has work inside the base window: the argmin shard
    // runs alone, batched up to the instant the second shard's causality
    // (plus lookahead) could first matter. Its own transfers clamp the
    // limit further at emission time. With one shard `second` is always
    // kSimTimeNever, so the whole horizon is one window.
    plan.solo = true;
    plan.solo_shard = argmin;
    plan.limit = std::min(until_, SatAdd(second, lookahead_) - 1);
  } else {
    plan.limit = std::min(until_, horizon - 1);
  }
  return plan;
}

void ParallelSimulator::ExecuteWindow(Shard& shard, SimTime limit) {
  shard.exec_limit = limit;
  ShardQueue::Ready ready;
  uint64_t remote_key = 0;
  // exec_limit re-read every pop: emitted transfers may pull it down.
  while (shard.queue.PopRunnable(shard.exec_limit, &ready, &remote_key)) {
    if (remote_key != 0) shard.remote_map.Erase(remote_key);
    if (ready.time > shard.now) shard.now = ready.time;
    ++shard.executed;
    shard.current_node = ready.owner;
    ready.fn();
  }
  shard.current_node = kInvalidNode;
}

void ParallelSimulator::MergeInbound(Shard& shard) {
  // Drain exactly the sources that flagged traffic for us, in index order;
  // each outbox preserves its source's (deterministic) emission order, so
  // the merge is deterministic too. Self never flags: same-shard schedules
  // insert directly.
  size_t merged = 0;
  for (size_t word = 0; word < 2; ++word) {
    uint64_t mask =
        shard.inbound_mask[word].exchange(0, std::memory_order_relaxed);
    while (mask != 0) {
      const size_t src =
          word * 64 + static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      Shard& from = *shards_[src];
      auto& inbox = from.outbox[shard.index];
      for (Transfer& tr : inbox) {
        ShardQueue::Ticket ticket = shard.queue.Insert(
            tr.time, tr.tiebreak, tr.owner, std::move(tr.fn), tr.remote_key);
        shard.remote_map.Insert(tr.remote_key, PackTicket(ticket));
      }
      merged += inbox.size();
      inbox.clear();
      auto& cancels = from.cancel_outbox[shard.index];
      for (uint64_t id : cancels) ApplyLocalCancel(shard.index, id);
      cancels.clear();
    }
  }
  shard.transfers_in += merged;
  shard.inbox_hwm = std::max(shard.inbox_hwm, merged);
  shard.remote_map_hwm =
      std::max(shard.remote_map_hwm, shard.remote_map.size());
}

void ParallelSimulator::WorkerLoop(size_t index) {
  t_engine = this;
  t_shard = index;
  Shard& shard = *shards_[index];
  for (;;) {
    sync_.arrive_and_wait();  // run start: until_/command_ published
    if (command_ == Command::kShutdown) return;
    for (;;) {
      // Identical inputs, identical plan: every worker and the coordinator
      // leave this loop on the same round without any extra rendezvous.
      WindowPlan plan = PlanWindow();
      if (!plan.run) break;
      if (!plan.solo || plan.solo_shard == index) {
        ExecuteWindow(shard, plan.limit);
      }
      sync_.arrive_and_wait();  // execute done: outboxes stable
      MergeInbound(shard);
      shard.head_published.store(shard.queue.HeadTime(),
                                 std::memory_order_relaxed);
      sync_.arrive_and_wait();  // merge done: heads visible to planners
    }
    // Run end: the coordinator must not return — and later mutate heads,
    // until_, or queues — while any worker could still be computing its
    // final (agreeing) plan from the old inputs.
    sync_.arrive_and_wait();
  }
}

size_t ParallelSimulator::RunUntil(SimTime until) {
  assert(t_engine != this && "RunUntil must not be called from a callback");
  size_t before = 0;
  for (auto& shard : shards_) before += shard->executed;
  // Publish every head once up front: coordinator-context schedules since
  // the last run are not yet reflected in the workers' published values.
  for (auto& shard : shards_) {
    shard->head_published.store(shard->queue.HeadTime(),
                                std::memory_order_relaxed);
  }
  until_ = until;
  command_ = Command::kRun;
  sync_.arrive_and_wait();  // run start
  for (;;) {
    WindowPlan plan = PlanWindow();
    if (!plan.run) break;
    ++windows_;
    if (plan.solo) ++solo_windows_;
    sync_.arrive_and_wait();  // execute done
    sync_.arrive_and_wait();  // merge done
  }
  sync_.arrive_and_wait();  // run end: workers parked at run start again
  size_t after = 0;
  for (auto& shard : shards_) {
    after += shard->executed;
    global_now_ = std::max(global_now_, shard->now);
  }
  return after - before;
}

void ParallelSimulator::ReserveEvents(size_t n) {
  assert(t_engine != this);
  const size_t per_shard = n / shards_.size() + 1;
  for (auto& shard : shards_) shard->queue.Reserve(per_shard);
}

size_t ParallelSimulator::events_executed() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->executed;
  return total;
}

size_t ParallelSimulator::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.live();
    for (const auto& box : shard->outbox) total += box.size();
  }
  return total;
}

ParallelSimulator::BatchStats ParallelSimulator::batch_stats() const {
  BatchStats stats;
  stats.windows = windows_;
  stats.solo_windows = solo_windows_;
  for (const auto& shard : shards_) {
    stats.transfers += shard->transfers_in;
    stats.inbox_hwm = std::max(stats.inbox_hwm, shard->inbox_hwm);
    stats.remote_map_hwm =
        std::max(stats.remote_map_hwm, shard->remote_map_hwm);
  }
  return stats;
}

}  // namespace edgelet::net::parsim
