#include "net/parsim/parallel_simulator.h"

#include <algorithm>
#include <cassert>

namespace edgelet::net::parsim {

namespace {

// Worker-thread context. A worker belongs to exactly one engine for its
// lifetime; the coordinator (and any other thread) leaves these unset, so
// `t_engine == this` is the "inside one of my event callbacks" test.
thread_local ParallelSimulator* t_engine = nullptr;
thread_local size_t t_shard = 0;

constexpr uint64_t kRemoteBit = uint64_t{1} << 63;
constexpr size_t kMaxShards = 128;  // 7 shard bits in every handle

size_t ClampShards(size_t n) { return std::max<size_t>(1, std::min(n, kMaxShards)); }

// Local handle: [63]=0 [62:56]=shard [55:32]=slot [31:0]=generation.
uint64_t LocalHandle(size_t shard, ShardQueue::Ticket t) {
  assert(t.slot < (uint32_t{1} << 24));
  return (static_cast<uint64_t>(shard) << 56) |
         (static_cast<uint64_t>(t.slot) << 32) | t.gen;
}

// Remote handle: [63]=1 [62:56]=dest shard [55:48]=source shard
// [47:0]=per-(source,dest) sequence. The handle doubles as the key in the
// destination shard's remote map, so the uniqueness argument is the bit
// layout itself.
uint64_t RemoteHandle(size_t dest, size_t src, uint64_t rseq) {
  return kRemoteBit | (static_cast<uint64_t>(dest) << 56) |
         (static_cast<uint64_t>(src) << 48) |
         (rseq & ((uint64_t{1} << 48) - 1));
}

uint64_t PackTicket(ShardQueue::Ticket t) {
  return (static_cast<uint64_t>(t.slot) << 32) | t.gen;
}

ShardQueue::Ticket UnpackTicket(uint64_t packed) {
  return {static_cast<uint32_t>(packed >> 32), static_cast<uint32_t>(packed)};
}

}  // namespace

ParallelSimulator::ParallelSimulator(uint64_t seed, Options options)
    : seed_(seed),
      lookahead_(options.lookahead == 0 ? 1 : options.lookahead),
      sync_(static_cast<std::ptrdiff_t>(ClampShards(options.num_shards) + 1)) {
  const size_t n = ClampShards(options.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->outbox.resize(n);
    shard->cancel_outbox.resize(n);
    shard->rseq_out.resize(n);
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&ParallelSimulator::WorkerLoop, this, i);
  }
}

ParallelSimulator::~ParallelSimulator() {
  command_ = Command::kShutdown;
  sync_.arrive_and_wait();
  for (auto& worker : workers_) worker.join();
}

SimTime ParallelSimulator::now() const {
  return t_engine == this ? shards_[t_shard]->now : global_now_;
}

size_t ParallelSimulator::current_shard() const {
  return t_engine == this ? t_shard : 0;
}

NodeId ParallelSimulator::CurrentContextNode() const {
  return t_engine == this ? shards_[t_shard]->current_node : kInvalidNode;
}

uint64_t ParallelSimulator::NextOseq(Shard& shard, NodeId origin) {
  // Shards store counters only for the origins they own, densely.
  size_t index = static_cast<size_t>(origin / shards_.size());
  if (index >= shard.oseq.size()) shard.oseq.resize(index + 1, 0);
  return shard.oseq[index]++;
}

uint64_t ParallelSimulator::ScheduleAt(NodeId owner, SimTime t,
                                       std::function<void()> fn) {
  const size_t dest = ShardOf(owner);
  if (t_engine != this) {
    // Coordinator context (engine idle between windows): direct insert as
    // origin 0. The origin-0 sequence is shard 0's counter for node 0 so
    // that owner-0 callbacks and coordinator schedules share one stream,
    // exactly like the serial engine's oseq_[0].
    assert(t >= global_now_);
    if (t < global_now_) t = global_now_;
    uint64_t tiebreak = MakeTiebreak(0, NextOseq(*shards_[0], 0));
    return LocalHandle(
        dest, shards_[dest]->queue.Insert(t, tiebreak, owner, std::move(fn)));
  }
  Shard& cur = *shards_[t_shard];
  const NodeId origin = cur.current_node;
  uint64_t tiebreak = MakeTiebreak(origin, NextOseq(cur, origin));
  if (t < cur.now) t = cur.now;
  if (dest == cur.index) {
    // Same-shard (in particular: self) schedules are unrestricted — a
    // zero-latency self-send executes inside the current window.
    return LocalHandle(dest,
                       cur.queue.Insert(t, tiebreak, owner, std::move(fn)));
  }
  // Cross-shard: buffer in the outbox, merged by the destination at the
  // next barrier. A target inside the current window arrives causally
  // late; count it — the setup's lookahead was too large.
  if (t < window_end_) {
    lookahead_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t handle = RemoteHandle(dest, cur.index, cur.rseq_out[dest]++);
  cur.outbox[dest].push_back(
      Transfer{t, tiebreak, handle, owner, std::move(fn)});
  return handle;
}

bool ParallelSimulator::ApplyLocalCancel(size_t dest, uint64_t event_id) {
  Shard& shard = *shards_[dest];
  if (event_id & kRemoteBit) {
    auto it = shard.remote_map.find(event_id);
    if (it == shard.remote_map.end()) return false;  // ran or cancelled
    ShardQueue::Ticket ticket = UnpackTicket(it->second);
    shard.remote_map.erase(it);
    return shard.queue.CancelTicket(ticket);
  }
  ShardQueue::Ticket ticket = UnpackTicket(event_id & ~(uint64_t{0x7F} << 56));
  uint64_t remote_key = 0;
  bool cancelled = shard.queue.CancelTicket(ticket, &remote_key);
  if (cancelled && remote_key != 0) shard.remote_map.erase(remote_key);
  return cancelled;
}

bool ParallelSimulator::Cancel(uint64_t event_id) {
  if (event_id == kInvalidEventId) return false;
  const size_t dest = (event_id >> 56) & 0x7F;
  if (dest >= shards_.size()) return false;
  if (t_engine != this) return ApplyLocalCancel(dest, event_id);
  Shard& cur = *shards_[t_shard];
  if (dest == cur.index) return ApplyLocalCancel(dest, event_id);
  // Cross-shard: deferred to the barrier. Deterministic iff the target is
  // at least one lookahead away (the cross-node scheduling bound).
  cur.cancel_outbox[dest].push_back(event_id);
  return true;
}

void ParallelSimulator::ExecuteWindow(Shard& shard) {
  ShardQueue::Ready ready;
  uint64_t remote_key = 0;
  const SimTime limit = window_limit_;
  while (shard.queue.PopRunnable(limit, &ready, &remote_key)) {
    if (remote_key != 0) shard.remote_map.erase(remote_key);
    if (ready.time > shard.now) shard.now = ready.time;
    ++shard.executed;
    shard.current_node = ready.owner;
    ready.fn();
  }
  shard.current_node = kInvalidNode;
}

void ParallelSimulator::MergeInbound(Shard& shard) {
  // Drain source shards in index order; each outbox preserves its source's
  // (deterministic) emission order, so the merge is deterministic too.
  for (auto& src : shards_) {
    auto& inbox = src->outbox[shard.index];
    for (Transfer& tr : inbox) {
      ShardQueue::Ticket ticket = shard.queue.Insert(
          tr.time, tr.tiebreak, tr.owner, std::move(tr.fn), tr.remote_key);
      shard.remote_map[tr.remote_key] = PackTicket(ticket);
    }
    inbox.clear();
    auto& cancels = src->cancel_outbox[shard.index];
    for (uint64_t id : cancels) ApplyLocalCancel(shard.index, id);
    cancels.clear();
  }
}

void ParallelSimulator::WorkerLoop(size_t index) {
  t_engine = this;
  t_shard = index;
  Shard& shard = *shards_[index];
  for (;;) {
    sync_.arrive_and_wait();  // phase A: window params published
    if (command_ == Command::kShutdown) return;
    ExecuteWindow(shard);
    sync_.arrive_and_wait();  // phase B: all shards done executing
    MergeInbound(shard);
    sync_.arrive_and_wait();  // phase C: all inboxes merged
  }
}

SimTime ParallelSimulator::MinHeadTime() {
  SimTime head = kSimTimeNever;
  for (auto& shard : shards_) head = std::min(head, shard->queue.HeadTime());
  return head;
}

size_t ParallelSimulator::RunUntil(SimTime until) {
  assert(t_engine != this && "RunUntil must not be called from a callback");
  size_t before = 0;
  for (auto& shard : shards_) before += shard->executed;
  for (;;) {
    const SimTime next = MinHeadTime();
    if (next == kSimTimeNever || next > until) break;
    window_end_ = (lookahead_ > kSimTimeNever - next) ? kSimTimeNever
                                                      : next + lookahead_;
    window_limit_ = std::min(
        until, window_end_ == kSimTimeNever ? kSimTimeNever : window_end_ - 1);
    command_ = Command::kWindow;
    sync_.arrive_and_wait();  // phase A: params visible to workers
    sync_.arrive_and_wait();  // phase B: execution done
    sync_.arrive_and_wait();  // phase C: merge done; queues quiescent
  }
  size_t after = 0;
  for (auto& shard : shards_) {
    after += shard->executed;
    global_now_ = std::max(global_now_, shard->now);
  }
  return after - before;
}

void ParallelSimulator::ReserveEvents(size_t n) {
  assert(t_engine != this);
  const size_t per_shard = n / shards_.size() + 1;
  for (auto& shard : shards_) shard->queue.Reserve(per_shard);
}

size_t ParallelSimulator::events_executed() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->executed;
  return total;
}

size_t ParallelSimulator::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.live();
    for (const auto& box : shard->outbox) total += box.size();
  }
  return total;
}

}  // namespace edgelet::net::parsim
