#ifndef EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_
#define EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/parsim/engine.h"
#include "net/parsim/flat_map.h"
#include "net/parsim/shard_queue.h"

namespace edgelet::net::parsim {

// Conservative (window-barrier) parallel discrete-event engine. Nodes are
// sharded across worker threads by `node_id % num_shards`; each round the
// workers execute their shards' events inside [w, w + lookahead) — the
// lookahead being the minimum cross-node scheduling delay (for Edgelet,
// the minimum link latency) — then meet at a barrier where cross-shard
// schedules and cancels buffered in per-shard outboxes are merged. Because
// no cross-shard event can land inside the window that produced it, every
// shard sees all of a node's events before their time comes, and executing
// them in the deterministic (time, origin, origin-seq) key order of
// SimEngine reproduces the serial engine's per-node schedule exactly — for
// any shard count, including 1.
//
// Rendezvous protocol (fused two-phase): every shard publishes its head
// time (earliest pending event) into an atomic slot after each merge, and
// every participant — the coordinator and all workers — then computes the
// SAME window plan from those published heads, `until`, and the lookahead.
// That redundant computation is what eliminates the third barrier the
// engine used to spend publishing coordinator-computed window parameters:
// a round is now exactly (execute -> barrier -> merge+publish -> barrier),
// and plan agreement follows from plan purity, not from a rendezvous.
//
// Window batching (solo windows): when only one shard has work within a
// lookahead of the global minimum — `second_head >= next + L`, which for
// num_shards == 1 is always — the plan lets that shard run alone up to
// min(until, second_head + L - 1) while the others skip straight to the
// merge. The naive version of this (run to second_head - 1) is unsound:
// a transfer the solo shard emits landing at time tau can wake another
// shard, whose reply may legally land back on the solo shard at tau + L —
// inside the extended span. The fix is the lookahead bound applied to
// *observed* activity: the solo shard's limit starts at second_head + L - 1
// and is dynamically clamped to tau + L - 1 by every transfer it emits, so
// nothing executes at or past the earliest instant another shard's
// causality could reach back. Batching long idle gaps into one round this
// way is what amortizes barrier convergence under short lookahead.
//
// Threading model: all shard state is single-writer inside a phase: a
// shard's queue is touched only by its worker during execute/merge and
// only by the coordinating thread between runs; outbox (a -> b) is written
// by a during execute and drained by b during merge, with a per-
// destination atomic bitmask of nonempty sources so the merge scan skips
// self and idle sources. Everything else (ScheduleAt/Cancel from the
// coordinating thread) requires the engine to be idle.
class ParallelSimulator : public SimEngine {
 public:
  struct Options {
    size_t num_shards = 1;
    // Window width; must not exceed the minimum cross-node scheduling
    // delay or cross-shard events become causally late (counted in
    // lookahead_violations, not repaired). Clamped to >= 1 microsecond.
    SimDuration lookahead = 20 * kMillisecond;
  };

  // Rendezvous/batching telemetry, aggregated across shards on read.
  struct BatchStats {
    uint64_t windows = 0;       // rounds driven (each = 2 barrier phases)
    uint64_t solo_windows = 0;  // rounds one shard ran alone (batched)
    uint64_t transfers = 0;     // cross-shard events merged
    // High-water marks: most transfers one shard absorbed in one merge,
    // and most live entries the remote-event index ever held.
    size_t inbox_hwm = 0;
    size_t remote_map_hwm = 0;
  };

  ParallelSimulator(uint64_t seed, Options options);
  ~ParallelSimulator() override;

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  SimTime now() const override;
  uint64_t seed() const override { return seed_; }

  using SimEngine::ScheduleAfter;
  using SimEngine::ScheduleAt;
  uint64_t ScheduleAt(NodeId owner, SimTime t,
                      std::function<void()> fn) override;
  bool Cancel(uint64_t event_id) override;
  size_t RunUntil(SimTime until) override;
  void ReserveEvents(size_t n) override;
  size_t events_executed() const override;
  size_t pending_events() const override;

  size_t num_shards() const override { return shards_.size(); }
  size_t current_shard() const override;
  size_t ShardOf(NodeId node) const override {
    return static_cast<size_t>(node % shards_.size());
  }

  SimDuration lookahead() const { return lookahead_; }
  // Cross-shard schedules violating the lookahead contract — the target
  // landed within lookahead of the scheduling event (engine.h: cross-node
  // targets must be >= lookahead in the future). The engine still runs
  // them, but cross-engine determinism is void. Zero in a correct setup.
  uint64_t lookahead_violations() const {
    return lookahead_violations_.load(std::memory_order_relaxed);
  }
  // Call between runs only (worker counters are quiescent).
  BatchStats batch_stats() const;

 protected:
  NodeId CurrentContextNode() const override;

 private:
  // A cross-shard schedule buffered until the next barrier.
  struct Transfer {
    SimTime time = 0;
    uint64_t tiebreak = 0;
    uint64_t remote_key = 0;
    NodeId owner = kInvalidNode;
    std::function<void()> fn;
  };

  struct alignas(64) Shard {
    size_t index = 0;
    ShardQueue queue;
    SimTime now = 0;
    NodeId current_node = kInvalidNode;
    size_t executed = 0;
    // Inclusive execution limit for the current round. Static from the
    // window plan, then clamped by the solo shard's own emitted transfers
    // (see the batching soundness note above).
    SimTime exec_limit = 0;
    // Per-origin schedule counters for owned nodes (index = node /
    // num_shards) feeding the deterministic tiebreak.
    std::vector<uint64_t> oseq;
    // outbox[d] / cancel_outbox[d]: schedules and cancels bound for shard
    // d, drained by d's worker in the merge phase. The vectors keep their
    // capacity across rounds (clear, not shrink): steady state recycles
    // the same slabs instead of allocating.
    std::vector<std::vector<Transfer>> outbox;
    std::vector<std::vector<uint64_t>> cancel_outbox;
    // Per-destination counters naming cross-shard events (remote handles).
    std::vector<uint64_t> rseq_out;
    // remote key -> packed local ticket, for cross-shard Cancel.
    FlatMap64 remote_map;
    // Head time as of this shard's last merge, the input every
    // participant's window plan is computed from. Relaxed stores/loads:
    // the barrier between merge and planning orders them.
    std::atomic<SimTime> head_published{kSimTimeNever};
    // Bit per source shard with a nonempty outbox or cancel_outbox aimed
    // here; a source sets its bit on the empty -> nonempty transition and
    // the merge exchanges the words to zero. Two words cover kMaxShards.
    std::atomic<uint64_t> inbound_mask[2] = {0, 0};
    // Telemetry (single-writer: this shard's worker).
    uint64_t transfers_in = 0;
    size_t inbox_hwm = 0;
    size_t remote_map_hwm = 0;
  };

  enum class Command : uint8_t { kRun, kShutdown };

  // Deterministic pure function of (published heads, until_, lookahead_):
  // every participant computes it independently and identically.
  struct WindowPlan {
    bool run = false;
    bool solo = false;
    size_t solo_shard = 0;
    SimTime limit = 0;  // inclusive
  };
  WindowPlan PlanWindow() const;

  uint64_t NextOseq(Shard& shard, NodeId origin);
  bool ApplyLocalCancel(size_t dest, uint64_t event_id);
  void MarkInbound(Shard& from, size_t dest);
  void WorkerLoop(size_t index);
  void ExecuteWindow(Shard& shard, SimTime limit);
  void MergeInbound(Shard& shard);

  uint64_t seed_ = 0;
  SimDuration lookahead_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::barrier<> sync_;

  // Run parameters: written by the coordinator before the run-start
  // barrier, read by workers after it (the barrier orders the accesses).
  Command command_ = Command::kRun;
  SimTime until_ = 0;

  SimTime global_now_ = 0;
  std::atomic<uint64_t> lookahead_violations_{0};
  // Coordinator-side telemetry (written only between barriers).
  uint64_t windows_ = 0;
  uint64_t solo_windows_ = 0;
};

}  // namespace edgelet::net::parsim

#endif  // EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_
