#ifndef EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_
#define EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/parsim/engine.h"
#include "net/parsim/shard_queue.h"

namespace edgelet::net::parsim {

// Conservative (window-barrier) parallel discrete-event engine. Nodes are
// sharded across worker threads by `node_id % num_shards`; each window the
// workers execute their shards' events inside [w, w + lookahead) — the
// lookahead being the minimum cross-node scheduling delay (for Edgelet,
// the minimum link latency) — then meet at a barrier where cross-shard
// schedules and cancels buffered in per-shard outboxes are merged. Because
// no cross-shard event can land inside the window that produced it, every
// shard sees all of a node's events before their time comes, and executing
// them in the deterministic (time, origin, origin-seq) key order of
// SimEngine reproduces the serial engine's per-node schedule exactly — for
// any shard count, including 1.
//
// Threading model: RunUntil drives `num_shards` persistent worker threads
// through three barrier phases per window (params published -> execute ->
// merge). All shard state is single-writer inside a phase: a shard's queue
// is touched only by its worker during execute/merge and only by the
// coordinating thread between windows; outbox (a -> b) is written by a
// during execute and drained by b during merge. Everything else
// (ScheduleAt/Cancel from the coordinating thread) requires the engine to
// be idle.
class ParallelSimulator : public SimEngine {
 public:
  struct Options {
    size_t num_shards = 1;
    // Window width; must not exceed the minimum cross-node scheduling
    // delay or cross-shard events become causally late (counted in
    // lookahead_violations, not repaired). Clamped to >= 1 microsecond.
    SimDuration lookahead = 20 * kMillisecond;
  };

  ParallelSimulator(uint64_t seed, Options options);
  ~ParallelSimulator() override;

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  SimTime now() const override;
  uint64_t seed() const override { return seed_; }

  using SimEngine::ScheduleAfter;
  using SimEngine::ScheduleAt;
  uint64_t ScheduleAt(NodeId owner, SimTime t,
                      std::function<void()> fn) override;
  bool Cancel(uint64_t event_id) override;
  size_t RunUntil(SimTime until) override;
  void ReserveEvents(size_t n) override;
  size_t events_executed() const override;
  size_t pending_events() const override;

  size_t num_shards() const override { return shards_.size(); }
  size_t current_shard() const override;
  size_t ShardOf(NodeId node) const override {
    return static_cast<size_t>(node % shards_.size());
  }

  SimDuration lookahead() const { return lookahead_; }
  // Cross-shard schedules that landed inside the window that produced
  // them (a lookahead misconfiguration: the engine still runs them, but
  // cross-engine determinism is void). Zero in a correct setup.
  uint64_t lookahead_violations() const {
    return lookahead_violations_.load(std::memory_order_relaxed);
  }

 protected:
  NodeId CurrentContextNode() const override;

 private:
  // A cross-shard schedule buffered until the next barrier.
  struct Transfer {
    SimTime time = 0;
    uint64_t tiebreak = 0;
    uint64_t remote_key = 0;
    NodeId owner = kInvalidNode;
    std::function<void()> fn;
  };

  struct alignas(64) Shard {
    size_t index = 0;
    ShardQueue queue;
    SimTime now = 0;
    NodeId current_node = kInvalidNode;
    size_t executed = 0;
    // Per-origin schedule counters for owned nodes (index = node /
    // num_shards) feeding the deterministic tiebreak.
    std::vector<uint64_t> oseq;
    // outbox[d] / cancel_outbox[d]: schedules and cancels bound for shard
    // d, drained by d's worker in the merge phase.
    std::vector<std::vector<Transfer>> outbox;
    std::vector<std::vector<uint64_t>> cancel_outbox;
    // Per-destination counters naming cross-shard events (remote handles).
    std::vector<uint64_t> rseq_out;
    // remote key -> packed local ticket, for cross-shard Cancel.
    std::unordered_map<uint64_t, uint64_t> remote_map;
  };

  enum class Command : uint8_t { kWindow, kShutdown };

  uint64_t NextOseq(Shard& shard, NodeId origin);
  bool ApplyLocalCancel(size_t dest, uint64_t event_id);
  void WorkerLoop(size_t index);
  void ExecuteWindow(Shard& shard);
  void MergeInbound(Shard& shard);
  SimTime MinHeadTime();

  uint64_t seed_ = 0;
  SimDuration lookahead_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::barrier<> sync_;

  // Window parameters: written by the coordinator before the phase-start
  // barrier, read by workers after it (the barrier orders the accesses).
  Command command_ = Command::kWindow;
  SimTime window_limit_ = 0;  // inclusive upper bound for this window
  SimTime window_end_ = 0;    // exclusive window end (lookahead horizon)

  SimTime global_now_ = 0;
  std::atomic<uint64_t> lookahead_violations_{0};
};

}  // namespace edgelet::net::parsim

#endif  // EDGELET_NET_PARSIM_PARALLEL_SIMULATOR_H_
