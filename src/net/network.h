#ifndef EDGELET_NET_NETWORK_H_
#define EDGELET_NET_NETWORK_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/message.h"
#include "net/simulator.h"

namespace edgelet::net {

// Latency model: fixed floor plus an exponential tail, which matches
// uncertain edge communications far better than a Gaussian (long right
// tail, never negative).
struct LatencyModel {
  SimDuration min_latency = 20 * kMillisecond;
  // Mean of the exponential component added on top of min_latency.
  SimDuration mean_extra = 80 * kMillisecond;

  SimDuration Sample(Rng& rng) const;
};

// Per-node availability pattern. kAlwaysOn models a plugged-in PC;
// kIntermittent alternates exponential online/offline periods (smartphone
// churn); kOpportunistic is mostly-offline with brief contact windows —
// the OppNet extreme the paper targets.
struct ChurnModel {
  SimDuration mean_online = 0;   // 0 => always on
  SimDuration mean_offline = 0;  // 0 => never goes offline
  bool starts_online = true;

  static ChurnModel AlwaysOn() { return {}; }
  static ChurnModel Intermittent(SimDuration mean_online,
                                 SimDuration mean_offline) {
    return {mean_online, mean_offline, true};
  }
};

struct NetworkConfig {
  LatencyModel latency;
  // Link throughput in bytes/second; 0 = infinite (no serialization
  // delay). Large payloads (snapshot slices) then take proportionally
  // longer than control pings.
  uint64_t bytes_per_second = 0;
  // Probability that a message in flight is silently lost.
  double drop_probability = 0.0;
  // Store-and-forward: messages to an offline node wait in its mailbox and
  // are delivered when it reconnects (opportunistic networking). When
  // false, such messages are dropped.
  bool store_and_forward = true;
  // Messages older than this are purged from mailboxes (0 = keep forever).
  SimDuration mailbox_ttl = 0;
};

struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t dropped_random = 0;
  uint64_t dropped_sender_offline = 0;
  uint64_t dropped_receiver_offline = 0;
  uint64_t dropped_dead = 0;
  uint64_t expired_in_mailbox = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
  // Payload-pool telemetry: reuses counts acquisitions served from the
  // pool rather than by a fresh allocation.
  uint64_t payload_buffers_reused = 0;
};

// Simulated communication fabric between edgelets. Delivery is
// point-to-point with sampled latency, random loss, churn-awareness, and
// optional store-and-forward for opportunistic delivery.
class Network {
 public:
  Network(Simulator* sim, NetworkConfig config);

  // Registers a node and returns its id (ids start at 1).
  NodeId Register(Node* node, ChurnModel churn = ChurnModel::AlwaysOn());

  // Sends msg.from -> msg.to. Messages from offline or dead nodes are lost.
  void Send(Message msg);

  // Permanently removes a node from the network (device failure / power
  // off). Pending deliveries to it are dropped.
  void Kill(NodeId id);
  bool IsDead(NodeId id) const;

  // Forced availability control (demo-style "power off this box").
  void SetOnline(NodeId id, bool online);
  bool IsOnline(NodeId id) const;

  const NetworkStats& stats() const { return stats_; }
  Simulator* simulator() { return sim_; }
  size_t num_nodes() const { return nodes_.size(); }

  // --- Payload buffer pool ----------------------------------------------
  // Message payloads cycle sender -> network -> receiver -> pool: a sender
  // seals into an acquired buffer, and the network returns the buffer to
  // the pool once the message is consumed (delivered, dropped, or expired).
  // In steady state no per-message heap allocation happens. Buffers keep
  // their capacity; the pool is bounded so bursts do not pin memory.
  Bytes AcquirePayloadBuffer();
  void RecyclePayloadBuffer(Bytes&& buf);

 private:
  struct NodeState {
    Node* node = nullptr;
    bool online = true;
    bool dead = false;
    ChurnModel churn;
    // (enqueue time, message) waiting for the node to come back online.
    std::vector<std::pair<SimTime, Message>> mailbox;
  };

  void Deliver(Message msg);
  void ScheduleChurnTransition(NodeId id);
  void FlushMailbox(NodeId id);
  // A consumed message's payload goes back to the pool.
  void Recycle(Message&& msg) { RecyclePayloadBuffer(std::move(msg.payload)); }

  static constexpr size_t kMaxPooledBuffers = 1024;

  Simulator* sim_;
  NetworkConfig config_;
  std::unordered_map<NodeId, NodeState> nodes_;
  NodeId next_id_ = 1;
  NetworkStats stats_;
  std::vector<Bytes> payload_pool_;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_NETWORK_H_
