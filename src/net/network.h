#ifndef EDGELET_NET_NETWORK_H_
#define EDGELET_NET_NETWORK_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/message.h"
#include "net/simulator.h"

namespace edgelet::net {

// Latency model: fixed floor plus an exponential tail, which matches
// uncertain edge communications far better than a Gaussian (long right
// tail, never negative). min_latency doubles as the parallel engine's
// lookahead: no delivery lands sooner, so a window of that width never
// sees a cross-shard event materialize inside itself.
struct LatencyModel {
  SimDuration min_latency = 20 * kMillisecond;
  // Mean of the exponential component added on top of min_latency.
  SimDuration mean_extra = 80 * kMillisecond;

  SimDuration Sample(NodeRng& rng) const;
};

// Per-node availability pattern. kAlwaysOn models a plugged-in PC;
// kIntermittent alternates exponential online/offline periods (smartphone
// churn); kOpportunistic is mostly-offline with brief contact windows —
// the OppNet extreme the paper targets.
struct ChurnModel {
  SimDuration mean_online = 0;   // 0 => always on
  SimDuration mean_offline = 0;  // 0 => never goes offline
  bool starts_online = true;

  static ChurnModel AlwaysOn() { return {}; }
  static ChurnModel Intermittent(SimDuration mean_online,
                                 SimDuration mean_offline) {
    return {mean_online, mean_offline, true};
  }
};

struct NetworkConfig {
  LatencyModel latency;
  // Link throughput in bytes/second; 0 = infinite (no serialization
  // delay). Large payloads (snapshot slices) then take proportionally
  // longer than control pings.
  uint64_t bytes_per_second = 0;
  // Probability that a message in flight is silently lost.
  double drop_probability = 0.0;
  // Store-and-forward: messages to an offline node wait in its mailbox and
  // are delivered when it reconnects (opportunistic networking). When
  // false, such messages are dropped.
  bool store_and_forward = true;
  // Messages older than this are purged from mailboxes (0 = keep forever).
  SimDuration mailbox_ttl = 0;
};

struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t dropped_random = 0;
  uint64_t dropped_sender_offline = 0;
  uint64_t dropped_receiver_offline = 0;
  uint64_t dropped_dead = 0;
  uint64_t expired_in_mailbox = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
  // Payload-pool telemetry: reuses counts acquisitions served from the
  // pool rather than by a fresh allocation.
  uint64_t payload_buffers_reused = 0;
  // Fault-injection telemetry (src/chaos): messages swallowed, extra
  // copies injected, payloads bit-flipped, and deliveries delay-spiked by
  // the attached FaultInjector.
  uint64_t chaos_dropped = 0;
  uint64_t chaos_duplicates = 0;
  uint64_t chaos_corrupted = 0;
  uint64_t chaos_delayed = 0;
};

// Verdict of the fault-injection layer for one outgoing message. The
// injector may additionally mutate the payload in place (bit flips); it
// reports that through `corrupted` so the network can count it.
struct FaultVerdict {
  bool drop = false;
  // Extra copies to put in flight (each samples its own loss/latency, so a
  // duplicate can overtake the original: duplication plus reordering).
  uint32_t duplicates = 0;
  // Added to every copy's sampled latency (latency spike / reordering).
  SimDuration extra_latency = 0;
  bool corrupted = false;
};

// Hook for the deterministic chaos layer (src/chaos). OnSend runs in the
// sender's event context — under the parallel engine that means on the
// sender's shard — so implementations must draw randomness only from
// per-sender counter-based streams and touch only per-sender state.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultVerdict OnSend(Message& msg, SimTime now) = 0;
};

// Simulated communication fabric between edgelets. Delivery is
// point-to-point with sampled latency, random loss, churn-awareness, and
// optional store-and-forward for opportunistic delivery.
//
// Engine independence: every random draw (latency, loss, churn dwell)
// comes from the drawing node's own counter-based stream (NodeRng), and
// every mutation of a node's state happens inside that node's event
// callbacks — deliveries run on the receiver's timeline, churn and death
// on the affected node's. Under the parallel engine each shard therefore
// only writes its own nodes' state, and the same simulation produces
// bit-identical results for any shard count. The only genuinely shared
// counters — stats and the payload pool — are sharded and merged on read.
class Network {
 public:
  Network(SimEngine* engine, NetworkConfig config);

  // Registers a node and returns its id (ids start at 1).
  NodeId Register(Node* node, ChurnModel churn = ChurnModel::AlwaysOn());

  // Sends msg.from -> msg.to. Messages from offline or dead nodes are lost.
  void Send(Message msg);

  // Permanently removes a node from the network (device failure / power
  // off). Pending deliveries to it are dropped. During a run this must
  // execute on the victim's own timeline (schedule it with owner = id, as
  // device::ScheduleFailures does).
  void Kill(NodeId id);
  bool IsDead(NodeId id) const;

  // Forced availability control (demo-style "power off this box"). Same
  // ownership rule as Kill when called mid-run.
  void SetOnline(NodeId id, bool online);
  bool IsOnline(NodeId id) const;

  // Totals across shards. Call between runs (shard buffers are quiescent).
  NetworkStats stats() const;
  SimEngine* engine() { return engine_; }
  size_t num_nodes() const { return nodes_.size(); }

  // Attaches (or detaches, with nullptr) the fault-injection layer. The
  // injector is consulted on every send from a live sender, in the
  // sender's event context, and may drop, duplicate, delay, or corrupt the
  // message before the network's own loss/latency model applies. Attach
  // between runs only (not from inside an event callback).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // --- Payload buffer pool ----------------------------------------------
  // Message payloads cycle sender -> network -> receiver -> pool: a sender
  // seals into an acquired buffer, and the network returns the buffer to
  // the pool once the message is consumed (delivered, dropped, or expired).
  // In steady state no per-message heap allocation happens. Buffers keep
  // their capacity; the pool is bounded so bursts do not pin memory.
  // Pools are per shard: a buffer freed on a shard is reused by it.
  Bytes AcquirePayloadBuffer();
  void RecyclePayloadBuffer(Bytes&& buf);

 private:
  struct NodeState {
    Node* node = nullptr;
    bool online = true;
    bool dead = false;
    ChurnModel churn;
    // This node's private random stream: its churn dwells plus the
    // latency/loss draws for messages it sends.
    NodeRng rng;
    // (enqueue time, message) waiting for the node to come back online.
    std::vector<std::pair<SimTime, Message>> mailbox;
  };
  // Shard-local mutable counters, cache-line separated so workers do not
  // false-share.
  struct alignas(64) ShardState {
    NetworkStats stats;
    std::vector<Bytes> payload_pool;
  };

  void Deliver(Message msg);
  // Applies the network's own loss/latency model to one in-flight copy and
  // schedules its delivery. `extra_latency` is the chaos layer's spike.
  void SampleAndDispatch(Message msg, NodeRng& rng, SimDuration extra_latency,
                         NetworkStats& stats);
  void ScheduleChurnTransition(NodeId id);
  void FlushMailbox(NodeId id);
  // A consumed message's payload goes back to the pool.
  void Recycle(Message&& msg) { RecyclePayloadBuffer(std::move(msg.payload)); }
  NetworkStats& stats_here() { return shard_[engine_->current_shard()].stats; }

  static constexpr size_t kMaxPooledBuffers = 1024;

  SimEngine* engine_;
  NetworkConfig config_;
  FaultInjector* injector_ = nullptr;
  std::unordered_map<NodeId, NodeState> nodes_;
  NodeId next_id_ = 1;
  std::vector<ShardState> shard_;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_NETWORK_H_
