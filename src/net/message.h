#ifndef EDGELET_NET_MESSAGE_H_
#define EDGELET_NET_MESSAGE_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace edgelet::net {

using NodeId = uint64_t;
constexpr NodeId kInvalidNode = 0;

// Wire unit exchanged between edgelets. The routing header (from/to/type/
// seq) travels in clear — the infrastructure needs it — while `payload` is
// normally an AEAD-sealed blob only the destination enclave can open; the
// header doubles as the AEAD associated data so it cannot be tampered with.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint32_t type = 0;   // protocol message kind (exec/protocol.h)
  uint64_t seq = 0;    // per-sender sequence; feeds the AEAD nonce
  Bytes payload;

  size_t WireSize() const {
    // 8 (from) + 8 (to) + 4 (type) + 8 (seq) + payload.
    return 28 + payload.size();
  }
};

// The associated data binding the header to the sealed payload: the wire
// header fields in order (from, to, type, seq), little-endian fixed width.
Bytes MessageAad(const Message& msg);

// Same 28 bytes on the stack — the hot path builds the AAD without touching
// the heap. Byte-identical to MessageAad (asserted in tests).
using MessageAadBuf = std::array<uint8_t, 28>;
MessageAadBuf MessageAadFixed(const Message& msg);

// Receiver-side callback interface. Nodes register with a Network and get
// deliveries plus availability transitions (a home box powered back on, a
// smartphone regaining coverage).
class Node {
 public:
  virtual ~Node() = default;
  virtual void OnMessage(const Message& msg) = 0;
  virtual void OnOnline() {}
  virtual void OnOffline() {}
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_MESSAGE_H_
