#include "net/simulator.h"

#include <cassert>

namespace edgelet::net {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

uint64_t Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_);
  if (t < now_) t = now_;
  uint64_t id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

uint64_t Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  SimTime t = (delay > kSimTimeNever - now_) ? kSimTimeNever : now_ + delay;
  return ScheduleAt(t, std::move(fn));
}

bool Simulator::Cancel(uint64_t event_id) {
  // Only events still pending can be cancelled; Cancel after execution is a
  // no-op returning false.
  return pending_ids_.erase(event_id) > 0;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (pending_ids_.erase(ev.id) == 0) continue;  // cancelled
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  for (;;) {
    // Drop cancelled events from the head so the peek below is accurate.
    while (!queue_.empty() && pending_ids_.count(queue_.top().id) == 0) {
      queue_.pop();
    }
    if (queue_.empty()) break;
    if (queue_.top().time > until) break;
    if (!Step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace edgelet::net
