#include "net/simulator.h"

#include <algorithm>
#include <cassert>

namespace edgelet::net {

Simulator::Simulator(uint64_t seed) : seed_(seed), rng_(seed) {
  // A modest pre-size: enough for small fixtures, irrelevant next to the
  // amortized growth of real fleets (which call ReserveEvents up front).
  ReserveEvents(64);
}

void Simulator::ReserveEvents(size_t n) { queue_.Reserve(n); }

uint64_t Simulator::NextOseq(NodeId origin) {
  // Geometric growth: node ids register densely, so resize(origin + 1)
  // would reallocate-and-copy once per new node id.
  if (origin >= oseq_.size()) {
    oseq_.resize(std::max<size_t>(origin + 1, oseq_.size() * 2), 0);
  }
  return oseq_[origin]++;
}

uint64_t Simulator::ScheduleAt(NodeId owner, SimTime t,
                               std::function<void()> fn) {
  assert(t >= now_);
  if (t < now_) t = now_;
  uint64_t tiebreak =
      parsim::MakeTiebreak(current_origin_, NextOseq(current_origin_));
  return MakeHandle(queue_.Insert(t, tiebreak, owner, std::move(fn)));
}

bool Simulator::Cancel(uint64_t event_id) {
  parsim::ShardQueue::Ticket ticket{static_cast<uint32_t>(event_id >> 32),
                                    static_cast<uint32_t>(event_id)};
  // A stale generation means the event already ran or was cancelled (the
  // slot may even host a different event by now); both are no-ops.
  return queue_.CancelTicket(ticket);
}

bool Simulator::Step() {
  parsim::ShardQueue::Ready ready;
  uint64_t remote_key = 0;
  if (!queue_.PopRunnable(kSimTimeNever, &ready, &remote_key)) return false;
  now_ = ready.time;
  ++events_executed_;
  // The event's owner is the scheduling origin for everything its
  // callback schedules — the deterministic tie order of SimEngine.
  current_origin_ = ready.owner;
  ready.fn();
  current_origin_ = kInvalidNode;
  return true;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  while (queue_.HeadTime() <= until && Step()) ++executed;
  return executed;
}

}  // namespace edgelet::net
