#include "net/simulator.h"

#include <algorithm>
#include <cassert>

namespace edgelet::net {

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  // A modest pre-size: enough for small fixtures, irrelevant next to the
  // amortized growth of real fleets (which call ReserveEvents up front).
  ReserveEvents(64);
}

void Simulator::ReserveEvents(size_t n) {
  heap_.reserve(n);
  slots_.reserve(n);
}

uint32_t Simulator::AllocSlot(std::function<void()> fn) {
  uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  return slot;
}

void Simulator::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  // Bumping the generation tombstones every outstanding handle and heap
  // entry that still refers to this slot.
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::PopEntry() {
  std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
  heap_.pop_back();
}

uint64_t Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_);
  if (t < now_) t = now_;
  uint32_t slot = AllocSlot(std::move(fn));
  uint32_t gen = slots_[slot].gen;
  heap_.push_back(HeapEntry{t, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
  ++live_events_;
  return MakeHandle(slot, gen);
}

uint64_t Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  SimTime t = (delay > kSimTimeNever - now_) ? kSimTimeNever : now_ + delay;
  return ScheduleAt(t, std::move(fn));
}

bool Simulator::Cancel(uint64_t event_id) {
  uint32_t slot = static_cast<uint32_t>(event_id >> 32);
  uint32_t gen = static_cast<uint32_t>(event_id);
  // A stale generation means the event already ran or was cancelled (the
  // slot may even host a different event by now); both are no-ops.
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  FreeSlot(slot);
  --live_events_;
  return true;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    HeapEntry e = heap_.front();
    PopEntry();
    if (IsTombstone(e)) continue;  // cancelled
    now_ = e.time;
    ++events_executed_;
    --live_events_;
    // Free the slot before running so the callback can cancel/schedule
    // freely (its own handle is already stale) and the slot is reusable.
    std::function<void()> fn = std::move(slots_[e.slot].fn);
    FreeSlot(e.slot);
    fn();
    return true;
  }
  return false;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  for (;;) {
    // Drop cancelled events from the head so the peek below is accurate.
    while (!heap_.empty() && IsTombstone(heap_.front())) PopEntry();
    if (heap_.empty()) break;
    if (heap_.front().time > until) break;
    if (!Step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace edgelet::net
