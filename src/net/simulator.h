#ifndef EDGELET_NET_SIMULATOR_H_
#define EDGELET_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace edgelet::net {

// Single-threaded discrete-event simulator. Events execute in (time, FIFO)
// order; ties break by scheduling order so runs are fully deterministic for
// a given seed. All Edgelet executions — heartbeats, message deliveries,
// churn transitions, deadlines — are events on this queue.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` at absolute time `t` (>= now). Returns an event id that
  // can be cancelled.
  uint64_t ScheduleAt(SimTime t, std::function<void()> fn);
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled.
  bool Cancel(uint64_t event_id);

  // Executes one event; returns false if the queue is empty.
  bool Step();

  // Runs until the queue drains or the next event is past `until`.
  // Returns the number of events executed.
  size_t RunUntil(SimTime until);
  size_t Run() { return RunUntil(kSimTimeNever); }

  size_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return pending_ids_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t id;  // also the tie-breaker: monotonically increasing
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  uint64_t next_id_ = 1;
  size_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ids scheduled but not yet executed or cancelled.
  std::unordered_set<uint64_t> pending_ids_;
  Rng rng_;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_SIMULATOR_H_
