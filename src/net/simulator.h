#ifndef EDGELET_NET_SIMULATOR_H_
#define EDGELET_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "net/parsim/engine.h"
#include "net/parsim/shard_queue.h"

namespace edgelet::net {

// Single-threaded discrete-event simulator. Events execute in
// (time, origin, origin-sequence) order — see SimEngine for why that key
// (rather than global scheduling order) is what makes a run bit-identical
// to the sharded parsim::ParallelSimulator. All Edgelet executions —
// heartbeats, message deliveries, churn transitions, deadlines — are
// events on this queue.
//
// The queue is a binary heap of trivially-copyable keys over a
// generation-counted callback slab (parsim::ShardQueue, shared with the
// parallel engine's shards), so Schedule/Step/Cancel are all array
// operations with no per-event hashing and a steady-state simulation
// stops allocating.
class Simulator : public SimEngine {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const override { return now_; }
  uint64_t seed() const override { return seed_; }

  // Engine-global RNG: test fixtures and standalone experiments draw from
  // it. The Network no longer does — network sampling flows through
  // per-node NodeRng streams so results are engine-independent.
  Rng& rng() { return rng_; }

  using SimEngine::ScheduleAfter;
  using SimEngine::ScheduleAt;
  uint64_t ScheduleAt(NodeId owner, SimTime t,
                      std::function<void()> fn) override;

  bool Cancel(uint64_t event_id) override;

  // Executes one event; returns false if the queue is empty.
  bool Step();

  size_t RunUntil(SimTime until) override;

  void ReserveEvents(size_t n) override;

  size_t events_executed() const override { return events_executed_; }
  size_t pending_events() const override { return queue_.live(); }

 protected:
  NodeId CurrentContextNode() const override { return current_origin_; }

 private:
  static uint64_t MakeHandle(parsim::ShardQueue::Ticket t) {
    return (static_cast<uint64_t>(t.slot) << 32) | t.gen;
  }

  uint64_t NextOseq(NodeId origin);

  SimTime now_ = 0;
  uint64_t seed_ = 0;
  size_t events_executed_ = 0;
  NodeId current_origin_ = kInvalidNode;
  parsim::ShardQueue queue_;
  // Per-origin schedule counters (index = origin node id; 0 = global
  // context). Sized on demand; node ids are dense so this stays compact.
  std::vector<uint64_t> oseq_;
  Rng rng_;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_SIMULATOR_H_
