#ifndef EDGELET_NET_SIMULATOR_H_
#define EDGELET_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace edgelet::net {

// Single-threaded discrete-event simulator. Events execute in (time, FIFO)
// order; ties break by scheduling order so runs are fully deterministic for
// a given seed. All Edgelet executions — heartbeats, message deliveries,
// churn transitions, deadlines — are events on this queue.
//
// The queue is a binary heap of trivially-copyable keys; callbacks live in
// a generation-counted slot slab. Cancellation bumps the slot generation
// (a tombstone), so Schedule/Step/Cancel are all array operations with no
// per-event hashing, and slots are recycled through a free list so a
// steady-state simulation stops allocating.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` at absolute time `t` (>= now). Returns an event id that
  // can be cancelled.
  uint64_t ScheduleAt(SimTime t, std::function<void()> fn);
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled.
  bool Cancel(uint64_t event_id);

  // Executes one event; returns false if the queue is empty.
  bool Step();

  // Runs until the queue drains or the next event is past `until`.
  // Returns the number of events executed.
  size_t RunUntil(SimTime until);
  size_t Run() { return RunUntil(kSimTimeNever); }

  // Pre-sizes the heap and the callback slab for `n` in-flight events.
  void ReserveEvents(size_t n);

  size_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return live_events_; }

 private:
  // 24-byte POD heap key; sift operations never touch the std::function.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;  // global scheduling order: breaks time ties FIFO
    uint32_t slot;
    uint32_t gen;
  };
  // Min-heap on (time, seq) via the std heap algorithms (which build a
  // max-heap w.r.t. the comparator, so "later" sorts toward the leaves).
  struct EntryLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    std::function<void()> fn;
    uint32_t gen = 1;
    uint32_t next_free = kNoFreeSlot;
  };
  static constexpr uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  static uint64_t MakeHandle(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) << 32) | gen;
  }

  uint32_t AllocSlot(std::function<void()> fn);
  void FreeSlot(uint32_t slot);
  bool IsTombstone(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }
  void PopEntry();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  size_t events_executed_ = 0;
  size_t live_events_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
  Rng rng_;
};

}  // namespace edgelet::net

#endif  // EDGELET_NET_SIMULATOR_H_
