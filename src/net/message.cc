#include "net/message.h"

#include "common/serialize.h"

namespace edgelet::net {

namespace {

inline uint8_t* PutLe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
  return p + 8;
}

inline uint8_t* PutLe32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
  return p + 4;
}

}  // namespace

MessageAadBuf MessageAadFixed(const Message& msg) {
  MessageAadBuf aad;
  uint8_t* p = aad.data();
  p = PutLe64(p, msg.from);
  p = PutLe64(p, msg.to);
  p = PutLe32(p, msg.type);
  PutLe64(p, msg.seq);
  return aad;
}

Bytes MessageAad(const Message& msg) {
  MessageAadBuf aad = MessageAadFixed(msg);
  return Bytes(aad.begin(), aad.end());
}

}  // namespace edgelet::net
