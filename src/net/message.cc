#include "net/message.h"

#include "common/serialize.h"

namespace edgelet::net {

Bytes MessageAad(const Message& msg) {
  Writer w;
  w.PutU64(msg.from);
  w.PutU64(msg.to);
  w.PutU32(msg.type);
  w.PutU64(msg.seq);
  return w.Take();
}

}  // namespace edgelet::net
