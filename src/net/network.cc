#include "net/network.h"

#include <cassert>

namespace edgelet::net {

SimDuration LatencyModel::Sample(NodeRng& rng) const {
  SimDuration extra = 0;
  if (mean_extra > 0) {
    double rate = 1.0 / static_cast<double>(mean_extra);
    extra = static_cast<SimDuration>(rng.NextExponential(rate));
  }
  return min_latency + extra;
}

Network::Network(SimEngine* engine, NetworkConfig config)
    : engine_(engine), config_(config), shard_(engine->num_shards()) {}

NodeId Network::Register(Node* node, ChurnModel churn) {
  NodeId id = next_id_++;
  NodeState state;
  state.node = node;
  state.churn = churn;
  state.online = churn.starts_online;
  // The node's stream is a pure function of (engine seed, node id), so a
  // node draws the same sequence no matter which shard runs it — or
  // whether any sharding exists at all.
  state.rng = NodeRng(engine_->seed(), id);
  nodes_.emplace(id, std::move(state));
  if (churn.mean_online > 0 && churn.mean_offline > 0) {
    ScheduleChurnTransition(id);
  }
  return id;
}

void Network::ScheduleChurnTransition(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second.dead) return;
  const ChurnModel& churn = it->second.churn;
  SimDuration mean = it->second.online ? churn.mean_online
                                       : churn.mean_offline;
  if (mean == 0) return;
  double rate = 1.0 / static_cast<double>(mean);
  SimDuration dwell =
      static_cast<SimDuration>(it->second.rng.NextExponential(rate));
  // Churn is a self-transition: the event belongs to the churning node, so
  // it is exempt from the lookahead bound and runs on the node's shard.
  engine_->ScheduleAfter(id, dwell, [this, id]() {
    auto it2 = nodes_.find(id);
    if (it2 == nodes_.end() || it2->second.dead) return;
    SetOnline(id, !it2->second.online);
    ScheduleChurnTransition(id);
  });
}

void Network::Send(Message msg) {
  NetworkStats& stats = stats_here();
  ++stats.messages_sent;
  stats.bytes_sent += msg.WireSize();

  auto from_it = nodes_.find(msg.from);
  if (from_it == nodes_.end() || from_it->second.dead ||
      !from_it->second.online) {
    ++stats.dropped_sender_offline;
    Recycle(std::move(msg));
    return;
  }
  NodeRng& rng = from_it->second.rng;

  // Chaos layer first: the injector sees the message as the sender emits
  // it, in the sender's event context (per-sender streams keep the verdict
  // independent of shard count). Its extra copies then pass through the
  // same loss/latency model as the original, each with its own draws.
  SimDuration extra_latency = 0;
  if (injector_ != nullptr) {
    FaultVerdict verdict = injector_->OnSend(msg, engine_->now());
    if (verdict.corrupted) ++stats.chaos_corrupted;
    if (verdict.extra_latency > 0) ++stats.chaos_delayed;
    if (verdict.drop) {
      ++stats.chaos_dropped;
      Recycle(std::move(msg));
      return;
    }
    extra_latency = verdict.extra_latency;
    for (uint32_t i = 0; i < verdict.duplicates; ++i) {
      ++stats.chaos_duplicates;
      Message copy;
      copy.from = msg.from;
      copy.to = msg.to;
      copy.type = msg.type;
      copy.seq = msg.seq;  // an exact wire replay, like a mailbox echo
      copy.payload = AcquirePayloadBuffer();
      copy.payload.assign(msg.payload.begin(), msg.payload.end());
      SampleAndDispatch(std::move(copy), rng, extra_latency, stats);
    }
  }
  SampleAndDispatch(std::move(msg), rng, extra_latency, stats);
}

void Network::SampleAndDispatch(Message msg, NodeRng& rng,
                                SimDuration extra_latency,
                                NetworkStats& stats) {
  // Loss and latency are the sender's draws: this runs in the sender's
  // event context, so only the sender's shard touches this stream. The
  // receiver's liveness is checked at delivery time, on its own shard.
  if (config_.drop_probability > 0 &&
      rng.NextBernoulli(config_.drop_probability)) {
    ++stats.dropped_random;
    Recycle(std::move(msg));
    return;
  }
  SimDuration latency = config_.latency.Sample(rng) + extra_latency;
  if (config_.bytes_per_second > 0) {
    // Serialization delay: payload bytes over the link throughput.
    double seconds = static_cast<double>(msg.WireSize()) /
                     static_cast<double>(config_.bytes_per_second);
    latency += FromSeconds(seconds);
  }
  // Delivery executes on the receiver's timeline; latency >= min_latency
  // keeps it outside the current lookahead window.
  NodeId to = msg.to;
  engine_->ScheduleAfter(to, latency,
                         [this, msg = std::move(msg)]() mutable {
                           Deliver(std::move(msg));
                         });
}

void Network::Deliver(Message msg) {
  auto it = nodes_.find(msg.to);
  if (it == nodes_.end() || it->second.dead) {
    ++stats_here().dropped_dead;
    Recycle(std::move(msg));
    return;
  }
  NodeState& state = it->second;
  if (!state.online) {
    if (config_.store_and_forward) {
      state.mailbox.emplace_back(engine_->now(), std::move(msg));
    } else {
      ++stats_here().dropped_receiver_offline;
      Recycle(std::move(msg));
    }
    return;
  }
  NetworkStats& stats = stats_here();
  ++stats.messages_delivered;
  stats.bytes_delivered += msg.WireSize();
  state.node->OnMessage(msg);
  // OnMessage receives the message by const reference; once it returns the
  // message is consumed and its payload buffer can cycle back to the pool.
  Recycle(std::move(msg));
}

void Network::Kill(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.dead = true;
  it->second.online = false;
  for (auto& [enqueued, msg] : it->second.mailbox) Recycle(std::move(msg));
  it->second.mailbox.clear();
}

bool Network::IsDead(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() || it->second.dead;
}

void Network::SetOnline(NodeId id, bool online) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second.dead) return;
  if (it->second.online == online) return;
  it->second.online = online;
  if (online) {
    it->second.node->OnOnline();
    FlushMailbox(id);
  } else {
    it->second.node->OnOffline();
  }
}

void Network::FlushMailbox(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  NodeState& state = it->second;
  std::vector<std::pair<SimTime, Message>> pending;
  pending.swap(state.mailbox);
  for (auto& [enqueued, msg] : pending) {
    if (config_.mailbox_ttl > 0 &&
        engine_->now() - enqueued > config_.mailbox_ttl) {
      ++stats_here().expired_in_mailbox;
      Recycle(std::move(msg));
      continue;
    }
    // Re-check liveness: a delivery callback may have killed the node or
    // pushed it offline again.
    auto it2 = nodes_.find(id);
    if (it2 == nodes_.end() || it2->second.dead) {
      ++stats_here().dropped_dead;
      Recycle(std::move(msg));
      continue;
    }
    if (!it2->second.online) {
      it2->second.mailbox.emplace_back(enqueued, std::move(msg));
      continue;
    }
    NetworkStats& stats = stats_here();
    ++stats.messages_delivered;
    stats.bytes_delivered += msg.WireSize();
    it2->second.node->OnMessage(msg);
    Recycle(std::move(msg));
  }
}

NetworkStats Network::stats() const {
  NetworkStats total;
  for (const ShardState& s : shard_) {
    total.messages_sent += s.stats.messages_sent;
    total.messages_delivered += s.stats.messages_delivered;
    total.dropped_random += s.stats.dropped_random;
    total.dropped_sender_offline += s.stats.dropped_sender_offline;
    total.dropped_receiver_offline += s.stats.dropped_receiver_offline;
    total.dropped_dead += s.stats.dropped_dead;
    total.expired_in_mailbox += s.stats.expired_in_mailbox;
    total.bytes_sent += s.stats.bytes_sent;
    total.bytes_delivered += s.stats.bytes_delivered;
    total.payload_buffers_reused += s.stats.payload_buffers_reused;
    total.chaos_dropped += s.stats.chaos_dropped;
    total.chaos_duplicates += s.stats.chaos_duplicates;
    total.chaos_corrupted += s.stats.chaos_corrupted;
    total.chaos_delayed += s.stats.chaos_delayed;
  }
  return total;
}

Bytes Network::AcquirePayloadBuffer() {
  ShardState& here = shard_[engine_->current_shard()];
  if (here.payload_pool.empty()) return Bytes();
  Bytes buf = std::move(here.payload_pool.back());
  here.payload_pool.pop_back();
  buf.clear();  // keeps capacity
  ++here.stats.payload_buffers_reused;
  return buf;
}

void Network::RecyclePayloadBuffer(Bytes&& buf) {
  if (buf.capacity() == 0) return;
  ShardState& here = shard_[engine_->current_shard()];
  if (here.payload_pool.size() >= kMaxPooledBuffers) return;
  here.payload_pool.push_back(std::move(buf));
}

bool Network::IsOnline(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && !it->second.dead && it->second.online;
}

}  // namespace edgelet::net
