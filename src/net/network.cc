#include "net/network.h"

#include <cassert>

namespace edgelet::net {

SimDuration LatencyModel::Sample(Rng& rng) const {
  SimDuration extra = 0;
  if (mean_extra > 0) {
    double rate = 1.0 / static_cast<double>(mean_extra);
    extra = static_cast<SimDuration>(rng.NextExponential(rate));
  }
  return min_latency + extra;
}

Network::Network(Simulator* sim, NetworkConfig config)
    : sim_(sim), config_(config) {}

NodeId Network::Register(Node* node, ChurnModel churn) {
  NodeId id = next_id_++;
  NodeState state;
  state.node = node;
  state.churn = churn;
  state.online = churn.starts_online;
  nodes_.emplace(id, std::move(state));
  if (churn.mean_online > 0 && churn.mean_offline > 0) {
    ScheduleChurnTransition(id);
  }
  return id;
}

void Network::ScheduleChurnTransition(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second.dead) return;
  const ChurnModel& churn = it->second.churn;
  SimDuration mean = it->second.online ? churn.mean_online
                                       : churn.mean_offline;
  if (mean == 0) return;
  double rate = 1.0 / static_cast<double>(mean);
  SimDuration dwell =
      static_cast<SimDuration>(sim_->rng().NextExponential(rate));
  sim_->ScheduleAfter(dwell, [this, id]() {
    auto it2 = nodes_.find(id);
    if (it2 == nodes_.end() || it2->second.dead) return;
    SetOnline(id, !it2->second.online);
    ScheduleChurnTransition(id);
  });
}

void Network::Send(Message msg) {
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.WireSize();

  auto from_it = nodes_.find(msg.from);
  if (from_it == nodes_.end() || from_it->second.dead ||
      !from_it->second.online) {
    ++stats_.dropped_sender_offline;
    Recycle(std::move(msg));
    return;
  }
  auto to_it = nodes_.find(msg.to);
  if (to_it == nodes_.end() || to_it->second.dead) {
    ++stats_.dropped_dead;
    Recycle(std::move(msg));
    return;
  }
  if (config_.drop_probability > 0 &&
      sim_->rng().NextBernoulli(config_.drop_probability)) {
    ++stats_.dropped_random;
    Recycle(std::move(msg));
    return;
  }
  SimDuration latency = config_.latency.Sample(sim_->rng());
  if (config_.bytes_per_second > 0) {
    // Serialization delay: payload bytes over the link throughput.
    double seconds = static_cast<double>(msg.WireSize()) /
                     static_cast<double>(config_.bytes_per_second);
    latency += FromSeconds(seconds);
  }
  sim_->ScheduleAfter(latency, [this, msg = std::move(msg)]() mutable {
    Deliver(std::move(msg));
  });
}

void Network::Deliver(Message msg) {
  auto it = nodes_.find(msg.to);
  if (it == nodes_.end() || it->second.dead) {
    ++stats_.dropped_dead;
    Recycle(std::move(msg));
    return;
  }
  NodeState& state = it->second;
  if (!state.online) {
    if (config_.store_and_forward) {
      state.mailbox.emplace_back(sim_->now(), std::move(msg));
    } else {
      ++stats_.dropped_receiver_offline;
      Recycle(std::move(msg));
    }
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += msg.WireSize();
  state.node->OnMessage(msg);
  // OnMessage receives the message by const reference; once it returns the
  // message is consumed and its payload buffer can cycle back to the pool.
  Recycle(std::move(msg));
}

void Network::Kill(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.dead = true;
  it->second.online = false;
  for (auto& [enqueued, msg] : it->second.mailbox) Recycle(std::move(msg));
  it->second.mailbox.clear();
}

bool Network::IsDead(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() || it->second.dead;
}

void Network::SetOnline(NodeId id, bool online) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second.dead) return;
  if (it->second.online == online) return;
  it->second.online = online;
  if (online) {
    it->second.node->OnOnline();
    FlushMailbox(id);
  } else {
    it->second.node->OnOffline();
  }
}

void Network::FlushMailbox(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  NodeState& state = it->second;
  std::vector<std::pair<SimTime, Message>> pending;
  pending.swap(state.mailbox);
  for (auto& [enqueued, msg] : pending) {
    if (config_.mailbox_ttl > 0 &&
        sim_->now() - enqueued > config_.mailbox_ttl) {
      ++stats_.expired_in_mailbox;
      Recycle(std::move(msg));
      continue;
    }
    // Re-check liveness: a delivery callback may have killed the node or
    // pushed it offline again.
    auto it2 = nodes_.find(id);
    if (it2 == nodes_.end() || it2->second.dead) {
      ++stats_.dropped_dead;
      Recycle(std::move(msg));
      continue;
    }
    if (!it2->second.online) {
      it2->second.mailbox.emplace_back(enqueued, std::move(msg));
      continue;
    }
    ++stats_.messages_delivered;
    stats_.bytes_delivered += msg.WireSize();
    it2->second.node->OnMessage(msg);
    Recycle(std::move(msg));
  }
}

Bytes Network::AcquirePayloadBuffer() {
  if (payload_pool_.empty()) return Bytes();
  Bytes buf = std::move(payload_pool_.back());
  payload_pool_.pop_back();
  buf.clear();  // keeps capacity
  ++stats_.payload_buffers_reused;
  return buf;
}

void Network::RecyclePayloadBuffer(Bytes&& buf) {
  if (buf.capacity() == 0) return;
  if (payload_pool_.size() >= kMaxPooledBuffers) return;
  payload_pool_.push_back(std::move(buf));
}

bool Network::IsOnline(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && !it->second.dead && it->second.online;
}

}  // namespace edgelet::net
