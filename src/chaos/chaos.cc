#include "chaos/chaos.h"

#include <algorithm>

#include "common/rng.h"

namespace edgelet::chaos {

namespace {

// Domain-separation tag folded into the chaos seed so chaos streams never
// collide with the network's NodeRng(engine_seed, node_id) streams even
// when the operator passes the same seed for both.
constexpr uint64_t kChaosStreamTag = 0x43484153'2d494e4aULL;  // "CHAS-INJ"

bool Contains(const std::vector<net::NodeId>& nodes, net::NodeId id) {
  return std::find(nodes.begin(), nodes.end(), id) != nodes.end();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

ChaosConfig MakeFaultScenario(FaultKind kind, uint64_t seed, double rate) {
  ChaosConfig config;
  config.seed = seed;
  switch (kind) {
    case FaultKind::kDrop:
      config.drop_probability = rate;
      break;
    case FaultKind::kBurst:
      config.burst_start_probability = rate;
      config.burst_length = 4;
      break;
    case FaultKind::kDuplicate:
      config.duplicate_probability = rate;
      config.max_duplicates = 2;
      break;
    case FaultKind::kDelay:
      config.delay_spike_probability = rate;
      config.delay_spike_mean = 2 * kSecond;
      break;
    case FaultKind::kCorrupt:
      config.corrupt_probability = rate;
      config.max_bit_flips = 3;
      break;
  }
  return config;
}

ChaosInjector::ChaosInjector(ChaosConfig config) : config_(config) {}

void ChaosInjector::AttachTo(net::Network* network) {
  network_ = network;
  // Node ids are dense and start at 1, so index sender state by id. A
  // fresh AttachTo resets every stream: re-attaching before a rerun
  // replays the identical fault schedule.
  senders_.assign(network->num_nodes() + 1, SenderState{});
  uint64_t mix = config_.seed ^ kChaosStreamTag;
  uint64_t base = SplitMix64(&mix);
  for (size_t id = 0; id < senders_.size(); ++id) {
    senders_[id].rng = NodeRng(base, id);
  }
  network->set_fault_injector(this);
}

void ChaosInjector::Detach() {
  if (network_ != nullptr && network_->fault_injector() == this) {
    network_->set_fault_injector(nullptr);
  }
  network_ = nullptr;
}

bool ChaosInjector::InOutage(const net::Message& msg, SimTime now) const {
  for (const OutageWindow& w : config_.outages) {
    if (now < w.start || now >= w.end) continue;
    if (w.nodes.empty()) return true;
    bool from_in = Contains(w.nodes, msg.from);
    bool to_in = Contains(w.nodes, msg.to);
    if (w.partition_only ? (from_in != to_in) : (from_in || to_in)) {
      return true;
    }
  }
  return false;
}

net::FaultVerdict ChaosInjector::OnSend(net::Message& msg, SimTime now) {
  net::FaultVerdict verdict;
  // Nodes registered after AttachTo have no chaos stream; leave their
  // traffic untouched rather than invent one mid-run.
  if (msg.from >= senders_.size()) return verdict;

  // Fixed evaluation order — outage (no draw), burst countdown (no draw),
  // then one optional draw per enabled knob: drop, burst start, duplicate,
  // delay spike, corrupt. Early drop returns skip the later draws; that is
  // still deterministic because each sender's message sequence (and hence
  // its decision sequence) is itself deterministic.
  if (InOutage(msg, now)) {
    verdict.drop = true;
    return verdict;
  }
  SenderState& st = senders_[msg.from];
  if (st.burst_remaining > 0) {
    --st.burst_remaining;
    verdict.drop = true;
    return verdict;
  }
  NodeRng& rng = st.rng;
  if (config_.drop_probability > 0 &&
      rng.NextBernoulli(config_.drop_probability)) {
    verdict.drop = true;
    return verdict;
  }
  if (config_.burst_start_probability > 0 && config_.burst_length > 0 &&
      rng.NextBernoulli(config_.burst_start_probability)) {
    // This message is the burst's first casualty.
    st.burst_remaining = config_.burst_length - 1;
    verdict.drop = true;
    return verdict;
  }
  if (config_.duplicate_probability > 0 && config_.max_duplicates > 0 &&
      rng.NextBernoulli(config_.duplicate_probability)) {
    verdict.duplicates =
        1 + static_cast<uint32_t>(
                config_.max_duplicates > 1 ? rng.NextBelow(config_.max_duplicates)
                                           : 0);
  }
  if (config_.delay_spike_probability > 0 && config_.delay_spike_mean > 0 &&
      rng.NextBernoulli(config_.delay_spike_probability)) {
    double rate = 1.0 / static_cast<double>(config_.delay_spike_mean);
    verdict.extra_latency = static_cast<SimDuration>(rng.NextExponential(rate));
    // An exponential draw can truncate to 0 µs; keep the spike observable
    // (and counted) by flooring it at one tick.
    if (verdict.extra_latency == 0) verdict.extra_latency = 1;
  }
  if (config_.corrupt_probability > 0 && !msg.payload.empty() &&
      rng.NextBernoulli(config_.corrupt_probability)) {
    uint32_t flips =
        1 + static_cast<uint32_t>(
                config_.max_bit_flips > 1 ? rng.NextBelow(config_.max_bit_flips)
                                          : 0);
    for (uint32_t i = 0; i < flips; ++i) {
      uint64_t bit = rng.NextBelow(msg.payload.size() * 8);
      msg.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    verdict.corrupted = true;
  }
  return verdict;
}

}  // namespace edgelet::chaos
