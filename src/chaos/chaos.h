#ifndef EDGELET_CHAOS_CHAOS_H_
#define EDGELET_CHAOS_CHAOS_H_

#include <string>
#include <vector>

#include "net/network.h"

namespace edgelet::chaos {

// A timed connectivity outage. While `now` is inside [start, end) the
// affected messages are swallowed before the network's own loss model even
// sees them. With `partition_only` the window models a network partition:
// only traffic *crossing* the cut between `nodes` and everyone else is
// lost, intra-side traffic flows normally. Without it the window is a
// blackhole: anything sent by or addressed to an affected node is lost.
// An empty node list means every node is affected (total blackout).
struct OutageWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<net::NodeId> nodes;
  bool partition_only = false;
};

// Knobs of the deterministic fault injector. Each probability is evaluated
// per message from the sending node's private chaos stream; disabled knobs
// (probability or count of 0) consume no draws, so a scenario's stream
// layout is a pure function of its config.
struct ChaosConfig {
  // Chaos stream seed — deliberately separate from the engine seed so the
  // same experiment can be replayed under different fault schedules (and
  // vice versa).
  uint64_t seed = 0;

  // Duplication: with this probability, put 1..max_duplicates extra exact
  // copies of the message in flight. Each copy samples its own latency, so
  // a duplicate can overtake the original (duplication + reordering).
  double duplicate_probability = 0.0;
  uint32_t max_duplicates = 2;

  // Latency spikes: with this probability, add an exponential extra delay
  // with the given mean to the message (and its duplicates) — the
  // reordering / congestion fault.
  double delay_spike_probability = 0.0;
  SimDuration delay_spike_mean = 2 * kSecond;

  // Independent per-message loss, on top of NetworkConfig::drop_probability.
  double drop_probability = 0.0;

  // Drop bursts: with burst_start_probability, this message and the next
  // burst_length - 1 messages from the same sender are all lost (radio
  // fade / interface flap).
  double burst_start_probability = 0.0;
  uint32_t burst_length = 0;

  // Sealed-payload bit flips: with this probability, flip 1..max_bit_flips
  // random bits of the payload in place. Sealed payloads then fail AEAD
  // authentication at the receiver; the fault tests that corruption is
  // contained, not that it is survived byte-for-byte.
  double corrupt_probability = 0.0;
  uint32_t max_bit_flips = 3;

  // Timed partitions / blackholes, checked first and without randomness.
  std::vector<OutageWindow> outages;
};

// The probabilistic fault kinds, for scenario-matrix sweeps.
enum class FaultKind {
  kDrop,
  kBurst,
  kDuplicate,
  kDelay,
  kCorrupt,
};

const char* FaultKindName(FaultKind kind);

// Canonical single-fault scenario: only `kind` enabled, at `rate`, with
// representative secondary knobs (burst length 4, up to 2 duplicates, 2 s
// mean spike, up to 3 bit flips). The matrix test/bench sweeps these.
ChaosConfig MakeFaultScenario(FaultKind kind, uint64_t seed, double rate);

// Deterministic message-level fault injector (see net::FaultInjector for
// the execution-context contract). Every draw comes from the *sending*
// node's counter-based stream NodeRng(Mix(seed), node_id) — disjoint from
// the network's own streams, which are keyed by the engine seed — and the
// only mutable state is per-sender, so the injector is safe under the
// parallel engine and replays bit-identically at any shard count.
class ChaosInjector : public net::FaultInjector {
 public:
  explicit ChaosInjector(ChaosConfig config);

  // Sizes the per-sender state for the network's current node set, resets
  // all chaos streams, and installs this injector on the network. Call
  // after every node is registered and only between runs. Messages from
  // nodes registered later pass through unfaulted.
  void AttachTo(net::Network* network);
  // Uninstalls from the network (if still installed).
  void Detach();

  net::FaultVerdict OnSend(net::Message& msg, SimTime now) override;

  const ChaosConfig& config() const { return config_; }

 private:
  // Cache-line separated: under parsim, concurrent senders on different
  // shards each touch only their own slot.
  struct alignas(64) SenderState {
    NodeRng rng;
    uint32_t burst_remaining = 0;
  };

  bool InOutage(const net::Message& msg, SimTime now) const;

  ChaosConfig config_;
  net::Network* network_ = nullptr;
  std::vector<SenderState> senders_;  // indexed by NodeId (ids start at 1)
};

}  // namespace edgelet::chaos

#endif  // EDGELET_CHAOS_CHAOS_H_
