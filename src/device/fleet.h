#ifndef EDGELET_DEVICE_FLEET_H_
#define EDGELET_DEVICE_FLEET_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "device/device.h"

namespace edgelet::device {

// Mix of device classes in a fleet (fractions normalized internally).
struct DeviceMix {
  double pc = 0.3;
  double smartphone = 0.4;
  double home_box = 0.3;
};

struct FleetConfig {
  size_t num_contributors = 100;
  size_t num_processors = 32;
  // Contributor-only individuals folded per device: the fleet creates
  // ceil(num_contributors / contributor_cohort_size) contributor devices,
  // each hosting that many members' rows (exec::CohortActor replays their
  // individual contributions). 1 = the classic one-device-per-contributor
  // fleet. Memory becomes O(operators + cohorts) instead of O(devices) —
  // the knob that unlocks million-member sweeps.
  size_t contributor_cohort_size = 1;
  DeviceMix contributor_mix;
  DeviceMix processor_mix;
  // When false, devices never churn on their own (useful for isolating
  // crash-failure experiments from disconnections).
  bool enable_churn = true;
  std::string code_identity = "edgelet-runtime-v1";
};

// Owns the personal devices of one experiment: Data Contributors (each
// holding one individual's record) and the Data Processor pool from which
// the planner draws operator hosts.
class Fleet {
 public:
  Fleet(net::Network* network, const tee::TrustAuthority* authority,
        const FleetConfig& config, uint64_t seed);

  // Contributor DEVICES: one per individual in the classic fleet, one per
  // cohort when contributor_cohort_size > 1.
  const std::vector<Device*>& contributors() const { return contributors_; }
  const std::vector<Device*>& processors() const { return processors_; }
  // Individuals represented by the contributor devices (== num_contributors
  // from the config; >= contributors().size()).
  size_t contributor_members() const { return contributor_members_; }
  size_t cohort_size() const { return cohort_size_; }
  Device* by_node(net::NodeId id) const;
  size_t size() const { return devices_.size(); }

  // Makes an externally-owned device (e.g. the querier endpoint)
  // resolvable through by_node(). The fleet does not take ownership.
  void RegisterExternal(Device* device) {
    by_node_.emplace(device->id(), device);
  }

  // Loads the population onto the contributor devices: row i belongs to
  // member i, and each device receives its members' contiguous row block
  // (one row per device in the classic fleet). The row count must equal
  // contributor_members().
  Status DistributeData(const data::Table& table);

  // Provisions every enclave with the query-group key (models remote
  // attestation of the published query code).
  Status ProvisionAll();

 private:
  DeviceProfile SampleProfile(const DeviceMix& mix, Rng* rng) const;

  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Device*> contributors_;
  std::vector<Device*> processors_;
  std::unordered_map<net::NodeId, Device*> by_node_;
  bool enable_churn_;
  size_t contributor_members_ = 0;
  size_t cohort_size_ = 1;
};

// Crash-failure plan: each target dies at a uniform time inside the window
// with probability `failure_probability`. Deterministic for a given rng.
struct FailurePlan {
  std::vector<std::pair<net::NodeId, SimTime>> kills;
};

FailurePlan PlanFailures(const std::vector<net::NodeId>& targets,
                         double failure_probability, SimTime window_start,
                         SimTime window_end, Rng* rng);

// Schedules the kills on the simulator.
void ScheduleFailures(net::Network* network, const FailurePlan& plan);

}  // namespace edgelet::device

#endif  // EDGELET_DEVICE_FLEET_H_
