#ifndef EDGELET_DEVICE_DEVICE_H_
#define EDGELET_DEVICE_DEVICE_H_

#include <functional>
#include <memory>
#include <string>

#include "data/table.h"
#include "net/network.h"
#include "tee/enclave.h"

namespace edgelet::device {

// The three TEE-enabled device classes of the demo platform (paper §3.1 and
// Figure 1): an SGX laptop, a TrustZone smartphone, and the DomYcile
// STM32F417+TPM home box.
enum class DeviceClass : uint8_t {
  kPcSgx = 0,
  kSmartphoneTrustZone = 1,
  kHomeBoxTpm = 2,
};

std::string_view DeviceClassName(DeviceClass cls);

struct DeviceProfile {
  DeviceClass cls = DeviceClass::kPcSgx;
  // Multiplier on processing time relative to the PC (i5-9400H = 1.0; the
  // STM32F417 microcontroller is orders of magnitude slower).
  double compute_factor = 1.0;
  // Availability pattern.
  net::ChurnModel churn = net::ChurnModel::AlwaysOn();

  // Calibrated presets. The home box is always on (plugged in) but slow;
  // the smartphone is fast but churns; the PC is fast and mostly on.
  static DeviceProfile Pc();
  static DeviceProfile Smartphone();
  static DeviceProfile HomeBox();
};

// A personal device participating in Edgelet computations: a network node
// hosting a TEE enclave and the owner's local data. Execution actors
// (exec/) attach a message handler to drive the device's protocol role.
class Device : public net::Node {
 public:
  // Registers with `network` immediately; the node id doubles as the
  // enclave id.
  Device(net::Network* network, const tee::TrustAuthority* authority,
         DeviceProfile profile, const std::string& code_identity);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  net::NodeId id() const { return id_; }
  const DeviceProfile& profile() const { return profile_; }
  tee::Enclave& enclave() { return *enclave_; }
  net::Network* network() { return network_; }

  // Simulated processing time for touching `tuples` tuples on this device.
  SimDuration ComputeCost(uint64_t tuples) const;

  void SetLocalData(data::Table table) { local_data_ = std::move(table); }
  const data::Table& local_data() const { return local_data_; }

  // Exactly one actor owns the device during an execution.
  using MessageHandler = std::function<void(const net::Message&)>;
  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  // Seals `plaintext` for the destination enclave and sends it. The wire
  // header is the AEAD associated data, so tampering with routing breaks
  // authentication.
  Status SendSealed(net::NodeId to, uint32_t type, const Bytes& plaintext);
  // Sends an unsealed control message (liveness pings etc. — no payload
  // confidentiality needed).
  void SendControl(net::NodeId to, uint32_t type, const Bytes& payload);

  // Opens a sealed payload received from msg.from.
  Result<Bytes> OpenPayload(const net::Message& msg);
  // Same, into a caller-provided scratch buffer (resized to fit). Reusing
  // one scratch across messages keeps the receive path allocation-free.
  Status OpenPayloadInto(const net::Message& msg, Bytes* out);

  // net::Node:
  void OnMessage(const net::Message& msg) override;
  void OnOnline() override {}
  void OnOffline() override {}

 private:
  net::Network* network_;
  DeviceProfile profile_;
  net::NodeId id_;
  std::unique_ptr<tee::Enclave> enclave_;
  data::Table local_data_;
  MessageHandler handler_;
  uint64_t next_seq_ = 0;
};

// Base per-tuple processing time on the reference PC.
constexpr SimDuration kPerTupleCost = 20 * kMicrosecond;

}  // namespace edgelet::device

#endif  // EDGELET_DEVICE_DEVICE_H_
