#include "device/fleet.h"

#include <algorithm>

namespace edgelet::device {

Fleet::Fleet(net::Network* network, const tee::TrustAuthority* authority,
             const FleetConfig& config, uint64_t seed)
    : enable_churn_(config.enable_churn),
      contributor_members_(config.num_contributors),
      cohort_size_(std::max<size_t>(1, config.contributor_cohort_size)) {
  Rng rng(seed);
  auto make = [&](const DeviceMix& mix) {
    DeviceProfile profile = SampleProfile(mix, &rng);
    if (!enable_churn_) profile.churn = net::ChurnModel::AlwaysOn();
    auto dev = std::make_unique<Device>(network, authority, profile,
                                        config.code_identity);
    Device* raw = dev.get();
    devices_.push_back(std::move(dev));
    by_node_.emplace(raw->id(), raw);
    return raw;
  };
  const size_t contributor_devices =
      (contributor_members_ + cohort_size_ - 1) / cohort_size_;
  contributors_.reserve(contributor_devices);
  for (size_t i = 0; i < contributor_devices; ++i) {
    contributors_.push_back(make(config.contributor_mix));
  }
  processors_.reserve(config.num_processors);
  for (size_t i = 0; i < config.num_processors; ++i) {
    processors_.push_back(make(config.processor_mix));
  }
}

DeviceProfile Fleet::SampleProfile(const DeviceMix& mix, Rng* rng) const {
  double total = mix.pc + mix.smartphone + mix.home_box;
  if (total <= 0) return DeviceProfile::Pc();
  double pick = rng->NextDouble() * total;
  if (pick < mix.pc) return DeviceProfile::Pc();
  if (pick < mix.pc + mix.smartphone) return DeviceProfile::Smartphone();
  return DeviceProfile::HomeBox();
}

Device* Fleet::by_node(net::NodeId id) const {
  auto it = by_node_.find(id);
  return it == by_node_.end() ? nullptr : it->second;
}

Status Fleet::DistributeData(const data::Table& table) {
  if (table.num_rows() != contributor_members_) {
    return Status::InvalidArgument(
        "row count " + std::to_string(table.num_rows()) +
        " != contributor member count " +
        std::to_string(contributor_members_));
  }
  // Row i belongs to member i; device d hosts the contiguous block
  // [d * cohort_size, ...) — one row per device in the classic fleet.
  size_t row = 0;
  for (size_t d = 0; d < contributors_.size(); ++d) {
    data::Table block(table.schema());
    for (size_t k = 0; k < cohort_size_ && row < table.num_rows(); ++k) {
      block.AppendUnchecked(table.row(row++));
    }
    contributors_[d]->SetLocalData(std::move(block));
  }
  return Status::OK();
}

Status Fleet::ProvisionAll() {
  for (const auto& dev : devices_) {
    EDGELET_RETURN_NOT_OK(dev->enclave().Provision());
  }
  return Status::OK();
}

FailurePlan PlanFailures(const std::vector<net::NodeId>& targets,
                         double failure_probability, SimTime window_start,
                         SimTime window_end, Rng* rng) {
  FailurePlan plan;
  if (window_end < window_start) window_end = window_start;
  for (net::NodeId id : targets) {
    if (!rng->NextBernoulli(failure_probability)) continue;
    SimTime t = window_start;
    if (window_end > window_start) {
      t += rng->NextBelow(window_end - window_start);
    }
    plan.kills.emplace_back(id, t);
  }
  return plan;
}

void ScheduleFailures(net::Network* network, const FailurePlan& plan) {
  for (const auto& [id, when] : plan.kills) {
    // The kill runs on the victim's own timeline so that under a sharded
    // engine only the owning shard mutates its state.
    network->engine()->ScheduleAt(
        id, when, [network, id = id]() { network->Kill(id); });
  }
}

}  // namespace edgelet::device
