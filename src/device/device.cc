#include "device/device.h"

namespace edgelet::device {

std::string_view DeviceClassName(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kPcSgx:
      return "PC/SGX";
    case DeviceClass::kSmartphoneTrustZone:
      return "Smartphone/TrustZone";
    case DeviceClass::kHomeBoxTpm:
      return "HomeBox/TPM";
  }
  return "?";
}

DeviceProfile DeviceProfile::Pc() {
  DeviceProfile p;
  p.cls = DeviceClass::kPcSgx;
  p.compute_factor = 1.0;
  // Plugged in, occasionally suspended.
  p.churn = net::ChurnModel::Intermittent(4 * kHour, 10 * kMinute);
  return p;
}

DeviceProfile DeviceProfile::Smartphone() {
  DeviceProfile p;
  p.cls = DeviceClass::kSmartphoneTrustZone;
  p.compute_factor = 3.0;
  // Coverage gaps and user mobility.
  p.churn = net::ChurnModel::Intermittent(20 * kMinute, 5 * kMinute);
  return p;
}

DeviceProfile DeviceProfile::HomeBox() {
  DeviceProfile p;
  p.cls = DeviceClass::kHomeBoxTpm;
  // STM32F417 @168MHz vs laptop-class CPU.
  p.compute_factor = 60.0;
  // Always powered; connected opportunistically (caregiver visits in the
  // DomYcile deployment) — modelled as long offline stretches with contact
  // windows.
  p.churn = net::ChurnModel::Intermittent(10 * kMinute, 40 * kMinute);
  return p;
}

Device::Device(net::Network* network, const tee::TrustAuthority* authority,
               DeviceProfile profile, const std::string& code_identity)
    : network_(network), profile_(profile) {
  id_ = network_->Register(this, profile_.churn);
  enclave_ = std::make_unique<tee::Enclave>(id_, code_identity, authority);
}

SimDuration Device::ComputeCost(uint64_t tuples) const {
  double cost = static_cast<double>(tuples) *
                static_cast<double>(kPerTupleCost) * profile_.compute_factor;
  return static_cast<SimDuration>(cost);
}

Status Device::SendSealed(net::NodeId to, uint32_t type,
                          const Bytes& plaintext) {
  net::Message msg;
  msg.from = id_;
  msg.to = to;
  msg.type = type;
  msg.seq = next_seq_++;
  // Stack AAD + pooled payload buffer: the steady-state send path touches
  // the heap only when the pool is warming up.
  net::MessageAadBuf aad = net::MessageAadFixed(msg);
  msg.payload = network_->AcquirePayloadBuffer();
  Status s = enclave_->SealForInto(to, msg.seq, aad.data(), aad.size(),
                                   plaintext, &msg.payload);
  if (!s.ok()) {
    network_->RecyclePayloadBuffer(std::move(msg.payload));
    return s;
  }
  network_->Send(std::move(msg));
  return Status::OK();
}

void Device::SendControl(net::NodeId to, uint32_t type, const Bytes& payload) {
  net::Message msg;
  msg.from = id_;
  msg.to = to;
  msg.type = type;
  msg.seq = next_seq_++;
  msg.payload = payload;
  network_->Send(std::move(msg));
}

Status Device::OpenPayloadInto(const net::Message& msg, Bytes* out) {
  net::MessageAadBuf aad = net::MessageAadFixed(msg);
  return enclave_->OpenFromInto(msg.from, msg.seq, aad.data(), aad.size(),
                                msg.payload, out);
}

Result<Bytes> Device::OpenPayload(const net::Message& msg) {
  Bytes out;
  Status s = OpenPayloadInto(msg, &out);
  if (!s.ok()) return s;
  return out;
}

void Device::OnMessage(const net::Message& msg) {
  if (handler_) handler_(msg);
}

}  // namespace edgelet::device
