#ifndef EDGELET_TEE_ENCLAVE_H_
#define EDGELET_TEE_ENCLAVE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"

namespace edgelet::tee {

// Software model of a Trusted Execution Environment. The Edgelet protocols
// only rely on three TEE properties, all of which this model exposes:
//   1. Code identity: a measurement (hash of the code) that remote parties
//      can verify through manufacturer-rooted attestation.
//   2. Confidential channels: attested enclaves share keys and exchange
//      AEAD-sealed messages; the infrastructure between them sees only
//      ciphertext.
//   3. Sealed storage: data encrypted under a key only this enclave holds.
// The model additionally supports the paper's "sealed-glass" threat mode
// (Tramèr et al.): integrity holds but confidentiality is lost, so the
// enclave keeps exposure counters that the privacy module audits.

using Measurement = crypto::Digest256;

// Manufacturer-signed (HMAC in this symmetric model) statement binding an
// enclave id to its code measurement.
struct AttestationReport {
  uint64_t enclave_id = 0;
  Measurement measurement{};
  crypto::Digest256 mac{};
};

// Plays the role of the TEE manufacturer + key-distribution service: it
// attests enclaves and provisions the query-group key to enclaves whose
// measurement matches the expected code.
class TrustAuthority {
 public:
  explicit TrustAuthority(uint64_t seed);

  // Manufacturer root is installed in genuine hardware at fabrication; the
  // model hands it to enclaves it creates (see Enclave constructor).
  const Bytes& root_key() const { return root_key_; }

  AttestationReport Attest(uint64_t enclave_id,
                           const Measurement& measurement) const;
  bool Verify(const AttestationReport& report) const;

  // Releases the group key only to enclaves that attest with the expected
  // measurement (the code the querier published).
  void set_expected_measurement(const Measurement& m) {
    expected_measurement_ = m;
    has_expected_ = true;
  }
  Result<crypto::Key256> ProvisionGroupKey(
      const AttestationReport& report) const;

 private:
  Bytes root_key_;
  crypto::Key256 group_key_;
  Measurement expected_measurement_{};
  bool has_expected_ = false;
};

class Enclave {
 public:
  // `code_identity` stands in for the binary; its SHA-256 is the
  // measurement.
  Enclave(uint64_t id, std::string code_identity,
          const TrustAuthority* authority);

  uint64_t id() const { return id_; }
  const Measurement& measurement() const { return measurement_; }
  const AttestationReport& report() const { return report_; }

  // Simulates loading a modified binary: measurement changes, attestation
  // of the new identity will not match the expected measurement.
  void TamperCode(const std::string& new_identity);

  // Obtains the query-group key after remote attestation; fails if this
  // enclave's code was tampered with.
  Status Provision();

  bool provisioned() const { return provisioned_; }

  // --- Confidential channels -------------------------------------------
  // Pairwise keys derive from the group key and the unordered id pair; the
  // sender id feeds the nonce so both directions of a channel never reuse a
  // (key, nonce) pair. `seq` must be unique per (sender, receiver) message.
  Result<Bytes> SealFor(uint64_t peer_id, uint64_t seq, const Bytes& aad,
                        const Bytes& plaintext);
  Result<Bytes> OpenFrom(uint64_t peer_id, uint64_t seq, const Bytes& aad,
                         const Bytes& sealed);

  // Zero-copy variants — the hot message path. Seal/open into a caller-
  // provided scratch buffer (resized to fit), taking the aad as a raw span
  // so callers can keep it on the stack. Reusing one scratch across calls
  // makes the steady state allocation-free; outputs are byte-identical to
  // SealFor / OpenFrom, which wrap these.
  Status SealForInto(uint64_t peer_id, uint64_t seq, const uint8_t* aad,
                     size_t aad_len, const Bytes& plaintext, Bytes* out);
  Status OpenFromInto(uint64_t peer_id, uint64_t seq, const uint8_t* aad,
                      size_t aad_len, const Bytes& sealed, Bytes* out);

  // --- Sealed storage ---------------------------------------------------
  Bytes SealToStorage(const Bytes& plaintext);
  Result<Bytes> UnsealFromStorage(const Bytes& sealed);

  // --- Sealed-glass compromise model -------------------------------------
  // When compromised, integrity is preserved (the protocol still runs) but
  // everything processed in cleartext is considered observable.
  void set_sealed_glass_compromised(bool v) { sealed_glass_ = v; }
  bool sealed_glass_compromised() const { return sealed_glass_; }

  // Called by operators when raw (pre-aggregation) tuples are decrypted in
  // this enclave; the privacy module audits these counters.
  void RecordClearTextTuples(uint64_t tuples, uint64_t attributes);
  uint64_t cleartext_tuples_observed() const { return cleartext_tuples_; }
  uint64_t cleartext_cells_observed() const { return cleartext_cells_; }

 private:
  // HKDF-style derivation is ~1.5µs per call; the derived key for a peer is
  // immutable for the lifetime of a group key, so it is cached. The cache is
  // invalidated whenever the group key can change (Provision, TamperCode).
  const crypto::Key256& PairwiseKey(uint64_t peer_id) const;

  uint64_t id_;
  std::string code_identity_;
  Measurement measurement_;
  const TrustAuthority* authority_;
  AttestationReport report_;
  crypto::Key256 sealing_key_{};
  crypto::Key256 group_key_{};
  bool provisioned_ = false;
  bool sealed_glass_ = false;
  uint64_t storage_seq_ = 0;
  uint64_t cleartext_tuples_ = 0;
  uint64_t cleartext_cells_ = 0;
  mutable std::unordered_map<uint64_t, crypto::Key256> pairwise_cache_;
};

}  // namespace edgelet::tee

#endif  // EDGELET_TEE_ENCLAVE_H_
