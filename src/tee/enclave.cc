#include "tee/enclave.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/serialize.h"

namespace edgelet::tee {

namespace {

Bytes ReportBody(uint64_t enclave_id, const Measurement& m) {
  Writer w;
  w.PutU64(enclave_id);
  w.PutRaw(m.data(), m.size());
  return w.Take();
}

crypto::Key256 KeyFromBytes(const Bytes& b) {
  crypto::Key256 key{};
  crypto::Digest256 d = crypto::Sha256::Hash(b);
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

}  // namespace

TrustAuthority::TrustAuthority(uint64_t seed) {
  Rng rng(seed);
  root_key_.resize(32);
  for (auto& b : root_key_) b = static_cast<uint8_t>(rng.NextU64());
  Bytes gk(32);
  for (auto& b : gk) b = static_cast<uint8_t>(rng.NextU64());
  std::memcpy(group_key_.data(), gk.data(), group_key_.size());
}

AttestationReport TrustAuthority::Attest(uint64_t enclave_id,
                                         const Measurement& measurement) const {
  AttestationReport report;
  report.enclave_id = enclave_id;
  report.measurement = measurement;
  Bytes body = ReportBody(enclave_id, measurement);
  report.mac = crypto::HmacSha256(root_key_, body);
  return report;
}

bool TrustAuthority::Verify(const AttestationReport& report) const {
  Bytes body = ReportBody(report.enclave_id, report.measurement);
  crypto::Digest256 expected = crypto::HmacSha256(root_key_, body);
  return crypto::ConstantTimeEquals(expected.data(), report.mac.data(),
                                    expected.size());
}

Result<crypto::Key256> TrustAuthority::ProvisionGroupKey(
    const AttestationReport& report) const {
  if (!Verify(report)) {
    return Status::FailedPrecondition("attestation report MAC invalid");
  }
  if (has_expected_ &&
      !crypto::ConstantTimeEquals(report.measurement.data(),
                                  expected_measurement_.data(),
                                  expected_measurement_.size())) {
    return Status::FailedPrecondition(
        "enclave measurement does not match expected code identity");
  }
  return group_key_;
}

Enclave::Enclave(uint64_t id, std::string code_identity,
                 const TrustAuthority* authority)
    : id_(id),
      code_identity_(std::move(code_identity)),
      authority_(authority) {
  measurement_ = crypto::Sha256::Hash(code_identity_);
  report_ = authority_->Attest(id_, measurement_);
  // Sealing key: unique per enclave instance, derived from the hardware
  // root and the enclave identity (mirrors SGX EGETKEY semantics).
  Writer w;
  w.PutU64(id_);
  w.PutRaw(measurement_.data(), measurement_.size());
  w.PutBytes(authority_->root_key());
  sealing_key_ = KeyFromBytes(w.Take());
}

void Enclave::TamperCode(const std::string& new_identity) {
  code_identity_ = new_identity;
  measurement_ = crypto::Sha256::Hash(code_identity_);
  // Genuine hardware measures whatever code is loaded; the report is valid
  // but carries the tampered measurement.
  report_ = authority_->Attest(id_, measurement_);
  provisioned_ = false;
  pairwise_cache_.clear();
}

Status Enclave::Provision() {
  auto key = authority_->ProvisionGroupKey(report_);
  if (!key.ok()) return key.status();
  group_key_ = *key;
  provisioned_ = true;
  pairwise_cache_.clear();
  return Status::OK();
}

const crypto::Key256& Enclave::PairwiseKey(uint64_t peer_id) const {
  auto it = pairwise_cache_.find(peer_id);
  if (it != pairwise_cache_.end()) return it->second;
  uint64_t lo = std::min(id_, peer_id);
  uint64_t hi = std::max(id_, peer_id);
  Writer w;
  w.PutU64(lo);
  w.PutU64(hi);
  Bytes gk(group_key_.begin(), group_key_.end());
  crypto::Digest256 d = crypto::HmacSha256(gk, w.Take());
  crypto::Key256 key{};
  std::memcpy(key.data(), d.data(), key.size());
  return pairwise_cache_.emplace(peer_id, key).first->second;
}

Status Enclave::SealForInto(uint64_t peer_id, uint64_t seq,
                            const uint8_t* aad, size_t aad_len,
                            const Bytes& plaintext, Bytes* out) {
  if (!provisioned_) {
    return Status::FailedPrecondition("enclave not provisioned");
  }
  crypto::Nonce96 nonce = crypto::NonceFromSequence(id_, seq);
  crypto::AeadSealInto(PairwiseKey(peer_id), nonce, aad, aad_len,
                       plaintext.data(), plaintext.size(), out);
  return Status::OK();
}

Status Enclave::OpenFromInto(uint64_t peer_id, uint64_t seq,
                             const uint8_t* aad, size_t aad_len,
                             const Bytes& sealed, Bytes* out) {
  if (!provisioned_) {
    return Status::FailedPrecondition("enclave not provisioned");
  }
  crypto::Nonce96 nonce = crypto::NonceFromSequence(peer_id, seq);
  return crypto::AeadOpenInto(PairwiseKey(peer_id), nonce, aad, aad_len,
                              sealed.data(), sealed.size(), out);
}

Result<Bytes> Enclave::SealFor(uint64_t peer_id, uint64_t seq,
                               const Bytes& aad, const Bytes& plaintext) {
  Bytes out;
  Status s = SealForInto(peer_id, seq, aad.data(), aad.size(), plaintext,
                         &out);
  if (!s.ok()) return s;
  return out;
}

Result<Bytes> Enclave::OpenFrom(uint64_t peer_id, uint64_t seq,
                                const Bytes& aad, const Bytes& sealed) {
  Bytes out;
  Status s = OpenFromInto(peer_id, seq, aad.data(), aad.size(), sealed, &out);
  if (!s.ok()) return s;
  return out;
}

Bytes Enclave::SealToStorage(const Bytes& plaintext) {
  crypto::Nonce96 nonce = crypto::NonceFromSequence(~id_, storage_seq_);
  Bytes aad;
  Bytes sealed = crypto::AeadSeal(sealing_key_, nonce, aad, plaintext);
  // Prepend the sequence so UnsealFromStorage can rebuild the nonce.
  Writer w;
  w.PutU64(storage_seq_);
  w.PutBytes(sealed);
  ++storage_seq_;
  return w.Take();
}

Result<Bytes> Enclave::UnsealFromStorage(const Bytes& blob) {
  Reader r(blob);
  auto seq = r.GetU64();
  if (!seq.ok()) return seq.status();
  auto sealed = r.GetBytes();
  if (!sealed.ok()) return sealed.status();
  crypto::Nonce96 nonce = crypto::NonceFromSequence(~id_, *seq);
  Bytes aad;
  return crypto::AeadOpen(sealing_key_, nonce, aad, *sealed);
}

void Enclave::RecordClearTextTuples(uint64_t tuples, uint64_t attributes) {
  cleartext_tuples_ += tuples;
  cleartext_cells_ += tuples * attributes;
}

}  // namespace edgelet::tee
