#include "query/grouping_sets.h"

#include <algorithm>

namespace edgelet::query {

namespace {

void AppendUnique(std::vector<std::string>* out, const std::string& s) {
  if (std::find(out->begin(), out->end(), s) == out->end()) {
    out->push_back(s);
  }
}

}  // namespace

std::vector<std::string> GroupingSetsSpec::AllKeyColumns() const {
  std::vector<std::string> out;
  for (const auto& set : sets) {
    for (const auto& k : set) AppendUnique(&out, k);
  }
  return out;
}

std::vector<std::string> GroupingSetsSpec::ColumnsForSet(size_t i) const {
  std::vector<std::string> out;
  for (const auto& k : sets[i]) AppendUnique(&out, k);
  for (const auto& a : aggregates) {
    if (a.column != "*") AppendUnique(&out, a.column);
  }
  return out;
}

std::vector<std::string> GroupingSetsSpec::AllColumns() const {
  std::vector<std::string> out = AllKeyColumns();
  for (const auto& a : aggregates) {
    if (a.column != "*") AppendUnique(&out, a.column);
  }
  return out;
}

void GroupingSetsSpec::Serialize(Writer* w) const {
  w->PutVarint(sets.size());
  for (const auto& set : sets) {
    w->PutVarint(set.size());
    for (const auto& k : set) w->PutString(k);
  }
  w->PutVarint(aggregates.size());
  for (const auto& a : aggregates) a.Serialize(w);
}

Result<GroupingSetsSpec> GroupingSetsSpec::Deserialize(Reader* r) {
  GroupingSetsSpec spec;
  auto ns = r->GetVarint();
  if (!ns.ok()) return ns.status();
  for (uint64_t i = 0; i < *ns; ++i) {
    auto nk = r->GetVarint();
    if (!nk.ok()) return nk.status();
    std::vector<std::string> set;
    for (uint64_t j = 0; j < *nk; ++j) {
      auto k = r->GetString();
      if (!k.ok()) return k.status();
      set.push_back(std::move(*k));
    }
    spec.sets.push_back(std::move(set));
  }
  auto na = r->GetVarint();
  if (!na.ok()) return na.status();
  for (uint64_t i = 0; i < *na; ++i) {
    auto a = AggregateSpec::Deserialize(r);
    if (!a.ok()) return a.status();
    spec.aggregates.push_back(std::move(*a));
  }
  return spec;
}

GroupingSetsResult::GroupingSetsResult(GroupingSetsSpec spec)
    : spec_(std::move(spec)),
      per_set_(spec_.sets.size()),
      present_(spec_.sets.size(), false) {}

Result<GroupingSetsResult> GroupingSetsResult::Compute(
    const data::Table& table, const GroupingSetsSpec& spec) {
  std::vector<size_t> all(spec.sets.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ComputeSets(table, spec, all);
}

Result<GroupingSetsResult> GroupingSetsResult::ComputeSets(
    const data::Table& table, const GroupingSetsSpec& spec,
    const std::vector<size_t>& set_indices) {
  GroupingSetsResult out(spec);
  for (size_t i : set_indices) {
    if (i >= spec.sets.size()) {
      return Status::OutOfRange("grouping set index " + std::to_string(i));
    }
    GroupBySpec gb{spec.sets[i], spec.aggregates};
    auto agg = GroupedAggregation::Compute(table, gb);
    if (!agg.ok()) return agg.status();
    out.per_set_[i] = std::move(*agg);
    out.present_[i] = true;
  }
  return out;
}

Status GroupingSetsResult::Merge(const GroupingSetsResult& other) {
  if (per_set_.empty() && present_.empty()) {
    // Default-constructed accumulator adopts the incoming spec.
    spec_ = other.spec_;
    per_set_.resize(spec_.sets.size());
    present_.assign(spec_.sets.size(), false);
  }
  if (!(spec_ == other.spec_)) {
    return Status::InvalidArgument("cannot merge: GroupingSets specs differ");
  }
  for (size_t i = 0; i < per_set_.size(); ++i) {
    if (!other.present_[i]) continue;
    if (!present_[i]) {
      per_set_[i] = other.per_set_[i];
      present_[i] = true;
    } else {
      EDGELET_RETURN_NOT_OK(per_set_[i].Merge(other.per_set_[i]));
    }
  }
  return Status::OK();
}

bool GroupingSetsResult::HasSet(size_t i) const {
  return i < present_.size() && present_[i];
}

Result<data::Table> GroupingSetsResult::Finalize() const {
  std::vector<std::string> all_keys = spec_.AllKeyColumns();

  std::vector<data::Column> cols;
  cols.push_back({"grouping_set", data::ValueType::kInt64});
  for (const auto& k : all_keys) cols.push_back({k, data::ValueType::kString});
  for (const auto& a : spec_.aggregates) {
    data::ValueType t = AggregateYieldsInteger(a.fn)
                            ? data::ValueType::kInt64
                            : data::ValueType::kDouble;
    cols.push_back({a.OutputName(), t});
  }

  data::Table out{data::Schema(cols)};
  for (size_t i = 0; i < per_set_.size(); ++i) {
    if (!present_[i]) {
      return Status::FailedPrecondition(
          "grouping set " + std::to_string(i) +
          " missing: no computer reported it");
    }
    data::Table set_table = per_set_[i].Finalize();
    const auto& set_keys = spec_.sets[i];
    // Map each union key column to its position in this set's output (or
    // NULL if absent).
    for (const auto& row : set_table.rows()) {
      data::Tuple t;
      t.reserve(cols.size());
      t.emplace_back(static_cast<int64_t>(i));
      for (const auto& key : all_keys) {
        auto it = std::find(set_keys.begin(), set_keys.end(), key);
        if (it == set_keys.end()) {
          t.push_back(data::Value::Null());
        } else {
          t.push_back(row[static_cast<size_t>(it - set_keys.begin())]);
        }
      }
      for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
        t.push_back(row[set_keys.size() + a]);
      }
      out.AppendUnchecked(std::move(t));
    }
  }
  out.SortRows();
  return out;
}

void GroupingSetsResult::Serialize(Writer* w) const {
  spec_.Serialize(w);
  w->PutVarint(per_set_.size());
  for (size_t i = 0; i < per_set_.size(); ++i) {
    w->PutBool(present_[i]);
    if (present_[i]) per_set_[i].Serialize(w);
  }
}

Result<GroupingSetsResult> GroupingSetsResult::Deserialize(Reader* r) {
  auto spec = GroupingSetsSpec::Deserialize(r);
  if (!spec.ok()) return spec.status();
  GroupingSetsResult out(std::move(*spec));
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  if (*n != out.per_set_.size()) {
    return Status::Corruption("grouping-set count mismatch");
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto present = r->GetBool();
    if (!present.ok()) return present.status();
    if (*present) {
      auto agg = GroupedAggregation::Deserialize(r);
      if (!agg.ok()) return agg.status();
      out.per_set_[i] = std::move(*agg);
      out.present_[i] = true;
    }
  }
  return out;
}

}  // namespace edgelet::query
