#ifndef EDGELET_QUERY_GROUPBY_H_
#define EDGELET_QUERY_GROUPBY_H_

#include <map>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/aggregate.h"

namespace edgelet::query {

// GROUP BY <keys> with a list of aggregates.
struct GroupBySpec {
  std::vector<std::string> keys;  // empty => single global group
  std::vector<AggregateSpec> aggregates;

  void Serialize(Writer* w) const;
  static Result<GroupBySpec> Deserialize(Reader* r);
  bool operator==(const GroupBySpec& other) const {
    return keys == other.keys && aggregates == other.aggregates;
  }
};

// Mergeable partial result of a grouped aggregation: per-group algebraic
// states. Computers produce these on their partitions; the Computing
// Combiner merges them, and merging is exact (validity property).
class GroupedAggregation {
 public:
  GroupedAggregation() = default;
  explicit GroupedAggregation(GroupBySpec spec) : spec_(std::move(spec)) {}

  const GroupBySpec& spec() const { return spec_; }

  // Aggregates every row of `table` (which must contain all key and
  // aggregate columns).
  static Result<GroupedAggregation> Compute(const data::Table& table,
                                            const GroupBySpec& spec);

  // Merges a partial result from another partition; specs must match.
  Status Merge(const GroupedAggregation& other);

  size_t num_groups() const { return groups_.size(); }

  // Finalized table: key columns then one column per aggregate, rows in
  // deterministic key order.
  data::Table Finalize() const;

  void Serialize(Writer* w) const;
  static Result<GroupedAggregation> Deserialize(Reader* r);

 private:
  struct Group {
    data::Tuple key;
    std::vector<AggregateState> states;
  };

  GroupBySpec spec_;
  // Keyed by the serialized key tuple => deterministic iteration order.
  std::map<Bytes, Group> groups_;
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_GROUPBY_H_
