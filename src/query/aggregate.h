#ifndef EDGELET_QUERY_AGGREGATE_H_
#define EDGELET_QUERY_AGGREGATE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/value.h"
#include "query/hll.h"
#include "query/quantile.h"

namespace edgelet::query {

// Aggregate functions supported by Edgelet computations. All of them are
// distributive or algebraic: partial states computed on disjoint partitions
// merge into the exact global answer, which is what makes the
// Overcollection strategy applicable (paper §2.2).
enum class AggregateFunction : uint8_t {
  kCount = 0,  // COUNT(col): non-null values; COUNT(*) when column == "*"
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
  kVariance = 5,  // population variance
  kStdDev = 6,    // population standard deviation
  // Approximate distinct count via a mergeable HyperLogLog sketch
  // (exact distinct counting is not distributive; the sketch is).
  kCountDistinct = 7,
  // Approximate quantile via a mergeable KLL-style sketch; the quantile
  // rank comes from AggregateSpec::parameter (0.5 = median).
  kQuantile = 8,
};

// True for aggregates whose result is integral (COUNT, COUNT DISTINCT).
bool AggregateYieldsInteger(AggregateFunction fn);

std::string_view AggregateFunctionName(AggregateFunction fn);

struct AggregateSpec {
  AggregateFunction fn = AggregateFunction::kCount;
  std::string column;  // "*" allowed for COUNT
  // Function argument; only kQuantile reads it (the quantile rank in
  // [0, 1]).
  double parameter = 0.5;

  // "AVG(bmi)" / "Q50(bmi)"-style result column name.
  std::string OutputName() const;

  void Serialize(Writer* w) const;
  static Result<AggregateSpec> Deserialize(Reader* r);

  bool operator==(const AggregateSpec& other) const {
    return fn == other.fn && column == other.column &&
           parameter == other.parameter;
  }
};

// Algebraic partial state covering every supported function: merging states
// from disjoint partitions then finalizing equals computing on the union.
class AggregateState {
 public:
  AggregateState() = default;

  // Accumulates one input value. NULLs are ignored (SQL semantics);
  // `count_star` additionally counts NULLs (for COUNT(*)).
  Status Add(const data::Value& v, bool count_star = false);

  // Accumulates one value into the distinct-count sketch (for
  // kCountDistinct). NULLs are ignored.
  void AddDistinct(const data::Value& v);

  // Accumulates one numeric value into the quantile sketch (for
  // kQuantile). NULLs are ignored; non-numeric values fail.
  Status AddQuantile(const data::Value& v);

  void Merge(const AggregateState& other);

  // NULL result when no value was observed (except COUNT -> 0).
  // kQuantile needs the rank from the spec; the fn-only overload uses the
  // median.
  data::Value Finalize(AggregateFunction fn) const;
  data::Value Finalize(const AggregateSpec& spec) const;

  uint64_t count() const { return count_; }

  void Serialize(Writer* w) const;
  static Result<AggregateState> Deserialize(Reader* r);

  bool operator==(const AggregateState& other) const;

 private:
  uint64_t count_ = 0;    // non-null values (or all rows for COUNT(*))
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool has_numeric_ = false;
  std::optional<HyperLogLog> hll_;  // only materialized for kCountDistinct
  std::optional<QuantileSketch> sketch_;  // only for kQuantile
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_AGGREGATE_H_
