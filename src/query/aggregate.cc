#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

namespace edgelet::query {

std::string_view AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kVariance:
      return "VAR";
    case AggregateFunction::kStdDev:
      return "STDDEV";
    case AggregateFunction::kCountDistinct:
      return "COUNT_DISTINCT";
    case AggregateFunction::kQuantile:
      return "Q";
  }
  return "?";
}

bool AggregateYieldsInteger(AggregateFunction fn) {
  return fn == AggregateFunction::kCount ||
         fn == AggregateFunction::kCountDistinct;
}

std::string AggregateSpec::OutputName() const {
  if (fn == AggregateFunction::kQuantile) {
    return "Q" + std::to_string(static_cast<int>(std::lround(
               parameter * 100))) + "(" + column + ")";
  }
  return std::string(AggregateFunctionName(fn)) + "(" + column + ")";
}

void AggregateSpec::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(fn));
  w->PutString(column);
  w->PutDouble(parameter);
}

Result<AggregateSpec> AggregateSpec::Deserialize(Reader* r) {
  auto fn = r->GetU8();
  if (!fn.ok()) return fn.status();
  if (*fn > static_cast<uint8_t>(AggregateFunction::kQuantile)) {
    return Status::Corruption("bad aggregate function tag");
  }
  auto column = r->GetString();
  if (!column.ok()) return column.status();
  auto parameter = r->GetDouble();
  if (!parameter.ok()) return parameter.status();
  return AggregateSpec{static_cast<AggregateFunction>(*fn),
                       std::move(*column), *parameter};
}

Status AggregateState::Add(const data::Value& v, bool count_star) {
  if (v.is_null()) {
    if (count_star) ++count_;
    return Status::OK();
  }
  ++count_;
  if (v.type() == data::ValueType::kString) {
    // Strings only support COUNT; numeric accumulators stay untouched.
    return Status::OK();
  }
  auto d = v.ToDouble();
  if (!d.ok()) return d.status();
  if (!has_numeric_) {
    min_ = max_ = *d;
    has_numeric_ = true;
  } else {
    min_ = std::min(min_, *d);
    max_ = std::max(max_, *d);
  }
  sum_ += *d;
  sum_sq_ += *d * *d;
  return Status::OK();
}

void AggregateState::AddDistinct(const data::Value& v) {
  if (v.is_null()) return;
  if (!hll_.has_value()) hll_.emplace();
  hll_->AddHash(v.Hash());
  ++count_;
}

Status AggregateState::AddQuantile(const data::Value& v) {
  if (v.is_null()) return Status::OK();
  auto d = v.ToDouble();
  if (!d.ok()) return d.status();
  if (!sketch_.has_value()) sketch_.emplace();
  sketch_->Add(*d);
  ++count_;
  return Status::OK();
}

void AggregateState::Merge(const AggregateState& other) {
  count_ += other.count_;
  if (other.sketch_.has_value()) {
    if (!sketch_.has_value()) {
      sketch_ = other.sketch_;
    } else {
      (void)sketch_->Merge(*other.sketch_);
    }
  }
  if (other.hll_.has_value()) {
    if (!hll_.has_value()) {
      hll_ = other.hll_;
    } else {
      (void)hll_->Merge(*other.hll_);
    }
  }
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  if (other.has_numeric_) {
    if (!has_numeric_) {
      min_ = other.min_;
      max_ = other.max_;
      has_numeric_ = true;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
}

data::Value AggregateState::Finalize(const AggregateSpec& spec) const {
  if (spec.fn == AggregateFunction::kQuantile) {
    if (!sketch_.has_value()) return data::Value::Null();
    auto q = sketch_->Quantile(spec.parameter);
    if (!q.ok()) return data::Value::Null();
    return data::Value(*q);
  }
  return Finalize(spec.fn);
}

data::Value AggregateState::Finalize(AggregateFunction fn) const {
  switch (fn) {
    case AggregateFunction::kCount:
      return data::Value(static_cast<int64_t>(count_));
    case AggregateFunction::kSum:
      if (!has_numeric_) return data::Value::Null();
      return data::Value(sum_);
    case AggregateFunction::kMin:
      if (!has_numeric_) return data::Value::Null();
      return data::Value(min_);
    case AggregateFunction::kMax:
      if (!has_numeric_) return data::Value::Null();
      return data::Value(max_);
    case AggregateFunction::kAvg:
      if (!has_numeric_ || count_ == 0) return data::Value::Null();
      return data::Value(sum_ / static_cast<double>(count_));
    case AggregateFunction::kVariance: {
      if (!has_numeric_ || count_ == 0) return data::Value::Null();
      double mean = sum_ / static_cast<double>(count_);
      double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
      return data::Value(std::max(var, 0.0));
    }
    case AggregateFunction::kStdDev: {
      data::Value var = Finalize(AggregateFunction::kVariance);
      if (var.is_null()) return var;
      return data::Value(std::sqrt(var.AsDouble()));
    }
    case AggregateFunction::kCountDistinct: {
      if (!hll_.has_value()) return data::Value(int64_t{0});
      return data::Value(
          static_cast<int64_t>(std::llround(hll_->Estimate())));
    }
    case AggregateFunction::kQuantile: {
      if (!sketch_.has_value()) return data::Value::Null();
      auto q = sketch_->Quantile(0.5);
      if (!q.ok()) return data::Value::Null();
      return data::Value(*q);
    }
  }
  return data::Value::Null();
}

void AggregateState::Serialize(Writer* w) const {
  w->PutVarint(count_);
  w->PutDouble(sum_);
  w->PutDouble(sum_sq_);
  w->PutDouble(min_);
  w->PutDouble(max_);
  w->PutBool(has_numeric_);
  w->PutBool(hll_.has_value());
  if (hll_.has_value()) hll_->Serialize(w);
  w->PutBool(sketch_.has_value());
  if (sketch_.has_value()) sketch_->Serialize(w);
}

Result<AggregateState> AggregateState::Deserialize(Reader* r) {
  AggregateState s;
  auto count = r->GetVarint();
  if (!count.ok()) return count.status();
  s.count_ = *count;
  auto sum = r->GetDouble();
  if (!sum.ok()) return sum.status();
  s.sum_ = *sum;
  auto sum_sq = r->GetDouble();
  if (!sum_sq.ok()) return sum_sq.status();
  s.sum_sq_ = *sum_sq;
  auto min = r->GetDouble();
  if (!min.ok()) return min.status();
  s.min_ = *min;
  auto max = r->GetDouble();
  if (!max.ok()) return max.status();
  s.max_ = *max;
  auto has = r->GetBool();
  if (!has.ok()) return has.status();
  s.has_numeric_ = *has;
  auto has_hll = r->GetBool();
  if (!has_hll.ok()) return has_hll.status();
  if (*has_hll) {
    auto hll = HyperLogLog::Deserialize(r);
    if (!hll.ok()) return hll.status();
    s.hll_ = std::move(*hll);
  }
  auto has_sketch = r->GetBool();
  if (!has_sketch.ok()) return has_sketch.status();
  if (*has_sketch) {
    auto sketch = QuantileSketch::Deserialize(r);
    if (!sketch.ok()) return sketch.status();
    s.sketch_ = std::move(*sketch);
  }
  return s;
}

bool AggregateState::operator==(const AggregateState& other) const {
  return count_ == other.count_ && sum_ == other.sum_ &&
         sum_sq_ == other.sum_sq_ && min_ == other.min_ &&
         max_ == other.max_ && has_numeric_ == other.has_numeric_ &&
         hll_ == other.hll_ && sketch_ == other.sketch_;
}

}  // namespace edgelet::query
