#include "query/hll.h"

#include <algorithm>
#include <cmath>

namespace edgelet::query {

namespace {

double AlphaM(size_t m) {
  // Bias-correction constants from the HLL paper.
  if (m == 16) return 0.673;
  if (m == 32) return 0.697;
  if (m == 64) return 0.709;
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
}

}  // namespace

HyperLogLog::HyperLogLog(int precision)
    : precision_(std::clamp(precision, 4, 16)),
      registers_(static_cast<size_t>(1) << precision_, 0) {}

void HyperLogLog::AddHash(uint64_t hash) {
  // Top `precision_` bits select the register; the rank of the first set
  // bit of the remainder is the observation.
  const size_t index = static_cast<size_t>(hash >> (64 - precision_));
  const uint64_t rest = hash << precision_;
  // rank = leading zeros of the remaining (64 - p) bits, + 1; a zero
  // remainder yields the maximum rank.
  uint8_t rank;
  if (rest == 0) {
    rank = static_cast<uint8_t>(64 - precision_ + 1);
  } else {
    rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  }
  registers_[index] = std::max(registers_[index], rank);
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (precision_ != other.precision_) {
    return Status::InvalidArgument("HLL precision mismatch: " +
                                   std::to_string(precision_) + " vs " +
                                   std::to_string(other.precision_));
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double raw = AlphaM(registers_.size()) * m * m / sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(precision_));
  // Run-length encode: sketches from small partitions are mostly zero.
  size_t i = 0;
  while (i < registers_.size()) {
    uint8_t value = registers_[i];
    size_t run = 1;
    while (i + run < registers_.size() && registers_[i + run] == value) {
      ++run;
    }
    w->PutU8(value);
    w->PutVarint(run);
    i += run;
  }
}

Result<HyperLogLog> HyperLogLog::Deserialize(Reader* r) {
  auto precision = r->GetU8();
  if (!precision.ok()) return precision.status();
  if (*precision < 4 || *precision > 16) {
    return Status::Corruption("bad HLL precision");
  }
  HyperLogLog out(*precision);
  size_t i = 0;
  while (i < out.registers_.size()) {
    auto value = r->GetU8();
    if (!value.ok()) return value.status();
    auto run = r->GetVarint();
    if (!run.ok()) return run.status();
    if (*run == 0 || i + *run > out.registers_.size()) {
      return Status::Corruption("bad HLL run length");
    }
    for (uint64_t j = 0; j < *run; ++j) out.registers_[i + j] = *value;
    i += *run;
  }
  return out;
}

}  // namespace edgelet::query
