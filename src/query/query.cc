#include "query/query.h"

#include <algorithm>

namespace edgelet::query {

namespace {

void AppendUnique(std::vector<std::string>* out, const std::string& s) {
  if (std::find(out->begin(), out->end(), s) == out->end()) {
    out->push_back(s);
  }
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGroupingSets:
      return "GROUPING_SETS";
    case QueryKind::kKMeans:
      return "KMEANS";
  }
  return "?";
}

void KMeansQuerySpec::Serialize(Writer* w) const {
  w->PutVarintSigned(k);
  w->PutVarint(features.size());
  for (const auto& f : features) w->PutString(f);
  w->PutVarintSigned(local_iterations);
  w->PutVarintSigned(batch_size);
  w->PutVarint(cluster_aggregates.size());
  for (const auto& a : cluster_aggregates) a.Serialize(w);
}

Result<KMeansQuerySpec> KMeansQuerySpec::Deserialize(Reader* r) {
  KMeansQuerySpec spec;
  auto k = r->GetVarintSigned();
  if (!k.ok()) return k.status();
  spec.k = static_cast<int>(*k);
  auto nf = r->GetVarint();
  if (!nf.ok()) return nf.status();
  spec.features.clear();
  for (uint64_t i = 0; i < *nf; ++i) {
    auto f = r->GetString();
    if (!f.ok()) return f.status();
    spec.features.push_back(std::move(*f));
  }
  auto li = r->GetVarintSigned();
  if (!li.ok()) return li.status();
  spec.local_iterations = static_cast<int>(*li);
  auto bs = r->GetVarintSigned();
  if (!bs.ok()) return bs.status();
  spec.batch_size = *bs;
  auto na = r->GetVarint();
  if (!na.ok()) return na.status();
  for (uint64_t i = 0; i < *na; ++i) {
    auto a = AggregateSpec::Deserialize(r);
    if (!a.ok()) return a.status();
    spec.cluster_aggregates.push_back(std::move(*a));
  }
  return spec;
}

std::vector<std::string> Query::RequiredColumns() const {
  std::vector<std::string> out;
  if (kind == QueryKind::kGroupingSets) {
    for (const auto& c : grouping_sets.AllColumns()) AppendUnique(&out, c);
  } else {
    for (const auto& f : kmeans.features) AppendUnique(&out, f);
    for (const auto& a : kmeans.cluster_aggregates) {
      if (a.column != "*") AppendUnique(&out, a.column);
    }
  }
  return out;
}

Status Query::Validate(const data::Schema& schema) const {
  if (snapshot_cardinality == 0) {
    return Status::InvalidArgument("snapshot_cardinality must be > 0");
  }
  for (const auto& p : predicates) {
    if (!schema.Contains(p.column)) {
      return Status::InvalidArgument("predicate column not in schema: " +
                                     p.column);
    }
  }
  for (const auto& c : RequiredColumns()) {
    if (!schema.Contains(c)) {
      return Status::InvalidArgument("query column not in schema: " + c);
    }
  }
  if (kind == QueryKind::kGroupingSets) {
    if (grouping_sets.sets.empty()) {
      return Status::InvalidArgument("GROUPING SETS query needs >= 1 set");
    }
    if (grouping_sets.aggregates.empty()) {
      return Status::InvalidArgument("GROUPING SETS query needs aggregates");
    }
  } else {
    if (kmeans.k <= 0) {
      return Status::InvalidArgument("K-Means k must be > 0");
    }
    if (kmeans.features.empty()) {
      return Status::InvalidArgument("K-Means needs >= 1 feature");
    }
    if (kmeans.local_iterations <= 0) {
      return Status::InvalidArgument("K-Means local_iterations must be > 0");
    }
    for (const auto& f : kmeans.features) {
      auto idx = schema.IndexOf(f);
      if (!idx.ok()) return idx.status();
      data::ValueType t = schema.column(*idx).type;
      if (t != data::ValueType::kInt64 && t != data::ValueType::kDouble) {
        return Status::InvalidArgument("K-Means feature not numeric: " + f);
      }
    }
  }
  return Status::OK();
}

void Query::Serialize(Writer* w) const {
  w->PutU64(query_id);
  w->PutString(name);
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutVarint(predicates.size());
  for (const auto& p : predicates) p.Serialize(w);
  w->PutU64(snapshot_cardinality);
  grouping_sets.Serialize(w);
  kmeans.Serialize(w);
}

Result<Query> Query::Deserialize(Reader* r) {
  Query q;
  auto id = r->GetU64();
  if (!id.ok()) return id.status();
  q.query_id = *id;
  auto name = r->GetString();
  if (!name.ok()) return name.status();
  q.name = std::move(*name);
  auto kind = r->GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<uint8_t>(QueryKind::kKMeans)) {
    return Status::Corruption("bad query kind tag");
  }
  q.kind = static_cast<QueryKind>(*kind);
  auto np = r->GetVarint();
  if (!np.ok()) return np.status();
  for (uint64_t i = 0; i < *np; ++i) {
    auto p = Predicate::Deserialize(r);
    if (!p.ok()) return p.status();
    q.predicates.push_back(std::move(*p));
  }
  auto c = r->GetU64();
  if (!c.ok()) return c.status();
  q.snapshot_cardinality = *c;
  auto gs = GroupingSetsSpec::Deserialize(r);
  if (!gs.ok()) return gs.status();
  q.grouping_sets = std::move(*gs);
  auto km = KMeansQuerySpec::Deserialize(r);
  if (!km.ok()) return km.status();
  q.kmeans = std::move(*km);
  return q;
}

}  // namespace edgelet::query
