#include "query/groupby.h"

namespace edgelet::query {

namespace {

void SerializeKey(const data::Tuple& key, Writer* w) {
  w->Reset();
  for (const auto& v : key) v.Serialize(w);
}

}  // namespace

void GroupBySpec::Serialize(Writer* w) const {
  w->PutVarint(keys.size());
  for (const auto& k : keys) w->PutString(k);
  w->PutVarint(aggregates.size());
  for (const auto& a : aggregates) a.Serialize(w);
}

Result<GroupBySpec> GroupBySpec::Deserialize(Reader* r) {
  GroupBySpec spec;
  auto nk = r->GetVarint();
  if (!nk.ok()) return nk.status();
  for (uint64_t i = 0; i < *nk; ++i) {
    auto k = r->GetString();
    if (!k.ok()) return k.status();
    spec.keys.push_back(std::move(*k));
  }
  auto na = r->GetVarint();
  if (!na.ok()) return na.status();
  for (uint64_t i = 0; i < *na; ++i) {
    auto a = AggregateSpec::Deserialize(r);
    if (!a.ok()) return a.status();
    spec.aggregates.push_back(std::move(*a));
  }
  return spec;
}

Result<GroupedAggregation> GroupedAggregation::Compute(
    const data::Table& table, const GroupBySpec& spec) {
  GroupedAggregation out(spec);
  const data::Schema& schema = table.schema();

  std::vector<size_t> key_idx;
  key_idx.reserve(spec.keys.size());
  for (const auto& k : spec.keys) {
    auto idx = schema.IndexOf(k);
    if (!idx.ok()) return idx.status();
    key_idx.push_back(*idx);
  }
  // -1 == COUNT(*): no input column.
  std::vector<int> agg_idx;
  agg_idx.reserve(spec.aggregates.size());
  for (const auto& a : spec.aggregates) {
    if (a.column == "*") {
      if (a.fn != AggregateFunction::kCount) {
        return Status::InvalidArgument("'*' only valid with COUNT");
      }
      agg_idx.push_back(-1);
    } else {
      auto idx = schema.IndexOf(a.column);
      if (!idx.ok()) return idx.status();
      agg_idx.push_back(static_cast<int>(*idx));
    }
  }

  // One reused key encoder for the whole scan; the map copies the bytes
  // only when the group is new.
  Writer key_writer;
  for (const auto& row : table.rows()) {
    data::Tuple key;
    key.reserve(key_idx.size());
    for (size_t i : key_idx) key.push_back(row[i]);
    SerializeKey(key, &key_writer);
    auto [it, inserted] = out.groups_.try_emplace(key_writer.data());
    if (inserted) {
      it->second.key = std::move(key);
      it->second.states.resize(spec.aggregates.size());
    }
    for (size_t a = 0; a < spec.aggregates.size(); ++a) {
      if (agg_idx[a] < 0) {
        EDGELET_RETURN_NOT_OK(
            it->second.states[a].Add(data::Value::Null(), /*count_star=*/true));
      } else if (spec.aggregates[a].fn == AggregateFunction::kCountDistinct) {
        it->second.states[a].AddDistinct(row[agg_idx[a]]);
      } else if (spec.aggregates[a].fn == AggregateFunction::kQuantile) {
        EDGELET_RETURN_NOT_OK(
            it->second.states[a].AddQuantile(row[agg_idx[a]]));
      } else {
        EDGELET_RETURN_NOT_OK(it->second.states[a].Add(row[agg_idx[a]]));
      }
    }
  }
  return out;
}

Status GroupedAggregation::Merge(const GroupedAggregation& other) {
  if (!(spec_ == other.spec_)) {
    // A default-constructed accumulator adopts the first spec it sees.
    if (spec_.keys.empty() && spec_.aggregates.empty() && groups_.empty()) {
      spec_ = other.spec_;
    } else {
      return Status::InvalidArgument("cannot merge: GroupBy specs differ");
    }
  }
  for (const auto& [key_bytes, group] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key_bytes);
    if (inserted) {
      it->second = group;
    } else {
      for (size_t i = 0; i < group.states.size(); ++i) {
        it->second.states[i].Merge(group.states[i]);
      }
    }
  }
  return Status::OK();
}

data::Table GroupedAggregation::Finalize() const {
  std::vector<data::Column> cols;
  for (const auto& k : spec_.keys) {
    // Key output type is whatever the values carry; declare as the type of
    // the first group's value (NULL-safe default: STRING).
    cols.push_back({k, data::ValueType::kString});
  }
  for (const auto& a : spec_.aggregates) {
    data::ValueType t = AggregateYieldsInteger(a.fn)
                            ? data::ValueType::kInt64
                            : data::ValueType::kDouble;
    cols.push_back({a.OutputName(), t});
  }
  // Fix key column types from observed data.
  if (!groups_.empty()) {
    const auto& first = groups_.begin()->second.key;
    for (size_t i = 0; i < first.size(); ++i) {
      if (!first[i].is_null()) cols[i].type = first[i].type();
    }
  }

  data::Table out{data::Schema(std::move(cols))};
  for (const auto& [key_bytes, group] : groups_) {
    data::Tuple row = group.key;
    for (size_t i = 0; i < spec_.aggregates.size(); ++i) {
      row.push_back(group.states[i].Finalize(spec_.aggregates[i]));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

void GroupedAggregation::Serialize(Writer* w) const {
  spec_.Serialize(w);
  w->PutVarint(groups_.size());
  for (const auto& [key_bytes, group] : groups_) {
    w->PutVarint(group.key.size());
    for (const auto& v : group.key) v.Serialize(w);
    w->PutVarint(group.states.size());
    for (const auto& s : group.states) s.Serialize(w);
  }
}

Result<GroupedAggregation> GroupedAggregation::Deserialize(Reader* r) {
  auto spec = GroupBySpec::Deserialize(r);
  if (!spec.ok()) return spec.status();
  GroupedAggregation out(std::move(*spec));
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  Writer key_writer;
  for (uint64_t g = 0; g < *n; ++g) {
    Group group;
    auto nk = r->GetVarint();
    if (!nk.ok()) return nk.status();
    for (uint64_t i = 0; i < *nk; ++i) {
      auto v = data::Value::Deserialize(r);
      if (!v.ok()) return v.status();
      group.key.push_back(std::move(*v));
    }
    auto ns = r->GetVarint();
    if (!ns.ok()) return ns.status();
    for (uint64_t i = 0; i < *ns; ++i) {
      auto s = AggregateState::Deserialize(r);
      if (!s.ok()) return s.status();
      group.states.push_back(std::move(*s));
    }
    SerializeKey(group.key, &key_writer);
    out.groups_.emplace(key_writer.data(), std::move(group));
  }
  return out;
}

}  // namespace edgelet::query
