#include "query/qep.h"

#include <cassert>
#include <sstream>

namespace edgelet::query {

std::string_view OperatorRoleName(OperatorRole role) {
  switch (role) {
    case OperatorRole::kDataContributor:
      return "DataContributor";
    case OperatorRole::kSnapshotBuilder:
      return "SnapshotBuilder";
    case OperatorRole::kComputer:
      return "Computer";
    case OperatorRole::kCombiner:
      return "Combiner";
    case OperatorRole::kCombinerBackup:
      return "CombinerBackup";
    case OperatorRole::kQuerier:
      return "Querier";
  }
  return "?";
}

uint64_t Qep::AddVertex(OperatorVertex v) {
  v.id = vertices_.size();
  vertices_.push_back(std::move(v));
  return vertices_.back().id;
}

const OperatorVertex& Qep::vertex(uint64_t id) const {
  assert(id < vertices_.size());
  return vertices_[id];
}

OperatorVertex& Qep::mutable_vertex(uint64_t id) {
  assert(id < vertices_.size());
  return vertices_[id];
}

std::vector<const OperatorVertex*> Qep::ByRole(OperatorRole role) const {
  std::vector<const OperatorVertex*> out;
  for (const auto& v : vertices_) {
    if (v.role == role) out.push_back(&v);
  }
  return out;
}

size_t Qep::CountByRole(OperatorRole role) const {
  return ByRole(role).size();
}

Status Qep::AddEdge(uint64_t from, uint64_t to) {
  if (from >= vertices_.size() || to >= vertices_.size()) {
    return Status::OutOfRange("QEP edge endpoint out of range");
  }
  vertices_[from].downstream.push_back(to);
  return Status::OK();
}

Status Qep::Validate() const {
  if (n_ < 1 || m_ < 0) {
    return Status::FailedPrecondition("bad partitioning: n=" +
                                      std::to_string(n_) + " m=" +
                                      std::to_string(m_));
  }
  size_t queriers = 0, combiners = 0;
  for (const auto& v : vertices_) {
    for (uint64_t d : v.downstream) {
      if (d >= vertices_.size()) {
        return Status::FailedPrecondition("dangling QEP edge");
      }
    }
    switch (v.role) {
      case OperatorRole::kQuerier:
        ++queriers;
        if (!v.downstream.empty()) {
          return Status::FailedPrecondition("querier must be terminal");
        }
        break;
      case OperatorRole::kCombiner:
        ++combiners;
        break;
      case OperatorRole::kSnapshotBuilder:
      case OperatorRole::kComputer:
        if (v.partition < 0 || v.partition >= total_partitions()) {
          return Status::FailedPrecondition(
              "partition index out of range on vertex " +
              std::to_string(v.id));
        }
        if (v.downstream.empty()) {
          return Status::FailedPrecondition(
              "data processor with no downstream: vertex " +
              std::to_string(v.id));
        }
        break;
      default:
        break;
    }
  }
  if (queriers != 1) {
    return Status::FailedPrecondition("QEP needs exactly one querier");
  }
  if (combiners != 1) {
    return Status::FailedPrecondition("QEP needs exactly one combiner");
  }
  return Status::OK();
}

std::string Qep::ToString() const {
  std::ostringstream out;
  out << "QEP: n=" << n_ << " (+m=" << m_ << " overcollected)"
      << ", vertical groups=" << num_vertical_groups_ << "\n";
  auto print_role = [&](OperatorRole role) {
    auto vs = ByRole(role);
    if (vs.empty()) return;
    out << "  " << OperatorRoleName(role) << " x" << vs.size() << "\n";
    size_t shown = 0;
    for (const auto* v : vs) {
      if (role == OperatorRole::kDataContributor && vs.size() > 4 &&
          shown >= 3) {
        out << "    ... (" << vs.size() - shown << " more)\n";
        break;
      }
      out << "    [" << v->id << "]";
      if (v->partition >= 0) out << " part=" << v->partition;
      if (v->vgroup >= 0) out << " vgroup=" << v->vgroup;
      if (!v->attributes.empty()) {
        out << " attrs={";
        for (size_t i = 0; i < v->attributes.size(); ++i) {
          if (i) out << ",";
          out << v->attributes[i];
        }
        out << "}";
      }
      if (!v->downstream.empty()) {
        out << " ->";
        for (uint64_t d : v->downstream) out << " " << d;
      }
      if (v->device != 0) out << " @dev" << v->device;
      out << "\n";
      ++shown;
    }
  };
  print_role(OperatorRole::kDataContributor);
  print_role(OperatorRole::kSnapshotBuilder);
  print_role(OperatorRole::kComputer);
  print_role(OperatorRole::kCombiner);
  print_role(OperatorRole::kCombinerBackup);
  print_role(OperatorRole::kQuerier);
  return out.str();
}

}  // namespace edgelet::query
