#ifndef EDGELET_QUERY_HLL_H_
#define EDGELET_QUERY_HLL_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace edgelet::query {

// HyperLogLog cardinality sketch (Flajolet et al.), with the linear-
// counting small-range correction. COUNT(DISTINCT col) is not algebraic
// over partitions with plain counters, but the sketch IS mergeable, which
// makes approximate distinct counting Overcollection-compatible — exactly
// the class of operator the Edgelet execution strategies support.
class HyperLogLog {
 public:
  // 2^precision registers; precision in [4, 16]. The default (10) keeps a
  // sketch at 1 KiB, small enough for edgelet partial-result messages.
  explicit HyperLogLog(int precision = 10);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  // Adds an element by its 64-bit hash (callers hash Values via
  // Value::Hash()).
  void AddHash(uint64_t hash);

  // Union of the two sketches (register-wise max); precisions must match.
  Status Merge(const HyperLogLog& other);

  // Estimated number of distinct elements added.
  double Estimate() const;

  void Serialize(Writer* w) const;
  static Result<HyperLogLog> Deserialize(Reader* r);

  bool operator==(const HyperLogLog& other) const {
    return precision_ == other.precision_ && registers_ == other.registers_;
  }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_HLL_H_
