#ifndef EDGELET_QUERY_QUANTILE_H_
#define EDGELET_QUERY_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"

namespace edgelet::query {

// Mergeable quantile sketch (simplified KLL: per-level compactors of width
// k, halving with a random offset on overflow). Exact quantiles are not
// distributive; the sketch is mergeable with bounded rank error
// O(1/k * levels), which is what makes QUANTILE aggregation compatible with
// the Overcollection strategy. Like K-Means, quantile answers are
// approximate — the Validity property holds up to the sketch's rank error.
class QuantileSketch {
 public:
  explicit QuantileSketch(size_t k = 128);

  // Number of items fed into the sketch.
  uint64_t count() const { return count_; }
  size_t compactor_width() const { return k_; }

  void Add(double value);

  // Union; compactor widths must match.
  Status Merge(const QuantileSketch& other);

  // Value at rank q*count, q in [0, 1]. Fails on an empty sketch.
  Result<double> Quantile(double q) const;

  // Retained items across all levels (memory/wire footprint driver).
  size_t RetainedItems() const;

  void Serialize(Writer* w) const;
  static Result<QuantileSketch> Deserialize(Reader* r);

  bool operator==(const QuantileSketch& other) const {
    return k_ == other.k_ && count_ == other.count_ &&
           levels_ == other.levels_;
  }

 private:
  void CompactLevel(size_t h);
  void CompactIfNeeded();

  size_t k_;
  uint64_t count_ = 0;
  // levels_[h] holds items of weight 2^h, unsorted between compactions.
  std::vector<std::vector<double>> levels_;
  // Coin flips for compaction offsets; seeded deterministically so a given
  // insertion order reproduces bit-for-bit.
  Rng rng_;
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_QUANTILE_H_
