#include "query/quantile.h"

#include <algorithm>
#include <cmath>

namespace edgelet::query {

QuantileSketch::QuantileSketch(size_t k)
    : k_(std::max<size_t>(k, 8)), levels_(1), rng_(0x5EEDBA5E ^ k_) {}

void QuantileSketch::Add(double value) {
  levels_[0].push_back(value);
  ++count_;
  CompactIfNeeded();
}

void QuantileSketch::CompactLevel(size_t h) {
  if (h + 1 >= levels_.size()) levels_.resize(h + 2);
  auto& level = levels_[h];
  std::sort(level.begin(), level.end());
  // Keep every other item, starting at a random parity: survivors carry
  // double weight one level up.
  size_t offset = rng_.NextBelow(2);
  for (size_t i = offset; i < level.size(); i += 2) {
    levels_[h + 1].push_back(level[i]);
  }
  level.clear();
}

void QuantileSketch::CompactIfNeeded() {
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() >= k_) CompactLevel(h);
  }
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (k_ != other.k_) {
    return Status::InvalidArgument("quantile sketch width mismatch");
  }
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  CompactIfNeeded();
  return Status::OK();
}

Result<double> QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return Status::FailedPrecondition("empty sketch");
  q = std::clamp(q, 0.0, 1.0);

  std::vector<std::pair<double, uint64_t>> weighted;  // (value, weight)
  weighted.reserve(RetainedItems());
  uint64_t total_weight = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    uint64_t w = static_cast<uint64_t>(1) << h;
    for (double v : levels_[h]) {
      weighted.emplace_back(v, w);
      total_weight += w;
    }
  }
  if (weighted.empty()) return Status::Internal("sketch lost all items");
  std::sort(weighted.begin(), weighted.end());

  // Target rank over the retained weight (which approximates count_).
  double target = q * static_cast<double>(total_weight);
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (static_cast<double>(cumulative) >= target) return value;
  }
  return weighted.back().first;
}

size_t QuantileSketch::RetainedItems() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

void QuantileSketch::Serialize(Writer* w) const {
  w->PutVarint(k_);
  w->PutVarint(count_);
  w->PutVarint(levels_.size());
  for (const auto& level : levels_) {
    w->PutVarint(level.size());
    for (double v : level) w->PutDouble(v);
  }
}

Result<QuantileSketch> QuantileSketch::Deserialize(Reader* r) {
  auto k = r->GetVarint();
  if (!k.ok()) return k.status();
  QuantileSketch out(*k);
  auto count = r->GetVarint();
  if (!count.ok()) return count.status();
  out.count_ = *count;
  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  if (*num_levels == 0 || *num_levels > 64) {
    return Status::Corruption("bad quantile sketch level count");
  }
  out.levels_.assign(*num_levels, {});
  for (uint64_t h = 0; h < *num_levels; ++h) {
    auto n = r->GetVarint();
    if (!n.ok()) return n.status();
    out.levels_[h].reserve(*n);
    for (uint64_t i = 0; i < *n; ++i) {
      auto v = r->GetDouble();
      if (!v.ok()) return v.status();
      out.levels_[h].push_back(*v);
    }
  }
  return out;
}

}  // namespace edgelet::query
