#ifndef EDGELET_QUERY_PREDICATE_H_
#define EDGELET_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace edgelet::query {

enum class CompareOp : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

std::string_view CompareOpSymbol(CompareOp op);

// A single comparison against a literal (e.g. age > 65). Contributor
// devices evaluate predicates locally inside their enclave, so only
// qualifying rows ever leave the device.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  data::Value literal;

  // NULL never satisfies any comparison (SQL three-valued logic collapsed
  // to false).
  Result<bool> Evaluate(const data::Tuple& row,
                        const data::Schema& schema) const;

  std::string ToString() const;

  void Serialize(Writer* w) const;
  static Result<Predicate> Deserialize(Reader* r);
};

// Conjunction of predicates applied to a table.
Result<data::Table> ApplyPredicates(const data::Table& table,
                                    const std::vector<Predicate>& predicates);

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_PREDICATE_H_
