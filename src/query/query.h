#ifndef EDGELET_QUERY_QUERY_H_
#define EDGELET_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/grouping_sets.h"
#include "query/predicate.h"

namespace edgelet::query {

enum class QueryKind : uint8_t {
  // Demo query (i): GROUPING SETS over the snapshot.
  kGroupingSets = 0,
  // Demo query (ii): K-Means over clinical features, followed by a Group-By
  // on the resulting clusters.
  kKMeans = 1,
};

std::string_view QueryKindName(QueryKind kind);

// K-Means parameters carried by the query. The iterative execution itself
// (heartbeats, knowledge exchange) lives in exec/; the numerical kernel in
// ml/.
struct KMeansQuerySpec {
  int k = 4;
  std::vector<std::string> features;
  // Lloyd iterations run in each local-convergence phase between two
  // heartbeats (paper §2.2: phase 1).
  int local_iterations = 2;
  // When > 0, each local-convergence phase resamples a mini-batch of this
  // size instead of sweeping the whole partition (Mini-batch K-Means —
  // the paper notes resampling per iteration "sometimes even produces
  // better accuracy").
  int64_t batch_size = 0;
  // Aggregates reported per final cluster (the "Group By on the resulting
  // clusters" of demo query ii). Always includes COUNT implicitly.
  std::vector<AggregateSpec> cluster_aggregates;

  void Serialize(Writer* w) const;
  static Result<KMeansQuerySpec> Deserialize(Reader* r);
  bool operator==(const KMeansQuerySpec& other) const {
    return k == other.k && features == other.features &&
           local_iterations == other.local_iterations &&
           batch_size == other.batch_size &&
           cluster_aggregates == other.cluster_aggregates;
  }
};

// A complete Edgelet query: what Santé Publique France (the Querier)
// submits. Contributor-side selection + snapshot cardinality + the
// processing to run.
struct Query {
  uint64_t query_id = 1;
  std::string name;
  QueryKind kind = QueryKind::kGroupingSets;

  // Contributor-side selection (e.g. age > 65), evaluated inside each
  // contributor's enclave.
  std::vector<Predicate> predicates;

  // Snapshot cardinality C: how many qualifying individuals the result
  // must represent.
  uint64_t snapshot_cardinality = 1000;

  GroupingSetsSpec grouping_sets;  // when kind == kGroupingSets
  KMeansQuerySpec kmeans;          // when kind == kKMeans

  // Every data column the processing touches (excluding predicate-only
  // columns, which never leave the contributor).
  std::vector<std::string> RequiredColumns() const;

  // Structural validation against the shared schema.
  Status Validate(const data::Schema& schema) const;

  void Serialize(Writer* w) const;
  static Result<Query> Deserialize(Reader* r);
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_QUERY_H_
