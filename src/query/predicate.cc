#include "query/predicate.h"

namespace edgelet::query {

std::string_view CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<bool> Predicate::Evaluate(const data::Tuple& row,
                                 const data::Schema& schema) const {
  auto idx = schema.IndexOf(column);
  if (!idx.ok()) return idx.status();
  const data::Value& v = row[*idx];
  if (v.is_null() || literal.is_null()) return false;
  // Comparable types: numeric with numeric, string with string.
  bool v_str = v.type() == data::ValueType::kString;
  bool l_str = literal.type() == data::ValueType::kString;
  if (v_str != l_str) {
    return Status::InvalidArgument("type mismatch in predicate on '" +
                                   column + "'");
  }
  bool lt = v < literal;
  bool gt = literal < v;
  bool eq = !lt && !gt;
  switch (op) {
    case CompareOp::kEq:
      return eq;
    case CompareOp::kNe:
      return !eq;
    case CompareOp::kLt:
      return lt;
    case CompareOp::kLe:
      return lt || eq;
    case CompareOp::kGt:
      return gt;
    case CompareOp::kGe:
      return gt || eq;
  }
  return Status::Internal("bad compare op");
}

std::string Predicate::ToString() const {
  return column + " " + std::string(CompareOpSymbol(op)) + " " +
         (literal.type() == data::ValueType::kString
              ? "'" + literal.ToString() + "'"
              : literal.ToString());
}

void Predicate::Serialize(Writer* w) const {
  w->PutString(column);
  w->PutU8(static_cast<uint8_t>(op));
  literal.Serialize(w);
}

Result<Predicate> Predicate::Deserialize(Reader* r) {
  Predicate p;
  auto column = r->GetString();
  if (!column.ok()) return column.status();
  p.column = std::move(*column);
  auto op = r->GetU8();
  if (!op.ok()) return op.status();
  if (*op > static_cast<uint8_t>(CompareOp::kGe)) {
    return Status::Corruption("bad compare op tag");
  }
  p.op = static_cast<CompareOp>(*op);
  auto lit = data::Value::Deserialize(r);
  if (!lit.ok()) return lit.status();
  p.literal = std::move(*lit);
  return p;
}

Result<data::Table> ApplyPredicates(const data::Table& table,
                                    const std::vector<Predicate>& predicates) {
  data::Table out(table.schema());
  for (const auto& row : table.rows()) {
    bool keep = true;
    for (const auto& p : predicates) {
      auto r = p.Evaluate(row, table.schema());
      if (!r.ok()) return r.status();
      if (!*r) {
        keep = false;
        break;
      }
    }
    if (keep) out.AppendUnchecked(row);
  }
  return out;
}

}  // namespace edgelet::query
