#ifndef EDGELET_QUERY_QEP_H_
#define EDGELET_QUERY_QEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace edgelet::query {

// Roles of the operators in an Edgelet Query Execution Plan (paper §2.1).
enum class OperatorRole : uint8_t {
  kDataContributor = 0,  // one per contributing edgelet (leaves)
  kSnapshotBuilder = 1,  // collects a representative partition of size C/n
  kComputer = 2,         // computes on one (partition, vertical-group) slice
  kCombiner = 3,         // Computing Combiner: merges partials
  kCombinerBackup = 4,   // Active Backup of the combiner (runs in parallel)
  kQuerier = 5,          // receives the final result
};

std::string_view OperatorRoleName(OperatorRole role);

// A vertex of the QEP: an operator instance, its data slice, the
// attributes it sees in cleartext, and its dataflow edges.
struct OperatorVertex {
  uint64_t id = 0;
  OperatorRole role = OperatorRole::kDataContributor;
  // Horizontal partition index in [0, n+m) for builders/computers; -1
  // otherwise.
  int partition = -1;
  // Vertical group index for computers; -1 when not vertically partitioned.
  int vgroup = -1;
  // Attributes this operator decrypts (exposure accounting input).
  std::vector<std::string> attributes;
  // Grouping-set indices this computer evaluates (GROUPING SETS queries).
  std::vector<size_t> set_indices;
  // Ids of vertices receiving this operator's output.
  std::vector<uint64_t> downstream;
  // Device (net::NodeId) hosting the operator; 0 until assignment.
  uint64_t device = 0;
};

// Query Execution Plan: a DAG of operators. Built by the planner
// (core/planner.h) from the query + privacy + resilience configuration;
// rendered shapes correspond to the paper's Figures 2 and 3.
class Qep {
 public:
  Qep() = default;

  uint64_t AddVertex(OperatorVertex v);

  size_t num_vertices() const { return vertices_.size(); }
  const OperatorVertex& vertex(uint64_t id) const;
  OperatorVertex& mutable_vertex(uint64_t id);
  const std::vector<OperatorVertex>& vertices() const { return vertices_; }

  std::vector<const OperatorVertex*> ByRole(OperatorRole role) const;
  size_t CountByRole(OperatorRole role) const;

  // Horizontal partitioning parameters (Overcollection: n + m partitions).
  void SetPartitioning(int n, int m) {
    n_ = n;
    m_ = m;
  }
  int n() const { return n_; }
  int m() const { return m_; }
  int total_partitions() const { return n_ + m_; }

  void set_num_vertical_groups(int g) { num_vertical_groups_ = g; }
  int num_vertical_groups() const { return num_vertical_groups_; }

  Status AddEdge(uint64_t from, uint64_t to);

  // Sanity checks: edges resolve, partition indices in range, combiner
  // present, querier terminal.
  Status Validate() const;

  // Figure-2/3-style textual rendering of the plan.
  std::string ToString() const;

 private:
  std::vector<OperatorVertex> vertices_;  // vertices_[i].id == i
  int n_ = 1;
  int m_ = 0;
  int num_vertical_groups_ = 1;
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_QEP_H_
