#ifndef EDGELET_QUERY_GROUPING_SETS_H_
#define EDGELET_QUERY_GROUPING_SETS_H_

#include "query/groupby.h"

namespace edgelet::query {

// GROUP BY GROUPING SETS ((k1...), (k2...), ...): multiple Group-By clauses
// evaluated over the same snapshot in one query — the first demo query of
// the paper (§3.2 Part 1, citing the Snowflake GROUPING SETS semantics).
struct GroupingSetsSpec {
  std::vector<std::vector<std::string>> sets;
  std::vector<AggregateSpec> aggregates;

  // Union of all key columns, in first-appearance order.
  std::vector<std::string> AllKeyColumns() const;
  // Columns a computer needs to evaluate set `i`.
  std::vector<std::string> ColumnsForSet(size_t i) const;
  // All columns referenced anywhere (keys + aggregate inputs).
  std::vector<std::string> AllColumns() const;

  void Serialize(Writer* w) const;
  static Result<GroupingSetsSpec> Deserialize(Reader* r);
  bool operator==(const GroupingSetsSpec& other) const {
    return sets == other.sets && aggregates == other.aggregates;
  }
};

// Mergeable partial result: one GroupedAggregation per grouping set.
// A vertically-partitioned computer may hold only a subset of the sets; the
// combiner stitches per-set partials from all computers.
class GroupingSetsResult {
 public:
  GroupingSetsResult() = default;
  explicit GroupingSetsResult(GroupingSetsSpec spec);

  const GroupingSetsSpec& spec() const { return spec_; }

  // Computes every grouping set over `table`.
  static Result<GroupingSetsResult> Compute(const data::Table& table,
                                            const GroupingSetsSpec& spec);
  // Computes only the listed set indices (vertical partitioning: this
  // computer holds only the attributes those sets need).
  static Result<GroupingSetsResult> ComputeSets(
      const data::Table& table, const GroupingSetsSpec& spec,
      const std::vector<size_t>& set_indices);

  Status Merge(const GroupingSetsResult& other);

  bool HasSet(size_t i) const;
  const GroupedAggregation& set_result(size_t i) const {
    return per_set_[i];
  }

  // SQL GROUPING SETS output: one row block per set over the union of key
  // columns; keys absent from a set are NULL. A "grouping_set" INT64 column
  // disambiguates (stands in for the SQL GROUPING() function).
  Result<data::Table> Finalize() const;

  void Serialize(Writer* w) const;
  static Result<GroupingSetsResult> Deserialize(Reader* r);

 private:
  GroupingSetsSpec spec_;
  std::vector<GroupedAggregation> per_set_;
  std::vector<bool> present_;
};

}  // namespace edgelet::query

#endif  // EDGELET_QUERY_GROUPING_SETS_H_
