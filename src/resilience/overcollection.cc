#include "resilience/overcollection.h"

#include <cmath>

namespace edgelet::resilience {

namespace {

// std::lgamma writes the process-global `signgam`, which is a data race
// when trials run on the parallel bench harness; lgamma_r is reentrant.
// All arguments here are >= 1, so the sign is always +1 anyway.
double LogGamma(double x) {
  int sign = 0;
  return lgamma_r(x, &sign);
}

// log C(n, k) via lgamma.
double LogChoose(int n, int k) {
  return LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0);
}

}  // namespace

double ProbAtLeast(int need, int total, double p_survive) {
  if (need <= 0) return 1.0;
  if (need > total) return 0.0;
  if (p_survive <= 0.0) return 0.0;
  if (p_survive >= 1.0) return 1.0;
  double log_p = std::log(p_survive);
  double log_q = std::log1p(-p_survive);
  double prob = 0.0;
  for (int k = need; k <= total; ++k) {
    double log_term = LogChoose(total, k) + k * log_p + (total - k) * log_q;
    prob += std::exp(log_term);
  }
  return prob > 1.0 ? 1.0 : prob;
}

double PartitionSurvivalProbability(double failure_probability,
                                    int ops_per_partition) {
  double alive = 1.0 - failure_probability;
  if (alive <= 0.0) return 0.0;
  return std::pow(alive, ops_per_partition);
}

Result<int> MinOvercollection(int n, double failure_probability,
                              double reliability_target,
                              int ops_per_partition, int max_m) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (failure_probability < 0.0 || failure_probability >= 1.0) {
    return Status::InvalidArgument("failure_probability must be in [0,1)");
  }
  if (reliability_target <= 0.0 || reliability_target > 1.0) {
    return Status::InvalidArgument("reliability_target must be in (0,1]");
  }
  if (ops_per_partition < 1) {
    return Status::InvalidArgument("ops_per_partition must be >= 1");
  }
  double s = PartitionSurvivalProbability(failure_probability,
                                          ops_per_partition);
  if (s <= 0.0) {
    return Status::FailedPrecondition(
        "partitions cannot survive at this failure probability");
  }
  for (int m = 0; m <= max_m; ++m) {
    if (ProbAtLeast(n, n + m, s) >= reliability_target) return m;
  }
  return Status::FailedPrecondition(
      "reliability target unreachable within max_m=" + std::to_string(max_m));
}

Result<int> MinBackupReplicas(int num_operators, double failure_probability,
                              double reliability_target, int max_b) {
  if (num_operators < 1) {
    return Status::InvalidArgument("num_operators must be >= 1");
  }
  if (failure_probability < 0.0 || failure_probability >= 1.0) {
    return Status::InvalidArgument("failure_probability must be in [0,1)");
  }
  if (reliability_target <= 0.0 || reliability_target > 1.0) {
    return Status::InvalidArgument("reliability_target must be in (0,1]");
  }
  for (int b = 0; b <= max_b; ++b) {
    // Group survives unless primary and all b replicas fail.
    double group = 1.0 - std::pow(failure_probability, b + 1);
    double all = std::pow(group, num_operators);
    if (all >= reliability_target) return b;
  }
  return Status::FailedPrecondition(
      "reliability target unreachable within max_b=" + std::to_string(max_b));
}

}  // namespace edgelet::resilience
