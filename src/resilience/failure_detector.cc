#include "resilience/failure_detector.h"

#include <cmath>

namespace edgelet::resilience {

FailureDetector::FailureDetector(FailureDetectorConfig config)
    : config_(config) {
  if (config_.lease_period <= 0) config_.lease_period = kSecond;
  if (config_.miss_threshold < 1) config_.miss_threshold = 1;
  if (config_.suspicion_backoff < 1.0) config_.suspicion_backoff = 1.0;
  if (config_.max_backoff_steps < 0) config_.max_backoff_steps = 0;
  if (config_.jitter_fraction < 0) config_.jitter_fraction = 0;
}

SimDuration FailureDetector::LeaseFor(const OpState& op) const {
  double mult = std::pow(config_.suspicion_backoff, op.backoff_steps);
  double base = static_cast<double>(config_.lease_period) *
                config_.miss_threshold * mult;
  return static_cast<SimDuration>(base);
}

void FailureDetector::DrawJitter(OpState* op) {
  if (config_.jitter_fraction <= 0) {
    op->jitter = 0;
    return;
  }
  auto span = static_cast<uint64_t>(
      static_cast<double>(config_.lease_period) * config_.miss_threshold *
      config_.jitter_fraction);
  op->jitter =
      span > 0 ? static_cast<SimDuration>(op->rng.NextBelow(span + 1)) : 0;
}

void FailureDetector::Register(uint64_t op_id, SimTime now) {
  OpState op;
  op.last_heartbeat = now;
  op.rng = NodeRng(config_.seed, op_id);
  DrawJitter(&op);
  ops_[op_id] = std::move(op);
}

void FailureDetector::Deregister(uint64_t op_id) { ops_.erase(op_id); }

void FailureDetector::Heartbeat(uint64_t op_id, SimTime now) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  OpState& op = it->second;
  if (op.suspected) {
    // The operator was alive after all: widen its lease so it stops
    // flapping in and out of suspicion.
    op.suspected = false;
    ++false_suspicions_;
    if (op.backoff_steps < config_.max_backoff_steps) ++op.backoff_steps;
  }
  op.last_heartbeat = now;
  DrawJitter(&op);
}

std::vector<uint64_t> FailureDetector::Scan(SimTime now) {
  std::vector<uint64_t> newly;
  for (auto& [id, op] : ops_) {
    if (op.suspected) continue;
    if (now > op.last_heartbeat + LeaseFor(op) + op.jitter) {
      op.suspected = true;
      ++detections_;
      newly.push_back(id);
    }
  }
  return newly;
}

bool FailureDetector::IsRegistered(uint64_t op_id) const {
  return ops_.count(op_id) != 0;
}

bool FailureDetector::IsSuspected(uint64_t op_id) const {
  auto it = ops_.find(op_id);
  return it != ops_.end() && it->second.suspected;
}

SimTime FailureDetector::SuspicionDeadline(uint64_t op_id) const {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return kSimTimeNever;
  return it->second.last_heartbeat + LeaseFor(it->second) + it->second.jitter;
}

size_t FailureDetector::suspected_count() const {
  size_t count = 0;
  for (const auto& [id, op] : ops_) {
    if (op.suspected) ++count;
  }
  return count;
}

}  // namespace edgelet::resilience
