#ifndef EDGELET_RESILIENCE_FAILURE_DETECTOR_H_
#define EDGELET_RESILIENCE_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace edgelet::resilience {

// Knobs of the heartbeat/lease failure detector ("Dependability in Edge
// Computing": online detection + reconfiguration instead of static
// over-provisioning alone).
struct FailureDetectorConfig {
  // Expected heartbeat cadence of a monitored operator.
  SimDuration lease_period = 5 * kSecond;
  // Consecutive missed periods before an operator is suspected. The base
  // lease is lease_period * miss_threshold.
  int miss_threshold = 3;
  // A heartbeat from a suspected operator is a false suspicion: the
  // operator's lease widens by this factor (capped at max_backoff_steps
  // applications) so a slow-but-alive operator stops flapping.
  double suspicion_backoff = 2.0;
  int max_backoff_steps = 3;
  // Deterministic per-operator jitter added to the suspicion deadline,
  // as a fraction of the base lease. Drawn from the operator's own
  // counter-based NodeRng stream (seed, op_id), so the jitter a given
  // operator sees never depends on how other operators' draws interleave
  // — the detector replays bit-identically for any parsim shard count.
  double jitter_fraction = 0.1;
  uint64_t seed = 0;
};

// Deterministic lease-based failure detector. Pure state machine: the
// owner (the repair controller, running in its own simulation-event
// context) feeds it Register/Heartbeat/Scan calls in simulated time; it
// never touches the network or the engine itself.
//
// An operator is *suspected* once `now` passes its suspicion deadline:
//   last_heartbeat + lease_period * miss_threshold * backoff^steps + jitter.
// Suspicion is sticky until a heartbeat arrives (a false suspicion), which
// clears it and widens the lease.
class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig config);

  // Starts monitoring an operator; its lease opens at `now`. Re-registering
  // an existing op id resets its lease and suspicion state.
  void Register(uint64_t op_id, SimTime now);
  void Deregister(uint64_t op_id);

  // Records a heartbeat from an operator (ignored if unregistered). A
  // heartbeat from a currently-suspected operator counts as a false
  // suspicion: clears it and applies lease backoff.
  void Heartbeat(uint64_t op_id, SimTime now);

  // Returns the op ids whose lease newly expired as of `now`, in op-id
  // order (std::map iteration — deterministic). Each suspicion is reported
  // exactly once until cleared by a heartbeat.
  std::vector<uint64_t> Scan(SimTime now);

  bool IsRegistered(uint64_t op_id) const;
  bool IsSuspected(uint64_t op_id) const;
  // Suspicion deadline of a registered operator (kSimTimeNever if absent).
  SimTime SuspicionDeadline(uint64_t op_id) const;

  size_t monitored_count() const { return ops_.size(); }
  size_t suspected_count() const;
  // Total suspicion transitions (including ones later proven false).
  uint64_t detections() const { return detections_; }
  uint64_t false_suspicions() const { return false_suspicions_; }

 private:
  struct OpState {
    SimTime last_heartbeat = 0;
    int backoff_steps = 0;
    bool suspected = false;
    NodeRng rng;
    SimDuration jitter = 0;
  };

  SimDuration LeaseFor(const OpState& op) const;
  void DrawJitter(OpState* op);

  FailureDetectorConfig config_;
  std::map<uint64_t, OpState> ops_;
  uint64_t detections_ = 0;
  uint64_t false_suspicions_ = 0;
};

}  // namespace edgelet::resilience

#endif  // EDGELET_RESILIENCE_FAILURE_DETECTOR_H_
