#ifndef EDGELET_RESILIENCE_OVERCOLLECTION_H_
#define EDGELET_RESILIENCE_OVERCOLLECTION_H_

#include "common/status.h"

namespace edgelet::resilience {

// Probability that at least `need` of `total` independent participants
// survive, when each survives with probability `p_survive`. Computed in a
// numerically stable way (log-space binomial terms).
double ProbAtLeast(int need, int total, double p_survive);

// Resiliency knobs the querier sets (paper: "a query completes before a
// given deadline according to a given fault presumption rate").
struct ResilienceConfig {
  // Presumed probability that any single Data Processor edgelet fails (or
  // stays unreachable) during the query window.
  double failure_probability = 0.05;
  // Required probability that the query completes validly by the deadline.
  double reliability_target = 0.99;
};

// Minimum overcollection degree m such that
//   P[>= n of n+m partitions survive] >= target,
// each partition surviving iff its snapshot builder AND its computer(s)
// survive: per-partition survival = (1-p)^ops_per_partition.
// Fails if the target is unreachable within max_m.
Result<int> MinOvercollection(int n, double failure_probability,
                              double reliability_target,
                              int ops_per_partition = 2, int max_m = 4096);

// Backup strategy sizing: minimum number of replicas b (beyond the primary)
// per operator such that
//   P[every one of num_operators replica-groups keeps >= 1 survivor] =
//   (1 - p^(b+1))^num_operators >= target.
Result<int> MinBackupReplicas(int num_operators, double failure_probability,
                              double reliability_target, int max_b = 64);

// Probability that a single partition survives: all its ops alive.
double PartitionSurvivalProbability(double failure_probability,
                                    int ops_per_partition);

}  // namespace edgelet::resilience

#endif  // EDGELET_RESILIENCE_OVERCOLLECTION_H_
