#ifndef EDGELET_ML_METRICS_H_
#define EDGELET_ML_METRICS_H_

#include "ml/kmeans.h"

namespace edgelet::ml {

// Optimal assignment (Hungarian algorithm, O(n^3)) minimizing total cost of
// a square cost matrix. Returns column assigned to each row.
Result<std::vector<int>> HungarianAssign(const Matrix& cost);

// RMSE between two centroid sets under the optimal (Hungarian) matching —
// invariant to centroid index permutation, which differs between the
// distributed and the centralized run.
Result<double> MatchedCentroidRmse(const Matrix& a, const Matrix& b);

// Ratio distributed_inertia / centralized_inertia on the same point set
// (>= ~1.0; closer to 1 is better). The accuracy measure of the P2-KM
// experiment.
Result<double> InertiaRatio(const Matrix& points, const Matrix& distributed,
                            const Matrix& centralized);

// Clustering agreement between two assignments on the same points: the Rand
// index in [0, 1] (1 = identical partitions).
Result<double> RandIndex(const std::vector<int>& a, const std::vector<int>& b);

// Optimal index alignment of `incoming` centroids onto `base`:
// perm[i] = base index that incoming centroid i should take. Used by
// federated K-Means sync — computers initialize independently, so centroid
// indices are only comparable after matching.
Result<std::vector<int>> AlignCentroids(const Matrix& base,
                                        const Matrix& incoming);

// Applies AlignCentroids' permutation: out[perm[i]] = in[i].
KMeansKnowledge PermuteKnowledge(const KMeansKnowledge& in,
                                 const std::vector<int>& perm);

}  // namespace edgelet::ml

#endif  // EDGELET_ML_METRICS_H_
