#include "ml/metrics.h"

#include <cmath>
#include <limits>

namespace edgelet::ml {

Result<std::vector<int>> HungarianAssign(const Matrix& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) return Status::InvalidArgument("empty cost matrix");
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != n) {
      return Status::InvalidArgument("cost matrix must be square");
    }
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Kuhn-Munkres with potentials (1-indexed bookkeeping).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      int i0 = p[j0], j1 = -1;
      double delta = kInf;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] > 0) assignment[p[j] - 1] = j - 1;
  }
  return assignment;
}

Result<double> MatchedCentroidRmse(const Matrix& a, const Matrix& b) {
  if (a.size() != b.size() || a.empty()) {
    return Status::InvalidArgument("centroid sets must match in size");
  }
  const size_t k = a.size();
  Matrix cost(k, std::vector<double>(k));
  for (size_t i = 0; i < k; ++i) {
    if (a[i].size() != b[0].size()) {
      return Status::InvalidArgument("centroid dimension mismatch");
    }
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = SquaredDistance(a[i], b[j]);
    }
  }
  auto assignment = HungarianAssign(cost);
  if (!assignment.ok()) return assignment.status();
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    total += cost[i][(*assignment)[i]];
  }
  const double dims = static_cast<double>(k * a[0].size());
  return std::sqrt(total / dims);
}

Result<double> InertiaRatio(const Matrix& points, const Matrix& distributed,
                            const Matrix& centralized) {
  auto di = Inertia(points, distributed);
  if (!di.ok()) return di.status();
  auto ci = Inertia(points, centralized);
  if (!ci.ok()) return ci.status();
  if (*ci <= 0.0) {
    return (*di <= 0.0) ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return *di / *ci;
}

Result<std::vector<int>> AlignCentroids(const Matrix& base,
                                        const Matrix& incoming) {
  if (base.size() != incoming.size() || base.empty()) {
    return Status::InvalidArgument("centroid sets must match in size");
  }
  const size_t k = base.size();
  Matrix cost(k, std::vector<double>(k));
  for (size_t i = 0; i < k; ++i) {
    if (incoming[i].size() != base[0].size()) {
      return Status::InvalidArgument("centroid dimension mismatch");
    }
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = SquaredDistance(incoming[i], base[j]);
    }
  }
  return HungarianAssign(cost);
}

KMeansKnowledge PermuteKnowledge(const KMeansKnowledge& in,
                                 const std::vector<int>& perm) {
  KMeansKnowledge out;
  out.centroids.resize(in.centroids.size());
  out.counts.resize(in.counts.size());
  for (size_t i = 0; i < in.centroids.size(); ++i) {
    size_t dst = (i < perm.size() && perm[i] >= 0 &&
                  static_cast<size_t>(perm[i]) < in.centroids.size())
                     ? static_cast<size_t>(perm[i])
                     : i;
    out.centroids[dst] = in.centroids[i];
    out.counts[dst] = in.counts[i];
  }
  return out;
}

Result<double> RandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("assignment sizes differ");
  }
  const size_t n = a.size();
  if (n < 2) return 1.0;
  uint64_t agree = 0, total = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      agree += (same_a == same_b);
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace edgelet::ml
