#include "ml/kmeans.h"

#include <cmath>
#include <limits>

namespace edgelet::ml {

Result<Matrix> ExtractPoints(const data::Table& table,
                             const std::vector<std::string>& features) {
  std::vector<size_t> idx;
  idx.reserve(features.size());
  for (const auto& f : features) {
    auto i = table.schema().IndexOf(f);
    if (!i.ok()) return i.status();
    idx.push_back(*i);
  }
  Matrix out;
  out.reserve(table.num_rows());
  for (const auto& row : table.rows()) {
    std::vector<double> p;
    p.reserve(idx.size());
    for (size_t i : idx) {
      auto d = row[i].ToDouble();
      if (!d.ok()) return d.status();
      p.push_back(*d);
    }
    out.push_back(std::move(p));
  }
  return out;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void KMeansKnowledge::Serialize(Writer* w) const {
  w->PutVarint(centroids.size());
  w->PutVarint(centroids.empty() ? 0 : centroids[0].size());
  for (const auto& c : centroids) {
    for (double v : c) w->PutDouble(v);
  }
  for (uint64_t c : counts) w->PutVarint(c);
}

Result<KMeansKnowledge> KMeansKnowledge::Deserialize(Reader* r) {
  KMeansKnowledge out;
  auto k = r->GetVarint();
  if (!k.ok()) return k.status();
  auto d = r->GetVarint();
  if (!d.ok()) return d.status();
  out.centroids.resize(*k, std::vector<double>(*d));
  for (uint64_t i = 0; i < *k; ++i) {
    for (uint64_t j = 0; j < *d; ++j) {
      auto v = r->GetDouble();
      if (!v.ok()) return v.status();
      out.centroids[i][j] = *v;
    }
  }
  out.counts.resize(*k);
  for (uint64_t i = 0; i < *k; ++i) {
    auto c = r->GetVarint();
    if (!c.ok()) return c.status();
    out.counts[i] = *c;
  }
  return out;
}

Result<Matrix> KMeansPlusPlusInit(const Matrix& points, int k, Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("no points");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");

  Matrix centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng->NextBelow(points.size())]);

  std::vector<double> dist2(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) {
        best = std::min(best, SquaredDistance(points[i], c));
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate to fill.
      centroids.push_back(centroids.back());
      continue;
    }
    double pick = rng->NextDouble() * total;
    size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist2[i];
      if (acc >= pick) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

Result<std::vector<int>> Assign(const Matrix& points,
                                const Matrix& centroids) {
  if (centroids.empty()) return Status::InvalidArgument("no centroids");
  std::vector<int> out(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].size() != centroids[0].size()) {
      return Status::InvalidArgument("dimension mismatch");
    }
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (size_t c = 0; c < centroids.size(); ++c) {
      double d = SquaredDistance(points[i], centroids[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    out[i] = best_c;
  }
  return out;
}

Result<LloydStep> RunLloydStep(const Matrix& points,
                               const Matrix& centroids) {
  auto assignment = Assign(points, centroids);
  if (!assignment.ok()) return assignment.status();
  const size_t k = centroids.size();
  const size_t d = centroids[0].size();

  LloydStep step;
  step.knowledge.centroids.assign(k, std::vector<double>(d, 0.0));
  step.knowledge.counts.assign(k, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    int c = (*assignment)[i];
    step.inertia += SquaredDistance(points[i], centroids[c]);
    ++step.knowledge.counts[c];
    for (size_t j = 0; j < d; ++j) {
      step.knowledge.centroids[c][j] += points[i][j];
    }
  }
  for (size_t c = 0; c < k; ++c) {
    if (step.knowledge.counts[c] == 0) {
      step.knowledge.centroids[c] = centroids[c];  // keep empty clusters put
    } else {
      for (size_t j = 0; j < d; ++j) {
        step.knowledge.centroids[c][j] /=
            static_cast<double>(step.knowledge.counts[c]);
      }
    }
  }
  return step;
}

Status RunMiniBatchStep(const Matrix& points, size_t batch_size, Rng* rng,
                        Matrix* centroids, std::vector<uint64_t>* counts) {
  if (centroids->empty()) return Status::InvalidArgument("no centroids");
  if (points.empty()) return Status::OK();
  if (counts->size() != centroids->size()) {
    counts->assign(centroids->size(), 0);
  }
  batch_size = std::min(batch_size, points.size());
  // Sample with replacement (cheap, unbiased enough for SGD-style updates).
  std::vector<size_t> batch(batch_size);
  for (auto& idx : batch) idx = rng->NextBelow(points.size());

  std::vector<int> assignment(batch_size);
  for (size_t b = 0; b < batch_size; ++b) {
    const auto& p = points[batch[b]];
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (size_t c = 0; c < centroids->size(); ++c) {
      double d = SquaredDistance(p, (*centroids)[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    assignment[b] = best_c;
  }
  for (size_t b = 0; b < batch_size; ++b) {
    int c = assignment[b];
    ++(*counts)[c];
    double eta = 1.0 / static_cast<double>((*counts)[c]);
    auto& centroid = (*centroids)[c];
    const auto& p = points[batch[b]];
    for (size_t j = 0; j < centroid.size(); ++j) {
      centroid[j] += eta * (p[j] - centroid[j]);
    }
  }
  return Status::OK();
}

Result<KMeansKnowledge> RunMiniBatchKMeans(const Matrix& points,
                                           const MiniBatchConfig& config) {
  Rng rng(config.seed);
  auto init = KMeansPlusPlusInit(points, config.k, &rng);
  if (!init.ok()) return init.status();
  Matrix centroids = std::move(*init);
  std::vector<uint64_t> counts(centroids.size(), 0);
  for (int iter = 0; iter < config.iterations; ++iter) {
    EDGELET_RETURN_NOT_OK(
        RunMiniBatchStep(points, config.batch_size, &rng, &centroids,
                         &counts));
  }
  // Final hard assignment so the reported counts reflect the data.
  auto step = RunLloydStep(points, centroids);
  if (!step.ok()) return step.status();
  return step->knowledge;
}

Result<KMeansKnowledge> RunKMeans(const Matrix& points,
                                  const KMeansConfig& config) {
  Rng rng(config.seed);
  auto init = KMeansPlusPlusInit(points, config.k, &rng);
  if (!init.ok()) return init.status();
  Matrix centroids = std::move(*init);
  KMeansKnowledge knowledge;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    auto step = RunLloydStep(points, centroids);
    if (!step.ok()) return step.status();
    double moved = 0.0;
    for (size_t c = 0; c < centroids.size(); ++c) {
      moved += SquaredDistance(centroids[c], step->knowledge.centroids[c]);
    }
    knowledge = std::move(step->knowledge);
    centroids = knowledge.centroids;
    if (moved < config.tolerance) break;
  }
  return knowledge;
}

Result<KMeansKnowledge> MergeKnowledge(
    const std::vector<KMeansKnowledge>& parts) {
  if (parts.empty()) return Status::InvalidArgument("no knowledge to merge");
  const size_t k = parts[0].centroids.size();
  const size_t d = k > 0 ? parts[0].centroids[0].size() : 0;

  KMeansKnowledge out;
  out.centroids.assign(k, std::vector<double>(d, 0.0));
  out.counts.assign(k, 0);
  for (const auto& part : parts) {
    if (part.centroids.size() != k || part.counts.size() != k ||
        (k > 0 && part.centroids[0].size() != d)) {
      return Status::InvalidArgument("knowledge shape mismatch");
    }
    for (size_t c = 0; c < k; ++c) {
      out.counts[c] += part.counts[c];
      for (size_t j = 0; j < d; ++j) {
        out.centroids[c][j] +=
            part.centroids[c][j] * static_cast<double>(part.counts[c]);
      }
    }
  }
  for (size_t c = 0; c < k; ++c) {
    if (out.counts[c] == 0) {
      out.centroids[c] = parts[0].centroids[c];
    } else {
      for (size_t j = 0; j < d; ++j) {
        out.centroids[c][j] /= static_cast<double>(out.counts[c]);
      }
    }
  }
  return out;
}

Result<double> Inertia(const Matrix& points, const Matrix& centroids) {
  auto assignment = Assign(points, centroids);
  if (!assignment.ok()) return assignment.status();
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    total += SquaredDistance(points[i], centroids[(*assignment)[i]]);
  }
  return total;
}

}  // namespace edgelet::ml
