#ifndef EDGELET_ML_KMEANS_H_
#define EDGELET_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "data/table.h"

namespace edgelet::ml {

// Row-major points / centroids: points[i] is a d-dimensional vector.
using Matrix = std::vector<std::vector<double>>;

// Extracts the named numeric feature columns of `table` into a point
// matrix.
Result<Matrix> ExtractPoints(const data::Table& table,
                             const std::vector<std::string>& features);

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

// The "knowledge" exchanged between K-Means Computers (paper §2.2): the
// centroids plus per-centroid weights so merging computes the exact
// barycenter of the contributing partitions.
struct KMeansKnowledge {
  Matrix centroids;
  std::vector<uint64_t> counts;  // points assigned to each centroid

  void Serialize(Writer* w) const;
  static Result<KMeansKnowledge> Deserialize(Reader* r);
  bool operator==(const KMeansKnowledge& other) const {
    return centroids == other.centroids && counts == other.counts;
  }
};

// k-means++ seeding (deterministic for a given rng state). Requires
// points.size() >= 1; with fewer distinct points than k, duplicates fill
// the remainder.
Result<Matrix> KMeansPlusPlusInit(const Matrix& points, int k, Rng* rng);

// One Lloyd iteration from `centroids`: assign + recompute. Empty clusters
// keep their previous centroid. Returns the updated knowledge and the
// assignment inertia (sum of squared distances under the *input*
// centroids).
struct LloydStep {
  KMeansKnowledge knowledge;
  double inertia = 0.0;
};
Result<LloydStep> RunLloydStep(const Matrix& points, const Matrix& centroids);

// One Mini-batch K-Means step (Sculley, WWW'10 — cited by the paper for
// tolerating per-iteration resampling): samples `batch_size` points,
// assigns them, and moves each touched centroid toward the batch mean with
// a per-centroid learning rate 1/assignments_so_far. `counts` carries the
// cumulative per-centroid assignment counters across steps.
Status RunMiniBatchStep(const Matrix& points, size_t batch_size, Rng* rng,
                        Matrix* centroids, std::vector<uint64_t>* counts);

// Full centralized Mini-batch K-Means (++ init, `iterations` batches).
struct MiniBatchConfig {
  int k = 4;
  size_t batch_size = 32;
  int iterations = 50;
  uint64_t seed = 1;
};
Result<KMeansKnowledge> RunMiniBatchKMeans(const Matrix& points,
                                           const MiniBatchConfig& config);

// Full centralized K-Means: ++ init then Lloyd until convergence (centroid
// movement below tolerance) or max_iterations.
struct KMeansConfig {
  int k = 4;
  int max_iterations = 50;
  double tolerance = 1e-6;
  uint64_t seed = 1;
};
Result<KMeansKnowledge> RunKMeans(const Matrix& points,
                                  const KMeansConfig& config);

// Merges knowledge from several computers: per-index weighted barycenter
// (paper §2.2: "the barycenter for each centroid"). All inputs must agree
// on k and dimension; zero-weight centroids fall back to the first input's
// coordinates.
Result<KMeansKnowledge> MergeKnowledge(
    const std::vector<KMeansKnowledge>& parts);

// Sum of squared distances from each point to its closest centroid.
Result<double> Inertia(const Matrix& points, const Matrix& centroids);

// Index of the closest centroid for each point.
Result<std::vector<int>> Assign(const Matrix& points, const Matrix& centroids);

}  // namespace edgelet::ml

#endif  // EDGELET_ML_KMEANS_H_
