#ifndef EDGELET_COMMON_HASH_H_
#define EDGELET_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace edgelet {

// FNV-1a 64-bit over raw bytes. Used for non-cryptographic hashing
// (partition assignment, hash aggregation). Cryptographic hashing lives in
// crypto/sha256.h.
uint64_t Fnv1a64(const void* data, size_t len);

inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

// Avalanching finalizer (MurmurHash3 fmix64); turns low-entropy integers
// (sequential ids) into well-distributed hash values.
uint64_t Mix64(uint64_t x);

// Boost-style combiner.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace edgelet

#endif  // EDGELET_COMMON_HASH_H_
