#ifndef EDGELET_COMMON_LOGGING_H_
#define EDGELET_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace edgelet {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Process-wide minimum level; messages below it are dropped before
// formatting. Defaults to kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace edgelet

#define EDGELET_LOG(level)                                      \
  if (::edgelet::LogLevel::level < ::edgelet::GetLogLevel()) {  \
  } else                                                        \
    ::edgelet::internal::LogMessage(::edgelet::LogLevel::level, \
                                    __FILE__, __LINE__)

#endif  // EDGELET_COMMON_LOGGING_H_
