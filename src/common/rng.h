#ifndef EDGELET_COMMON_RNG_H_
#define EDGELET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace edgelet {

// Deterministic 64-bit PRNG (xoshiro256** seeded through SplitMix64).
// All randomness in the library — data generation, operator assignment,
// network latency/drops, churn — flows through instances of this class so a
// single seed reproduces an entire experiment bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound) with rejection sampling (no modulo bias).
  // bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller (cached second deviate).
  double NextGaussian();
  double NextGaussian(double mean, double stddev);

  // Exponential with the given rate (mean = 1/rate). rate must be > 0.
  double NextExponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child generator; children with distinct tags do
  // not correlate with the parent or each other.
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// SplitMix64 step, exposed for seeding/hashing helpers.
uint64_t SplitMix64(uint64_t* state);

}  // namespace edgelet

#endif  // EDGELET_COMMON_RNG_H_
