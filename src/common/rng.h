#ifndef EDGELET_COMMON_RNG_H_
#define EDGELET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace edgelet {

// Deterministic 64-bit PRNG (xoshiro256** seeded through SplitMix64).
// All randomness in the library — data generation, operator assignment,
// network latency/drops, churn — flows through instances of this class so a
// single seed reproduces an entire experiment bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound) with rejection sampling (no modulo bias).
  // bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller (cached second deviate).
  double NextGaussian();
  double NextGaussian(double mean, double stddev);

  // Exponential with the given rate (mean = 1/rate). rate must be > 0.
  double NextExponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child generator; children with distinct tags do
  // not correlate with the parent or each other.
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// SplitMix64 step, exposed for seeding/hashing helpers.
uint64_t SplitMix64(uint64_t* state);

// Counter-based RNG stream: draw k of stream (seed, stream_id) is a pure
// function Mix(seed, stream_id, k), so the values a stream produces depend
// only on how many draws *it* has made — never on how draws from other
// streams interleave with them. The parallel simulation engine gives every
// simulated node its own stream keyed by node id, which is what makes
// network latency/drop/churn sampling bit-identical for any shard count.
//
// Internally this is SplitMix64 over a per-stream base state, so draw k is
// Mix(base + (k+1)*golden): jumping to an arbitrary draw index is O(1).
class NodeRng {
 public:
  NodeRng() : NodeRng(0, 0) {}
  NodeRng(uint64_t seed, uint64_t stream_id);

  uint64_t NextU64() {
    ++draws_;
    return SplitMix64(&state_);
  }

  // Uniform in [0, bound) with rejection sampling. bound must be > 0.
  uint64_t NextBelow(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);
  // Exponential with the given rate (mean = 1/rate). rate must be > 0.
  double NextExponential(double rate);

  // Number of 64-bit words consumed so far (the stream's counter).
  uint64_t draw_index() const { return draws_; }

 private:
  uint64_t state_ = 0;  // per-stream base + draw_index * golden ratio
  uint64_t draws_ = 0;
};

}  // namespace edgelet

#endif  // EDGELET_COMMON_RNG_H_
