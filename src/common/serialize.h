#ifndef EDGELET_COMMON_SERIALIZE_H_
#define EDGELET_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace edgelet {

// Append-only binary encoder. Integers are little-endian fixed width or
// LEB128 varints; strings and blobs are varint-length-prefixed. The wire
// format is what edgelets exchange (inside AEAD envelopes), so it must be
// deterministic and platform independent.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);

  // Unsigned LEB128.
  void PutVarint(uint64_t v);
  // ZigZag-encoded signed varint.
  void PutVarintSigned(int64_t v);

  void PutString(std::string_view s);
  void PutBytes(const Bytes& b);
  void PutRaw(const void* data, size_t len);

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Sequential decoder over a byte span; every getter fails cleanly (never
// reads past the end) so corrupt or truncated messages surface as Status.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetVarintSigned();
  Result<std::string> GetString();
  Result<Bytes> GetBytes();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace edgelet

#endif  // EDGELET_COMMON_SERIALIZE_H_
