#ifndef EDGELET_COMMON_SERIALIZE_H_
#define EDGELET_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace edgelet {

// Append-only binary encoder. Integers are little-endian fixed width or
// LEB128 varints; strings and blobs are varint-length-prefixed. The wire
// format is what edgelets exchange (inside AEAD envelopes), so it must be
// deterministic and platform independent.
//
// Fixed-width puts stage the bytes in a small stack buffer and append with
// one insert, and the common one-byte varint is inlined; encoding a message
// is a handful of memcpy-sized appends rather than per-byte push_backs.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  // Unsigned LEB128.
  void PutVarint(uint64_t v) {
    if (v < 0x80) {
      buf_.push_back(static_cast<uint8_t>(v));
      return;
    }
    PutVarintSlow(v);
  }
  // ZigZag-encoded signed varint.
  void PutVarintSigned(int64_t v) {
    uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                  static_cast<uint64_t>(v >> 63);
    PutVarint(zz);
  }

  void PutString(std::string_view s);
  void PutBytes(const Bytes& b);
  void PutRaw(const void* data, size_t len);

  // Clears the content but keeps the allocation, so one Writer can encode
  // a stream of messages without reallocating per message.
  void Reset() { buf_.clear(); }
  void Reserve(size_t n) { buf_.reserve(n); }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    uint8_t tmp[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }
  void PutVarintSlow(uint64_t v);

  Bytes buf_;
};

// Sequential decoder over a byte span; every getter fails cleanly (never
// reads past the end) so corrupt or truncated messages surface as Status.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint() {
    // One-byte fast path: the overwhelmingly common case for lengths and
    // small counters.
    if (pos_ < len_) {
      uint8_t byte = data_[pos_];
      if ((byte & 0x80) == 0) {
        ++pos_;
        return static_cast<uint64_t>(byte);
      }
    }
    return GetVarintSlow();
  }
  Result<int64_t> GetVarintSigned();
  Result<std::string> GetString();
  Result<Bytes> GetBytes();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status Need(size_t n);
  Result<uint64_t> GetVarintSlow();

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace edgelet

#endif  // EDGELET_COMMON_SERIALIZE_H_
