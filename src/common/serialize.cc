#include "common/serialize.h"

#include <cstring>

namespace edgelet {

void Writer::PutVarintSlow(uint64_t v) {
  // LEB128 never exceeds 10 bytes for 64-bit input; stage on the stack and
  // append once.
  uint8_t tmp[10];
  size_t n = 0;
  while (v >= 0x80) {
    tmp[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  tmp[n++] = static_cast<uint8_t>(v);
  buf_.insert(buf_.end(), tmp, tmp + n);
}

void Writer::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void Writer::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  PutRaw(b.data(), b.size());
}

void Writer::PutRaw(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Status Reader::Need(size_t n) {
  if (len_ - pos_ < n) {
    return Status::DataLoss("truncated message: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(len_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Reader::GetU8() {
  EDGELET_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Reader::GetU16() {
  EDGELET_RETURN_NOT_OK(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Reader::GetU32() {
  EDGELET_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::GetU64() {
  EDGELET_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> Reader::GetI64() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(*r);
}

Result<bool> Reader::GetBool() {
  auto r = GetU8();
  if (!r.ok()) return r.status();
  if (*r > 1) return Status::Corruption("bool byte out of range");
  return *r == 1;
}

Result<double> Reader::GetDouble() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  double d;
  uint64_t bits = *r;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<uint64_t> Reader::GetVarintSlow() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return Status::Corruption("varint too long");
    EDGELET_RETURN_NOT_OK(Need(1));
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> Reader::GetVarintSigned() {
  auto r = GetVarint();
  if (!r.ok()) return r.status();
  uint64_t zz = *r;
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<std::string> Reader::GetString() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  EDGELET_RETURN_NOT_OK(Need(*len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> Reader::GetBytes() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  EDGELET_RETURN_NOT_OK(Need(*len));
  Bytes b(data_ + pos_, data_ + pos_ + *len);
  pos_ += *len;
  return b;
}

}  // namespace edgelet
