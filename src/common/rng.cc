#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace edgelet {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so the log is finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

NodeRng::NodeRng(uint64_t seed, uint64_t stream_id) {
  // Two mixing rounds decorrelate (seed, stream_id) pairs: adjacent node
  // ids under the same seed land at unrelated points of the state space.
  uint64_t sm = seed;
  uint64_t h = SplitMix64(&sm);
  sm = h ^ (stream_id * 0xD1B54A32D192ED03ULL) ^ 0x8BB84B93962EACC9ULL;
  state_ = SplitMix64(&sm);
}

uint64_t NodeRng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double NodeRng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool NodeRng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double NodeRng::NextExponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::Fork(uint64_t tag) {
  uint64_t sm = state_[0] ^ Rotl(tag, 32) ^ 0xA0761D6478BD642FULL;
  return Rng(SplitMix64(&sm));
}

}  // namespace edgelet
