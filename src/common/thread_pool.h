#ifndef EDGELET_COMMON_THREAD_POOL_H_
#define EDGELET_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace edgelet {

// Fixed-size worker pool with a FIFO task queue. Submit() hands back a
// std::future for the task's result (exceptions propagate through it).
// The destructor drains every queued task before joining, so futures
// obtained from a live pool always become ready.
//
// The pool carries no Edgelet state: trial-level parallelism keeps each
// simulation single-threaded and bit-identical per seed, so fanning
// independent (config, seed) trials across workers cannot change results.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Hardware thread count; never 0.
  static size_t DefaultParallelism();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace edgelet

#endif  // EDGELET_COMMON_THREAD_POOL_H_
