#include "common/thread_pool.h"

#include <algorithm>

namespace edgelet {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

size_t ThreadPool::DefaultParallelism() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace edgelet
