#include "common/hash.h"

namespace edgelet {

uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace edgelet
