#include "common/sim_time.h"

#include <cstdio>

namespace edgelet {

std::string FormatSimTime(SimTime t) {
  char buf[64];
  if (t == kSimTimeNever) return "never";
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs",
                  static_cast<double>(t) / kSecond);
  }
  return buf;
}

}  // namespace edgelet
