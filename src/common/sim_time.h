#ifndef EDGELET_COMMON_SIM_TIME_H_
#define EDGELET_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace edgelet {

// Simulated time in microseconds since the start of the simulation.
// Plain integer (not std::chrono) so it serializes trivially and compares
// fast in the event queue hot path.
using SimTime = uint64_t;
// Durations share the representation; negative durations never occur.
using SimDuration = uint64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr SimTime kSimTimeNever = UINT64_MAX;

inline double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

inline SimDuration FromSeconds(double s) {
  if (s <= 0) return 0;
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

// "12.345s" / "87ms" style rendering for traces and reports.
std::string FormatSimTime(SimTime t);

}  // namespace edgelet

#endif  // EDGELET_COMMON_SIM_TIME_H_
