#ifndef EDGELET_COMMON_STATUS_H_
#define EDGELET_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace edgelet {

// Canonical error space for the whole library (RocksDB/Arrow-style: no
// exceptions cross library boundaries; fallible operations return Status or
// Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
  kCorruption,
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. Accessing value() on an error aborts in debug builds;
// callers must check ok() first (or use value_or).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace edgelet

// Propagates an error Status from an expression, Arrow-style.
#define EDGELET_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::edgelet::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// assigns the value to `lhs`.
#define EDGELET_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto _res_##__LINE__ = (rexpr);                \
  if (!_res_##__LINE__.ok()) {                   \
    return _res_##__LINE__.status();             \
  }                                              \
  lhs = std::move(_res_##__LINE__).value();

#endif  // EDGELET_COMMON_STATUS_H_
