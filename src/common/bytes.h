#ifndef EDGELET_COMMON_BYTES_H_
#define EDGELET_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace edgelet {

using Bytes = std::vector<uint8_t>;

// Lowercase hex encoding ("deadbeef").
std::string ToHex(const Bytes& bytes);
std::string ToHex(const uint8_t* data, size_t len);

// Decodes lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<Bytes> FromHex(std::string_view hex);

inline Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace edgelet

#endif  // EDGELET_COMMON_BYTES_H_
