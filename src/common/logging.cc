#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace edgelet {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace edgelet
