#ifndef EDGELET_CRYPTO_POLY1305_H_
#define EDGELET_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace edgelet::crypto {

using Tag128 = std::array<uint8_t, 16>;

// Incremental Poly1305 (RFC 8439 §2.5) with a 32-byte one-time key. Full
// 16-byte blocks are MACed straight out of the caller's buffer — no staging
// copy — which lets the AEAD tag run over aad and ciphertext in place
// instead of concatenating them into a scratch message first.
//
// The accumulator uses three 44/44/42-bit limbs so each block costs nine
// 64x64->128 multiplies instead of the twenty-five a 26-bit-limb radix
// needs.
//
//   Poly1305 mac(otk);
//   mac.Update(aad);
//   mac.Update(ciphertext);
//   Tag128 tag = mac.Finalize();   // at most once per instance
class Poly1305 {
 public:
  explicit Poly1305(const std::array<uint8_t, 32>& key);

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }

  // Consumes any buffered partial block and returns the tag. The instance
  // must not be used again afterwards.
  Tag128 Finalize();

 private:
  void ProcessBlocks(const uint8_t* m, size_t nblocks, uint64_t hibit);

  uint64_t r_[3];    // clamped key half, 44/44/42-bit limbs
  uint64_t rs_[2];   // r_[1] * 20, r_[2] * 20 (the mod-p fold-in factors)
  uint64_t pad_[2];  // second key half, added to the final accumulator
  uint64_t h_[3] = {0, 0, 0};
  uint8_t buffer_[16];
  size_t buffer_len_ = 0;
};

// One-shot Poly1305 MAC (RFC 8439 §2.5) with a 32-byte one-time key.
Tag128 Poly1305Mac(const std::array<uint8_t, 32>& key, const Bytes& message);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_POLY1305_H_
