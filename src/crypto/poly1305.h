#ifndef EDGELET_CRYPTO_POLY1305_H_
#define EDGELET_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace edgelet::crypto {

using Tag128 = std::array<uint8_t, 16>;

// One-shot Poly1305 MAC (RFC 8439 §2.5) with a 32-byte one-time key.
Tag128 Poly1305Mac(const std::array<uint8_t, 32>& key, const Bytes& message);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_POLY1305_H_
