#include "crypto/chacha20.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace edgelet::crypto {

namespace {

constexpr size_t kBlockBytes = 64;

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void InitState(uint32_t state[16], const Key256& key,
                      const Nonce96& nonce, uint32_t counter) {
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = LoadLe32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = LoadLe32(nonce.data() + 4 * i);
}

// One block of keystream for the state's current counter (tail path and
// the exported ChaCha20Block).
inline void BlockInto(const uint32_t state[16], uint8_t out[kBlockBytes]) {
  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) StoreLe32(out + 4 * i, x[i] + state[i]);
}

// data[0..n) ^= ks[0..n), eight bytes at a time (memcpy keeps it legal for
// any alignment; the compiler lowers the loop to wide vector XORs).
inline void XorBytes(uint8_t* data, const uint8_t* ks, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t d, k;
    std::memcpy(&d, data + i, 8);
    std::memcpy(&k, ks + i, 8);
    d ^= k;
    std::memcpy(data + i, &d, 8);
  }
  for (; i < n; ++i) data[i] ^= ks[i];
}

#if defined(__GNUC__) || defined(__clang__)
#define EDGELET_CHACHA20_SIMD 1

// W independent block states in lane-per-block layout: x[word] holds the
// same state word of W consecutive counter values, so every quarter-round
// step is one vector add/xor/rotate. EDGELET_CHACHA_LANES blocks of
// keystream (counters state[12]..state[12]+W-1) land in `out`.
#define EDGELET_CHACHA_BLOCKS_BODY(Vec, W)                               \
  Vec x[16];                                                             \
  for (int i = 0; i < 16; ++i) {                                         \
    for (int j = 0; j < (W); ++j) x[i][j] = state[i];                    \
  }                                                                      \
  for (int j = 0; j < (W); ++j) {                                        \
    x[12][j] = state[12] + static_cast<uint32_t>(j);                     \
  }                                                                      \
  for (int round = 0; round < 10; ++round) {                             \
    EDGELET_CHACHA_QR(0, 4, 8, 12);                                      \
    EDGELET_CHACHA_QR(1, 5, 9, 13);                                      \
    EDGELET_CHACHA_QR(2, 6, 10, 14);                                     \
    EDGELET_CHACHA_QR(3, 7, 11, 15);                                     \
    EDGELET_CHACHA_QR(0, 5, 10, 15);                                     \
    EDGELET_CHACHA_QR(1, 6, 11, 12);                                     \
    EDGELET_CHACHA_QR(2, 7, 8, 13);                                      \
    EDGELET_CHACHA_QR(3, 4, 9, 14);                                      \
  }                                                                      \
  for (int j = 0; j < (W); ++j) {                                        \
    uint8_t* block = out + j * kBlockBytes;                              \
    for (int i = 0; i < 16; ++i) {                                       \
      uint32_t add =                                                     \
          i == 12 ? state[12] + static_cast<uint32_t>(j) : state[i];     \
      StoreLe32(block + 4 * i, x[i][j] + add);                           \
    }                                                                    \
  }

#define EDGELET_CHACHA_QR(a, b, c, d)                     \
  do {                                                    \
    x[a] += x[b];                                         \
    x[d] ^= x[a];                                         \
    x[d] = (x[d] << 16) | (x[d] >> 16);                   \
    x[c] += x[d];                                         \
    x[b] ^= x[c];                                         \
    x[b] = (x[b] << 12) | (x[b] >> 20);                   \
    x[a] += x[b];                                         \
    x[d] ^= x[a];                                         \
    x[d] = (x[d] << 8) | (x[d] >> 24);                    \
    x[c] += x[d];                                         \
    x[b] ^= x[c];                                         \
    x[b] = (x[b] << 7) | (x[b] >> 25);                    \
  } while (0)

using Vec4 = uint32_t __attribute__((vector_size(16)));
constexpr size_t kBatch4Bytes = 4 * kBlockBytes;

void Blocks4(const uint32_t state[16], uint8_t out[kBatch4Bytes]) {
  EDGELET_CHACHA_BLOCKS_BODY(Vec4, 4)
}

#if defined(__x86_64__)
using Vec8 = uint32_t __attribute__((vector_size(32)));
constexpr size_t kBatch8Bytes = 8 * kBlockBytes;

// In-register 8x8 transpose of 32-bit lanes: on entry r[i] holds word w+i of
// blocks 0..7; on exit r[j] holds words w..w+7 of block j.
__attribute__((target("avx2"))) inline void Transpose8x8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

// Eight lanes wide, and the keystream is XORed straight into `data` via two
// register transposes — no scratch buffer and no second pass over the bytes.
// Only dispatched to when the CPU has AVX2. (x86 is little-endian, so vector
// stores of the 32-bit words are already in RFC byte order.)
__attribute__((target("avx2"))) void XorBlocks8(const uint32_t state[16],
                                                uint8_t* data) {
  Vec8 x[16];
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) x[i][j] = state[i];
  }
  for (int j = 0; j < 8; ++j) {
    x[12][j] = state[12] + static_cast<uint32_t>(j);
  }
  const Vec8 counters = x[12];
  for (int round = 0; round < 10; ++round) {
    EDGELET_CHACHA_QR(0, 4, 8, 12);
    EDGELET_CHACHA_QR(1, 5, 9, 13);
    EDGELET_CHACHA_QR(2, 6, 10, 14);
    EDGELET_CHACHA_QR(3, 7, 11, 15);
    EDGELET_CHACHA_QR(0, 5, 10, 15);
    EDGELET_CHACHA_QR(1, 6, 11, 12);
    EDGELET_CHACHA_QR(2, 7, 8, 13);
    EDGELET_CHACHA_QR(3, 4, 9, 14);
  }
  x[12] += counters;
  for (int i = 0; i < 16; ++i) {
    if (i != 12) x[i] += state[i];
  }
  __m256i lo[8], hi[8];
  for (int i = 0; i < 8; ++i) {
    lo[i] = reinterpret_cast<__m256i&>(x[i]);
    hi[i] = reinterpret_cast<__m256i&>(x[8 + i]);
  }
  Transpose8x8(lo);
  Transpose8x8(hi);
  for (int j = 0; j < 8; ++j) {
    uint8_t* block = data + j * kBlockBytes;
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block),
                        _mm256_xor_si256(d0, lo[j]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + 32),
                        _mm256_xor_si256(d1, hi[j]));
  }
}

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}
#endif  // __x86_64__

#else   // !(__GNUC__ || __clang__)

// Portable fallback: four blocks generated one at a time.
constexpr size_t kBatch4Bytes = 4 * kBlockBytes;

void Blocks4(const uint32_t state[16], uint8_t out[kBatch4Bytes]) {
  uint32_t s[16];
  std::memcpy(s, state, sizeof(s));
  for (int j = 0; j < 4; ++j) {
    BlockInto(s, out + j * kBlockBytes);
    ++s[12];
  }
}

#endif  // __GNUC__ || __clang__

}  // namespace

std::array<uint8_t, 64> ChaCha20Block(const Key256& key, const Nonce96& nonce,
                                      uint32_t counter) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);
  std::array<uint8_t, 64> out;
  BlockInto(state, out.data());
  return out;
}

void ChaCha20XorInPlace(const Key256& key, const Nonce96& nonce,
                        uint32_t counter, uint8_t* data, size_t len) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);

#if defined(EDGELET_CHACHA20_SIMD) && defined(__x86_64__)
  if (len >= kBatch8Bytes && HasAvx2()) {
    do {
      XorBlocks8(state, data);
      state[12] += 8;
      data += kBatch8Bytes;
      len -= kBatch8Bytes;
    } while (len >= kBatch8Bytes);
  }
#endif

  alignas(64) uint8_t ks[kBatch4Bytes];
  while (len >= kBatch4Bytes) {
    Blocks4(state, ks);
    XorBytes(data, ks, kBatch4Bytes);
    state[12] += 4;
    data += kBatch4Bytes;
    len -= kBatch4Bytes;
  }
  if (len > kBlockBytes) {
    // 65..255 bytes left: one more batched generation is cheaper than up to
    // four serial blocks; surplus keystream is simply dropped.
    Blocks4(state, ks);
    XorBytes(data, ks, len);
    return;
  }
  if (len > 0) {
    BlockInto(state, ks);
    XorBytes(data, ks, len);
  }
}

Bytes ChaCha20Xor(const Key256& key, const Nonce96& nonce, uint32_t counter,
                  const Bytes& input) {
  Bytes out = input;
  ChaCha20XorInPlace(key, nonce, counter, out.data(), out.size());
  return out;
}

}  // namespace edgelet::crypto
