#include "crypto/chacha20.h"

#include <cstring>

namespace edgelet::crypto {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

std::array<uint8_t, 64> ChaCha20Block(const Key256& key, const Nonce96& nonce,
                                      uint32_t counter) {
  uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = LoadLe32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = LoadLe32(nonce.data() + 4 * i);

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) StoreLe32(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

Bytes ChaCha20Xor(const Key256& key, const Nonce96& nonce, uint32_t counter,
                  const Bytes& input) {
  Bytes out(input.size());
  size_t offset = 0;
  while (offset < input.size()) {
    std::array<uint8_t, 64> ks = ChaCha20Block(key, nonce, counter++);
    size_t take = std::min<size_t>(64, input.size() - offset);
    for (size_t i = 0; i < take; ++i) out[offset + i] = input[offset + i] ^ ks[i];
    offset += take;
  }
  return out;
}

}  // namespace edgelet::crypto
