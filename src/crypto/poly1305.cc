#include "crypto/poly1305.h"

#include <cstring>

namespace edgelet::crypto {

namespace {

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

Tag128 Poly1305Mac(const std::array<uint8_t, 32>& key, const Bytes& message) {
  // r with clamping (RFC 8439 §2.5.1), split into 26-bit limbs.
  uint32_t t0 = LoadLe32(key.data() + 0);
  uint32_t t1 = LoadLe32(key.data() + 4);
  uint32_t t2 = LoadLe32(key.data() + 8);
  uint32_t t3 = LoadLe32(key.data() + 12);

  uint32_t r0 = t0 & 0x3ffffff;
  uint32_t r1 = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  uint32_t r2 = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  uint32_t r3 = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  uint32_t r4 = (t3 >> 8) & 0x00fffff;

  uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  size_t len = message.size();
  const uint8_t* m = message.data();
  while (len > 0) {
    uint8_t block[17] = {0};
    size_t take = len < 16 ? len : 16;
    std::memcpy(block, m, take);
    block[take] = 1;  // the "add 2^n" bit

    uint32_t b0 = LoadLe32(block + 0);
    uint32_t b1 = LoadLe32(block + 4);
    uint32_t b2 = LoadLe32(block + 8);
    uint32_t b3 = LoadLe32(block + 12);
    uint32_t b4 = block[16];

    h0 += b0 & 0x3ffffff;
    h1 += ((b0 >> 26) | (b1 << 6)) & 0x3ffffff;
    h2 += ((b1 >> 20) | (b2 << 12)) & 0x3ffffff;
    h3 += ((b2 >> 14) | (b3 << 18)) & 0x3ffffff;
    h4 += (b3 >> 8) | (static_cast<uint32_t>(b4) << 24);

    using u128 = unsigned __int128;
    u128 d0 = (u128)h0 * r0 + (u128)h1 * s4 + (u128)h2 * s3 + (u128)h3 * s2 +
              (u128)h4 * s1;
    u128 d1 = (u128)h0 * r1 + (u128)h1 * r0 + (u128)h2 * s4 + (u128)h3 * s3 +
              (u128)h4 * s2;
    u128 d2 = (u128)h0 * r2 + (u128)h1 * r1 + (u128)h2 * r0 + (u128)h3 * s4 +
              (u128)h4 * s3;
    u128 d3 = (u128)h0 * r3 + (u128)h1 * r2 + (u128)h2 * r1 + (u128)h3 * r0 +
              (u128)h4 * s4;
    u128 d4 = (u128)h0 * r4 + (u128)h1 * r3 + (u128)h2 * r2 + (u128)h3 * r1 +
              (u128)h4 * r0;

    uint64_t c;
    c = static_cast<uint64_t>(d0 >> 26);
    h0 = static_cast<uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = static_cast<uint64_t>(d1 >> 26);
    h1 = static_cast<uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = static_cast<uint64_t>(d2 >> 26);
    h2 = static_cast<uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = static_cast<uint64_t>(d3 >> 26);
    h3 = static_cast<uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = static_cast<uint64_t>(d4 >> 26);
    h4 = static_cast<uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<uint32_t>(c) * 5;
    h1 += h0 >> 26;
    h0 &= 0x3ffffff;

    m += take;
    len -= take;
  }

  // Full carry propagation.
  uint32_t c;
  c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and select.
  uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  uint32_t g4 = h4 + c - (1u << 26);

  uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Serialize h to 128 bits.
  uint32_t f0 = h0 | (h1 << 26);
  uint32_t f1 = (h1 >> 6) | (h2 << 20);
  uint32_t f2 = (h2 >> 12) | (h3 << 14);
  uint32_t f3 = (h3 >> 18) | (h4 << 8);

  // Add s (second key half) mod 2^128.
  uint64_t acc;
  acc = static_cast<uint64_t>(f0) + LoadLe32(key.data() + 16);
  f0 = static_cast<uint32_t>(acc);
  acc = static_cast<uint64_t>(f1) + LoadLe32(key.data() + 20) + (acc >> 32);
  f1 = static_cast<uint32_t>(acc);
  acc = static_cast<uint64_t>(f2) + LoadLe32(key.data() + 24) + (acc >> 32);
  f2 = static_cast<uint32_t>(acc);
  acc = static_cast<uint64_t>(f3) + LoadLe32(key.data() + 28) + (acc >> 32);
  f3 = static_cast<uint32_t>(acc);

  Tag128 tag;
  for (int i = 0; i < 4; ++i) {
    tag[i] = static_cast<uint8_t>(f0 >> (8 * i));
    tag[4 + i] = static_cast<uint8_t>(f1 >> (8 * i));
    tag[8 + i] = static_cast<uint8_t>(f2 >> (8 * i));
    tag[12 + i] = static_cast<uint8_t>(f3 >> (8 * i));
  }
  return tag;
}

}  // namespace edgelet::crypto
