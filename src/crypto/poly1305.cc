#include "crypto/poly1305.h"

#include <cstring>

namespace edgelet::crypto {

namespace {

inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

inline void StoreLe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

constexpr uint64_t kMask44 = 0xfffffffffff;
constexpr uint64_t kMask42 = 0x3ffffffffff;

// The "add 2^128" bit of a full 16-byte block: bit 128 lands at position
// 128 - 88 = 40 of the top (42-bit) limb.
constexpr uint64_t kFullBlockHighBit = 1ull << 40;

}  // namespace

Poly1305::Poly1305(const std::array<uint8_t, 32>& key) {
  // r with clamping (RFC 8439 §2.5.1), split into 44/44/42-bit limbs.
  uint64_t t0 = LoadLe64(key.data() + 0);
  uint64_t t1 = LoadLe64(key.data() + 8);

  r_[0] = t0 & 0xffc0fffffff;
  r_[1] = ((t0 >> 44) | (t1 << 20)) & 0xfffffc0ffff;
  r_[2] = (t1 >> 24) & 0x00ffffffc0f;

  // Folding limb i+3 back into limb i multiplies by 2^132 mod p = 5 * 2^2.
  rs_[0] = r_[1] * 20;
  rs_[1] = r_[2] * 20;

  pad_[0] = LoadLe64(key.data() + 16);
  pad_[1] = LoadLe64(key.data() + 24);
}

void Poly1305::ProcessBlocks(const uint8_t* m, size_t nblocks,
                             uint64_t hibit) {
  uint64_t r0 = r_[0], r1 = r_[1], r2 = r_[2];
  uint64_t s1 = rs_[0], s2 = rs_[1];
  uint64_t h0 = h_[0], h1 = h_[1], h2 = h_[2];

  while (nblocks-- > 0) {
    uint64_t t0 = LoadLe64(m + 0);
    uint64_t t1 = LoadLe64(m + 8);

    h0 += t0 & kMask44;
    h1 += ((t0 >> 44) | (t1 << 20)) & kMask44;
    h2 += ((t1 >> 24) & kMask42) | hibit;

    using u128 = unsigned __int128;
    u128 d0 = (u128)h0 * r0 + (u128)h1 * s2 + (u128)h2 * s1;
    u128 d1 = (u128)h0 * r1 + (u128)h1 * r0 + (u128)h2 * s2;
    u128 d2 = (u128)h0 * r2 + (u128)h1 * r1 + (u128)h2 * r0;

    uint64_t c = static_cast<uint64_t>(d0 >> 44);
    h0 = static_cast<uint64_t>(d0) & kMask44;
    d1 += c;
    c = static_cast<uint64_t>(d1 >> 44);
    h1 = static_cast<uint64_t>(d1) & kMask44;
    d2 += c;
    c = static_cast<uint64_t>(d2 >> 42);
    h2 = static_cast<uint64_t>(d2) & kMask42;
    h0 += c * 5;
    c = h0 >> 44;
    h0 &= kMask44;
    h1 += c;

    m += 16;
  }

  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
}

void Poly1305::Update(const uint8_t* data, size_t len) {
  if (buffer_len_ > 0) {
    size_t take = len < 16 - buffer_len_ ? len : 16 - buffer_len_;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ < 16) return;
    ProcessBlocks(buffer_, 1, kFullBlockHighBit);
    buffer_len_ = 0;
  }
  size_t nblocks = len / 16;
  if (nblocks > 0) {
    ProcessBlocks(data, nblocks, kFullBlockHighBit);
    data += nblocks * 16;
    len -= nblocks * 16;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Tag128 Poly1305::Finalize() {
  if (buffer_len_ > 0) {
    // Final partial block: append the 1 bit in-band, zero-pad to 16 bytes,
    // and process with no extra high bit (buffer_len_ < 16 always holds —
    // full blocks are consumed eagerly by Update).
    uint8_t block[16] = {0};
    std::memcpy(block, buffer_, buffer_len_);
    block[buffer_len_] = 1;
    ProcessBlocks(block, 1, 0);
    buffer_len_ = 0;
  }

  uint64_t h0 = h_[0], h1 = h_[1], h2 = h_[2];

  // Full carry propagation.
  uint64_t c;
  c = h1 >> 44;
  h1 &= kMask44;
  h2 += c;
  c = h2 >> 42;
  h2 &= kMask42;
  h0 += c * 5;
  c = h0 >> 44;
  h0 &= kMask44;
  h1 += c;
  c = h1 >> 44;
  h1 &= kMask44;
  h2 += c;
  c = h2 >> 42;
  h2 &= kMask42;
  h0 += c * 5;
  c = h0 >> 44;
  h0 &= kMask44;
  h1 += c;

  // Compute h + -p and select.
  uint64_t g0 = h0 + 5;
  c = g0 >> 44;
  g0 &= kMask44;
  uint64_t g1 = h1 + c;
  c = g1 >> 44;
  g1 &= kMask44;
  uint64_t g2 = h2 + c - (1ull << 42);

  uint64_t mask = (g2 >> 63) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);

  // Serialize h to 128 bits and add the pad (second key half) mod 2^128.
  uint64_t f0 = h0 | (h1 << 44);
  uint64_t f1 = (h1 >> 20) | (h2 << 24);
  uint64_t lo = f0 + pad_[0];
  uint64_t carry = lo < f0 ? 1 : 0;
  uint64_t hi = f1 + pad_[1] + carry;

  Tag128 tag;
  StoreLe64(tag.data(), lo);
  StoreLe64(tag.data() + 8, hi);
  return tag;
}

Tag128 Poly1305Mac(const std::array<uint8_t, 32>& key, const Bytes& message) {
  Poly1305 mac(key);
  mac.Update(message);
  return mac.Finalize();
}

}  // namespace edgelet::crypto
