#ifndef EDGELET_CRYPTO_CHACHA20_H_
#define EDGELET_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace edgelet::crypto {

using Key256 = std::array<uint8_t, 32>;
using Nonce96 = std::array<uint8_t, 12>;

// ChaCha20 stream cipher (RFC 8439). Encryption and decryption are the same
// XOR operation. `counter` is the initial block counter (1 for AEAD payload,
// 0 for the Poly1305 one-time key block).
Bytes ChaCha20Xor(const Key256& key, const Nonce96& nonce, uint32_t counter,
                  const Bytes& input);

// In-place variant — the hot path behind every sealed message. Keystream is
// generated four blocks at a time into a stack scratch buffer (independent
// blocks in structure-of-arrays layout, which the compiler auto-vectorizes)
// and XORed over `data` word-at-a-time. No heap allocation. ChaCha20Xor is
// a thin copy-then-XorInPlace wrapper, so both produce identical bytes.
void ChaCha20XorInPlace(const Key256& key, const Nonce96& nonce,
                        uint32_t counter, uint8_t* data, size_t len);

// Raw 64-byte keystream block; exposed for Poly1305 key derivation and
// for tests against the RFC 8439 vectors.
std::array<uint8_t, 64> ChaCha20Block(const Key256& key, const Nonce96& nonce,
                                      uint32_t counter);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_CHACHA20_H_
