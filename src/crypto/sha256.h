#ifndef EDGELET_CRYPTO_SHA256_H_
#define EDGELET_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace edgelet::crypto {

using Digest256 = std::array<uint8_t, 32>;

// Incremental SHA-256 (FIPS 180-4). Used for enclave measurements and as
// the compression function under HMAC/HKDF.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  // Finalizes and returns the digest; the object must be Reset() before
  // further use.
  Digest256 Finish();

  // One-shot convenience.
  static Digest256 Hash(const void* data, size_t len);
  static Digest256 Hash(const Bytes& b) { return Hash(b.data(), b.size()); }
  static Digest256 Hash(std::string_view s) { return Hash(s.data(), s.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// HMAC-SHA256 (RFC 2104).
Digest256 HmacSha256(const Bytes& key, const void* data, size_t len);
Digest256 HmacSha256(const Bytes& key, const Bytes& data);

// HKDF extract+expand (RFC 5869) with SHA-256; out_len <= 255*32.
Bytes HkdfSha256(const Bytes& salt, const Bytes& ikm, const Bytes& info,
                 size_t out_len);

// Constant-time comparison; true iff equal.
bool ConstantTimeEquals(const uint8_t* a, const uint8_t* b, size_t len);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_SHA256_H_
