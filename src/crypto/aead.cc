#include "crypto/aead.h"

#include <cstring>

#include "crypto/sha256.h"

namespace edgelet::crypto {

namespace {

Tag128 ComputeTag(const Key256& key, const Nonce96& nonce, const Bytes& aad,
                  const Bytes& ciphertext) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  std::array<uint8_t, 64> block0 = ChaCha20Block(key, nonce, 0);
  std::array<uint8_t, 32> otk;
  std::memcpy(otk.data(), block0.data(), 32);

  // mac_data = aad || pad16 || ct || pad16 || len(aad) || len(ct).
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  auto pad16 = [&mac_data]() {
    while (mac_data.size() % 16 != 0) mac_data.push_back(0);
  };
  mac_data.insert(mac_data.end(), aad.begin(), aad.end());
  pad16();
  mac_data.insert(mac_data.end(), ciphertext.begin(), ciphertext.end());
  pad16();
  uint64_t lens[2] = {aad.size(), ciphertext.size()};
  for (uint64_t v : lens) {
    for (int i = 0; i < 8; ++i) {
      mac_data.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  return Poly1305Mac(otk, mac_data);
}

}  // namespace

Bytes AeadSeal(const Key256& key, const Nonce96& nonce, const Bytes& aad,
               const Bytes& plaintext) {
  Bytes ciphertext = ChaCha20Xor(key, nonce, 1, plaintext);
  Tag128 tag = ComputeTag(key, nonce, aad, ciphertext);
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

Result<Bytes> AeadOpen(const Key256& key, const Nonce96& nonce,
                       const Bytes& aad, const Bytes& sealed) {
  if (sealed.size() < 16) {
    return Status::Corruption("AEAD message shorter than tag");
  }
  Bytes ciphertext(sealed.begin(), sealed.end() - 16);
  Tag128 expected = ComputeTag(key, nonce, aad, ciphertext);
  const uint8_t* got = sealed.data() + sealed.size() - 16;
  if (!ConstantTimeEquals(expected.data(), got, 16)) {
    return Status::Corruption("AEAD tag mismatch");
  }
  return ChaCha20Xor(key, nonce, 1, ciphertext);
}

Nonce96 NonceFromSequence(uint64_t channel_id, uint64_t seq) {
  Nonce96 nonce;
  nonce[0] = static_cast<uint8_t>(channel_id);
  nonce[1] = static_cast<uint8_t>(channel_id >> 8);
  nonce[2] = static_cast<uint8_t>(channel_id >> 16);
  nonce[3] = static_cast<uint8_t>(channel_id >> 24);
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

}  // namespace edgelet::crypto
