#include "crypto/aead.h"

#include <cstring>

#include "crypto/sha256.h"

namespace edgelet::crypto {

namespace {

// mac = Poly1305(otk, aad || pad16 || ct || pad16 || len(aad) || len(ct)),
// computed incrementally over the aad and ciphertext in place — the padded
// concatenation never exists as a buffer.
Tag128 ComputeTag(const Key256& key, const Nonce96& nonce, const uint8_t* aad,
                  size_t aad_len, const uint8_t* ciphertext, size_t ct_len) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  std::array<uint8_t, 64> block0 = ChaCha20Block(key, nonce, 0);
  std::array<uint8_t, 32> otk;
  std::memcpy(otk.data(), block0.data(), 32);

  static constexpr uint8_t kPad[16] = {0};
  Poly1305 mac(otk);
  mac.Update(aad, aad_len);
  if (aad_len % 16 != 0) mac.Update(kPad, 16 - aad_len % 16);
  mac.Update(ciphertext, ct_len);
  if (ct_len % 16 != 0) mac.Update(kPad, 16 - ct_len % 16);
  uint8_t lens[16];
  uint64_t vals[2] = {aad_len, ct_len};
  for (int v = 0; v < 2; ++v) {
    for (int i = 0; i < 8; ++i) {
      lens[8 * v + i] = static_cast<uint8_t>(vals[v] >> (8 * i));
    }
  }
  mac.Update(lens, 16);
  return mac.Finalize();
}

}  // namespace

void AeadSealInto(const Key256& key, const Nonce96& nonce, const uint8_t* aad,
                  size_t aad_len, const uint8_t* plaintext,
                  size_t plaintext_len, Bytes* out) {
  out->resize(plaintext_len + 16);
  if (plaintext_len > 0) std::memcpy(out->data(), plaintext, plaintext_len);
  ChaCha20XorInPlace(key, nonce, 1, out->data(), plaintext_len);
  Tag128 tag = ComputeTag(key, nonce, aad, aad_len, out->data(),
                          plaintext_len);
  std::memcpy(out->data() + plaintext_len, tag.data(), tag.size());
}

Status AeadOpenInto(const Key256& key, const Nonce96& nonce,
                    const uint8_t* aad, size_t aad_len, const uint8_t* sealed,
                    size_t sealed_len, Bytes* out) {
  if (sealed_len < 16) {
    return Status::Corruption("AEAD message shorter than tag");
  }
  size_t ct_len = sealed_len - 16;
  // The tag runs over the ciphertext region of `sealed` directly; no
  // intermediate ciphertext copy is made.
  Tag128 expected = ComputeTag(key, nonce, aad, aad_len, sealed, ct_len);
  if (!ConstantTimeEquals(expected.data(), sealed + ct_len, 16)) {
    return Status::Corruption("AEAD tag mismatch");
  }
  out->resize(ct_len);
  if (ct_len > 0) std::memcpy(out->data(), sealed, ct_len);
  ChaCha20XorInPlace(key, nonce, 1, out->data(), ct_len);
  return Status::OK();
}

Bytes AeadSeal(const Key256& key, const Nonce96& nonce, const Bytes& aad,
               const Bytes& plaintext) {
  Bytes out;
  AeadSealInto(key, nonce, aad.data(), aad.size(), plaintext.data(),
               plaintext.size(), &out);
  return out;
}

Result<Bytes> AeadOpen(const Key256& key, const Nonce96& nonce,
                       const Bytes& aad, const Bytes& sealed) {
  Bytes out;
  Status s = AeadOpenInto(key, nonce, aad.data(), aad.size(), sealed.data(),
                          sealed.size(), &out);
  if (!s.ok()) return s;
  return out;
}

Nonce96 NonceFromSequence(uint64_t channel_id, uint64_t seq) {
  uint32_t chan = static_cast<uint32_t>(channel_id) ^
                  static_cast<uint32_t>(channel_id >> 32);
  Nonce96 nonce;
  nonce[0] = static_cast<uint8_t>(chan);
  nonce[1] = static_cast<uint8_t>(chan >> 8);
  nonce[2] = static_cast<uint8_t>(chan >> 16);
  nonce[3] = static_cast<uint8_t>(chan >> 24);
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

}  // namespace edgelet::crypto
