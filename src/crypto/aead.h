#ifndef EDGELET_CRYPTO_AEAD_H_
#define EDGELET_CRYPTO_AEAD_H_

#include "common/status.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace edgelet::crypto {

// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). All enclave-to-enclave traffic in
// the Edgelet framework is sealed with this construction; the `aad` binds
// the routing header so it cannot be swapped without detection.

// Returns ciphertext || 16-byte tag.
Bytes AeadSeal(const Key256& key, const Nonce96& nonce, const Bytes& aad,
               const Bytes& plaintext);

// Verifies the tag (constant time) and decrypts; fails with Corruption on
// any mismatch.
Result<Bytes> AeadOpen(const Key256& key, const Nonce96& nonce,
                       const Bytes& aad, const Bytes& sealed);

// In-place variants — the hot message path. Both write into a caller-
// provided buffer that is resized to fit, so reusing one scratch Bytes
// across calls makes the steady state allocation-free. `out` must not alias
// the plaintext/sealed input. Outputs are byte-identical to AeadSeal /
// AeadOpen (which are thin wrappers over these).
void AeadSealInto(const Key256& key, const Nonce96& nonce, const uint8_t* aad,
                  size_t aad_len, const uint8_t* plaintext,
                  size_t plaintext_len, Bytes* out);
Status AeadOpenInto(const Key256& key, const Nonce96& nonce,
                    const uint8_t* aad, size_t aad_len, const uint8_t* sealed,
                    size_t sealed_len, Bytes* out);

// Deterministic nonce from a message sequence number (per-channel keys make
// this safe: each (key, seq) pair is used at most once). All 64 bits of
// `channel_id` feed the nonce: the high half is XOR-folded into the 32-bit
// channel field, so two channels differing only in their high bits do not
// collide. Channel ids below 2^32 produce the same nonce as always.
Nonce96 NonceFromSequence(uint64_t channel_id, uint64_t seq);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_AEAD_H_
