#ifndef EDGELET_CRYPTO_AEAD_H_
#define EDGELET_CRYPTO_AEAD_H_

#include "common/status.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace edgelet::crypto {

// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). All enclave-to-enclave traffic in
// the Edgelet framework is sealed with this construction; the `aad` binds
// the routing header so it cannot be swapped without detection.

// Returns ciphertext || 16-byte tag.
Bytes AeadSeal(const Key256& key, const Nonce96& nonce, const Bytes& aad,
               const Bytes& plaintext);

// Verifies the tag (constant time) and decrypts; fails with Corruption on
// any mismatch.
Result<Bytes> AeadOpen(const Key256& key, const Nonce96& nonce,
                       const Bytes& aad, const Bytes& sealed);

// Deterministic nonce from a message sequence number (per-channel keys make
// this safe: each (key, seq) pair is used at most once).
Nonce96 NonceFromSequence(uint64_t channel_id, uint64_t seq);

}  // namespace edgelet::crypto

#endif  // EDGELET_CRYPTO_AEAD_H_
