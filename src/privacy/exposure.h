#ifndef EDGELET_PRIVACY_EXPOSURE_H_
#define EDGELET_PRIVACY_EXPOSURE_H_

#include <string>
#include <vector>

#include "privacy/vertical_partitioner.h"
#include "query/qep.h"

namespace edgelet::privacy {

// Threat model: a sealed-glass TEE compromise (integrity preserved,
// confidentiality lost) on one Data Processor edgelet reveals every raw
// tuple that edgelet decrypts. Horizontal partitioning bounds the tuple
// count per edgelet to C/n; vertical partitioning bounds which attributes
// co-reside. Exposure accounting quantifies both (demo §3.3 Q3).
struct OperatorExposure {
  uint64_t vertex_id = 0;
  std::string role;
  // Raw (pre-aggregation) tuples decrypted by the operator.
  uint64_t tuples = 0;
  // Attributes visible in cleartext.
  size_t num_attributes = 0;
  // tuples * num_attributes.
  uint64_t cells = 0;
};

struct ExposureReport {
  std::vector<OperatorExposure> per_operator;
  // Worst single-edgelet exposure (the number an attacker gains by
  // compromising the most exposed device).
  uint64_t max_tuples_per_edgelet = 0;
  uint64_t max_cells_per_edgelet = 0;
  uint64_t total_cells = 0;
  // Fraction of the snapshot an attacker sees by compromising one edgelet.
  double worst_snapshot_fraction = 0.0;

  std::string ToString() const;
};

// Static (plan-time) exposure analysis: assumes every snapshot partition
// reaches its quota C/n. Aggregated operators (combiner, querier) see only
// aggregates, hence zero raw tuples (paper: "only the results of the
// computations, i.e. the aggregated data, are sent").
ExposureReport ComputeExposure(const query::Qep& qep,
                               uint64_t snapshot_cardinality);

// Verifies no operator of the plan sees a forbidden attribute pair.
Status ValidateSeparation(const query::Qep& qep,
                          const std::vector<SeparationConstraint>& constraints);

}  // namespace edgelet::privacy

#endif  // EDGELET_PRIVACY_EXPOSURE_H_
