#ifndef EDGELET_PRIVACY_VERTICAL_PARTITIONER_H_
#define EDGELET_PRIVACY_VERTICAL_PARTITIONER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace edgelet::privacy {

// A pair of attributes that becomes sensitive when combined (a
// quasi-identifier, e.g. {age, region}): no single edgelet may ever hold
// both in cleartext (paper §2.1 — vertical partitioning "precludes the
// concomitant exposure of data items that become sensitive when combined").
struct SeparationConstraint {
  std::string a;
  std::string b;
};

// Attribute sets that MUST co-reside because one computation reads them
// together (e.g. the key and aggregate columns of one grouping set).
using CoAccessSet = std::vector<std::string>;

struct VerticalPartitioningResult {
  // One attribute group per Computer "column" of the plan. Attributes may
  // appear in several groups; separated pairs never share a group.
  std::vector<std::vector<std::string>> groups;
  // groups index for each co-access set i.
  std::vector<size_t> set_to_group;
};

// Builds vertical attribute groups:
//   1. every co-access set lands entirely inside one group;
//   2. no group contains both sides of any separation constraint;
//   3. groups are greedily merged (first-fit) to minimize the number of
//      computers, subject to (2) and to max_attributes_per_group (0 = no
//      cap).
// Fails if some co-access set itself violates a constraint — then the query
// is incompatible with the requested privacy level.
Result<VerticalPartitioningResult> PartitionAttributes(
    const std::vector<CoAccessSet>& co_access_sets,
    const std::vector<SeparationConstraint>& constraints,
    size_t max_attributes_per_group = 0);

// True iff `attributes` contains both endpoints of some constraint.
bool ViolatesSeparation(const std::vector<std::string>& attributes,
                        const std::vector<SeparationConstraint>& constraints);

}  // namespace edgelet::privacy

#endif  // EDGELET_PRIVACY_VERTICAL_PARTITIONER_H_
