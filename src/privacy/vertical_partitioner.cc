#include "privacy/vertical_partitioner.h"

#include <algorithm>

namespace edgelet::privacy {

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::vector<std::string> Union(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  for (const auto& s : b) {
    if (!Contains(out, s)) out.push_back(s);
  }
  return out;
}

}  // namespace

bool ViolatesSeparation(const std::vector<std::string>& attributes,
                        const std::vector<SeparationConstraint>& constraints) {
  for (const auto& c : constraints) {
    if (Contains(attributes, c.a) && Contains(attributes, c.b)) return true;
  }
  return false;
}

Result<VerticalPartitioningResult> PartitionAttributes(
    const std::vector<CoAccessSet>& co_access_sets,
    const std::vector<SeparationConstraint>& constraints,
    size_t max_attributes_per_group) {
  VerticalPartitioningResult result;
  result.set_to_group.resize(co_access_sets.size());

  for (size_t i = 0; i < co_access_sets.size(); ++i) {
    // Deduplicate the set.
    std::vector<std::string> set;
    for (const auto& a : co_access_sets[i]) {
      if (!Contains(set, a)) set.push_back(a);
    }
    if (ViolatesSeparation(set, constraints)) {
      std::string names;
      for (const auto& a : set) names += a + " ";
      return Status::FailedPrecondition(
          "co-access set {" + names +
          "} requires attributes that a separation constraint forbids "
          "together; relax the constraint or rewrite the query");
    }
    // First-fit: merge into the first existing group whose union stays
    // legal and within the size cap.
    bool placed = false;
    for (size_t g = 0; g < result.groups.size(); ++g) {
      std::vector<std::string> merged = Union(result.groups[g], set);
      if (ViolatesSeparation(merged, constraints)) continue;
      if (max_attributes_per_group > 0 &&
          merged.size() > max_attributes_per_group) {
        continue;
      }
      result.groups[g] = std::move(merged);
      result.set_to_group[i] = g;
      placed = true;
      break;
    }
    if (!placed) {
      if (max_attributes_per_group > 0 &&
          set.size() > max_attributes_per_group) {
        return Status::FailedPrecondition(
            "co-access set larger than max_attributes_per_group");
      }
      result.groups.push_back(set);
      result.set_to_group[i] = result.groups.size() - 1;
    }
  }

  if (result.groups.empty()) {
    return Status::InvalidArgument("no co-access sets given");
  }
  return result;
}

}  // namespace edgelet::privacy
