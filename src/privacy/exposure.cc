#include "privacy/exposure.h"

#include <algorithm>
#include <sstream>

namespace edgelet::privacy {

ExposureReport ComputeExposure(const query::Qep& qep,
                               uint64_t snapshot_cardinality) {
  ExposureReport report;
  const int n = std::max(qep.n(), 1);
  const uint64_t partition_quota =
      (snapshot_cardinality + n - 1) / static_cast<uint64_t>(n);

  for (const auto& v : qep.vertices()) {
    OperatorExposure e;
    e.vertex_id = v.id;
    e.role = std::string(query::OperatorRoleName(v.role));
    switch (v.role) {
      case query::OperatorRole::kDataContributor:
        // Sees only its own record: exposure 1 tuple, but it is the
        // owner's data — not counted as leakage.
        e.tuples = 0;
        break;
      case query::OperatorRole::kSnapshotBuilder:
      case query::OperatorRole::kComputer:
        e.tuples = partition_quota;
        break;
      case query::OperatorRole::kCombiner:
      case query::OperatorRole::kCombinerBackup:
      case query::OperatorRole::kQuerier:
        // Receives only aggregates.
        e.tuples = 0;
        break;
    }
    e.num_attributes = v.attributes.size();
    e.cells = e.tuples * e.num_attributes;
    report.max_tuples_per_edgelet =
        std::max(report.max_tuples_per_edgelet, e.tuples);
    report.max_cells_per_edgelet =
        std::max(report.max_cells_per_edgelet, e.cells);
    report.total_cells += e.cells;
    report.per_operator.push_back(std::move(e));
  }
  if (snapshot_cardinality > 0) {
    report.worst_snapshot_fraction =
        static_cast<double>(report.max_tuples_per_edgelet) /
        static_cast<double>(snapshot_cardinality);
  }
  return report;
}

Status ValidateSeparation(
    const query::Qep& qep,
    const std::vector<SeparationConstraint>& constraints) {
  for (const auto& v : qep.vertices()) {
    // Contributors hold their own full record by definition.
    if (v.role == query::OperatorRole::kDataContributor) continue;
    if (ViolatesSeparation(v.attributes, constraints)) {
      return Status::FailedPrecondition(
          "operator " + std::to_string(v.id) + " (" +
          std::string(query::OperatorRoleName(v.role)) +
          ") co-exposes a separated attribute pair");
    }
  }
  return Status::OK();
}

std::string ExposureReport::ToString() const {
  std::ostringstream out;
  out << "Exposure report (sealed-glass threat model)\n";
  out << "  max raw tuples on one edgelet : " << max_tuples_per_edgelet
      << "\n";
  out << "  max raw cells on one edgelet  : " << max_cells_per_edgelet
      << "\n";
  out << "  worst snapshot fraction       : " << worst_snapshot_fraction
      << "\n";
  return out.str();
}

}  // namespace edgelet::privacy
