#ifndef EDGELET_CORE_PLANNER_H_
#define EDGELET_CORE_PLANNER_H_

#include "exec/execution.h"
#include "privacy/exposure.h"
#include "resilience/overcollection.h"

namespace edgelet::core {

// Privacy knobs the demo lets attendees turn (paper §3.2 Part 1):
// horizontal partitioning via the per-edgelet raw-tuple cap, vertical
// partitioning via attribute-pair separation constraints.
struct PrivacyConfig {
  // Maximum raw tuples any single Data Processor edgelet may hold
  // (0 = unbounded => a single partition). Drives n = ceil(C / cap).
  uint64_t max_tuples_per_edgelet = 0;
  // Attribute pairs that must never co-reside (quasi-identifiers).
  std::vector<privacy::SeparationConstraint> separation;
  // Optional cap on attributes per computer (0 = unbounded).
  size_t max_attributes_per_group = 0;
};

// Execution-context traits that drive the strategy choice (the taxonomy
// of [14]: Overcollection wherever the processing is distributive and
// approximate results are acceptable; Backup otherwise, at a higher cost).
struct StrategyContext {
  // The querier demands the exact snapshot (no resampling tolerance).
  bool exact_result_required = false;
  // The crowd is barely larger than the snapshot: overcollecting
  // (n+m)/n times the data is not feasible.
  bool crowd_is_scarce = false;
};

// Recommends a resiliency strategy for `query` under `context`. Both demo
// queries are distributive, so Overcollection is the default; Backup is
// selected when the context rules Overcollection out.
exec::Strategy RecommendStrategy(const query::Query& query,
                                 const StrategyContext& context);

// The planner of the Edgelet framework: turns (query, privacy, resilience,
// strategy) into a physical Deployment, exactly the plan-shaping the demo
// visualizes — Figure 2 (partitioned QEP) and Figure 3 (Overcollection).
class Planner {
 public:
  explicit Planner(data::Schema schema) : schema_(std::move(schema)) {}

  struct Input {
    query::Query query;
    PrivacyConfig privacy;
    resilience::ResilienceConfig resilience;
    exec::Strategy strategy = exec::Strategy::kOvercollection;
    // Rank-ordered candidate hosts for Data Processor operators.
    std::vector<net::NodeId> processor_pool;
    net::NodeId querier = 0;
    // Displayed in the QEP; does not affect execution.
    size_t num_contributors = 0;
    uint64_t seed = 1;
  };

  Result<exec::Deployment> Plan(const Input& input) const;

  // Plan-time exposure analysis for a deployment (demo Q3).
  static privacy::ExposureReport Exposure(const exec::Deployment& deployment);

 private:
  data::Schema schema_;
};

}  // namespace edgelet::core

#endif  // EDGELET_CORE_PLANNER_H_
