#include "core/framework.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "net/parsim/parallel_simulator.h"
#include "query/predicate.h"

namespace edgelet::core {

EdgeletFramework::EdgeletFramework(FrameworkConfig config)
    : config_(std::move(config)) {}

EdgeletFramework::~EdgeletFramework() = default;

Status EdgeletFramework::Init() {
  if (initialized_) return Status::FailedPrecondition("already initialized");
  Rng seeds(config_.seed);

  const uint64_t sim_seed = seeds.Fork(1).NextU64();
  if (config_.sim_shards > 1 && config_.network.latency.min_latency > 0) {
    net::parsim::ParallelSimulator::Options options;
    options.num_shards = config_.sim_shards;
    // The minimum link latency is the engine's lookahead: no delivery can
    // land inside the window that sent it.
    options.lookahead = config_.network.latency.min_latency;
    sim_ = std::make_unique<net::parsim::ParallelSimulator>(sim_seed,
                                                            options);
  } else {
    if (config_.sim_shards > 1) {
      EDGELET_LOG(kWarning)
          << "sim_shards > 1 requires min_latency > 0 (the lookahead); "
          << "falling back to the serial engine";
    }
    sim_ = std::make_unique<net::Simulator>(sim_seed);
  }
  network_ = std::make_unique<net::Network>(sim_.get(), config_.network);
  authority_ =
      std::make_unique<tee::TrustAuthority>(seeds.Fork(2).NextU64());
  authority_->set_expected_measurement(
      crypto::Sha256::Hash(config_.fleet.code_identity));

  fleet_ = std::make_unique<device::Fleet>(network_.get(), authority_.get(),
                                           config_.fleet,
                                           seeds.Fork(3).NextU64());

  // The querier endpoint: an always-on machine at Santé Publique France.
  device::DeviceProfile querier_profile = device::DeviceProfile::Pc();
  querier_profile.churn = net::ChurnModel::AlwaysOn();
  querier_device_ = std::make_unique<device::Device>(
      network_.get(), authority_.get(), querier_profile,
      config_.fleet.code_identity);
  querier_node_ = querier_device_->id();
  fleet_->RegisterExternal(querier_device_.get());
  EDGELET_RETURN_NOT_OK(querier_device_->enclave().Provision());

  config_.data.num_individuals = config_.fleet.num_contributors;
  population_ = data::GenerateHealthData(config_.data,
                                         seeds.Fork(4).NextU64());
  EDGELET_RETURN_NOT_OK(fleet_->DistributeData(population_));
  EDGELET_RETURN_NOT_OK(fleet_->ProvisionAll());
  initialized_ = true;
  return Status::OK();
}

Result<exec::Deployment> EdgeletFramework::Plan(
    const query::Query& query, const PrivacyConfig& privacy,
    const resilience::ResilienceConfig& resilience, exec::Strategy strategy) {
  if (!initialized_) return Status::FailedPrecondition("call Init() first");
  Planner planner(population_.schema());
  Planner::Input input;
  input.query = query;
  input.privacy = privacy;
  input.resilience = resilience;
  input.strategy = strategy;
  for (device::Device* dev : fleet_->processors()) {
    input.processor_pool.push_back(dev->id());
  }
  input.querier = querier_node_;
  input.num_contributors = fleet_->contributors().size();
  input.seed = config_.seed;
  return planner.Plan(input);
}

Result<exec::ExecutionReport> EdgeletFramework::Execute(
    const exec::Deployment& deployment, const exec::ExecutionConfig& config) {
  if (!initialized_) return Status::FailedPrecondition("call Init() first");
  // Executions stay alive for the framework's lifetime: events scheduled
  // past the deadline (stray heartbeats, delayed emissions) may still
  // reference actor state if a later execution advances the clock.
  executions_.push_back(std::make_unique<exec::QueryExecution>(
      sim_.get(), network_.get(), fleet_.get(), deployment, config));
  exec::QueryExecution& execution = *executions_.back();
  EDGELET_RETURN_NOT_OK(execution.Start());
  EDGELET_RETURN_NOT_OK(execution.RunToCompletion());
  return execution.report();
}

Result<query::GroupingSetsResult> EdgeletFramework::CentralizedGroupingSets(
    const query::Query& query,
    const std::vector<uint64_t>& contributor_keys,
    const std::vector<size_t>& set_indices) const {
  if (query.kind != query::QueryKind::kGroupingSets) {
    return Status::InvalidArgument("not a grouping-sets query");
  }
  std::set<uint64_t> keys(contributor_keys.begin(), contributor_keys.end());
  auto id_idx = population_.schema().IndexOf(data::kContributorIdColumn);
  if (!id_idx.ok()) return id_idx.status();
  data::Table snapshot = population_.Filter([&](const data::Tuple& row) {
    return keys.count(static_cast<uint64_t>(row[*id_idx].AsInt64())) > 0;
  });
  if (set_indices.empty()) {
    return query::GroupingSetsResult::Compute(snapshot, query.grouping_sets);
  }
  return query::GroupingSetsResult::ComputeSets(snapshot,
                                                query.grouping_sets,
                                                set_indices);
}

Result<ml::Matrix> EdgeletFramework::QualifyingPoints(
    const query::Query& query) const {
  auto qualifying = query::ApplyPredicates(population_, query.predicates);
  if (!qualifying.ok()) return qualifying.status();
  return ml::ExtractPoints(*qualifying, query.kmeans.features);
}

Result<ml::KMeansKnowledge> EdgeletFramework::CentralizedKMeans(
    const query::Query& query) const {
  if (query.kind != query::QueryKind::kKMeans) {
    return Status::InvalidArgument("not a K-Means query");
  }
  auto points = QualifyingPoints(query);
  if (!points.ok()) return points.status();
  ml::KMeansConfig config;
  config.k = query.kmeans.k;
  config.seed = query.query_id;
  return ml::RunKMeans(*points, config);
}

Result<ValidityReport> EdgeletFramework::VerifyGroupingSets(
    const exec::Deployment& deployment,
    const exec::ExecutionReport& report) const {
  const query::Query& query = deployment.query;
  if (!report.success) {
    ValidityReport out;
    out.valid = false;
    out.detail = "execution did not deliver a result";
    return out;
  }
  if (report.snapshot_contributors_by_vgroup.size() !=
      deployment.vgroup_set_indices.size()) {
    return Status::InvalidArgument(
        "report/deployment vertical-group count mismatch");
  }
  // Each vertical chain sampled its own rows; recompute its grouping sets
  // centrally over exactly those rows, then stitch.
  query::GroupingSetsResult acc;
  for (size_t vg = 0; vg < deployment.vgroup_set_indices.size(); ++vg) {
    auto partial = CentralizedGroupingSets(
        query, report.snapshot_contributors_by_vgroup[vg],
        deployment.vgroup_set_indices[vg]);
    if (!partial.ok()) return partial.status();
    EDGELET_RETURN_NOT_OK(acc.Merge(*partial));
  }
  auto central = acc.Finalize();
  if (!central.ok()) return central.status();
  // Sketch-based aggregates (QUANTILE) are insertion-order dependent:
  // compare them with a relative tolerance instead of exact equality.
  // (HyperLogLog COUNT DISTINCT is order independent and compares exact.)
  std::vector<std::string> approximate;
  for (const auto& a : query.grouping_sets.aggregates) {
    if (a.fn == query::AggregateFunction::kQuantile) {
      approximate.push_back(a.OutputName());
    }
  }
  return CompareResultTables(report.result, *central, 1e-6, approximate);
}

ValidityReport CompareResultTables(
    const data::Table& distributed, const data::Table& centralized,
    double tolerance, const std::vector<std::string>& approximate_columns,
    double approximate_tolerance) {
  ValidityReport out;
  if (!(distributed.schema() == centralized.schema())) {
    out.detail = "schema mismatch: " + distributed.schema().ToString() +
                 " vs " + centralized.schema().ToString();
    return out;
  }
  if (distributed.num_rows() != centralized.num_rows()) {
    out.detail = "row count mismatch: " +
                 std::to_string(distributed.num_rows()) + " vs " +
                 std::to_string(centralized.num_rows());
    return out;
  }
  data::Table a = distributed;
  data::Table b = centralized;
  a.SortRows();
  b.SortRows();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      const data::Value& va = a.row(i)[c];
      const data::Value& vb = b.row(i)[c];
      const std::string& column = a.schema().column(c).name;
      bool approximate =
          std::find(approximate_columns.begin(), approximate_columns.end(),
                    column) != approximate_columns.end();
      double column_tolerance = approximate ? approximate_tolerance
                                            : tolerance;
      if (va.type() == data::ValueType::kDouble &&
          vb.type() == data::ValueType::kDouble) {
        double err = std::abs(va.AsDouble() - vb.AsDouble());
        double scale = std::max(1.0, std::abs(vb.AsDouble()));
        if (!approximate) {
          out.max_abs_error = std::max(out.max_abs_error, err);
        }
        if (err > column_tolerance * scale) {
          out.detail = "numeric mismatch in row " + std::to_string(i) +
                       ", column " + column;
          return out;
        }
      } else if (!(va == vb)) {
        out.detail = "value mismatch in row " + std::to_string(i) +
                     ", column " + a.schema().column(c).name + ": '" +
                     va.ToString() + "' vs '" + vb.ToString() + "'";
        return out;
      }
    }
  }
  out.valid = true;
  out.rows_compared = a.num_rows();
  out.detail = "distributed result equals centralized reference";
  return out;
}

}  // namespace edgelet::core
