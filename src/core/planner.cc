#include "core/planner.h"

#include <algorithm>

#include "common/hash.h"
#include "privacy/vertical_partitioner.h"

namespace edgelet::core {

namespace {

using exec::Strategy;
using query::OperatorRole;
using query::OperatorVertex;

// "Secure assignment by hashing public keys": a deterministic pseudo-random
// order over the processor pool that no single party controls.
std::vector<net::NodeId> HashOrder(std::vector<net::NodeId> pool,
                                   uint64_t seed) {
  std::sort(pool.begin(), pool.end(),
            [seed](net::NodeId a, net::NodeId b) {
              uint64_t ha = Mix64(a ^ seed);
              uint64_t hb = Mix64(b ^ seed);
              if (ha != hb) return ha < hb;
              return a < b;
            });
  return pool;
}

}  // namespace

exec::Strategy RecommendStrategy(const query::Query& query,
                                 const StrategyContext& context) {
  // Overcollection needs (1) a distributive/mergeable processing — both
  // supported kinds qualify: Grouping Sets aggregates merge exactly and
  // K-Means knowledge merges approximately — and (2) tolerance for a
  // resampled snapshot plus the larger crowd it consumes.
  if (context.crowd_is_scarce) return Strategy::kBackup;
  if (context.exact_result_required &&
      query.kind == query::QueryKind::kKMeans) {
    // Iterative ML under Overcollection is inherently approximate.
    return Strategy::kBackup;
  }
  return Strategy::kOvercollection;
}

Result<exec::Deployment> Planner::Plan(const Input& input) const {
  const query::Query& q = input.query;
  EDGELET_RETURN_NOT_OK(q.Validate(schema_));
  if (input.querier == 0) {
    return Status::InvalidArgument("querier node required");
  }

  exec::Deployment d;
  d.query = q;
  d.strategy = input.strategy;

  // --- Horizontal partitioning: n from the per-edgelet exposure cap.
  uint64_t cap = input.privacy.max_tuples_per_edgelet;
  if (cap == 0 || cap >= q.snapshot_cardinality) {
    d.n = 1;
  } else {
    d.n = static_cast<int>((q.snapshot_cardinality + cap - 1) / cap);
  }
  d.quota = (q.snapshot_cardinality + d.n - 1) / d.n;

  // --- Vertical partitioning from co-access sets + separation constraints.
  if (q.kind == query::QueryKind::kGroupingSets) {
    std::vector<privacy::CoAccessSet> co_access;
    co_access.reserve(q.grouping_sets.sets.size());
    for (size_t i = 0; i < q.grouping_sets.sets.size(); ++i) {
      co_access.push_back(q.grouping_sets.ColumnsForSet(i));
    }
    auto vp = privacy::PartitionAttributes(
        co_access, input.privacy.separation,
        input.privacy.max_attributes_per_group);
    if (!vp.ok()) return vp.status();
    d.vgroup_columns = vp->groups;
    d.vgroup_set_indices.assign(vp->groups.size(), {});
    for (size_t set = 0; set < vp->set_to_group.size(); ++set) {
      d.vgroup_set_indices[vp->set_to_group[set]].push_back(set);
    }
  } else {
    // K-Means needs all features (and cluster-aggregate inputs) together.
    privacy::CoAccessSet features = q.RequiredColumns();
    if (privacy::ViolatesSeparation(features, input.privacy.separation)) {
      return Status::FailedPrecondition(
          "K-Means features violate a separation constraint; clustering "
          "cannot be vertically split");
    }
    d.vgroup_columns = {features};
    d.vgroup_set_indices = {{}};
  }
  const int vgroups = static_cast<int>(d.vgroup_columns.size());

  // --- Resiliency sizing.
  int replicas = 1;  // devices per operator (Backup: b+1)
  if (input.strategy == Strategy::kOvercollection) {
    // A partition survives only if every one of its operators does: one
    // snapshot builder AND one computer per vertical group — 2 * vgroups
    // devices. (An earlier sizing used 1 + vgroups, as if the builders of
    // a partition were a single device; it under-provisions m for every
    // multi-vertical-group plan.)
    auto m = resilience::MinOvercollection(
        d.n, input.resilience.failure_probability,
        input.resilience.reliability_target,
        /*ops_per_partition=*/2 * vgroups);
    if (!m.ok()) return m.status();
    d.m = *m;
  } else {
    d.m = 0;
    int num_operators = d.n * 2 * vgroups + 1;  // builders+computers+comb
    auto b = resilience::MinBackupReplicas(
        num_operators, input.resilience.failure_probability,
        input.resilience.reliability_target);
    if (!b.ok()) return b.status();
    replicas = *b + 1;
  }
  const int total = d.n + d.m;

  // --- Device assignment.
  const size_t combiner_count =
      input.strategy == Strategy::kOvercollection
          ? 2  // Combiner + Active Backup, both live
          : static_cast<size_t>(replicas);
  // Per partition: one builder chain and one computer per vertical group.
  const size_t needed =
      static_cast<size_t>(total) * 2 * vgroups * replicas + combiner_count;
  std::vector<net::NodeId> order = HashOrder(input.processor_pool,
                                             Mix64(q.query_id) ^ input.seed);
  if (order.size() < needed) {
    return Status::FailedPrecondition(
        "processor pool too small: need " + std::to_string(needed) +
        " devices, have " + std::to_string(order.size()));
  }
  size_t next = 0;
  auto take = [&order, &next](size_t count) {
    std::vector<net::NodeId> group(order.begin() + next,
                                   order.begin() + next + count);
    next += count;
    return group;
  };

  d.sb_groups.reserve(total);
  d.computer_groups.reserve(total);
  for (int p = 0; p < total; ++p) {
    std::vector<std::vector<net::NodeId>> sb_per_vgroup;
    std::vector<std::vector<net::NodeId>> comp_per_vgroup;
    sb_per_vgroup.reserve(vgroups);
    comp_per_vgroup.reserve(vgroups);
    for (int vg = 0; vg < vgroups; ++vg) {
      sb_per_vgroup.push_back(take(replicas));
      comp_per_vgroup.push_back(take(replicas));
    }
    d.sb_groups.push_back(std::move(sb_per_vgroup));
    d.computer_groups.push_back(std::move(comp_per_vgroup));
  }
  d.combiner_group = take(combiner_count);
  d.querier = input.querier;
  // Whatever the hash order left unassigned becomes the rank-ordered spare
  // pool for mid-query repair: provisioned with the published plan, idle
  // (and free) unless a repair controller recruits them.
  d.spare_pool.assign(order.begin() + next, order.end());

  // --- Logical QEP (rendering + exposure analysis).
  query::Qep& qep = d.qep;
  qep.SetPartitioning(d.n, d.m);
  qep.set_num_vertical_groups(vgroups);

  uint64_t querier_v = qep.AddVertex({.role = OperatorRole::kQuerier});
  std::vector<uint64_t> combiner_vs;
  for (size_t i = 0; i < d.combiner_group.size(); ++i) {
    OperatorVertex v;
    v.role = (i == 0) ? OperatorRole::kCombiner
                      : OperatorRole::kCombinerBackup;
    v.device = d.combiner_group[i];
    uint64_t id = qep.AddVertex(std::move(v));
    combiner_vs.push_back(id);
    EDGELET_RETURN_NOT_OK(qep.AddEdge(id, querier_v));
  }

  for (int p = 0; p < total; ++p) {
    for (int vg = 0; vg < vgroups; ++vg) {
      std::vector<uint64_t> sb_vs;
      for (net::NodeId dev : d.sb_groups[p][vg]) {
        OperatorVertex v;
        v.role = OperatorRole::kSnapshotBuilder;
        v.partition = p;
        v.vgroup = vg;
        v.attributes = d.vgroup_columns[vg];
        v.device = dev;
        sb_vs.push_back(qep.AddVertex(std::move(v)));
      }
      for (net::NodeId dev : d.computer_groups[p][vg]) {
        OperatorVertex v;
        v.role = OperatorRole::kComputer;
        v.partition = p;
        v.vgroup = vg;
        v.attributes = d.vgroup_columns[vg];
        v.set_indices = d.vgroup_set_indices[vg];
        v.device = dev;
        uint64_t id = qep.AddVertex(std::move(v));
        for (uint64_t sb : sb_vs) {
          EDGELET_RETURN_NOT_OK(qep.AddEdge(sb, id));
        }
        for (uint64_t cv : combiner_vs) {
          EDGELET_RETURN_NOT_OK(qep.AddEdge(id, cv));
        }
      }
    }
  }

  // Contributors hold their own record (all columns); exempt from the
  // separation audit by role.
  std::vector<std::string> all_columns;
  for (const auto& group : d.vgroup_columns) {
    for (const auto& c : group) {
      if (std::find(all_columns.begin(), all_columns.end(), c) ==
          all_columns.end()) {
        all_columns.push_back(c);
      }
    }
  }
  for (size_t i = 0; i < input.num_contributors; ++i) {
    OperatorVertex v;
    v.role = OperatorRole::kDataContributor;
    v.attributes = all_columns;
    qep.AddVertex(std::move(v));
  }

  EDGELET_RETURN_NOT_OK(qep.Validate());
  EDGELET_RETURN_NOT_OK(
      privacy::ValidateSeparation(qep, input.privacy.separation));
  return d;
}

privacy::ExposureReport Planner::Exposure(const exec::Deployment& d) {
  return privacy::ComputeExposure(d.qep, d.query.snapshot_cardinality);
}

}  // namespace edgelet::core
