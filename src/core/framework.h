#ifndef EDGELET_CORE_FRAMEWORK_H_
#define EDGELET_CORE_FRAMEWORK_H_

#include <memory>

#include <vector>

#include "core/planner.h"
#include "data/generator.h"
#include "device/fleet.h"
#include "ml/metrics.h"

namespace edgelet::core {

struct FrameworkConfig {
  device::FleetConfig fleet;
  net::NetworkConfig network;
  data::HealthDataParams data;
  uint64_t seed = 1;
  // Discrete-event engine shards. 1 = the serial Simulator; >1 = the
  // window-barrier parsim::ParallelSimulator with that many worker
  // threads, using the network's min_latency as the lookahead. Results
  // are bit-identical for every value (see net/parsim/engine.h); a
  // min_latency of 0 forces the serial engine since no positive lookahead
  // exists.
  size_t sim_shards = 1;

  FrameworkConfig() {
    // One individual per contributing device.
    data.num_individuals = fleet.num_contributors;
  }
};

// Verdict of comparing the distributed answer to a centralized execution
// over the same snapshot (the demo's "run the processing centrally to
// verify the results").
struct ValidityReport {
  bool valid = false;
  size_t rows_compared = 0;
  double max_abs_error = 0.0;
  std::string detail;
};

// The Edgelet manager of the demo platform: owns the simulator, network,
// trust authority, device fleet and population data; plans and executes
// queries; verifies results against centralized references.
class EdgeletFramework {
 public:
  explicit EdgeletFramework(FrameworkConfig config);
  ~EdgeletFramework();

  EdgeletFramework(const EdgeletFramework&) = delete;
  EdgeletFramework& operator=(const EdgeletFramework&) = delete;

  // Builds everything (devices, data, attestation). Must be called once
  // before Plan/Execute.
  Status Init();

  net::SimEngine* sim() { return sim_.get(); }
  net::Network* network() { return network_.get(); }
  device::Fleet* fleet() { return fleet_.get(); }
  const data::Table& population() const { return population_; }
  net::NodeId querier_node() const { return querier_node_; }

  // Plans a query with this framework's fleet as the processor pool.
  Result<exec::Deployment> Plan(const query::Query& query,
                                const PrivacyConfig& privacy,
                                const resilience::ResilienceConfig& resilience,
                                exec::Strategy strategy);

  // Runs a planned deployment on the simulator and returns the report.
  Result<exec::ExecutionReport> Execute(const exec::Deployment& deployment,
                                        const exec::ExecutionConfig& config);

  // The most recent execution (alive for the framework's lifetime);
  // exposes the ExecutionTrace when the run enabled tracing.
  const exec::QueryExecution* last_execution() const {
    return executions_.empty() ? nullptr : executions_.back().get();
  }

  // Centralized Grouping Sets over the rows of the given contributors,
  // restricted to the given grouping-set indices (empty = all sets).
  Result<query::GroupingSetsResult> CentralizedGroupingSets(
      const query::Query& query,
      const std::vector<uint64_t>& contributor_keys,
      const std::vector<size_t>& set_indices) const;

  // Centralized K-Means over every qualifying row (reference for accuracy
  // metrics).
  Result<ml::KMeansKnowledge> CentralizedKMeans(
      const query::Query& query) const;

  // Qualifying feature matrix for K-Means accuracy evaluation.
  Result<ml::Matrix> QualifyingPoints(const query::Query& query) const;

  // Compares a distributed Grouping Sets result to the centralized
  // computation over the same per-vertical-group snapshots (Validity
  // property; the demo's "run the processing centrally").
  Result<ValidityReport> VerifyGroupingSets(
      const exec::Deployment& deployment,
      const exec::ExecutionReport& report) const;

 private:
  FrameworkConfig config_;
  std::unique_ptr<net::SimEngine> sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<tee::TrustAuthority> authority_;
  std::unique_ptr<device::Fleet> fleet_;
  std::unique_ptr<device::Device> querier_device_;
  std::vector<std::unique_ptr<exec::QueryExecution>> executions_;
  net::NodeId querier_node_ = 0;
  data::Table population_;
  bool initialized_ = false;
};

// Compares two finalized result tables cell by cell with a floating-point
// tolerance; returns a filled ValidityReport. Columns listed in
// `approximate_columns` (sketch-based aggregates, whose estimates are
// insertion-order dependent) compare under `approximate_tolerance`
// relative error instead of exact equality.
ValidityReport CompareResultTables(
    const data::Table& distributed, const data::Table& centralized,
    double tolerance = 1e-6,
    const std::vector<std::string>& approximate_columns = {},
    double approximate_tolerance = 0.05);

}  // namespace edgelet::core

#endif  // EDGELET_CORE_FRAMEWORK_H_
