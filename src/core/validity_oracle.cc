#include "core/validity_oracle.h"

namespace edgelet::core {

const char* TrialVerdictName(TrialVerdict verdict) {
  switch (verdict) {
    case TrialVerdict::kValid:
      return "valid";
    case TrialVerdict::kInvalid:
      return "invalid";
    case TrialVerdict::kFailedSafe:
      return "failed-safe";
  }
  return "unknown";
}

Result<OracleReport> ValidityOracle::Audit(
    const exec::Deployment& deployment,
    const exec::ExecutionReport& report) const {
  if (deployment.query.kind != query::QueryKind::kGroupingSets) {
    return Status::InvalidArgument(
        "validity oracle only audits Grouping Sets executions");
  }
  OracleReport out;
  if (!report.success) {
    // No result delivered: the failure is visible to the querier, which is
    // exactly the safe failure mode the invariant permits.
    out.verdict = TrialVerdict::kFailedSafe;
    out.detail = "no result before the deadline";
    return out;
  }
  auto validity = framework_->VerifyGroupingSets(deployment, report);
  if (!validity.ok()) return validity.status();
  out.validity = *validity;
  out.verdict =
      validity->valid ? TrialVerdict::kValid : TrialVerdict::kInvalid;
  out.detail = validity->detail;
  return out;
}

}  // namespace edgelet::core
