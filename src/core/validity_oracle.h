#ifndef EDGELET_CORE_VALIDITY_ORACLE_H_
#define EDGELET_CORE_VALIDITY_ORACLE_H_

#include <string>

#include "core/framework.h"

namespace edgelet::core {

// Classification of one trial under fault injection. The paper's validity
// invariant is that kInvalid never occurs: an execution either delivers
// the centrally-recomputable answer (kValid) or visibly fails to deliver
// one at all (kFailedSafe) — it must never *succeed with a wrong answer*.
enum class TrialVerdict {
  kValid,       // delivered, and equal to the centralized reference
  kInvalid,     // delivered, but diverges from the reference — a safety bug
  kFailedSafe,  // did not deliver a result before the deadline
};

const char* TrialVerdictName(TrialVerdict verdict);

struct OracleReport {
  TrialVerdict verdict = TrialVerdict::kFailedSafe;
  // The underlying table comparison; meaningful when the execution
  // succeeded (rows_compared / max_abs_error / mismatch detail).
  ValidityReport validity;
  std::string detail;
};

// Audits a distributed execution against a centralized rerun of the same
// deployed query over the exact crowd sample the execution recorded
// (ExecutionReport::snapshot_contributors_by_vgroup). This is the trial
// classifier behind the chaos matrix: every fault scenario must land each
// trial in kValid or kFailedSafe, never kInvalid.
class ValidityOracle {
 public:
  // The framework must outlive the oracle and be the one that produced the
  // reports being audited (it owns the population the rerun reads).
  explicit ValidityOracle(const EdgeletFramework* framework)
      : framework_(framework) {}

  // Classifies one trial. Errors (not verdicts) are reserved for audits
  // that cannot run at all: a non-Grouping-Sets query, or a report whose
  // recorded snapshot does not match the deployment shape.
  Result<OracleReport> Audit(const exec::Deployment& deployment,
                             const exec::ExecutionReport& report) const;

 private:
  const EdgeletFramework* framework_;
};

}  // namespace edgelet::core

#endif  // EDGELET_CORE_VALIDITY_ORACLE_H_
