#ifndef EDGELET_DATA_VALUE_H_
#define EDGELET_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/serialize.h"
#include "common/status.h"

namespace edgelet::data {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ValueTypeToString(ValueType t);

// A single cell. Small tagged union; copyable. NULL compares equal to NULL
// and sorts before every non-null value (SQL-style total order for grouping).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // Numeric widening: int64 or double -> double. Fails on string/null.
  Result<double> ToDouble() const;

  // Renders for CSV / reports ("" for NULL).
  std::string ToString() const;

  void Serialize(Writer* w) const;
  static Result<Value> Deserialize(Reader* r);

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Total order across types: NULL < int/double (by numeric value) < string.
  bool operator<(const Value& other) const;

  // Stable hash for grouping keys.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace edgelet::data

#endif  // EDGELET_DATA_VALUE_H_
