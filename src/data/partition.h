#ifndef EDGELET_DATA_PARTITION_H_
#define EDGELET_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace edgelet::data {

// Horizontal partitioning by hashing the contributor key (the paper assigns
// Data Contributors to Snapshot Builders "by hashing their public key").
// Hash assignment keeps every partition an i.i.d. sample of the snapshot,
// which is what makes each of the n+m overcollected partitions
// "representative" in the validity argument.
//
// Returns the partition index in [0, num_partitions) for a contributor key.
uint32_t PartitionForKey(uint64_t contributor_key, uint32_t num_partitions);

// Splits `table` into `num_partitions` tables keyed on the INT64 column
// `key_column`. Every output table shares the input schema.
Result<std::vector<Table>> PartitionByHash(const Table& table,
                                           std::string_view key_column,
                                           uint32_t num_partitions);

// Vertical partitioning: one projection per attribute group. Each group
// must be a subset of the schema. `always_include` columns (e.g. the
// grouping keys) are prepended to every group if not already present.
Result<std::vector<Table>> PartitionVertically(
    const Table& table, const std::vector<std::vector<std::string>>& groups,
    const std::vector<std::string>& always_include);

}  // namespace edgelet::data

#endif  // EDGELET_DATA_PARTITION_H_
