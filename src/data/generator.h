#ifndef EDGELET_DATA_GENERATOR_H_
#define EDGELET_DATA_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "data/table.h"

namespace edgelet::data {

// Synthetic stand-in for the DomYcile population (the paper's field data:
// 8,000 elderly people receiving home care in the Yvelines district, whose
// medical records live on secure home boxes). Records carry demographic and
// clinical attributes plus a dependency level; rows are drawn from latent
// profiles so clustering experiments (K-Means) have recoverable structure.
//
// Schema:
//   contributor_id INT64   -- stable id of the owning individual
//   age            INT64   -- years
//   sex            STRING  -- "F" / "M"
//   region         STRING  -- district name
//   bmi            DOUBLE  -- body-mass index
//   systolic_bp    DOUBLE  -- mm Hg
//   chronic_count  INT64   -- number of chronic conditions
//   dependency     INT64   -- GIR-style dependency level, 1 (high) .. 6 (low)
//   latent_profile INT64   -- ground-truth cluster (kept for evaluation only;
//                              never sent to data processors)
struct HealthDataParams {
  uint64_t num_individuals = 1000;
  // Number of latent health profiles (ground truth for clustering).
  int num_profiles = 4;
  // Minimum age of the generated population (the demo query targets > 65).
  int min_age = 60;
  int max_age = 100;
};

// Columns that identify the latent structure; excluded from query payloads.
inline constexpr char kLatentProfileColumn[] = "latent_profile";
inline constexpr char kContributorIdColumn[] = "contributor_id";

Schema HealthSchema();

// Deterministic for a given (params, seed).
Table GenerateHealthData(const HealthDataParams& params, uint64_t seed);

// Convenience: the attribute names holding numeric clinical features used
// by K-Means experiments.
std::vector<std::string> HealthNumericFeatures();

}  // namespace edgelet::data

#endif  // EDGELET_DATA_GENERATOR_H_
