#include "data/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace edgelet::data {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(
          std::string("cannot convert ") +
          std::string(ValueTypeToString(type())) + " to double");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

void Value::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      w->PutVarintSigned(AsInt64());
      break;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      break;
    case ValueType::kString:
      w->PutString(AsString());
      break;
  }
}

Result<Value> Value::Deserialize(Reader* r) {
  auto tag = r->GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<ValueType>(*tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      auto v = r->GetVarintSigned();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case ValueType::kDouble: {
      auto v = r->GetDouble();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case ValueType::kString: {
      auto v = r->GetString();
      if (!v.ok()) return v.status();
      return Value(std::move(*v));
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(*tag));
}

bool Value::operator<(const Value& other) const {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type()), rb = rank(other.type());
  if (ra != rb) return ra < rb;
  switch (type()) {
    case ValueType::kNull:
      return false;  // NULL == NULL
    case ValueType::kInt64:
      if (other.type() == ValueType::kInt64) {
        return AsInt64() < other.AsInt64();
      }
      return static_cast<double>(AsInt64()) < other.AsDouble();
    case ValueType::kDouble:
      if (other.type() == ValueType::kInt64) {
        return AsDouble() < static_cast<double>(other.AsInt64());
      }
      return AsDouble() < other.AsDouble();
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6E756C6CULL;
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()) ^ 0x01);
    case ValueType::kDouble: {
      double d = AsDouble();
      // Normalize so 1.0 and integer 1 that were stored as double hash
      // consistently with themselves across platforms; -0.0 folds to +0.0.
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x02);
    }
    case ValueType::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

}  // namespace edgelet::data
