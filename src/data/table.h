#ifndef EDGELET_DATA_TABLE_H_
#define EDGELET_DATA_TABLE_H_

#include <functional>
#include <vector>

#include "data/schema.h"
#include "data/value.h"

namespace edgelet::data {

using Tuple = std::vector<Value>;

// Row-oriented in-memory relation. Edgelet partitions are small (C/n tuples,
// typically hundreds), so a simple row store is the right representation;
// the engine never materializes the full crowd dataset in one place.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  // Appends a row after checking arity and per-column type (NULL fits any
  // column).
  Status Append(Tuple row);
  // Appends without validation (trusted internal paths).
  void AppendUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  // Value of the named column in row i.
  Result<Value> At(size_t row_index, std::string_view column) const;

  // New table with only the named columns, in order.
  Result<Table> Project(const std::vector<std::string>& columns) const;

  // New table with rows satisfying `pred`.
  Table Filter(const std::function<bool(const Tuple&)>& pred) const;

  // Appends all rows of `other`; schemas must match exactly.
  Status Concat(const Table& other);
  // Move-append: steals `other`'s rows (leaving it empty) instead of
  // copying every tuple. The fast path when the receiver is still empty is
  // a plain vector move.
  Status Concat(Table&& other);

  // Relinquishes the row storage (the table is left empty). Lets trusted
  // consumers move tuples out of a decoded message instead of copying.
  std::vector<Tuple> TakeRows() {
    std::vector<Tuple> out = std::move(rows_);
    rows_.clear();
    return out;
  }

  // Deterministic order: sorts rows lexicographically by value. Used to
  // compare distributed and centralized results independent of arrival
  // order.
  void SortRows();

  // Column as doubles (int64 widened); fails on strings/NULL.
  Result<std::vector<double>> NumericColumn(std::string_view column) const;

  void Serialize(Writer* w) const;
  static Result<Table> Deserialize(Reader* r);

  bool operator==(const Table& other) const {
    return schema_ == other.schema_ && rows_ == other.rows_;
  }

  // Pretty grid rendering (up to max_rows rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace edgelet::data

#endif  // EDGELET_DATA_TABLE_H_
