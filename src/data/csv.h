#ifndef EDGELET_DATA_CSV_H_
#define EDGELET_DATA_CSV_H_

#include <string>

#include "data/table.h"

namespace edgelet::data {

// Renders a table as RFC-4180-ish CSV with a header row; fields containing
// commas, quotes, or newlines are quoted.
std::string TableToCsv(const Table& table);

// Parses CSV text against the given schema (header row required and checked
// against the schema's column names). Empty fields become NULL; INT64 and
// DOUBLE fields are parsed strictly.
Result<Table> TableFromCsv(const std::string& csv, const Schema& schema);

// Convenience file helpers.
Status WriteCsvFile(const std::string& path, const Table& table);
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema);

}  // namespace edgelet::data

#endif  // EDGELET_DATA_CSV_H_
