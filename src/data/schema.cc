#include "data/schema.h"

namespace edgelet::data {

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("column not in schema: " + std::string(name));
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    auto idx = IndexOf(name);
    if (!idx.ok()) return idx.status();
    cols.push_back(columns_[*idx]);
  }
  return Schema(std::move(cols));
}

void Schema::Serialize(Writer* w) const {
  w->PutVarint(columns_.size());
  for (const auto& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> Schema::Deserialize(Reader* r) {
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  std::vector<Column> cols;
  cols.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto name = r->GetString();
    if (!name.ok()) return name.status();
    auto type = r->GetU8();
    if (!type.ok()) return type.status();
    if (*type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("invalid column type tag");
    }
    cols.push_back({std::move(*name), static_cast<ValueType>(*type)});
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += std::string(ValueTypeToString(columns_[i].type));
  }
  out += ")";
  return out;
}

}  // namespace edgelet::data
