#include "data/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace edgelet::data {

namespace {

// Latent health profiles. Means chosen so profiles are separable but
// overlapping, like real clinical subpopulations.
struct Profile {
  double age_mean, age_sd;
  double bmi_mean, bmi_sd;
  double bp_mean, bp_sd;
  double chronic_mean;
  double dependency_mean;  // 1 (heavy dependency) .. 6 (autonomous)
};

constexpr std::array<Profile, 6> kProfiles = {{
    // robust elderly
    {68, 4, 24.0, 2.5, 125, 8, 0.8, 5.4},
    // hypertensive / overweight
    {74, 5, 29.5, 3.0, 152, 10, 2.2, 4.2},
    // frail, multi-morbid
    {85, 5, 22.0, 2.8, 138, 12, 4.5, 2.0},
    // diabetic-profile
    {71, 6, 31.5, 3.5, 142, 9, 3.1, 3.6},
    // very old, low BMI, dependent
    {90, 4, 20.5, 2.0, 130, 10, 3.8, 1.6},
    // active young-elderly
    {64, 3, 25.5, 2.2, 122, 7, 0.4, 5.8},
}};

constexpr std::array<const char*, 6> kRegions = {
    "Versailles", "Rambouillet", "Mantes",
    "Saint-Germain", "Poissy", "Trappes"};

int64_t ClampInt(double v, int64_t lo, int64_t hi) {
  int64_t i = static_cast<int64_t>(std::llround(v));
  return std::clamp(i, lo, hi);
}

}  // namespace

Schema HealthSchema() {
  return Schema({
      {"contributor_id", ValueType::kInt64},
      {"age", ValueType::kInt64},
      {"sex", ValueType::kString},
      {"region", ValueType::kString},
      {"bmi", ValueType::kDouble},
      {"systolic_bp", ValueType::kDouble},
      {"chronic_count", ValueType::kInt64},
      {"dependency", ValueType::kInt64},
      {"latent_profile", ValueType::kInt64},
  });
}

std::vector<std::string> HealthNumericFeatures() {
  return {"age", "bmi", "systolic_bp", "chronic_count"};
}

Table GenerateHealthData(const HealthDataParams& params, uint64_t seed) {
  Rng rng(seed);
  int num_profiles =
      std::clamp<int>(params.num_profiles, 1, kProfiles.size());

  Table table(HealthSchema());
  table.Reserve(params.num_individuals);
  for (uint64_t i = 0; i < params.num_individuals; ++i) {
    int p = static_cast<int>(rng.NextBelow(num_profiles));
    const Profile& prof = kProfiles[p];

    int64_t age = ClampInt(rng.NextGaussian(prof.age_mean, prof.age_sd),
                           params.min_age, params.max_age);
    double bmi = std::clamp(rng.NextGaussian(prof.bmi_mean, prof.bmi_sd),
                            14.0, 45.0);
    double bp = std::clamp(rng.NextGaussian(prof.bp_mean, prof.bp_sd),
                           90.0, 210.0);
    int64_t chronic =
        ClampInt(prof.chronic_mean + rng.NextGaussian() * 1.0, 0, 9);
    // Dependency correlates with profile mean, with mild noise.
    int64_t dependency =
        ClampInt(prof.dependency_mean + rng.NextGaussian() * 0.6, 1, 6);

    Tuple row;
    row.reserve(9);
    row.emplace_back(static_cast<int64_t>(i + 1));
    row.emplace_back(age);
    row.emplace_back(std::string(rng.NextBernoulli(0.62) ? "F" : "M"));
    row.emplace_back(
        std::string(kRegions[rng.NextBelow(kRegions.size())]));
    row.emplace_back(bmi);
    row.emplace_back(bp);
    row.emplace_back(chronic);
    row.emplace_back(dependency);
    row.emplace_back(static_cast<int64_t>(p));
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

}  // namespace edgelet::data
