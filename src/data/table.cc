#include "data/table.h"

#include <algorithm>

namespace edgelet::data {

Status Table::Append(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': got " +
          std::string(ValueTypeToString(row[i].type())) + ", want " +
          std::string(ValueTypeToString(schema_.column(i).type)));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::At(size_t row_index, std::string_view column) const {
  if (row_index >= rows_.size()) {
    return Status::OutOfRange("row index " + std::to_string(row_index));
  }
  auto idx = schema_.IndexOf(column);
  if (!idx.ok()) return idx.status();
  return rows_[row_index][*idx];
}

Result<Table> Table::Project(const std::vector<std::string>& columns) const {
  auto sub_schema = schema_.Project(columns);
  if (!sub_schema.ok()) return sub_schema.status();
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const auto& c : columns) {
    auto idx = schema_.IndexOf(c);
    if (!idx.ok()) return idx.status();
    indices.push_back(*idx);
  }
  Table out(std::move(*sub_schema));
  out.Reserve(rows_.size());
  for (const auto& r : rows_) {
    Tuple t;
    t.reserve(indices.size());
    for (size_t i : indices) t.push_back(r[i]);
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Table Table::Filter(const std::function<bool(const Tuple&)>& pred) const {
  Table out(schema_);
  for (const auto& r : rows_) {
    if (pred(r)) out.AppendUnchecked(r);
  }
  return out;
}

Status Table::Concat(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("cannot concat tables: schema mismatch " +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString());
  }
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  return Status::OK();
}

Status Table::Concat(Table&& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("cannot concat tables: schema mismatch " +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString());
  }
  if (rows_.empty()) {
    rows_ = std::move(other.rows_);
  } else {
    rows_.insert(rows_.end(), std::make_move_iterator(other.rows_.begin()),
                 std::make_move_iterator(other.rows_.end()));
  }
  other.rows_.clear();
  return Status::OK();
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
}

Result<std::vector<double>> Table::NumericColumn(
    std::string_view column) const {
  auto idx = schema_.IndexOf(column);
  if (!idx.ok()) return idx.status();
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) {
    auto d = r[*idx].ToDouble();
    if (!d.ok()) return d.status();
    out.push_back(*d);
  }
  return out;
}

void Table::Serialize(Writer* w) const {
  schema_.Serialize(w);
  w->PutVarint(rows_.size());
  for (const auto& r : rows_) {
    for (const auto& v : r) v.Serialize(w);
  }
}

Result<Table> Table::Deserialize(Reader* r) {
  auto schema = Schema::Deserialize(r);
  if (!schema.ok()) return schema.status();
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  Table out(std::move(*schema));
  out.Reserve(*n);
  const size_t arity = out.schema().num_columns();
  for (uint64_t i = 0; i < *n; ++i) {
    Tuple t;
    t.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      auto v = Value::Deserialize(r);
      if (!v.ok()) return v.status();
      t.push_back(std::move(*v));
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < shown; ++i) {
    for (size_t c = 0; c < rows_[i].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[i][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace edgelet::data
