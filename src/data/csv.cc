#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace edgelet::data {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

// Splits one logical CSV record starting at *pos; advances *pos past the
// record's trailing newline. Handles quoted fields with embedded newlines.
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return Status::Corruption("quote in unquoted CSV field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) return Status::Corruption("unterminated quoted CSV field");
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

Result<Value> ParseField(const std::string& field, ValueType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::Corruption("bad INT64 field: '" + field + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::Corruption("bad DOUBLE field: '" + field + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Corruption("bad field type");
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ",";
    out += QuoteField(schema.column(i).name);
  }
  out += "\n";
  for (const auto& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += QuoteField(row[i].ToString());
    }
    out += "\n";
  }
  return out;
}

Result<Table> TableFromCsv(const std::string& csv, const Schema& schema) {
  size_t pos = 0;
  auto header = ParseRecord(csv, &pos);
  if (!header.ok()) return header.status();
  if (header->size() != schema.num_columns()) {
    return Status::Corruption("CSV header arity mismatch");
  }
  for (size_t i = 0; i < header->size(); ++i) {
    if ((*header)[i] != schema.column(i).name) {
      return Status::Corruption("CSV header column '" + (*header)[i] +
                                "' != schema column '" +
                                schema.column(i).name + "'");
    }
  }
  Table out(schema);
  while (pos < csv.size()) {
    // Skip blank trailing lines.
    if (csv[pos] == '\n' || csv[pos] == '\r') {
      ++pos;
      continue;
    }
    auto fields = ParseRecord(csv, &pos);
    if (!fields.ok()) return fields.status();
    if (fields->size() != schema.num_columns()) {
      return Status::Corruption("CSV record arity mismatch");
    }
    Tuple row;
    row.reserve(fields->size());
    for (size_t i = 0; i < fields->size(); ++i) {
      auto v = ParseField((*fields)[i], schema.column(i).type);
      if (!v.ok()) return v.status();
      row.push_back(std::move(*v));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const Table& table) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::Internal("cannot open for write: " + path);
  f << TableToCsv(table);
  if (!f) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return TableFromCsv(ss.str(), schema);
}

}  // namespace edgelet::data
