#ifndef EDGELET_DATA_SCHEMA_H_
#define EDGELET_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/value.h"

namespace edgelet::data {

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

// Ordered list of named, typed columns. Edgelet data is a horizontal
// partitioning of one shared schema, so every participant agrees on this.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the named column, or NotFound.
  Result<size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const;

  // Schema restricted to `names`, in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  void Serialize(Writer* w) const;
  static Result<Schema> Deserialize(Reader* r);

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace edgelet::data

#endif  // EDGELET_DATA_SCHEMA_H_
