#include "data/partition.h"

#include <algorithm>

#include "common/hash.h"

namespace edgelet::data {

uint32_t PartitionForKey(uint64_t contributor_key, uint32_t num_partitions) {
  return static_cast<uint32_t>(Mix64(contributor_key) % num_partitions);
}

Result<std::vector<Table>> PartitionByHash(const Table& table,
                                           std::string_view key_column,
                                           uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  auto idx = table.schema().IndexOf(key_column);
  if (!idx.ok()) return idx.status();
  if (table.schema().column(*idx).type != ValueType::kInt64) {
    return Status::InvalidArgument("partition key column must be INT64");
  }
  std::vector<Table> out;
  out.reserve(num_partitions);
  for (uint32_t i = 0; i < num_partitions; ++i) {
    out.emplace_back(table.schema());
  }
  for (const auto& row : table.rows()) {
    if (row[*idx].is_null()) {
      return Status::InvalidArgument("NULL partition key");
    }
    uint64_t key = static_cast<uint64_t>(row[*idx].AsInt64());
    out[PartitionForKey(key, num_partitions)].AppendUnchecked(row);
  }
  return out;
}

Result<std::vector<Table>> PartitionVertically(
    const Table& table, const std::vector<std::vector<std::string>>& groups,
    const std::vector<std::string>& always_include) {
  std::vector<Table> out;
  out.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<std::string> columns = always_include;
    for (const auto& col : group) {
      if (std::find(columns.begin(), columns.end(), col) == columns.end()) {
        columns.push_back(col);
      }
    }
    auto projected = table.Project(columns);
    if (!projected.ok()) return projected.status();
    out.push_back(std::move(*projected));
  }
  return out;
}

}  // namespace edgelet::data
