#include "exec/combiner.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/metrics.h"

namespace edgelet::exec {

CombinerActor::CombinerActor(net::SimEngine* sim, device::Device* dev,
                             Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {
  replica_ = std::make_unique<ReplicaRole>(sim, dev, config_.replica);
  replica_->set_on_promote([this]() { EmitPending(); });
  if (config_.repair.enabled) {
    controller_ = std::make_unique<RepairController>(sim, dev, config_.repair);
    controller_->set_done([this]() { return result_ready_; });
  }
}

void CombinerActor::Start() {
  replica_->Start();
  if (controller_ != nullptr) controller_->Start();
  if (config_.emit_at != kSimTimeNever) {
    sim()->ScheduleAt(dev()->id(), config_.emit_at, [this]() { OnEmitTimer(); });
  }
}

void CombinerActor::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kGsPartial:
      if (config_.mode == Mode::kGroupingSets) OnGsPartial(msg);
      break;
    case kKmFinal:
      if (config_.mode == Mode::kKMeans) OnKmFinal(msg);
      break;
    case kLeaderPing: {
      auto ping = LeaderPingMsg::Decode(msg.payload);
      if (ping.ok()) replica_->HandlePing(*ping);
      break;
    }
    case kOperatorHeartbeat: {
      if (controller_ == nullptr) break;
      auto beat = OperatorHeartbeatMsg::Decode(msg.payload);
      if (beat.ok()) controller_->OnHeartbeat(*beat);
      break;
    }
    case kRecruitAck: {
      if (controller_ == nullptr) break;
      if (!OpenSealed(msg).ok()) break;
      auto ack = RecruitAckMsg::Decode(opened_payload());
      if (ack.ok()) controller_->OnRecruitAck(*ack);
      break;
    }
    default:
      break;
  }
}

void CombinerActor::OnGsPartial(const net::Message& msg) {
  // Keep accepting partials while a combine is in flight (combining_):
  // if that combine fails, a spare partition that arrived meanwhile is
  // exactly what the retry needs.
  if (result_ready_) return;
  if (!OpenSealed(msg).ok()) return;
  auto partial = GsPartialMsg::Decode(opened_payload());
  if (!partial.ok() || partial->query_id != config_.query_id) return;
  // Wire fields are attacker-visible inputs even after AEAD (a compromised
  // processor seals what it likes): an out-of-range vgroup would both
  // satisfy the completion count and index out of bounds in
  // CombineAndEmitGs; an out-of-range partition would grow state forever.
  if (partial->vgroup >= config_.num_vgroups) {
    EDGELET_LOG(kWarning) << "combiner: rejecting partial with vgroup "
                          << partial->vgroup << " >= " << config_.num_vgroups;
    return;
  }
  if (config_.total_partitions > 0 &&
      partial->partition >= static_cast<uint32_t>(config_.total_partitions)) {
    EDGELET_LOG(kWarning) << "combiner: rejecting partial with partition "
                          << partial->partition << " >= "
                          << config_.total_partitions;
    return;
  }

  PartitionState& state = partitions_[partial->partition];
  if (state.complete) return;
  if (state.by_vgroup.count(partial->vgroup)) return;  // duplicate
  state.by_vgroup.emplace(
      partial->vgroup,
      std::make_pair(partial->epoch, std::move(partial->result)));
  if (controller_ != nullptr) {
    controller_->NotePartialDelivered(partial->partition, partial->vgroup,
                                      partial->epoch);
  }

  if (state.by_vgroup.size() == config_.num_vgroups) {
    state.complete = true;
    complete_order_.push_back(partial->partition);
    if (config_.trace != nullptr) {
      config_.trace->Record(
          sim()->now(), TraceEventKind::kPartitionComplete, dev()->id(),
          static_cast<int>(partial->partition), -1,
          std::to_string(complete_order_.size()) + "/" +
              std::to_string(config_.n_needed) + " needed");
    }
    MaybeCombineGs();
  }
}

void CombinerActor::MaybeCombineGs() {
  if (combining_ || result_ready_) return;
  if (static_cast<int>(complete_order_.size()) < config_.n_needed) return;
  combining_ = true;
  // Merging n partitions' partials costs time proportional to their group
  // count; approximate with one quota's worth of work.
  sim()->ScheduleAfter(dev()->id(), dev()->ComputeCost(complete_order_.size() * 16),
                       [this]() { CombineAndEmitGs(); });
}

void CombinerActor::CombineAndEmitGs() {
  // Anchor the accumulator to the deployed spec: a poisoned partial
  // carrying a different spec then fails *its own* merge (a default
  // accumulator would adopt whatever spec it merges first, misattributing
  // the failure to the honest partitions that follow).
  query::GroupingSetsResult acc(config_.gs_spec);
  merged_partitions_.clear();
  for (int i = 0; i < config_.n_needed; ++i) {
    uint32_t p = complete_order_[i];
    const PartitionState& state = partitions_[p];
    std::vector<uint32_t> epochs(config_.num_vgroups, 0);
    for (const auto& [vg, epoch_partial] : state.by_vgroup) {
      epochs[vg] = epoch_partial.first;
      Status s = acc.Merge(epoch_partial.second);
      if (!s.ok()) {
        EDGELET_LOG(kError) << "combiner merge failed: " << s.ToString();
        EvictPoisonedPartition(p);
        return;
      }
    }
    merged_partitions_.emplace_back(p, std::move(epochs));
  }
  auto table = acc.Finalize();
  if (!table.ok()) {
    EDGELET_LOG(kError) << "combiner finalize failed: "
                        << table.status().ToString();
    // Finalize cannot name a culprit; evict the most recently completed of
    // the merged partitions and retry with whatever replaces it.
    EvictPoisonedPartition(complete_order_[config_.n_needed - 1]);
    return;
  }
  pending_result_ = std::move(*table);
  result_ready_ = true;
  if (config_.active_emit || replica_->is_leader()) {
    EmitWithResends();
  }
}

void CombinerActor::EvictPoisonedPartition(uint32_t partition) {
  // Before this recovery existed the combiner wedged here forever:
  // combining_ stayed true, so the m spare partitions Overcollection pays
  // for could never be consumed. Forget the partition entirely — a
  // re-delivered clean partial may rebuild it from scratch — and retry
  // with the remaining complete partitions plus any spare.
  EDGELET_LOG(kWarning) << "combiner: evicting poisoned partition "
                        << partition << ", "
                        << (complete_order_.size() - 1)
                        << " complete partitions remain";
  partitions_.erase(partition);
  complete_order_.erase(
      std::remove(complete_order_.begin(), complete_order_.end(), partition),
      complete_order_.end());
  merged_partitions_.clear();
  combining_ = false;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kPartitionComplete,
                          dev()->id(), static_cast<int>(partition), -1,
                          "evicted after failed combine");
  }
  MaybeCombineGs();
}

void CombinerActor::EmitPending() {
  if (result_ready_ && !emitted_) EmitWithResends();
}

void CombinerActor::OnEmitTimer() {
  if (config_.mode == Mode::kKMeans) {
    CombineAndEmitKm();
  }
  // Grouping-Sets mode: nothing to do — an incomplete snapshot cannot be
  // made valid by waiting less; the execution is counted as failed.
}

void CombinerActor::OnKmFinal(const net::Message& msg) {
  if (result_ready_) return;
  if (!OpenSealed(msg).ok()) return;
  auto report = KmFinalMsg::Decode(opened_payload());
  if (!report.ok() || report->query_id != config_.query_id) return;
  if (km_partitions_seen_.count(report->partition)) return;
  km_partitions_seen_[report->partition] = true;
  merged_partitions_.emplace_back(report->partition,
                                  std::vector<uint32_t>{0});

  if (km_aligned_.empty()) {
    km_aligned_.push_back(std::move(report->knowledge));
    km_stats_ = std::move(report->stats);
    return;
  }
  auto perm = ml::AlignCentroids(km_aligned_[0].centroids,
                                 report->knowledge.centroids);
  if (!perm.ok()) return;
  km_aligned_.push_back(ml::PermuteKnowledge(report->knowledge, *perm));
  report->stats.Permute(*perm);
  Status s = km_stats_.MergeFrom(report->stats);
  if (!s.ok()) {
    EDGELET_LOG(kWarning) << "cluster stats merge failed: " << s.ToString();
  }
}

void CombinerActor::CombineAndEmitKm() {
  if (km_aligned_.empty()) return;  // nothing arrived: failed execution
  auto merged = ml::MergeKnowledge(km_aligned_);
  if (!merged.ok()) {
    EDGELET_LOG(kError) << "knowledge merge failed: "
                        << merged.status().ToString();
    return;
  }

  // Result table: cluster, size, centroid coordinates, then the requested
  // per-cluster aggregates.
  std::vector<data::Column> cols;
  cols.push_back({"cluster", data::ValueType::kInt64});
  cols.push_back({"size", data::ValueType::kInt64});
  for (const auto& f : config_.km_spec.features) {
    cols.push_back({"centroid_" + f, data::ValueType::kDouble});
  }
  for (const auto& a : config_.km_spec.cluster_aggregates) {
    data::ValueType t = query::AggregateYieldsInteger(a.fn)
                            ? data::ValueType::kInt64
                            : data::ValueType::kDouble;
    cols.push_back({a.OutputName(), t});
  }
  data::Table table{data::Schema(std::move(cols))};
  const size_t k = merged->centroids.size();
  for (size_t c = 0; c < k; ++c) {
    data::Tuple row;
    row.emplace_back(static_cast<int64_t>(c));
    row.emplace_back(static_cast<int64_t>(merged->counts[c]));
    for (double coord : merged->centroids[c]) row.emplace_back(coord);
    for (size_t a = 0; a < config_.km_spec.cluster_aggregates.size(); ++a) {
      if (c < km_stats_.per_cluster.size() &&
          a < km_stats_.per_cluster[c].size()) {
        row.push_back(km_stats_.per_cluster[c][a].Finalize(
            config_.km_spec.cluster_aggregates[a]));
      } else {
        row.push_back(data::Value::Null());
      }
    }
    table.AppendUnchecked(std::move(row));
  }
  pending_result_ = std::move(table);
  result_ready_ = true;
  if (config_.active_emit || replica_->is_leader()) {
    EmitWithResends();
  }
}

void CombinerActor::EmitWithResends() {
  SendResult(pending_result_);
  for (int i = 1; i <= config_.result_resends; ++i) {
    sim()->ScheduleAfter(dev()->id(), ResendBackoffDelay(i, config_.resend_interval),
        [this]() {
          // A standby that yielded leadership between scheduling and firing
          // must go quiet even with a result pending — otherwise both the
          // new leader and the ex-leader keep emitting duplicates.
          if (result_ready_ && (config_.active_emit || replica_->is_leader())) {
            SendResult(pending_result_);
          }
        });
  }
}

void CombinerActor::SendResult(const data::Table& table) {
  FinalResultMsg msg;
  msg.query_id = config_.query_id;
  for (const auto& [p, vgroup_epochs] : merged_partitions_) {
    msg.partitions.push_back(p);
    msg.epochs.insert(msg.epochs.end(), vgroup_epochs.begin(),
                      vgroup_epochs.end());
  }
  msg.result = table;
  SealAndSendAll(config_.querier_targets, kFinalResult, msg.Encode());
  if (!emitted_ && config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kResultEmitted,
                          dev()->id(), -1, -1,
                          std::to_string(merged_partitions_.size()) +
                              " partitions merged");
  }
  emitted_ = true;
}

}  // namespace edgelet::exec
