#include "exec/cohort.h"

#include <algorithm>

#include "common/logging.h"
#include "data/partition.h"

namespace edgelet::exec {

CohortActor::CohortActor(net::SimEngine* sim, device::Device* dev,
                         Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {}

void CohortActor::Start() {
  if (config_.members.empty()) return;
  // Canonical member order: contact time, then row. The chained loop
  // below walks this order, so every member's sends — and thus every
  // latency/loss draw from the host's NodeRng — happen in a sequence
  // fixed by the member set alone.
  std::sort(config_.members.begin(), config_.members.end(),
            [](const Member& a, const Member& b) {
              if (a.send_at != b.send_at) return a.send_at < b.send_at;
              return a.row < b.row;
            });
  sim()->ScheduleAt(dev()->id(), config_.members.front().send_at,
                    [this]() { ContributeFrom(0); });
}

void CohortActor::ContributeFrom(size_t index) {
  // Drain every member whose contact time has arrived, then park a single
  // event for the next one: the cohort never holds more than one timer.
  while (index < config_.members.size() &&
         config_.members[index].send_at <= sim()->now()) {
    if (ContributeMember(config_.members[index])) ++members_contributed_;
    ++index;
  }
  if (index < config_.members.size()) {
    sim()->ScheduleAt(dev()->id(), config_.members[index].send_at,
                      [this, index]() { ContributeFrom(index); });
  }
}

bool CohortActor::ContributeMember(const Member& member) {
  const data::Table& local = dev()->local_data();
  if (member.row >= local.num_rows()) return false;
  data::Table one(local.schema());
  one.AppendUnchecked(local.row(member.row));

  auto qualified = query::ApplyPredicates(one, config_.predicates);
  if (!qualified.ok()) {
    EDGELET_LOG(kWarning) << "cohort " << dev()->id() << " member "
                          << member.contributor_key << " predicate error: "
                          << qualified.status().ToString();
    return false;
  }
  if (qualified->empty()) return false;  // the member's data does not qualify

  uint32_t partition = data::PartitionForKey(
      member.contributor_key, static_cast<uint32_t>(config_.builders.size()));
  for (size_t vg = 0; vg < config_.vgroup_columns.size(); ++vg) {
    auto projected = qualified->Project(config_.vgroup_columns[vg]);
    if (!projected.ok()) {
      EDGELET_LOG(kWarning) << "cohort " << dev()->id() << " member "
                            << member.contributor_key << " projection error: "
                            << projected.status().ToString();
      return false;
    }
    ContributionMsg msg;
    msg.query_id = config_.query_id;
    msg.contributor_key = member.contributor_key;
    msg.rows = std::move(*projected);
    SealAndSendAll(config_.builders[partition][vg], kContribution,
                   msg.Encode());
  }
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kContributionSent,
                          dev()->id());
  }
  return true;
}

void CohortActor::HandleMessage(const net::Message& msg) {
  if (msg.type == kResolicit) OnResolicit(msg);
}

void CohortActor::OnResolicit(const net::Message& msg) {
  if (!OpenSealed(msg).ok()) return;
  auto req = ResolicitMsg::Decode(opened_payload());
  if (!req.ok() || req->query_id != config_.query_id) return;
  if (req->vgroup >= config_.vgroup_columns.size()) return;
  const data::Table& local = dev()->local_data();
  // Fan the request out over the members: exactly those hashing into the
  // rebuilt partition may re-offer their row (same rule as
  // ContributorActor::OnResolicit, applied per member).
  for (const Member& member : config_.members) {
    uint32_t partition = data::PartitionForKey(
        member.contributor_key,
        static_cast<uint32_t>(config_.builders.size()));
    if (partition != req->partition) continue;
    if (member.row >= local.num_rows()) continue;
    data::Table one(local.schema());
    one.AppendUnchecked(local.row(member.row));
    auto qualified = query::ApplyPredicates(one, config_.predicates);
    if (!qualified.ok() || qualified->empty()) continue;
    auto projected = qualified->Project(config_.vgroup_columns[req->vgroup]);
    if (!projected.ok()) continue;
    ContributionMsg out;
    out.query_id = config_.query_id;
    out.contributor_key = member.contributor_key;
    out.rows = std::move(*projected);
    SealAndSend(req->builder, kContribution, out.Encode());
    if (config_.trace != nullptr) {
      config_.trace->Record(sim()->now(), TraceEventKind::kContributionSent,
                            dev()->id(), static_cast<int>(req->partition),
                            static_cast<int>(req->vgroup), "re-solicited");
    }
  }
}

}  // namespace edgelet::exec
