#ifndef EDGELET_EXEC_TRACE_H_
#define EDGELET_EXEC_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "net/message.h"

namespace edgelet::exec {

// The demo platform visualizes the execution "step by step" (paper §3.2
// Part 2: collection phase, computation phase, combination phase, failures
// highlighted on the QEP). ExecutionTrace is the library's equivalent of
// that GUI: actors record milestones, and the timeline renderer prints the
// phases an attendee would watch.
enum class TraceEventKind : uint8_t {
  kContributionSent = 0,
  kSnapshotComplete = 1,
  kSliceEmitted = 2,
  kPartialEmitted = 3,
  kKnowledgeBroadcast = 4,
  kPartitionComplete = 5,
  kResultEmitted = 6,
  kResultDelivered = 7,
  kDeviceKilled = 8,
  kLeaderFailover = 9,
};

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kContributionSent;
  net::NodeId device = 0;
  int partition = -1;
  int vgroup = -1;
  std::string detail;
};

class ExecutionTrace {
 public:
  ExecutionTrace() = default;

  void Record(SimTime time, TraceEventKind kind, net::NodeId device,
              int partition = -1, int vgroup = -1, std::string detail = "");

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t CountOf(TraceEventKind kind) const;

  // Human-readable timeline; bulk contribution events are summarized.
  std::string ToTimeline(size_t max_events = 60) const;

  // One line per phase: when it started/ended and how many events it saw.
  std::string PhaseSummary() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_TRACE_H_
