#ifndef EDGELET_EXEC_TRACE_H_
#define EDGELET_EXEC_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "net/message.h"
#include "net/parsim/engine.h"

namespace edgelet::exec {

// The demo platform visualizes the execution "step by step" (paper §3.2
// Part 2: collection phase, computation phase, combination phase, failures
// highlighted on the QEP). ExecutionTrace is the library's equivalent of
// that GUI: actors record milestones, and the timeline renderer prints the
// phases an attendee would watch.
enum class TraceEventKind : uint8_t {
  kContributionSent = 0,
  kSnapshotComplete = 1,
  kSliceEmitted = 2,
  kPartialEmitted = 3,
  kKnowledgeBroadcast = 4,
  kPartitionComplete = 5,
  kResultEmitted = 6,
  kResultDelivered = 7,
  kDeviceKilled = 8,
  kLeaderFailover = 9,
  kFailureSuspected = 10,
  kRecruitSent = 11,
  kRecruitAcked = 12,
  kChainRepaired = 13,
  kEarlyAbort = 14,
};

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kContributionSent;
  net::NodeId device = 0;
  int partition = -1;
  int vgroup = -1;
  std::string detail;
};

// Recording is shard-local: each engine shard appends to its own buffer
// (actors record from their device's event context, so a device's events
// always land in one buffer, in its execution order). events() merges the
// buffers into (time, device) order — a deterministic ordering because
// per-device event order is engine-invariant and the stable sort keeps it
// within ties. A trace recorded serially and one recorded across N shards
// therefore render identical timelines.
class ExecutionTrace {
 public:
  // Serial recording (one buffer).
  ExecutionTrace() : ExecutionTrace(nullptr) {}
  // Shard-aware recording: one buffer per engine shard.
  explicit ExecutionTrace(const net::SimEngine* engine);

  void Record(SimTime time, TraceEventKind kind, net::NodeId device,
              int partition = -1, int vgroup = -1, std::string detail = "");

  // Merged, deterministically ordered view. Call between runs only (the
  // merge reads every shard buffer).
  const std::vector<TraceEvent>& events() const;
  size_t CountOf(TraceEventKind kind) const;

  // Human-readable timeline; bulk contribution events are summarized.
  std::string ToTimeline(size_t max_events = 60) const;

  // One line per phase: when it started/ended and how many events it saw.
  std::string PhaseSummary() const;

 private:
  struct alignas(64) ShardBuffer {
    std::vector<TraceEvent> events;
  };

  const net::SimEngine* engine_ = nullptr;
  std::vector<ShardBuffer> buffers_;
  // Merge cache; rebuilt when the buffer sizes no longer add up to it.
  mutable std::vector<TraceEvent> merged_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_TRACE_H_
