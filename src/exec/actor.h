#ifndef EDGELET_EXEC_ACTOR_H_
#define EDGELET_EXEC_ACTOR_H_

#include <vector>

#include "device/device.h"
#include "exec/defaults.h"
#include "exec/protocol.h"
#include "exec/trace.h"
#include "net/simulator.h"
#include "query/query.h"

namespace edgelet::exec {

// Exponential-backoff schedule shared by every emission path that re-sends
// over the uncertain links: resend i (1-based) fires ((2^i) - 1) * base
// after the original send — base, 3*base, 7*base, ... Early retries cover
// a single lost message cheaply; later ones wait out longer outages
// instead of assuming a fixed resend beat is a liveness guarantee.
inline SimDuration ResendBackoffDelay(int resend_index, SimDuration base) {
  int shift = resend_index < 20 ? resend_index : 20;  // clamp: no overflow
  return ((SimDuration{1} << shift) - 1) * base;
}

// One protocol role bound to one device for the duration of a query.
class ActorBase {
 public:
  ActorBase(net::SimEngine* sim, device::Device* dev) : sim_(sim), dev_(dev) {
    dev_->set_message_handler(
        [this](const net::Message& msg) { HandleMessage(msg); });
  }
  virtual ~ActorBase() = default;

  ActorBase(const ActorBase&) = delete;
  ActorBase& operator=(const ActorBase&) = delete;

  device::Device* dev() const { return dev_; }
  net::SimEngine* sim() const { return sim_; }

  // Hands a message to this actor directly. Wrapper actors (the spare
  // edgelet of the repair subsystem) re-bind the device handler to
  // themselves and forward to an inner actor through this.
  void Deliver(const net::Message& msg) { HandleMessage(msg); }

 protected:
  virtual void HandleMessage(const net::Message& msg) = 0;

  // Seals and sends; enclave errors (unprovisioned, etc.) are dropped like
  // a lost message — uncertain communications subsume them.
  void SealAndSend(net::NodeId to, uint32_t type, const Bytes& payload) {
    (void)dev_->SendSealed(to, type, payload);
  }
  // Encode once, seal per recipient: the plaintext is shared across the
  // fan-out while each recipient gets its own pairwise-key ciphertext.
  void SealAndSendAll(const std::vector<net::NodeId>& targets, uint32_t type,
                      const Bytes& payload) {
    for (net::NodeId to : targets) SealAndSend(to, type, payload);
  }

  // Opens msg's sealed payload into a per-actor scratch (see
  // opened_payload()). The scratch is reused across messages, so the
  // steady-state receive path never allocates.
  Status OpenSealed(const net::Message& msg) {
    return dev_->OpenPayloadInto(msg, &open_scratch_);
  }
  // Valid after an OK OpenSealed, until the next OpenSealed call.
  const Bytes& opened_payload() const { return open_scratch_; }

 private:
  net::SimEngine* sim_;
  device::Device* dev_;
  Bytes open_scratch_;
};

// Periodic liveness beacon for the failure-detection subsystem: while the
// hosting device is alive, renews the operator's lease at the repair
// controller with a plaintext kOperatorHeartbeat every period. Every
// replica beats (the detector monitors devices, not leadership); beats
// from dead devices are dropped by the network and the loop stops
// rescheduling once the device is dead or the deadline passed.
class LivenessBeacon {
 public:
  struct Config {
    bool enabled = false;
    net::NodeId target = 0;  // the controller's device
    uint64_t query_id = 0;
    uint64_t op_id = 0;
    SimDuration period = 5 * kSecond;
    SimTime stop_at = kSimTimeNever;
  };

  LivenessBeacon(net::SimEngine* sim, device::Device* dev, Config config);

  // Sends the first beat immediately (in the caller's event context) and
  // schedules the periodic loop. No-op unless config.enabled.
  void Start();

 private:
  void Beat();

  net::SimEngine* sim_;
  device::Device* dev_;
  Config config_;
  Bytes payload_;  // encoded once; identical every beat
};

// A Data Contributor: at its scheduled contact time, evaluates the query
// predicates on its local record inside the enclave and sends qualifying
// rows (projected to the required columns) to every replica of its hash-
// assigned Snapshot Builder.
class ContributorActor : public ActorBase {
 public:
  struct Config {
    uint64_t query_id = 0;
    uint64_t contributor_key = 0;
    std::vector<query::Predicate> predicates;
    // One projection per vertical group: the contributor splits its record
    // so a separated attribute pair never travels together.
    std::vector<std::vector<std::string>> vgroup_columns;
    // builders[partition][vgroup] = rank-ordered replica group.
    std::vector<std::vector<std::vector<net::NodeId>>> builders;
    SimTime send_at = 0;
    ExecutionTrace* trace = nullptr;  // optional step-by-step recording
  };

  ContributorActor(net::SimEngine* sim, device::Device* dev, Config config);

  void Start();

  bool contributed() const { return contributed_; }

 protected:
  // Contributors are mostly send-only, but a repair controller may
  // re-solicit their projection for a rebuilt partition (kResolicit).
  void HandleMessage(const net::Message& msg) override;

 private:
  void Contribute();
  void OnResolicit(const net::Message& msg);

  Config config_;
  bool contributed_ = false;
};

// The Querier endpoint: records the first final result (Active Backup may
// deliver duplicates).
class QuerierActor : public ActorBase {
 public:
  QuerierActor(net::SimEngine* sim, device::Device* dev, uint64_t query_id,
               ExecutionTrace* trace = nullptr)
      : ActorBase(sim, dev), query_id_(query_id), trace_(trace) {}

  bool has_result() const { return has_result_; }
  const FinalResultMsg& result() const { return result_; }
  SimTime result_time() const { return result_time_; }
  uint32_t duplicates() const { return duplicates_; }

 protected:
  void HandleMessage(const net::Message& msg) override;

 private:
  uint64_t query_id_;
  ExecutionTrace* trace_ = nullptr;
  bool has_result_ = false;
  FinalResultMsg result_;
  SimTime result_time_ = kSimTimeNever;
  uint32_t duplicates_ = 0;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_ACTOR_H_
