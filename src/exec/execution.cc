#include "exec/execution.h"

#include <algorithm>

#include "common/hash.h"
#include "data/generator.h"

namespace edgelet::exec {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kOvercollection:
      return "Overcollection";
    case Strategy::kBackup:
      return "Backup";
  }
  return "?";
}

void SerializeReport(const ExecutionReport& report, Writer* w) {
  w->PutBool(report.success);
  w->PutU64(report.completion_time);
  report.result.Serialize(w);
  w->PutVarint(report.partitions_used.size());
  for (uint32_t p : report.partitions_used) w->PutU32(p);
  w->PutVarint(report.epochs_used.size());
  for (uint32_t e : report.epochs_used) w->PutU32(e);
  w->PutVarintSigned(report.n);
  w->PutVarintSigned(report.m);
  w->PutU8(static_cast<uint8_t>(report.strategy));
  w->PutVarint(report.processors_killed);
  w->PutVarint(report.contributors_participating);
  w->PutU32(report.duplicate_results);
  w->PutU64(report.messages_sent);
  w->PutU64(report.messages_delivered);
  w->PutU64(report.bytes_sent);
  w->PutVarint(report.snapshot_contributors_by_vgroup.size());
  for (const auto& vg : report.snapshot_contributors_by_vgroup) {
    w->PutVarint(vg.size());
    for (uint64_t key : vg) w->PutU64(key);
  }
  w->PutU64(report.max_observed_exposure_tuples);
  // Repair subsystem fields: appended at the end so pre-repair fingerprint
  // expectations stay valid (repair-off reports serialize the zero values
  // deterministically).
  w->PutU64(report.failures_detected);
  w->PutU32(report.repairs_attempted);
  w->PutU32(report.repairs_succeeded);
  w->PutU64(report.early_abort_time);
}

uint64_t ReportFingerprint(const ExecutionReport& report) {
  Writer w;
  SerializeReport(report, &w);
  return Fnv1a64(w.data().data(), w.size());
}

QueryExecution::QueryExecution(net::SimEngine* sim, net::Network* network,
                               device::Fleet* fleet, Deployment deployment,
                               ExecutionConfig config)
    : sim_(sim),
      network_(network),
      fleet_(fleet),
      deployment_(std::move(deployment)),
      config_(config) {}

QueryExecution::~QueryExecution() = default;

Status QueryExecution::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  started_ = true;
  base_ = sim_->now();
  if (config_.enable_trace) trace_ = std::make_unique<ExecutionTrace>(sim_);
  stats_before_ = network_->stats();
  repair_active_ = config_.repair.enabled &&
                   deployment_.strategy == Strategy::kOvercollection &&
                   deployment_.query.kind == query::QueryKind::kGroupingSets &&
                   !deployment_.spare_pool.empty() &&
                   !deployment_.combiner_group.empty();
  // Every contributor schedules a contribution plus churn/resend events;
  // pre-size the event queue so the collection burst doesn't regrow it.
  sim_->ReserveEvents(fleet_->contributors().size() * 2 + 256);

  EDGELET_RETURN_NOT_OK(BuildContributors());
  EDGELET_RETURN_NOT_OK(BuildSnapshotBuilders());
  EDGELET_RETURN_NOT_OK(BuildComputers());
  EDGELET_RETURN_NOT_OK(BuildCombiners());
  if (repair_active_) EDGELET_RETURN_NOT_OK(BuildSpares());

  device::Device* qdev = fleet_->by_node(deployment_.querier);
  if (qdev == nullptr) return Status::NotFound("querier device missing");
  querier_ = std::make_unique<QuerierActor>(
      sim_, qdev, deployment_.query.query_id, trace_.get());

  if (config_.inject_failures && config_.failure_probability > 0) {
    InjectFailures();
  }
  return Status::OK();
}

Status QueryExecution::BuildContributors() {
  const auto& query = deployment_.query;
  Rng rng(Mix64(config_.seed) ^ 0xC0117B);
  if (fleet_->cohort_size() > 1) {
    // Cohort fleet: one super-node actor per contributor device, one
    // Member per hosted row. Contact times are drawn from the same global
    // stream in member (= data row) order, exactly as the individual path
    // draws them in fleet order.
    for (device::Device* dev : fleet_->contributors()) {
      CohortActor::Config cfg;
      cfg.query_id = query.query_id;
      cfg.predicates = query.predicates;
      cfg.vgroup_columns = deployment_.vgroup_columns;
      cfg.builders = deployment_.sb_groups;
      cfg.trace = trace_.get();
      const data::Table& local = dev->local_data();
      cfg.members.reserve(local.num_rows());
      for (size_t r = 0; r < local.num_rows(); ++r) {
        CohortActor::Member member;
        member.row = static_cast<uint32_t>(r);
        // Per-member key from the record itself; rows without one get a
        // (device, row)-derived key that stays unique across the fleet.
        member.contributor_key = (dev->id() << 20) | r;
        auto key = local.At(r, data::kContributorIdColumn);
        if (key.ok() && !key->is_null()) {
          member.contributor_key = static_cast<uint64_t>(key->AsInt64());
        }
        member.send_at = base_ + (config_.collection_window > 0
                                      ? rng.NextBelow(config_.collection_window)
                                      : 0);
        cfg.members.push_back(member);
      }
      auto actor = std::make_unique<CohortActor>(sim_, dev, std::move(cfg));
      actor->Start();
      cohorts_.push_back(std::move(actor));
    }
    return Status::OK();
  }
  for (device::Device* dev : fleet_->contributors()) {
    ContributorActor::Config cfg;
    cfg.query_id = query.query_id;
    cfg.predicates = query.predicates;
    cfg.vgroup_columns = deployment_.vgroup_columns;
    cfg.builders = deployment_.sb_groups;
    // The contributor key is the owner's id when the record carries one,
    // the device id otherwise (it feeds hash partitioning either way).
    cfg.contributor_key = dev->id();
    const data::Table& local = dev->local_data();
    if (!local.empty()) {
      auto key = local.At(0, data::kContributorIdColumn);
      if (key.ok() && !key->is_null()) {
        cfg.contributor_key = static_cast<uint64_t>(key->AsInt64());
      }
    }
    cfg.send_at = base_ + (config_.collection_window > 0
                               ? rng.NextBelow(config_.collection_window)
                               : 0);
    cfg.trace = trace_.get();
    auto actor = std::make_unique<ContributorActor>(sim_, dev,
                                                    std::move(cfg));
    actor->Start();
    contributors_.push_back(std::move(actor));
  }
  return Status::OK();
}

Status QueryExecution::BuildSnapshotBuilders() {
  const int total = deployment_.n + deployment_.m;
  if (static_cast<int>(deployment_.sb_groups.size()) != total) {
    return Status::InvalidArgument("sb_groups size != n+m");
  }
  const size_t vgroups = deployment_.vgroup_columns.size();
  builders_.resize(total);
  for (int p = 0; p < total; ++p) {
    if (deployment_.sb_groups[p].size() != vgroups) {
      return Status::InvalidArgument("sb_groups vgroup arity mismatch");
    }
    builders_[p].resize(vgroups);
    for (size_t vg = 0; vg < vgroups; ++vg) {
      for (net::NodeId node : deployment_.sb_groups[p][vg]) {
        device::Device* dev = fleet_->by_node(node);
        if (dev == nullptr) {
          return Status::NotFound("builder device missing");
        }
        SnapshotBuilderActor::Config cfg;
        cfg.query_id = deployment_.query.query_id;
        cfg.partition = static_cast<uint32_t>(p);
        cfg.vgroup = static_cast<uint32_t>(vg);
        cfg.quota = deployment_.quota;
        cfg.computers = deployment_.computer_groups[p][vg];
        cfg.columns = deployment_.vgroup_columns[vg];
        cfg.replica.group_id = HashCombine(
            deployment_.query.query_id, 0x5B000000ULL + p * 131 + vg);
        cfg.replica.members = deployment_.sb_groups[p][vg];
        cfg.replica.ping_period = config_.ping_period;
        cfg.replica.failover_timeout = config_.failover_timeout;
        cfg.replica.stop_at = base_ + config_.deadline;
        cfg.trace = trace_.get();
        cfg.emission_resends = config_.emission_resends;
        cfg.resend_interval = config_.resend_interval;
        if (repair_active_) {
          cfg.liveness = MakeLiveness(RecruitRole::kSnapshotBuilder,
                                      static_cast<uint32_t>(p),
                                      static_cast<uint32_t>(vg));
        }
        auto actor = std::make_unique<SnapshotBuilderActor>(sim_, dev,
                                                            std::move(cfg));
        actor->Start();
        builders_[p][vg].push_back(std::move(actor));
      }
    }
  }
  return Status::OK();
}

Status QueryExecution::BuildComputers() {
  const int total = deployment_.n + deployment_.m;
  const auto& query = deployment_.query;
  const bool kmeans = query.kind == query::QueryKind::kKMeans;
  const SimTime first_heartbeat =
      base_ + config_.collection_window + 10 * kSecond;

  for (int p = 0; p < total; ++p) {
    const auto& vgroups = deployment_.computer_groups[p];
    for (size_t vg = 0; vg < vgroups.size(); ++vg) {
      for (net::NodeId node : vgroups[vg]) {
        device::Device* dev = fleet_->by_node(node);
        if (dev == nullptr) {
          return Status::NotFound("computer device missing");
        }
        ComputerActor::Config cfg;
        cfg.query_id = query.query_id;
        cfg.partition = static_cast<uint32_t>(p);
        cfg.vgroup = static_cast<uint32_t>(vg);
        cfg.mode = kmeans ? ComputerActor::Mode::kKMeans
                          : ComputerActor::Mode::kGroupingSets;
        cfg.gs_spec = query.grouping_sets;
        cfg.set_indices = deployment_.vgroup_set_indices[vg];
        cfg.km_spec = query.kmeans;
        if (kmeans) {
          for (int q = 0; q < total; ++q) {
            if (q == p) continue;
            cfg.peers.push_back(deployment_.computer_groups[q][0]);
          }
          cfg.first_heartbeat = first_heartbeat;
          cfg.heartbeat_period = config_.heartbeat_period;
          cfg.num_heartbeats = config_.num_heartbeats;
        }
        cfg.combiners = deployment_.combiner_group;
        cfg.replica.group_id = HashCombine(
            query.query_id, 0xC0000000ULL + p * 131 + vg);
        cfg.replica.members = vgroups[vg];
        cfg.replica.ping_period = config_.ping_period;
        cfg.replica.failover_timeout = config_.failover_timeout;
        cfg.replica.stop_at = base_ + config_.deadline;
        cfg.trace = trace_.get();
        cfg.emission_resends = config_.emission_resends;
        cfg.resend_interval = config_.resend_interval;
        if (repair_active_) {
          cfg.liveness = MakeLiveness(RecruitRole::kComputer,
                                      static_cast<uint32_t>(p),
                                      static_cast<uint32_t>(vg));
        }
        auto actor = std::make_unique<ComputerActor>(sim_, dev,
                                                     std::move(cfg));
        actor->Start();
        computers_.push_back(std::move(actor));
      }
    }
  }
  return Status::OK();
}

Status QueryExecution::BuildCombiners() {
  const auto& query = deployment_.query;
  const bool kmeans = query.kind == query::QueryKind::kKMeans;
  const SimTime emit_at =
      base_ + (config_.deadline > config_.combiner_margin
                   ? config_.deadline - config_.combiner_margin
                   : 0);
  const bool active = deployment_.strategy == Strategy::kOvercollection;

  for (net::NodeId node : deployment_.combiner_group) {
    device::Device* dev = fleet_->by_node(node);
    if (dev == nullptr) return Status::NotFound("combiner device missing");
    CombinerActor::Config cfg;
    cfg.query_id = query.query_id;
    cfg.mode = kmeans ? CombinerActor::Mode::kKMeans
                      : CombinerActor::Mode::kGroupingSets;
    cfg.n_needed = deployment_.n;
    cfg.total_partitions = deployment_.n + deployment_.m;
    cfg.num_vgroups =
        static_cast<uint32_t>(deployment_.vgroup_columns.size());
    cfg.gs_spec = query.grouping_sets;
    cfg.km_spec = query.kmeans;
    cfg.querier_targets = {deployment_.querier};
    cfg.emit_at = emit_at;
    cfg.result_resends = config_.result_resends;
    cfg.resend_interval = config_.resend_interval;
    cfg.active_emit = active;
    cfg.replica.group_id = HashCombine(query.query_id, 0xCB00000000ULL);
    cfg.replica.members =
        active ? std::vector<net::NodeId>{node} : deployment_.combiner_group;
    cfg.replica.ping_period = config_.ping_period;
    cfg.replica.failover_timeout = config_.failover_timeout;
    cfg.replica.stop_at = base_ + config_.deadline;
    cfg.trace = trace_.get();
    // Exactly one controller: the primary combiner instance. (Active
    // Backup combiners merge independently; a second controller would
    // recruit the same spares twice.)
    if (repair_active_ && node == deployment_.combiner_group[0]) {
      RepairController::Config rc;
      rc.enabled = true;
      rc.query_id = query.query_id;
      rc.n_needed = deployment_.n;
      rc.total_partitions =
          static_cast<uint32_t>(deployment_.n + deployment_.m);
      rc.num_vgroups =
          static_cast<uint32_t>(deployment_.vgroup_columns.size());
      rc.detector.lease_period = config_.repair.lease_period;
      rc.detector.miss_threshold = config_.repair.miss_threshold;
      rc.detector.suspicion_backoff = config_.repair.suspicion_backoff;
      rc.detector.max_backoff_steps = config_.repair.max_backoff_steps;
      rc.detector.jitter_fraction = config_.repair.detector_jitter_fraction;
      rc.detector.seed = Mix64(config_.seed) ^ 0xDE7EC7;
      rc.start_at = base_;
      rc.collection_end = base_ + config_.collection_window;
      rc.deadline = base_ + config_.deadline;
      rc.combiner_margin = config_.combiner_margin;
      rc.compute_margin = config_.repair.compute_margin;
      rc.emission_margin = config_.repair.emission_margin;
      rc.recruit_resends = config_.repair.recruit_resends;
      rc.resend_interval = config_.resend_interval;
      rc.spare_pool = deployment_.spare_pool;
      for (const auto& c : contributors_) {
        rc.contributors.push_back(c->dev()->id());
      }
      // Cohort fleets: the controller re-solicits cohort devices; the
      // actor fans the request out to its members in the hit partition.
      for (const auto& c : cohorts_) {
        rc.contributors.push_back(c->dev()->id());
      }
      rc.trace = trace_.get();
      cfg.repair = std::move(rc);
    }
    auto actor = std::make_unique<CombinerActor>(sim_, dev, std::move(cfg));
    actor->Start();
    combiners_.push_back(std::move(actor));
  }
  return Status::OK();
}

LivenessBeacon::Config QueryExecution::MakeLiveness(RecruitRole role,
                                                    uint32_t partition,
                                                    uint32_t vgroup) const {
  LivenessBeacon::Config liveness;
  liveness.enabled = true;
  liveness.target = deployment_.combiner_group[0];
  liveness.query_id = deployment_.query.query_id;
  liveness.op_id = RepairOpId(role, partition, vgroup, /*generation=*/0);
  liveness.period = config_.repair.lease_period;
  liveness.stop_at = base_ + config_.deadline;
  return liveness;
}

Status QueryExecution::BuildSpares() {
  for (net::NodeId node : deployment_.spare_pool) {
    device::Device* dev = fleet_->by_node(node);
    if (dev == nullptr) return Status::NotFound("spare device missing");
    SpareActor::Config cfg;
    cfg.query_id = deployment_.query.query_id;
    cfg.quota = deployment_.quota;
    cfg.gs_spec = deployment_.query.grouping_sets;
    cfg.vgroup_columns = deployment_.vgroup_columns;
    cfg.vgroup_set_indices = deployment_.vgroup_set_indices;
    cfg.combiners = deployment_.combiner_group;
    cfg.stop_at = base_ + config_.deadline;
    cfg.liveness_period = config_.repair.lease_period;
    cfg.emission_resends = config_.emission_resends;
    cfg.resend_interval = config_.resend_interval;
    cfg.trace = trace_.get();
    spares_.push_back(
        std::make_unique<SpareActor>(sim_, dev, std::move(cfg)));
  }
  return Status::OK();
}

void QueryExecution::InjectFailures() {
  // Every Data Processor device is a potential victim; contributors and
  // the querier are out of scope (a missing contributor just shrinks the
  // crowd; the querier is the beneficiary).
  std::vector<net::NodeId> targets;
  auto add = [&targets](net::NodeId id) {
    if (std::find(targets.begin(), targets.end(), id) == targets.end()) {
      targets.push_back(id);
    }
  };
  for (const auto& partition : deployment_.sb_groups) {
    for (const auto& group : partition) {
      for (net::NodeId id : group) add(id);
    }
  }
  for (const auto& partition : deployment_.computer_groups) {
    for (const auto& group : partition) {
      for (net::NodeId id : group) add(id);
    }
  }
  for (net::NodeId id : deployment_.combiner_group) add(id);
  // Spares are processors too (a recruited spare can crash like any other
  // operator); appended after the legacy targets so repair-off executions
  // draw the exact same kill plan as before the repair subsystem existed.
  if (repair_active_) {
    for (net::NodeId id : deployment_.spare_pool) add(id);
  }

  Rng rng(Mix64(config_.seed) ^ 0xFA11);
  device::FailurePlan plan = device::PlanFailures(
      targets, config_.failure_probability, base_, base_ + config_.deadline,
      &rng);
  device::ScheduleFailures(network_, plan);
  if (trace_ != nullptr) {
    for (const auto& [id, when] : plan.kills) {
      trace_->Record(when, TraceEventKind::kDeviceKilled, id);
    }
  }
  report_.processors_killed = plan.kills.size();
}

Status QueryExecution::RunToCompletion() {
  if (!started_) return Status::FailedPrecondition("call Start() first");
  const SimTime end = base_ + config_.deadline;
  const RepairController* controller = nullptr;
  for (const auto& c : combiners_) {
    if (c->repair_controller() != nullptr) {
      controller = c->repair_controller();
      break;
    }
  }
  if (controller == nullptr) {
    sim_->RunUntil(end);
  } else {
    // Fail-safe early termination: run in lease-period chunks so an abort
    // decision stops the execution at (just past) decision time instead of
    // idling to the deadline. Chunked RunUntil is engine-invariant — both
    // engines run every event with time <= the chunk boundary — so shard
    // counts keep producing identical reports.
    const SimDuration step =
        std::max<SimDuration>(config_.repair.lease_period, kSecond);
    SimTime t = base_;
    while (t < end) {
      t = std::min<SimTime>(end, t + step);
      sim_->RunUntil(t);
      if (controller->abort_requested()) break;
    }
  }
  CollectReport();
  return Status::OK();
}

void QueryExecution::CollectReport() {
  report_.n = deployment_.n;
  report_.m = deployment_.m;
  report_.strategy = deployment_.strategy;
  report_.success = querier_->has_result() &&
                    querier_->result_time() <= base_ + config_.deadline;
  if (report_.success) {
    report_.completion_time = querier_->result_time() - base_;
    report_.result = querier_->result().result;
    report_.partitions_used = querier_->result().partitions;
    report_.epochs_used = querier_->result().epochs;
  }
  report_.duplicate_results = querier_->duplicates();
  for (const auto& c : contributors_) {
    if (c->contributed()) ++report_.contributors_participating;
  }
  for (const auto& c : cohorts_) {
    report_.contributors_participating += c->members_contributed();
  }

  const net::NetworkStats now = network_->stats();
  report_.messages_sent = now.messages_sent - stats_before_.messages_sent;
  report_.messages_delivered =
      now.messages_delivered - stats_before_.messages_delivered;
  report_.bytes_sent = now.bytes_sent - stats_before_.bytes_sent;

  // Reconstruct the exact crowd sample behind a Grouping Sets result from
  // the (partition, vgroup, epoch) triples the combiner merged.
  if (deployment_.query.kind == query::QueryKind::kGroupingSets) {
    const size_t vgroups = deployment_.vgroup_columns.size();
    report_.snapshot_contributors_by_vgroup.assign(vgroups, {});
    for (size_t i = 0; i < report_.partitions_used.size(); ++i) {
      uint32_t p = report_.partitions_used[i];
      if (p >= builders_.size()) continue;
      for (size_t vg = 0; vg < vgroups; ++vg) {
        size_t flat = i * vgroups + vg;
        uint32_t epoch =
            flat < report_.epochs_used.size() ? report_.epochs_used[flat] : 0;
        // Originals emit under their replica rank; recruited builders emit
        // under their unique repair-generation epoch (>= kRepairEpochBase),
        // so a recruit's sample can never be attributed to a dead
        // original's rank.
        for (const auto& builder : builders_[p][vg]) {
          if (builder->emit_epoch() == epoch) {
            const auto& keys = builder->included_contributors();
            auto& out = report_.snapshot_contributors_by_vgroup[vg];
            out.insert(out.end(), keys.begin(), keys.end());
          }
        }
        if (epoch >= kRepairEpochBase) {
          for (const auto& spare : spares_) {
            if (spare->recruited() && spare->builder() != nullptr &&
                spare->partition() == p &&
                spare->vgroup() == static_cast<uint32_t>(vg) &&
                spare->epoch() == epoch) {
              const auto& keys = spare->builder()->included_contributors();
              auto& out = report_.snapshot_contributors_by_vgroup[vg];
              out.insert(out.end(), keys.begin(), keys.end());
            }
          }
        }
      }
    }
  }

  for (const auto& partition : builders_) {
    for (const auto& group : partition) {
      for (const auto& b : group) {
        report_.max_observed_exposure_tuples =
            std::max(report_.max_observed_exposure_tuples,
                     b->dev()->enclave().cleartext_tuples_observed());
      }
    }
  }
  for (const auto& c : computers_) {
    report_.max_observed_exposure_tuples =
        std::max(report_.max_observed_exposure_tuples,
                 c->dev()->enclave().cleartext_tuples_observed());
  }
  for (const auto& spare : spares_) {
    report_.max_observed_exposure_tuples =
        std::max(report_.max_observed_exposure_tuples,
                 spare->dev()->enclave().cleartext_tuples_observed());
  }

  for (const auto& c : combiners_) {
    const RepairController* controller = c->repair_controller();
    if (controller == nullptr) continue;
    report_.failures_detected = controller->detections();
    report_.repairs_attempted = controller->repairs_attempted();
    report_.repairs_succeeded = controller->repairs_succeeded();
    if (controller->abort_requested()) {
      report_.early_abort_time = controller->abort_time() - base_;
    }
    break;
  }
}

}  // namespace edgelet::exec
