#ifndef EDGELET_EXEC_COMPUTER_H_
#define EDGELET_EXEC_COMPUTER_H_

#include <map>
#include <memory>
#include <optional>

#include "exec/actor.h"
#include "exec/replica.h"
#include "ml/kmeans.h"

namespace edgelet::exec {

// A Computer operator bound to one (partition, vertical-group) slice of the
// snapshot.
//
// Grouping-Sets mode: on receiving its slice, evaluates its assigned
// grouping sets and ships the mergeable partial to the combiner(s).
//
// K-Means mode (paper §2.2): heartbeat-cadenced loop — every heartbeat it
// (1) integrates the knowledge received from peer Computers since the last
// round (synchronization phase), (2) runs `local_iterations` Lloyd steps on
// its local partition (local convergence phase) and (3) broadcasts its
// knowledge. Rounds advance on the clock even when nothing was received.
// Right before the deadline (the last heartbeat) it reports knowledge plus
// per-cluster aggregates to the combiner(s).
class ComputerActor : public ActorBase {
 public:
  enum class Mode { kGroupingSets, kKMeans };

  struct Config {
    uint64_t query_id = 0;
    uint32_t partition = 0;
    uint32_t vgroup = 0;
    Mode mode = Mode::kGroupingSets;

    // Grouping-Sets mode.
    query::GroupingSetsSpec gs_spec;
    std::vector<size_t> set_indices;

    // K-Means mode.
    query::KMeansQuerySpec km_spec;
    // peers[i] = replica group of another partition's computer.
    std::vector<std::vector<net::NodeId>> peers;
    SimTime first_heartbeat = 0;
    SimDuration heartbeat_period = 10 * kSecond;
    int num_heartbeats = 1;

    // Output: every combiner instance (primary + active backup, or the
    // Backup-strategy replica group).
    std::vector<net::NodeId> combiners;

    ReplicaRole::Config replica;
    ExecutionTrace* trace = nullptr;
    // Extra re-emissions of partials / final reports (combiners dedup).
    int emission_resends = 0;
    SimDuration resend_interval = kDefaultResendInterval;
    // Liveness lease renewals toward the repair controller (off unless the
    // execution enables repair).
    LivenessBeacon::Config liveness;
  };

  ComputerActor(net::SimEngine* sim, device::Device* dev, Config config);

  void Start();

  bool has_slice() const { return have_slice_; }
  bool output_sent() const { return output_sent_; }
  int rounds_with_peer_input() const { return rounds_with_peer_input_; }

 protected:
  void HandleMessage(const net::Message& msg) override;

 private:
  void OnSlice(const net::Message& msg);
  void ComputeAndEmitGs();
  void EmitGs();
  void EmitGsWithResends();
  void Heartbeat(int round);
  void SyncPhase();
  void LocalPhase();
  void BroadcastKnowledge(int round);
  void EmitKmFinal();

  Config config_;
  std::unique_ptr<ReplicaRole> replica_;
  std::unique_ptr<LivenessBeacon> beacon_;

  // Slice state.
  bool have_slice_ = false;
  uint32_t slice_epoch_ = 0;
  data::Table slice_;

  // GS state.
  std::optional<query::GroupingSetsResult> gs_partial_;
  bool output_sent_ = false;

  // KM state.
  ml::Matrix points_;
  ml::KMeansKnowledge knowledge_;
  bool km_initialized_ = false;
  std::vector<ml::KMeansKnowledge> inbox_;
  // (partition, round) pairs already integrated (dedup of re-broadcasts).
  std::map<std::pair<uint32_t, uint32_t>, bool> seen_rounds_;
  int rounds_with_peer_input_ = 0;
  // Mini-batch resampling state (km_spec.batch_size > 0).
  Rng mb_rng_{1};
  std::vector<uint64_t> mb_counts_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_COMPUTER_H_
