#include "exec/replica.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace edgelet::exec {

ReplicaRole::ReplicaRole(net::SimEngine* sim, device::Device* dev,
                         Config config)
    : sim_(sim), dev_(dev), config_(std::move(config)) {
  auto it = std::find(config_.members.begin(), config_.members.end(),
                      dev_->id());
  if (it == config_.members.end()) {
    // A device outside its own member list would silently get
    // rank_ == members.size(): it never pings, never counts as a lower
    // rank for anyone, and never promotes — a dead replica that looks
    // alive. Surface the planner bug instead of simulating around it.
    misconfigured_ = true;
    rank_ = static_cast<uint32_t>(config_.members.size());
    EDGELET_LOG(kError) << "ReplicaRole: device " << dev_->id()
                        << " is not in the member list of replica group "
                        << config_.group_id << " (size "
                        << config_.members.size() << ")";
    return;
  }
  rank_ = static_cast<uint32_t>(it - config_.members.begin());
  believes_leader_ = (rank_ == 0);
}

void ReplicaRole::Start() {
  if (misconfigured_) {
    EDGELET_LOG(kError) << "ReplicaRole: refusing to start device "
                        << dev_->id() << " in replica group "
                        << config_.group_id
                        << ": not a member (planner misconfiguration)";
    std::abort();
  }
  if (config_.members.size() <= 1) return;  // singleton: silent leader
  last_lower_ping_ = sim_->now();
  Tick();
}

void ReplicaRole::Tick() {
  if (sim_->now() >= config_.stop_at) return;
  net::Network* network = dev_->network();
  if (network->IsDead(dev_->id())) return;  // crashed: role ends
  if (!network->IsOnline(dev_->id())) {
    // Disconnected: cannot observe pings reliably or act; check again
    // later without promoting (the mailbox will replay missed pings).
    last_lower_ping_ = sim_->now();
    sim_->ScheduleAfter(dev_->id(), config_.ping_period, [this]() { Tick(); });
    return;
  }
  if (believes_leader_) {
    // Announce liveness to all higher-ranked replicas.
    LeaderPingMsg ping{config_.group_id, rank_};
    Bytes payload = ping.Encode();
    for (size_t r = rank_ + 1; r < config_.members.size(); ++r) {
      dev_->SendControl(config_.members[r], kLeaderPing, payload);
    }
  } else {
    // Promote when every lower-ranked replica has been silent longer than
    // this replica's graded timeout.
    SimDuration timeout =
        config_.failover_timeout * static_cast<SimDuration>(rank_);
    if (sim_->now() - last_lower_ping_ > timeout) {
      believes_leader_ = true;
      if (!promoted_fired_) {
        promoted_fired_ = true;
        if (on_promote_) on_promote_();
      }
      // Fall through: next ticks will ping as leader.
    }
  }
  sim_->ScheduleAfter(dev_->id(), config_.ping_period, [this]() { Tick(); });
}

void ReplicaRole::HandlePing(const LeaderPingMsg& ping) {
  if (ping.group_id != config_.group_id) return;
  if (ping.rank >= rank_) return;
  last_lower_ping_ = sim_->now();
  // A lower-ranked replica is alive; yield leadership (if held) to avoid
  // long-term duplicate emission (duplicates are deduplicated downstream
  // anyway, but yielding reduces traffic).
  believes_leader_ = false;
}

}  // namespace edgelet::exec
