#ifndef EDGELET_EXEC_COMBINER_H_
#define EDGELET_EXEC_COMBINER_H_

#include <map>
#include <memory>

#include "exec/actor.h"
#include "exec/repair.h"
#include "exec/replica.h"
#include "ml/kmeans.h"

namespace edgelet::exec {

// The Computing Combiner: merges Computer partials into the final answer
// and delivers it to the Querier.
//
// Grouping-Sets mode: tracks per-partition completeness (all vertical
// groups present, from one epoch); as soon as n partitions are complete it
// merges exactly those n (validity: the result covers a snapshot of
// cardinality n * C/n = C) and emits.
//
// K-Means mode: accumulates knowledge reports (aligned by Hungarian
// matching) until its emit time right before the deadline, then emits the
// merged centroids, sizes, and per-cluster aggregates.
//
// In Overcollection mode two instances run in parallel (Combiner + Active
// Backup) and both emit; the querier deduplicates. In Backup mode the
// instances form a leader/standby replica group.
class CombinerActor : public ActorBase {
 public:
  enum class Mode { kGroupingSets, kKMeans };

  struct Config {
    uint64_t query_id = 0;
    Mode mode = Mode::kGroupingSets;
    int n_needed = 1;
    uint32_t num_vgroups = 1;
    // Total partitions the plan deployed (n + m). Wire partials naming a
    // partition at or past this are malformed and rejected; 0 disables the
    // check (unit tests that exercise the combiner without a plan).
    int total_partitions = 0;
    query::GroupingSetsSpec gs_spec;
    query::KMeansQuerySpec km_spec;
    std::vector<net::NodeId> querier_targets;
    // When to give up waiting and (for K-Means) emit what is known.
    SimTime emit_at = kSimTimeNever;
    // The result travels over the same uncertain links as everything
    // else; the combiner re-emits it this many extra times (the querier
    // deduplicates).
    int result_resends = 2;
    SimDuration resend_interval = kDefaultResendInterval;
    // True: emit as soon as ready regardless of replica rank (active
    // replication). False: only the replica-group leader emits.
    bool active_emit = true;
    ReplicaRole::Config replica;
    // Mid-query failure detection + partition repair (DESIGN.md §5f). Only
    // the primary combiner instance gets an enabled controller; it runs in
    // this actor's event context.
    RepairController::Config repair;
    ExecutionTrace* trace = nullptr;
  };

  CombinerActor(net::SimEngine* sim, device::Device* dev, Config config);

  void Start();

  bool emitted() const { return emitted_; }
  size_t partitions_complete() const { return complete_order_.size(); }
  bool replica_is_leader() const { return replica_->is_leader(); }
  // Null unless this instance hosts the repair controller.
  const RepairController* repair_controller() const {
    return controller_.get();
  }

 protected:
  void HandleMessage(const net::Message& msg) override;

 private:
  // Vertical chains are independent (each samples its own C/n rows), so
  // the combiner keeps the first partial per vertical group; the partition
  // is complete once every vertical group reported. The epoch records
  // which snapshot-builder replica's sample was consumed.
  struct PartitionState {
    std::map<uint32_t, std::pair<uint32_t, query::GroupingSetsResult>>
        by_vgroup;  // vgroup -> (epoch, partial)
    bool complete = false;
  };

  void OnGsPartial(const net::Message& msg);
  void OnKmFinal(const net::Message& msg);
  void MaybeCombineGs();
  void CombineAndEmitGs();
  // Recovery from a failed combine: forget the partition whose partial
  // poisoned the merge so a spare overcollected partition (or a clean
  // re-delivery) can take its place, then retry.
  void EvictPoisonedPartition(uint32_t partition);
  void EmitPending();
  void OnEmitTimer();
  void CombineAndEmitKm();
  void SendResult(const data::Table& table);
  void EmitWithResends();

  Config config_;
  std::unique_ptr<ReplicaRole> replica_;
  std::unique_ptr<RepairController> controller_;

  // GS state.
  std::map<uint32_t, PartitionState> partitions_;
  std::vector<uint32_t> complete_order_;
  bool combining_ = false;

  // KM state: first report anchors centroid indices; later reports align.
  std::vector<ml::KMeansKnowledge> km_aligned_;
  ClusterStats km_stats_;
  std::map<uint32_t, bool> km_partitions_seen_;
  // Partitions merged into the emitted result, with the epoch used per
  // vertical group (flattened vgroup-major in FinalResultMsg::epochs).
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> merged_partitions_;

  bool result_ready_ = false;
  data::Table pending_result_;
  bool emitted_ = false;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_COMBINER_H_
