#include "exec/trace.h"

#include <algorithm>
#include <sstream>

namespace edgelet::exec {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kContributionSent:
      return "contribution";
    case TraceEventKind::kSnapshotComplete:
      return "snapshot-complete";
    case TraceEventKind::kSliceEmitted:
      return "slice-emitted";
    case TraceEventKind::kPartialEmitted:
      return "partial-emitted";
    case TraceEventKind::kKnowledgeBroadcast:
      return "knowledge-broadcast";
    case TraceEventKind::kPartitionComplete:
      return "partition-complete";
    case TraceEventKind::kResultEmitted:
      return "result-emitted";
    case TraceEventKind::kResultDelivered:
      return "result-delivered";
    case TraceEventKind::kDeviceKilled:
      return "device-killed";
    case TraceEventKind::kLeaderFailover:
      return "leader-failover";
    case TraceEventKind::kFailureSuspected:
      return "failure-suspected";
    case TraceEventKind::kRecruitSent:
      return "recruit-sent";
    case TraceEventKind::kRecruitAcked:
      return "recruit-acked";
    case TraceEventKind::kChainRepaired:
      return "chain-repaired";
    case TraceEventKind::kEarlyAbort:
      return "early-abort";
  }
  return "?";
}

ExecutionTrace::ExecutionTrace(const net::SimEngine* engine)
    : engine_(engine), buffers_(engine != nullptr ? engine->num_shards() : 1) {}

void ExecutionTrace::Record(SimTime time, TraceEventKind kind,
                            net::NodeId device, int partition, int vgroup,
                            std::string detail) {
  size_t shard = engine_ != nullptr ? engine_->current_shard() : 0;
  buffers_[shard].events.push_back(
      {time, kind, device, partition, vgroup, std::move(detail)});
}

const std::vector<TraceEvent>& ExecutionTrace::events() const {
  size_t total = 0;
  for (const ShardBuffer& b : buffers_) total += b.events.size();
  if (merged_.size() != total) {
    merged_.clear();
    merged_.reserve(total);
    for (const ShardBuffer& b : buffers_) {
      merged_.insert(merged_.end(), b.events.begin(), b.events.end());
    }
    std::stable_sort(merged_.begin(), merged_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.device < b.device;
                     });
  }
  return merged_;
}

size_t ExecutionTrace::CountOf(TraceEventKind kind) const {
  const auto& all = events();
  return static_cast<size_t>(
      std::count_if(all.begin(), all.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string ExecutionTrace::ToTimeline(size_t max_events) const {
  std::ostringstream out;
  size_t contributions = CountOf(TraceEventKind::kContributionSent);
  size_t broadcasts = CountOf(TraceEventKind::kKnowledgeBroadcast);
  size_t shown = 0;
  bool contributions_summarized = false;
  bool broadcasts_summarized = false;
  for (const auto& e : events()) {
    // Bulk event classes are summarized once instead of flooding the
    // timeline.
    if (e.kind == TraceEventKind::kContributionSent && contributions > 8) {
      if (!contributions_summarized) {
        out << "[" << FormatSimTime(e.time) << "] collection phase: "
            << contributions << " contributions flowing to the snapshot "
            << "builders...\n";
        contributions_summarized = true;
      }
      continue;
    }
    if (e.kind == TraceEventKind::kKnowledgeBroadcast && broadcasts > 8) {
      if (!broadcasts_summarized) {
        out << "[" << FormatSimTime(e.time) << "] computation phase: "
            << broadcasts << " knowledge broadcasts between computers...\n";
        broadcasts_summarized = true;
      }
      continue;
    }
    if (shown >= max_events) {
      out << "... (" << events().size() - shown << " more events)\n";
      break;
    }
    out << "[" << FormatSimTime(e.time) << "] "
        << TraceEventKindName(e.kind);
    if (e.partition >= 0) out << " part=" << e.partition;
    if (e.vgroup >= 0) out << " vgroup=" << e.vgroup;
    if (e.device != 0) out << " @dev" << e.device;
    if (!e.detail.empty()) out << " — " << e.detail;
    out << "\n";
    ++shown;
  }
  return out.str();
}

std::string ExecutionTrace::PhaseSummary() const {
  struct Phase {
    TraceEventKind kind;
    const char* label;
  };
  const Phase phases[] = {
      {TraceEventKind::kContributionSent, "collection (contributions)"},
      {TraceEventKind::kSnapshotComplete, "snapshots complete"},
      {TraceEventKind::kPartialEmitted, "computation (partials)"},
      {TraceEventKind::kKnowledgeBroadcast, "K-Means sync broadcasts"},
      {TraceEventKind::kPartitionComplete, "partitions combined"},
      {TraceEventKind::kResultEmitted, "results emitted"},
      {TraceEventKind::kResultDelivered, "result delivered"},
      {TraceEventKind::kDeviceKilled, "devices killed"},
      {TraceEventKind::kLeaderFailover, "leader failovers"},
  };
  std::ostringstream out;
  for (const auto& phase : phases) {
    SimTime first = kSimTimeNever, last = 0;
    size_t count = 0;
    for (const auto& e : events()) {
      if (e.kind != phase.kind) continue;
      first = std::min(first, e.time);
      last = std::max(last, e.time);
      ++count;
    }
    if (count == 0) continue;
    out << "  " << phase.label << ": " << count << " event(s), "
        << FormatSimTime(first) << " .. " << FormatSimTime(last) << "\n";
  }
  return out.str();
}

}  // namespace edgelet::exec
