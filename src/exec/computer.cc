#include "exec/computer.h"

#include "common/hash.h"
#include "common/logging.h"
#include "ml/metrics.h"

namespace edgelet::exec {

ComputerActor::ComputerActor(net::SimEngine* sim, device::Device* dev,
                             Config config)
    : ActorBase(sim, dev),
      config_(std::move(config)),
      mb_rng_(Mix64(config_.query_id) ^ Mix64(config_.partition + 0x77)) {
  replica_ = std::make_unique<ReplicaRole>(sim, dev, config_.replica);
  replica_->set_on_promote([this]() {
    if (config_.trace != nullptr) {
      config_.trace->Record(this->sim()->now(),
                            TraceEventKind::kLeaderFailover,
                            this->dev()->id(), config_.partition,
                            config_.vgroup,
                            "computer rank " +
                                std::to_string(replica_->rank()) +
                                " takes over");
    }
    // Failover: re-emit whatever this replica already has ready.
    if (config_.mode == Mode::kGroupingSets && gs_partial_.has_value()) {
      EmitGsWithResends();
    }
  });
}

void ComputerActor::Start() {
  replica_->Start();
  if (config_.liveness.enabled) {
    beacon_ = std::make_unique<LivenessBeacon>(sim(), dev(), config_.liveness);
    beacon_->Start();
  }
  if (config_.mode == Mode::kKMeans) {
    for (int round = 0; round < config_.num_heartbeats; ++round) {
      SimTime at = config_.first_heartbeat +
                   static_cast<SimDuration>(round) * config_.heartbeat_period;
      sim()->ScheduleAt(dev()->id(), at, [this, round]() { Heartbeat(round); });
    }
  }
}

void ComputerActor::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kSnapshotSlice:
      OnSlice(msg);
      break;
    case kKmKnowledge: {
      if (config_.mode != Mode::kKMeans) break;
      if (!OpenSealed(msg).ok()) break;
      auto m = KmKnowledgeMsg::Decode(opened_payload());
      if (!m.ok() || m->query_id != config_.query_id) break;
      auto key = std::make_pair(m->partition, m->round);
      if (seen_rounds_.count(key)) break;  // re-broadcast duplicate
      seen_rounds_[key] = true;
      inbox_.push_back(std::move(m->knowledge));
      break;
    }
    case kLeaderPing: {
      auto ping = LeaderPingMsg::Decode(msg.payload);
      if (ping.ok()) replica_->HandlePing(*ping);
      break;
    }
    default:
      break;
  }
}

void ComputerActor::OnSlice(const net::Message& msg) {
  if (!OpenSealed(msg).ok()) return;
  auto slice = SnapshotSliceMsg::Decode(opened_payload());
  if (!slice.ok() || slice->query_id != config_.query_id ||
      slice->partition != config_.partition ||
      slice->vgroup != config_.vgroup) {
    return;
  }
  // Accept the first epoch only: a partition's slices must all come from
  // one snapshot instance.
  if (have_slice_) return;
  have_slice_ = true;
  slice_epoch_ = slice->epoch;
  slice_ = std::move(slice->rows);
  dev()->enclave().RecordClearTextTuples(slice_.num_rows(),
                                         slice_.schema().num_columns());
  if (config_.mode == Mode::kGroupingSets) {
    sim()->ScheduleAfter(dev()->id(), dev()->ComputeCost(slice_.num_rows()),
                         [this]() { ComputeAndEmitGs(); });
  } else {
    auto points = ml::ExtractPoints(slice_, config_.km_spec.features);
    if (!points.ok()) {
      EDGELET_LOG(kError) << "computer " << dev()->id()
                          << " feature extraction failed: "
                          << points.status().ToString();
      return;
    }
    points_ = std::move(*points);
  }
}

void ComputerActor::ComputeAndEmitGs() {
  auto partial = query::GroupingSetsResult::ComputeSets(
      slice_, config_.gs_spec, config_.set_indices);
  if (!partial.ok()) {
    EDGELET_LOG(kError) << "computer " << dev()->id()
                        << " grouping-sets failed: "
                        << partial.status().ToString();
    return;
  }
  gs_partial_ = std::move(*partial);
  if (replica_->is_leader()) EmitGsWithResends();
}

void ComputerActor::EmitGsWithResends() {
  EmitGs();
  for (int i = 1; i <= config_.emission_resends; ++i) {
    sim()->ScheduleAfter(dev()->id(), ResendBackoffDelay(i, config_.resend_interval),
        [this]() {
          // Suppressed after a leadership yield: the replica that took
          // over re-emits its own partial.
          if (replica_->is_leader()) EmitGs();
        });
  }
}

void ComputerActor::EmitGs() {
  if (!gs_partial_.has_value()) return;
  GsPartialMsg msg;
  msg.query_id = config_.query_id;
  msg.partition = config_.partition;
  msg.vgroup = config_.vgroup;
  msg.epoch = slice_epoch_;
  msg.result = *gs_partial_;
  SealAndSendAll(config_.combiners, kGsPartial, msg.Encode());
  output_sent_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kPartialEmitted,
                          dev()->id(), config_.partition, config_.vgroup);
  }
}

// --- K-Means ------------------------------------------------------------------

void ComputerActor::Heartbeat(int round) {
  // The heartbeat cadences progression regardless of what was received
  // (paper: "the Computers move to the next iteration even if few or no
  // messages were received").
  if (!points_.empty()) {
    SyncPhase();
    LocalPhase();
    BroadcastKnowledge(round);
  }
  if (round == config_.num_heartbeats - 1) {
    // Right before the deadline: report knowledge to the combiner.
    if (!points_.empty() && km_initialized_ && replica_->is_leader()) {
      sim()->ScheduleAfter(dev()->id(), dev()->ComputeCost(points_.size()),
                           [this]() { EmitKmFinal(); });
    }
  }
}

void ComputerActor::SyncPhase() {
  if (!km_initialized_) {
    // Deterministic per-computer initialization on the local partition;
    // index alignment across computers happens in merging.
    Rng rng(Mix64(config_.query_id) ^ Mix64(config_.partition + 1));
    auto init =
        ml::KMeansPlusPlusInit(points_, config_.km_spec.k, &rng);
    if (!init.ok()) return;
    knowledge_.centroids = std::move(*init);
    knowledge_.counts.assign(knowledge_.centroids.size(), 1);
    km_initialized_ = true;
  }
  if (inbox_.empty()) return;
  ++rounds_with_peer_input_;
  std::vector<ml::KMeansKnowledge> to_merge;
  to_merge.push_back(knowledge_);
  for (const auto& incoming : inbox_) {
    auto perm = ml::AlignCentroids(knowledge_.centroids, incoming.centroids);
    if (!perm.ok()) continue;  // shape mismatch: drop
    to_merge.push_back(ml::PermuteKnowledge(incoming, *perm));
  }
  inbox_.clear();
  auto merged = ml::MergeKnowledge(to_merge);
  if (merged.ok()) knowledge_ = std::move(*merged);
}

void ComputerActor::LocalPhase() {
  if (!km_initialized_) return;
  if (config_.km_spec.batch_size > 0) {
    // Mini-batch resampling mode: SGD-style updates on fresh samples, then
    // one hard assignment so the broadcast weights reflect the partition.
    ml::Matrix centroids = knowledge_.centroids;
    for (int i = 0; i < config_.km_spec.local_iterations; ++i) {
      if (!ml::RunMiniBatchStep(points_,
                                static_cast<size_t>(
                                    config_.km_spec.batch_size),
                                &mb_rng_, &centroids, &mb_counts_)
               .ok()) {
        return;
      }
    }
    auto step = ml::RunLloydStep(points_, centroids);
    if (!step.ok()) return;
    knowledge_ = std::move(step->knowledge);
    return;
  }
  for (int i = 0; i < config_.km_spec.local_iterations; ++i) {
    auto step = ml::RunLloydStep(points_, knowledge_.centroids);
    if (!step.ok()) return;
    knowledge_ = std::move(step->knowledge);
  }
}

void ComputerActor::BroadcastKnowledge(int round) {
  if (!km_initialized_) return;
  KmKnowledgeMsg msg;
  msg.query_id = config_.query_id;
  msg.partition = config_.partition;
  msg.round = static_cast<uint32_t>(round);
  msg.knowledge = knowledge_;
  Bytes payload = msg.Encode();
  for (const auto& group : config_.peers) {
    SealAndSendAll(group, kKmKnowledge, payload);
  }
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kKnowledgeBroadcast,
                          dev()->id(), config_.partition, config_.vgroup,
                          "round " + std::to_string(round));
  }
}

void ComputerActor::EmitKmFinal() {
  // Per-cluster aggregates over the local slice, index-aligned with the
  // final local knowledge (the "Group By on the resulting clusters").
  auto assignment = ml::Assign(points_, knowledge_.centroids);
  if (!assignment.ok()) return;

  const size_t k = knowledge_.centroids.size();
  const auto& aggs = config_.km_spec.cluster_aggregates;
  ClusterStats stats;
  stats.per_cluster.assign(k, std::vector<query::AggregateState>(aggs.size()));

  std::vector<int> agg_cols(aggs.size(), -1);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].column == "*") continue;
    auto idx = slice_.schema().IndexOf(aggs[a].column);
    if (!idx.ok()) {
      EDGELET_LOG(kError) << "cluster aggregate column missing: "
                          << aggs[a].column;
      return;
    }
    agg_cols[a] = static_cast<int>(*idx);
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    int c = (*assignment)[i];
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (agg_cols[a] < 0) {
        (void)stats.per_cluster[c][a].Add(data::Value::Null(), true);
      } else if (aggs[a].fn == query::AggregateFunction::kCountDistinct) {
        stats.per_cluster[c][a].AddDistinct(slice_.row(i)[agg_cols[a]]);
      } else if (aggs[a].fn == query::AggregateFunction::kQuantile) {
        (void)stats.per_cluster[c][a].AddQuantile(
            slice_.row(i)[agg_cols[a]]);
      } else {
        (void)stats.per_cluster[c][a].Add(slice_.row(i)[agg_cols[a]]);
      }
    }
  }

  KmFinalMsg msg;
  msg.query_id = config_.query_id;
  msg.partition = config_.partition;
  msg.knowledge = knowledge_;
  msg.stats = std::move(stats);
  SealAndSendAll(config_.combiners, kKmFinal, msg.Encode());
  for (int i = 1; i <= config_.emission_resends; ++i) {
    Bytes payload = msg.Encode();
    sim()->ScheduleAfter(dev()->id(), ResendBackoffDelay(i, config_.resend_interval),
        [this, payload]() {
          if (replica_->is_leader()) {
            SealAndSendAll(config_.combiners, kKmFinal, payload);
          }
        });
  }
  output_sent_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kPartialEmitted,
                          dev()->id(), config_.partition, config_.vgroup,
                          "K-Means final knowledge");
  }
}

}  // namespace edgelet::exec
