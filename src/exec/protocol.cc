#include "exec/protocol.h"

namespace edgelet::exec {

Bytes ContributionMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU64(contributor_key);
  rows.Serialize(&w);
  return w.Take();
}

Result<ContributionMsg> ContributionMsg::Decode(const Bytes& b) {
  Reader r(b);
  ContributionMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto key = r.GetU64();
  if (!key.ok()) return key.status();
  m.contributor_key = *key;
  auto rows = data::Table::Deserialize(&r);
  if (!rows.ok()) return rows.status();
  m.rows = std::move(*rows);
  return m;
}

Bytes SnapshotSliceMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU32(partition);
  w.PutU32(vgroup);
  w.PutU32(epoch);
  rows.Serialize(&w);
  return w.Take();
}

Result<SnapshotSliceMsg> SnapshotSliceMsg::Decode(const Bytes& b) {
  Reader r(b);
  SnapshotSliceMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto vg = r.GetU32();
  if (!vg.ok()) return vg.status();
  m.vgroup = *vg;
  auto epoch = r.GetU32();
  if (!epoch.ok()) return epoch.status();
  m.epoch = *epoch;
  auto rows = data::Table::Deserialize(&r);
  if (!rows.ok()) return rows.status();
  m.rows = std::move(*rows);
  return m;
}

Bytes GsPartialMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU32(partition);
  w.PutU32(vgroup);
  w.PutU32(epoch);
  result.Serialize(&w);
  return w.Take();
}

Result<GsPartialMsg> GsPartialMsg::Decode(const Bytes& b) {
  Reader r(b);
  GsPartialMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto vg = r.GetU32();
  if (!vg.ok()) return vg.status();
  m.vgroup = *vg;
  auto epoch = r.GetU32();
  if (!epoch.ok()) return epoch.status();
  m.epoch = *epoch;
  auto res = query::GroupingSetsResult::Deserialize(&r);
  if (!res.ok()) return res.status();
  m.result = std::move(*res);
  return m;
}

void ClusterStats::Permute(const std::vector<int>& perm) {
  // perm[i] = destination index for source cluster i.
  std::vector<std::vector<query::AggregateState>> out(per_cluster.size());
  for (size_t i = 0; i < per_cluster.size(); ++i) {
    size_t dst = (i < perm.size() && perm[i] >= 0 &&
                  static_cast<size_t>(perm[i]) < out.size())
                     ? static_cast<size_t>(perm[i])
                     : i;
    out[dst] = std::move(per_cluster[i]);
  }
  per_cluster = std::move(out);
}

Status ClusterStats::MergeFrom(const ClusterStats& other) {
  if (per_cluster.empty()) {
    per_cluster = other.per_cluster;
    return Status::OK();
  }
  if (per_cluster.size() != other.per_cluster.size()) {
    return Status::InvalidArgument("cluster stats size mismatch");
  }
  for (size_t c = 0; c < per_cluster.size(); ++c) {
    if (per_cluster[c].size() != other.per_cluster[c].size()) {
      return Status::InvalidArgument("cluster stats aggregate mismatch");
    }
    for (size_t a = 0; a < per_cluster[c].size(); ++a) {
      per_cluster[c][a].Merge(other.per_cluster[c][a]);
    }
  }
  return Status::OK();
}

void ClusterStats::Serialize(Writer* w) const {
  w->PutVarint(per_cluster.size());
  for (const auto& cluster : per_cluster) {
    w->PutVarint(cluster.size());
    for (const auto& s : cluster) s.Serialize(w);
  }
}

Result<ClusterStats> ClusterStats::Deserialize(Reader* r) {
  ClusterStats out;
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  out.per_cluster.resize(*n);
  for (uint64_t c = 0; c < *n; ++c) {
    auto na = r->GetVarint();
    if (!na.ok()) return na.status();
    out.per_cluster[c].reserve(*na);
    for (uint64_t a = 0; a < *na; ++a) {
      auto s = query::AggregateState::Deserialize(r);
      if (!s.ok()) return s.status();
      out.per_cluster[c].push_back(std::move(*s));
    }
  }
  return out;
}

Bytes KmKnowledgeMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU32(partition);
  w.PutU32(round);
  knowledge.Serialize(&w);
  return w.Take();
}

Result<KmKnowledgeMsg> KmKnowledgeMsg::Decode(const Bytes& b) {
  Reader r(b);
  KmKnowledgeMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto round = r.GetU32();
  if (!round.ok()) return round.status();
  m.round = *round;
  auto k = ml::KMeansKnowledge::Deserialize(&r);
  if (!k.ok()) return k.status();
  m.knowledge = std::move(*k);
  return m;
}

Bytes KmFinalMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU32(partition);
  knowledge.Serialize(&w);
  stats.Serialize(&w);
  return w.Take();
}

Result<KmFinalMsg> KmFinalMsg::Decode(const Bytes& b) {
  Reader r(b);
  KmFinalMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto k = ml::KMeansKnowledge::Deserialize(&r);
  if (!k.ok()) return k.status();
  m.knowledge = std::move(*k);
  auto s = ClusterStats::Deserialize(&r);
  if (!s.ok()) return s.status();
  m.stats = std::move(*s);
  return m;
}

Bytes FinalResultMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutVarint(partitions.size());
  for (uint32_t p : partitions) w.PutU32(p);
  w.PutVarint(epochs.size());
  for (uint32_t e : epochs) w.PutU32(e);
  result.Serialize(&w);
  return w.Take();
}

Result<FinalResultMsg> FinalResultMsg::Decode(const Bytes& b) {
  Reader r(b);
  FinalResultMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto np = r.GetVarint();
  if (!np.ok()) return np.status();
  for (uint64_t i = 0; i < *np; ++i) {
    auto p = r.GetU32();
    if (!p.ok()) return p.status();
    m.partitions.push_back(*p);
  }
  auto ne = r.GetVarint();
  if (!ne.ok()) return ne.status();
  for (uint64_t i = 0; i < *ne; ++i) {
    auto e = r.GetU32();
    if (!e.ok()) return e.status();
    m.epochs.push_back(*e);
  }
  auto table = data::Table::Deserialize(&r);
  if (!table.ok()) return table.status();
  m.result = std::move(*table);
  return m;
}

Bytes RecruitMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU8(static_cast<uint8_t>(role));
  w.PutU32(partition);
  w.PutU32(vgroup);
  w.PutU32(epoch);
  w.PutU64(peer);
  w.PutU64(controller);
  return w.Take();
}

Result<RecruitMsg> RecruitMsg::Decode(const Bytes& b) {
  Reader r(b);
  RecruitMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto role = r.GetU8();
  if (!role.ok()) return role.status();
  if (*role > static_cast<uint8_t>(RecruitRole::kComputer)) {
    return Status::InvalidArgument("bad recruit role");
  }
  m.role = static_cast<RecruitRole>(*role);
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto vg = r.GetU32();
  if (!vg.ok()) return vg.status();
  m.vgroup = *vg;
  auto epoch = r.GetU32();
  if (!epoch.ok()) return epoch.status();
  m.epoch = *epoch;
  auto peer = r.GetU64();
  if (!peer.ok()) return peer.status();
  m.peer = *peer;
  auto controller = r.GetU64();
  if (!controller.ok()) return controller.status();
  m.controller = *controller;
  return m;
}

Bytes RecruitAckMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU8(static_cast<uint8_t>(role));
  w.PutU32(partition);
  w.PutU32(vgroup);
  w.PutU32(epoch);
  return w.Take();
}

Result<RecruitAckMsg> RecruitAckMsg::Decode(const Bytes& b) {
  Reader r(b);
  RecruitAckMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto role = r.GetU8();
  if (!role.ok()) return role.status();
  if (*role > static_cast<uint8_t>(RecruitRole::kComputer)) {
    return Status::InvalidArgument("bad recruit role");
  }
  m.role = static_cast<RecruitRole>(*role);
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto vg = r.GetU32();
  if (!vg.ok()) return vg.status();
  m.vgroup = *vg;
  auto epoch = r.GetU32();
  if (!epoch.ok()) return epoch.status();
  m.epoch = *epoch;
  return m;
}

Bytes ResolicitMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU32(partition);
  w.PutU32(vgroup);
  w.PutU64(builder);
  return w.Take();
}

Result<ResolicitMsg> ResolicitMsg::Decode(const Bytes& b) {
  Reader r(b);
  ResolicitMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto part = r.GetU32();
  if (!part.ok()) return part.status();
  m.partition = *part;
  auto vg = r.GetU32();
  if (!vg.ok()) return vg.status();
  m.vgroup = *vg;
  auto builder = r.GetU64();
  if (!builder.ok()) return builder.status();
  m.builder = *builder;
  return m;
}

Bytes OperatorHeartbeatMsg::Encode() const {
  Writer w;
  w.PutU64(query_id);
  w.PutU64(op_id);
  return w.Take();
}

Result<OperatorHeartbeatMsg> OperatorHeartbeatMsg::Decode(const Bytes& b) {
  Reader r(b);
  OperatorHeartbeatMsg m;
  auto qid = r.GetU64();
  if (!qid.ok()) return qid.status();
  m.query_id = *qid;
  auto op = r.GetU64();
  if (!op.ok()) return op.status();
  m.op_id = *op;
  return m;
}

Bytes LeaderPingMsg::Encode() const {
  Writer w;
  w.PutU64(group_id);
  w.PutU32(rank);
  return w.Take();
}

Result<LeaderPingMsg> LeaderPingMsg::Decode(const Bytes& b) {
  Reader r(b);
  LeaderPingMsg m;
  auto gid = r.GetU64();
  if (!gid.ok()) return gid.status();
  m.group_id = *gid;
  auto rank = r.GetU32();
  if (!rank.ok()) return rank.status();
  m.rank = *rank;
  return m;
}

}  // namespace edgelet::exec
