#include "exec/repair.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace edgelet::exec {

uint64_t RepairOpId(RecruitRole role, uint32_t partition, uint32_t vgroup,
                    uint32_t generation) {
  // generation | role | partition | vgroup, packed so ids sort by
  // generation first — detector scans report originals before recruits.
  return (static_cast<uint64_t>(generation) << 40) |
         (static_cast<uint64_t>(static_cast<uint8_t>(role) + 1) << 32) |
         (static_cast<uint64_t>(partition & 0xFFFF) << 16) |
         static_cast<uint64_t>(vgroup & 0xFFFF);
}

// --- RepairController --------------------------------------------------------

RepairController::RepairController(net::SimEngine* sim, device::Device* dev,
                                   Config config)
    : sim_(sim),
      dev_(dev),
      config_(std::move(config)),
      detector_(config_.detector),
      done_([]() { return false; }) {
  chains_.resize(config_.total_partitions);
  for (uint32_t p = 0; p < config_.total_partitions; ++p) {
    chains_[p].resize(config_.num_vgroups);
    for (uint32_t vg = 0; vg < config_.num_vgroups; ++vg) {
      Chain& c = chains_[p][vg];
      c.builder_op = RepairOpId(RecruitRole::kSnapshotBuilder, p, vg, 0);
      c.computer_op = RepairOpId(RecruitRole::kComputer, p, vg, 0);
    }
  }
}

void RepairController::Start() {
  if (!config_.enabled || config_.total_partitions == 0) return;
  const SimTime now = sim_->now();
  for (auto& partition : chains_) {
    for (auto& c : partition) {
      detector_.Register(c.builder_op, now);
      detector_.Register(c.computer_op, now);
    }
  }
  const SimDuration period =
      std::max<SimDuration>(config_.detector.lease_period, kSecond);
  if (now + period < config_.deadline) {
    sim_->ScheduleAfter(dev_->id(), period, [this]() { Tick(); });
  }
}

void RepairController::OnHeartbeat(const OperatorHeartbeatMsg& msg) {
  if (msg.query_id != config_.query_id) return;
  detector_.Heartbeat(msg.op_id, sim_->now());
}

void RepairController::NotePartialDelivered(uint32_t partition,
                                            uint32_t vgroup, uint32_t epoch) {
  if (partition >= chains_.size() || vgroup >= config_.num_vgroups) return;
  Chain& c = chains_[partition][vgroup];
  c.delivered = true;
  if (epoch >= kRepairEpochBase && epoch == c.epoch && !c.repair_counted) {
    c.repair_counted = true;
    ++repairs_succeeded_;
    if (config_.trace != nullptr) {
      config_.trace->Record(sim_->now(), TraceEventKind::kChainRepaired,
                            dev_->id(), static_cast<int>(partition),
                            static_cast<int>(vgroup),
                            "repair epoch " + std::to_string(epoch));
    }
  }
  // A delivered chain needs no liveness anymore.
  detector_.Deregister(c.builder_op);
  detector_.Deregister(c.computer_op);
}

void RepairController::Tick() {
  if (abort_requested_ || done_()) return;
  // A dead controller must not keep deciding (its scheduled events still
  // fire); the surviving combiner instance has no controller — repair
  // degrades to plain overcollection, as before this subsystem existed.
  if (dev_->network()->IsDead(dev_->id())) return;
  const SimTime now = sim_->now();

  for (uint64_t op : detector_.Scan(now)) {
    if (config_.trace != nullptr) {
      config_.trace->Record(now, TraceEventKind::kFailureSuspected,
                            dev_->id(),
                            static_cast<int>((op >> 16) & 0xFFFF),
                            static_cast<int>(op & 0xFFFF),
                            "op " + std::to_string(op));
    }
  }

  // A partition can still complete iff every vertical chain either already
  // delivered its partial or is manned by unsuspected operators.
  int viable = 0;
  std::vector<std::pair<int, uint32_t>> broken;  // (#broken chains, p)
  for (uint32_t p = 0; p < config_.total_partitions; ++p) {
    int broken_chains = 0;
    for (const Chain& c : chains_[p]) {
      if (ChainBroken(c)) ++broken_chains;
    }
    if (broken_chains == 0) {
      ++viable;
    } else {
      broken.emplace_back(broken_chains, p);
    }
  }

  if (viable < config_.n_needed) {
    // Repair EVERY broken partition the spare/deadline budget allows, not
    // just enough to get back to n: the detector observes liveness, not
    // progress, so a repaired chain may still never fill its quota (too few
    // qualifying contributors hash into it). Rebuilding all broken chains
    // maximizes the chance that n fillable partitions are among the live
    // ones. Cheapest partitions first — fewer broken chains = fewer spares
    // — with ties on partition index (deterministic).
    std::sort(broken.begin(), broken.end());
    int recovered = 0;
    for (const auto& [broken_chains, p] : broken) {
      if (!RepairFeasible(now, broken_chains)) continue;
      RepairPartition(p, now);
      ++recovered;
    }
    if (viable + recovered < config_.n_needed) {
      FailSafe(now, config_.n_needed - viable - recovered);
      return;
    }
  }

  const SimDuration period =
      std::max<SimDuration>(config_.detector.lease_period, kSecond);
  if (now + period < config_.deadline) {
    sim_->ScheduleAfter(dev_->id(), period, [this]() { Tick(); });
  }
}

bool RepairController::ChainBroken(const Chain& chain) const {
  if (chain.delivered) return false;
  return detector_.IsSuspected(chain.builder_op) ||
         detector_.IsSuspected(chain.computer_op);
}

bool RepairController::RepairFeasible(SimTime now, int broken_chains) const {
  // Full-chain re-provisioning costs one builder + one computer per broken
  // chain.
  const size_t spares_needed = 2 * static_cast<size_t>(broken_chains);
  if (spare_next_ + spares_needed > config_.spare_pool.size()) return false;
  // Repair-time estimate: the recruited builder re-collects for whatever
  // remains of the collection window (a late detection collects promptly
  // via re-solicitation: remainder 0), the chain computes and emits within
  // the margins, and the combiner still needs its own margin before the
  // deadline to merge and deliver.
  const SimDuration remainder =
      config_.collection_end > now ? config_.collection_end - now : 0;
  const SimTime ready_by =
      now + remainder + config_.compute_margin + config_.emission_margin;
  if (config_.deadline == kSimTimeNever) return true;
  return ready_by + config_.combiner_margin <= config_.deadline;
}

void RepairController::RepairPartition(uint32_t partition, SimTime now) {
  for (uint32_t vg = 0; vg < config_.num_vgroups; ++vg) {
    Chain& c = chains_[partition][vg];
    if (!ChainBroken(c)) continue;  // healthy chains keep their operators
    detector_.Deregister(c.builder_op);
    detector_.Deregister(c.computer_op);
    const net::NodeId builder_node = config_.spare_pool[spare_next_++];
    const net::NodeId computer_node = config_.spare_pool[spare_next_++];
    const uint32_t epoch = next_epoch_++;
    c.epoch = epoch;
    c.builder_node = builder_node;
    c.computer_node = computer_node;
    c.builder_acked = false;
    c.computer_acked = false;
    c.resolicited = false;
    c.repair_counted = false;
    c.builder_op = RepairOpId(RecruitRole::kSnapshotBuilder, partition, vg,
                              epoch);
    c.computer_op = RepairOpId(RecruitRole::kComputer, partition, vg, epoch);
    // Recruits enter the detector immediately: their lease doubles as the
    // recruit timeout — a spare that never acks (or dies right after) is
    // suspected like any operator, and the next scan re-repairs the chain
    // on fresh spares.
    detector_.Register(c.builder_op, now);
    detector_.Register(c.computer_op, now);
    ++repairs_attempted_;
    SendRecruit(RecruitRole::kComputer, computer_node, partition, vg, epoch,
                /*peer=*/0);
    SendRecruit(RecruitRole::kSnapshotBuilder, builder_node, partition, vg,
                epoch, /*peer=*/computer_node);
  }
}

void RepairController::SendRecruit(RecruitRole role, net::NodeId to,
                                   uint32_t partition, uint32_t vgroup,
                                   uint32_t epoch, net::NodeId peer) {
  RecruitMsg msg;
  msg.query_id = config_.query_id;
  msg.role = role;
  msg.partition = partition;
  msg.vgroup = vgroup;
  msg.epoch = epoch;
  msg.peer = peer;
  msg.controller = dev_->id();
  const Bytes payload = msg.Encode();
  (void)dev_->SendSealed(to, kRecruit, payload);
  if (config_.trace != nullptr) {
    config_.trace->Record(sim_->now(), TraceEventKind::kRecruitSent,
                          dev_->id(), static_cast<int>(partition),
                          static_cast<int>(vgroup),
                          (role == RecruitRole::kSnapshotBuilder
                               ? std::string("builder -> ")
                               : std::string("computer -> ")) +
                              std::to_string(to));
  }
  for (int i = 1; i <= config_.recruit_resends; ++i) {
    sim_->ScheduleAfter(
        dev_->id(), ResendBackoffDelay(i, config_.resend_interval),
        [this, role, to, partition, vgroup, epoch, payload]() {
          if (partition >= chains_.size() ||
              vgroup >= config_.num_vgroups) {
            return;
          }
          const Chain& c = chains_[partition][vgroup];
          if (c.epoch != epoch) return;  // chain moved to a newer recruit
          const bool acked = role == RecruitRole::kSnapshotBuilder
                                 ? c.builder_acked
                                 : c.computer_acked;
          if (!acked && !dev_->network()->IsDead(dev_->id())) {
            (void)dev_->SendSealed(to, kRecruit, payload);
          }
        });
  }
}

void RepairController::OnRecruitAck(const RecruitAckMsg& msg) {
  if (msg.query_id != config_.query_id) return;
  if (msg.partition >= chains_.size() || msg.vgroup >= config_.num_vgroups) {
    return;
  }
  Chain& c = chains_[msg.partition][msg.vgroup];
  if (msg.epoch != c.epoch) return;  // ack for a superseded recruit
  bool* acked = msg.role == RecruitRole::kSnapshotBuilder ? &c.builder_acked
                                                          : &c.computer_acked;
  if (*acked) return;  // resend duplicate
  *acked = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim_->now(), TraceEventKind::kRecruitAcked,
                          dev_->id(), static_cast<int>(msg.partition),
                          static_cast<int>(msg.vgroup),
                          msg.role == RecruitRole::kSnapshotBuilder
                              ? "builder"
                              : "computer");
  }
  // Once the recruited builder is standing, re-solicit its partition's
  // contributions (the originals went to a dead device's inbox).
  if (msg.role == RecruitRole::kSnapshotBuilder && !c.resolicited) {
    c.resolicited = true;
    Resolicit(msg.partition, msg.vgroup, c.builder_node);
  }
}

void RepairController::Resolicit(uint32_t partition, uint32_t vgroup,
                                 net::NodeId builder) {
  ResolicitMsg msg;
  msg.query_id = config_.query_id;
  msg.partition = partition;
  msg.vgroup = vgroup;
  msg.builder = builder;
  const Bytes payload = msg.Encode();
  // Fan out to every contributor; each one checks locally whether its key
  // hashes into the rebuilt partition and re-sends its projection there.
  for (net::NodeId contributor : config_.contributors) {
    (void)dev_->SendSealed(contributor, kResolicit, payload);
  }
}

void RepairController::FailSafe(SimTime now, int missing) {
  abort_requested_ = true;
  abort_time_ = now;
  if (config_.trace != nullptr) {
    config_.trace->Record(now, TraceEventKind::kEarlyAbort, dev_->id(), -1,
                          -1,
                          std::to_string(missing) +
                              " partitions unrepairable within deadline");
  }
  EDGELET_LOG(kWarning)
      << "repair controller: failing safe at t=" << now << " ("
      << missing << " partitions cannot be repaired before the deadline)";
}

// --- SpareActor --------------------------------------------------------------

SpareActor::SpareActor(net::SimEngine* sim, device::Device* dev, Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {}

SpareActor::~SpareActor() = default;

void SpareActor::HandleMessage(const net::Message& msg) {
  if (msg.type == kRecruit) {
    OnRecruit(msg);
    return;
  }
  // Recruited: the inner actor owns the protocol from here on.
  if (builder_ != nullptr) {
    builder_->Deliver(msg);
  } else if (computer_ != nullptr) {
    computer_->Deliver(msg);
  }
}

void SpareActor::OnRecruit(const net::Message& msg) {
  if (!OpenSealed(msg).ok()) return;
  auto req = RecruitMsg::Decode(opened_payload());
  if (!req.ok() || req->query_id != config_.query_id) return;
  if (recruited_) {
    // Controller resend of our assignment: re-ack (the first ack may have
    // been lost). A conflicting assignment is dropped — one spare, one
    // role.
    if (req->role == assignment_.role &&
        req->partition == assignment_.partition &&
        req->vgroup == assignment_.vgroup &&
        req->epoch == assignment_.epoch) {
      SendAck();
    }
    return;
  }
  if (req->vgroup >= config_.vgroup_columns.size()) return;
  recruited_ = true;
  assignment_ = *req;

  const uint64_t op_id =
      RepairOpId(req->role, req->partition, req->vgroup, req->epoch);
  LivenessBeacon::Config liveness;
  liveness.enabled = true;
  liveness.target = req->controller;
  liveness.query_id = config_.query_id;
  liveness.op_id = op_id;
  liveness.period = config_.liveness_period;
  liveness.stop_at = config_.stop_at;

  // Singleton replica group (Overcollection discipline: recruits are
  // singletons like the originals) keyed uniquely per assignment.
  ReplicaRole::Config replica;
  replica.group_id =
      HashCombine(config_.query_id,
                  0x5E00000000ULL + (static_cast<uint64_t>(req->epoch) << 20) +
                      req->partition * 131 + req->vgroup);
  replica.members = {dev()->id()};
  replica.stop_at = config_.stop_at;

  if (req->role == RecruitRole::kSnapshotBuilder) {
    SnapshotBuilderActor::Config cfg;
    cfg.query_id = config_.query_id;
    cfg.partition = req->partition;
    cfg.vgroup = req->vgroup;
    cfg.quota = config_.quota;
    cfg.computers = {req->peer};
    cfg.columns = config_.vgroup_columns[req->vgroup];
    cfg.replica = replica;
    cfg.trace = config_.trace;
    cfg.emission_resends = config_.emission_resends;
    cfg.resend_interval = config_.resend_interval;
    cfg.epoch_override = static_cast<int64_t>(req->epoch);
    cfg.liveness = liveness;
    builder_ = std::make_unique<SnapshotBuilderActor>(sim(), dev(),
                                                      std::move(cfg));
    // The inner actor's constructor re-bound the device handler to itself;
    // reclaim it so recruit resends keep reaching this wrapper.
    dev()->set_message_handler(
        [this](const net::Message& m) { HandleMessage(m); });
    builder_->Start();
  } else {
    ComputerActor::Config cfg;
    cfg.query_id = config_.query_id;
    cfg.partition = req->partition;
    cfg.vgroup = req->vgroup;
    cfg.mode = ComputerActor::Mode::kGroupingSets;
    cfg.gs_spec = config_.gs_spec;
    if (req->vgroup < config_.vgroup_set_indices.size()) {
      cfg.set_indices = config_.vgroup_set_indices[req->vgroup];
    }
    cfg.combiners = config_.combiners;
    cfg.replica = replica;
    cfg.trace = config_.trace;
    cfg.emission_resends = config_.emission_resends;
    cfg.resend_interval = config_.resend_interval;
    cfg.liveness = liveness;
    computer_ = std::make_unique<ComputerActor>(sim(), dev(), std::move(cfg));
    dev()->set_message_handler(
        [this](const net::Message& m) { HandleMessage(m); });
    computer_->Start();
  }
  SendAck();
}

void SpareActor::SendAck() {
  RecruitAckMsg ack;
  ack.query_id = config_.query_id;
  ack.role = assignment_.role;
  ack.partition = assignment_.partition;
  ack.vgroup = assignment_.vgroup;
  ack.epoch = assignment_.epoch;
  SealAndSend(assignment_.controller, kRecruitAck, ack.Encode());
}

}  // namespace edgelet::exec
