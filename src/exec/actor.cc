#include "exec/actor.h"

#include "common/logging.h"
#include "data/partition.h"

namespace edgelet::exec {

ContributorActor::ContributorActor(net::SimEngine* sim, device::Device* dev,
                                   Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {}

void ContributorActor::Start() {
  sim()->ScheduleAt(dev()->id(), config_.send_at, [this]() { Contribute(); });
}

void ContributorActor::Contribute() {
  const data::Table& local = dev()->local_data();
  if (local.empty()) return;

  auto qualified = query::ApplyPredicates(local, config_.predicates);
  if (!qualified.ok()) {
    EDGELET_LOG(kWarning) << "contributor " << dev()->id()
                          << " predicate error: "
                          << qualified.status().ToString();
    return;
  }
  if (qualified->empty()) return;  // the owner's data does not qualify

  uint32_t partition = data::PartitionForKey(
      config_.contributor_key, static_cast<uint32_t>(config_.builders.size()));
  for (size_t vg = 0; vg < config_.vgroup_columns.size(); ++vg) {
    auto projected = qualified->Project(config_.vgroup_columns[vg]);
    if (!projected.ok()) {
      EDGELET_LOG(kWarning) << "contributor " << dev()->id()
                            << " projection error: "
                            << projected.status().ToString();
      return;
    }
    ContributionMsg msg;
    msg.query_id = config_.query_id;
    msg.contributor_key = config_.contributor_key;
    msg.rows = std::move(*projected);
    SealAndSendAll(config_.builders[partition][vg], kContribution,
                   msg.Encode());
  }
  contributed_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kContributionSent,
                          dev()->id());
  }
}

void QuerierActor::HandleMessage(const net::Message& msg) {
  if (msg.type != kFinalResult) return;
  Status opened = OpenSealed(msg);
  if (!opened.ok()) {
    EDGELET_LOG(kWarning) << "querier failed to open result: "
                          << opened.ToString();
    return;
  }
  auto result = FinalResultMsg::Decode(opened_payload());
  if (!result.ok() || result->query_id != query_id_) return;
  if (has_result_) {
    ++duplicates_;
    return;
  }
  has_result_ = true;
  result_ = std::move(*result);
  result_time_ = sim()->now();
  if (trace_ != nullptr) {
    trace_->Record(sim()->now(), TraceEventKind::kResultDelivered,
                   dev()->id(), -1, -1,
                   std::to_string(result_.partitions.size()) +
                       " partitions merged");
  }
}

}  // namespace edgelet::exec
