#include "exec/actor.h"

#include "common/logging.h"
#include "data/partition.h"

namespace edgelet::exec {

LivenessBeacon::LivenessBeacon(net::SimEngine* sim, device::Device* dev,
                               Config config)
    : sim_(sim), dev_(dev), config_(config) {}

void LivenessBeacon::Start() {
  if (!config_.enabled || config_.period <= 0) return;
  OperatorHeartbeatMsg msg;
  msg.query_id = config_.query_id;
  msg.op_id = config_.op_id;
  payload_ = msg.Encode();
  Beat();
}

void LivenessBeacon::Beat() {
  if (dev_->network()->IsDead(dev_->id())) return;  // stop the loop
  if (sim_->now() >= config_.stop_at) return;
  // Offline (churned-out) devices' sends are dropped by the network — the
  // missed beat is exactly the signal the detector is built around.
  dev_->SendControl(config_.target, kOperatorHeartbeat, payload_);
  sim_->ScheduleAfter(dev_->id(), config_.period, [this]() { Beat(); });
}

ContributorActor::ContributorActor(net::SimEngine* sim, device::Device* dev,
                                   Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {}

void ContributorActor::Start() {
  sim()->ScheduleAt(dev()->id(), config_.send_at, [this]() { Contribute(); });
}

void ContributorActor::Contribute() {
  const data::Table& local = dev()->local_data();
  if (local.empty()) return;

  auto qualified = query::ApplyPredicates(local, config_.predicates);
  if (!qualified.ok()) {
    EDGELET_LOG(kWarning) << "contributor " << dev()->id()
                          << " predicate error: "
                          << qualified.status().ToString();
    return;
  }
  if (qualified->empty()) return;  // the owner's data does not qualify

  uint32_t partition = data::PartitionForKey(
      config_.contributor_key, static_cast<uint32_t>(config_.builders.size()));
  for (size_t vg = 0; vg < config_.vgroup_columns.size(); ++vg) {
    auto projected = qualified->Project(config_.vgroup_columns[vg]);
    if (!projected.ok()) {
      EDGELET_LOG(kWarning) << "contributor " << dev()->id()
                            << " projection error: "
                            << projected.status().ToString();
      return;
    }
    ContributionMsg msg;
    msg.query_id = config_.query_id;
    msg.contributor_key = config_.contributor_key;
    msg.rows = std::move(*projected);
    SealAndSendAll(config_.builders[partition][vg], kContribution,
                   msg.Encode());
  }
  contributed_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kContributionSent,
                          dev()->id());
  }
}

void ContributorActor::HandleMessage(const net::Message& msg) {
  if (msg.type == kResolicit) OnResolicit(msg);
}

void ContributorActor::OnResolicit(const net::Message& msg) {
  if (!OpenSealed(msg).ok()) return;
  auto req = ResolicitMsg::Decode(opened_payload());
  if (!req.ok() || req->query_id != config_.query_id) return;
  if (req->vgroup >= config_.vgroup_columns.size()) return;
  // Only the partition this contributor hashes into may sample its row —
  // re-solicitation must preserve the plan's hash partitioning.
  uint32_t partition = data::PartitionForKey(
      config_.contributor_key, static_cast<uint32_t>(config_.builders.size()));
  if (partition != req->partition) return;

  const data::Table& local = dev()->local_data();
  if (local.empty()) return;
  auto qualified = query::ApplyPredicates(local, config_.predicates);
  if (!qualified.ok() || qualified->empty()) return;
  auto projected = qualified->Project(config_.vgroup_columns[req->vgroup]);
  if (!projected.ok()) return;
  ContributionMsg out;
  out.query_id = config_.query_id;
  out.contributor_key = config_.contributor_key;
  out.rows = std::move(*projected);
  SealAndSend(req->builder, kContribution, out.Encode());
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kContributionSent,
                          dev()->id(), static_cast<int>(req->partition),
                          static_cast<int>(req->vgroup), "re-solicited");
  }
}

void QuerierActor::HandleMessage(const net::Message& msg) {
  if (msg.type != kFinalResult) return;
  Status opened = OpenSealed(msg);
  if (!opened.ok()) {
    EDGELET_LOG(kWarning) << "querier failed to open result: "
                          << opened.ToString();
    return;
  }
  auto result = FinalResultMsg::Decode(opened_payload());
  if (!result.ok() || result->query_id != query_id_) return;
  if (has_result_) {
    ++duplicates_;
    return;
  }
  has_result_ = true;
  result_ = std::move(*result);
  result_time_ = sim()->now();
  if (trace_ != nullptr) {
    trace_->Record(sim()->now(), TraceEventKind::kResultDelivered,
                   dev()->id(), -1, -1,
                   std::to_string(result_.partitions.size()) +
                       " partitions merged");
  }
}

}  // namespace edgelet::exec
