#ifndef EDGELET_EXEC_SNAPSHOT_BUILDER_H_
#define EDGELET_EXEC_SNAPSHOT_BUILDER_H_

#include <memory>
#include <set>

#include "exec/actor.h"
#include "exec/replica.h"

namespace edgelet::exec {

// The Snapshot Builder of one (partition, vertical-group) chain: collects
// that group's projections from contributors until the partition quota
// (C/n tuples) is reached, then emits the slice to its Computer. Vertical
// chains are independent — each samples its own representative C/n rows —
// so a separated attribute pair never co-resides anywhere. With the Backup
// strategy the actor is one replica of the chain's builder group; every
// replica collects, only the leader emits, and a failover replica re-emits
// its own snapshot under a new epoch (its rank).
class SnapshotBuilderActor : public ActorBase {
 public:
  struct Config {
    uint64_t query_id = 0;
    uint32_t partition = 0;
    uint32_t vgroup = 0;
    uint64_t quota = 0;  // ceil(C/n)
    // Rank-ordered replica group of this chain's Computer.
    std::vector<net::NodeId> computers;
    // Columns of this vertical group (what contributors send here).
    std::vector<std::string> columns;
    ReplicaRole::Config replica;
    ExecutionTrace* trace = nullptr;
    // Extra re-emissions of the slice (lossy links; computers dedup).
    int emission_resends = 0;
    SimDuration resend_interval = kDefaultResendInterval;
    // Repair subsystem: emit slices under this epoch instead of the
    // replica rank (< 0 = use the rank). Recruited builders get a unique
    // repair-generation epoch so their sample can never be confused with a
    // dead original's.
    int64_t epoch_override = -1;
    // Liveness lease renewals toward the repair controller (off unless the
    // execution enables repair).
    LivenessBeacon::Config liveness;
  };

  SnapshotBuilderActor(net::SimEngine* sim, device::Device* dev,
                       Config config);

  void Start();

  bool snapshot_complete() const { return complete_; }
  uint64_t tuples_collected() const { return buffer_.num_rows(); }
  // Contributor keys included in this builder's snapshot (validity audit).
  const std::vector<uint64_t>& included_contributors() const {
    return included_;
  }
  uint32_t rank() const { return replica_->rank(); }
  // The epoch this builder stamps on emitted slices (rank, unless a
  // repair-generation override is set).
  uint32_t emit_epoch() const {
    return config_.epoch_override >= 0
               ? static_cast<uint32_t>(config_.epoch_override)
               : replica_->rank();
  }

 protected:
  void HandleMessage(const net::Message& msg) override;

 private:
  void OnContribution(const net::Message& msg);
  void MaybeEmit();
  void EmitSlice();
  void EmitSliceWithResends();

  Config config_;
  std::unique_ptr<ReplicaRole> replica_;
  std::unique_ptr<LivenessBeacon> beacon_;
  data::Table buffer_;
  bool have_schema_ = false;
  bool complete_ = false;
  bool emitted_ = false;
  std::vector<uint64_t> included_;
  std::set<uint64_t> seen_contributors_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_SNAPSHOT_BUILDER_H_
