#ifndef EDGELET_EXEC_PROTOCOL_H_
#define EDGELET_EXEC_PROTOCOL_H_

#include <cstdint>

#include "data/table.h"
#include "ml/kmeans.h"
#include "net/message.h"
#include "query/grouping_sets.h"

namespace edgelet::exec {

// Protocol message kinds carried in net::Message::type. Data-bearing
// messages (< kLeaderPing) travel AEAD-sealed between enclaves; control
// messages are plaintext.
enum MessageType : uint32_t {
  kContribution = 1,    // Contributor -> SnapshotBuilder
  kSnapshotSlice = 2,   // SnapshotBuilder -> Computer
  kGsPartial = 3,       // Computer -> Combiner (Grouping Sets)
  kKmKnowledge = 4,     // Computer <-> Computer (K-Means sync broadcast)
  kKmFinal = 5,         // Computer -> Combiner (K-Means)
  kFinalResult = 6,     // Combiner -> Querier
  kRecruit = 7,         // RepairController -> spare edgelet
  kRecruitAck = 8,      // spare edgelet -> RepairController
  kResolicit = 9,       // RepairController -> Contributors (re-solicit)
  kLeaderPing = 100,    // Backup strategy: leader liveness announcement
  kOperatorHeartbeat = 101,  // operator -> RepairController liveness lease
};

// --- Payload envelopes -------------------------------------------------------

// One contributor's qualifying rows (usually a single record).
struct ContributionMsg {
  uint64_t query_id = 0;
  uint64_t contributor_key = 0;
  data::Table rows;

  Bytes Encode() const;
  static Result<ContributionMsg> Decode(const Bytes& b);
};

// A vertical slice of one snapshot partition.
struct SnapshotSliceMsg {
  uint64_t query_id = 0;
  uint32_t partition = 0;
  uint32_t vgroup = 0;
  // Epoch distinguishes re-emissions by failover replicas (Backup
  // strategy): a partition's slices must come from one epoch.
  uint32_t epoch = 0;
  data::Table rows;

  Bytes Encode() const;
  static Result<SnapshotSliceMsg> Decode(const Bytes& b);
};

// A computer's grouping-sets partial over its slice.
struct GsPartialMsg {
  uint64_t query_id = 0;
  uint32_t partition = 0;
  uint32_t vgroup = 0;
  uint32_t epoch = 0;
  query::GroupingSetsResult result;

  Bytes Encode() const;
  static Result<GsPartialMsg> Decode(const Bytes& b);
};

// Per-cluster aggregate states, index-aligned with KMeansKnowledge
// centroids (the "Group By on the resulting clusters" of demo query ii).
struct ClusterStats {
  // per_cluster[c][a] = state of aggregate a over rows in cluster c.
  std::vector<std::vector<query::AggregateState>> per_cluster;

  void Permute(const std::vector<int>& perm);
  Status MergeFrom(const ClusterStats& other);
  void Serialize(Writer* w) const;
  static Result<ClusterStats> Deserialize(Reader* r);
};

// K-Means knowledge broadcast between computers each heartbeat.
struct KmKnowledgeMsg {
  uint64_t query_id = 0;
  uint32_t partition = 0;
  uint32_t round = 0;
  ml::KMeansKnowledge knowledge;

  Bytes Encode() const;
  static Result<KmKnowledgeMsg> Decode(const Bytes& b);
};

// Final K-Means report from a computer to the combiner.
struct KmFinalMsg {
  uint64_t query_id = 0;
  uint32_t partition = 0;
  ml::KMeansKnowledge knowledge;
  ClusterStats stats;

  Bytes Encode() const;
  static Result<KmFinalMsg> Decode(const Bytes& b);
};

// The combiner's answer.
struct FinalResultMsg {
  uint64_t query_id = 0;
  // Snapshot partitions merged into the result (with the epoch of the
  // slice used for each) — lets the querier audit which crowd sample the
  // answer covers, and lets the framework verify validity against a
  // centralized run over the same sample.
  std::vector<uint32_t> partitions;
  std::vector<uint32_t> epochs;
  data::Table result;

  Bytes Encode() const;
  static Result<FinalResultMsg> Decode(const Bytes& b);
};

// Which chain role a spare is recruited into.
enum class RecruitRole : uint8_t {
  kSnapshotBuilder = 0,
  kComputer = 1,
};

// Recruits a pre-provisioned spare edgelet into a broken
// (partition, vertical-group) chain. Heavy plan state (grouping-set spec,
// vertical-group columns) is not on the wire: spares receive the published
// query plan at provisioning time, exactly like originally assigned
// processors; the recruit names the slot only. Epoch is the repair
// generation (>= kRepairEpochBase, so it can never collide with a replica
// rank used as the epoch of an original chain's slice).
struct RecruitMsg {
  uint64_t query_id = 0;
  RecruitRole role = RecruitRole::kSnapshotBuilder;
  uint32_t partition = 0;
  uint32_t vgroup = 0;
  uint32_t epoch = 0;
  // Builder recruit: the recruited computer it must send its slice to.
  net::NodeId peer = 0;
  // Where to ack and heartbeat (the combiner hosting the controller).
  net::NodeId controller = 0;

  Bytes Encode() const;
  static Result<RecruitMsg> Decode(const Bytes& b);
};

// Repair-generation epochs start here; replica ranks (the epochs of
// original emissions) are always far below it.
inline constexpr uint32_t kRepairEpochBase = 256;

// A spare's acceptance of a recruit assignment.
struct RecruitAckMsg {
  uint64_t query_id = 0;
  RecruitRole role = RecruitRole::kSnapshotBuilder;
  uint32_t partition = 0;
  uint32_t vgroup = 0;
  uint32_t epoch = 0;

  Bytes Encode() const;
  static Result<RecruitAckMsg> Decode(const Bytes& b);
};

// Asks contributors to re-send their vertical-group projection for one
// partition to a freshly recruited snapshot builder.
struct ResolicitMsg {
  uint64_t query_id = 0;
  uint32_t partition = 0;
  uint32_t vgroup = 0;
  net::NodeId builder = 0;

  Bytes Encode() const;
  static Result<ResolicitMsg> Decode(const Bytes& b);
};

// Operator liveness lease renewal (plaintext control message).
struct OperatorHeartbeatMsg {
  uint64_t query_id = 0;
  uint64_t op_id = 0;

  Bytes Encode() const;
  static Result<OperatorHeartbeatMsg> Decode(const Bytes& b);
};

// Leader liveness ping (plaintext control message).
struct LeaderPingMsg {
  uint64_t group_id = 0;
  uint32_t rank = 0;

  Bytes Encode() const;
  static Result<LeaderPingMsg> Decode(const Bytes& b);
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_PROTOCOL_H_
