#ifndef EDGELET_EXEC_REPAIR_H_
#define EDGELET_EXEC_REPAIR_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/actor.h"
#include "exec/computer.h"
#include "exec/snapshot_builder.h"
#include "resilience/failure_detector.h"

namespace edgelet::exec {

// User-facing knobs of the mid-query failure-detection + partition-repair
// subsystem (DESIGN.md §5f). Off by default: with enabled == false an
// execution is bit-identical to one built before the subsystem existed.
// Repair applies to Grouping Sets queries under the Overcollection
// strategy; other executions ignore it.
struct RepairConfig {
  bool enabled = false;
  // Heartbeat cadence of monitored operators == the detector's lease
  // period == the controller's scan cadence.
  SimDuration lease_period = 5 * kSecond;
  // Missed periods before suspicion, and the lease backoff applied when a
  // suspicion proves false (see resilience::FailureDetectorConfig).
  int miss_threshold = 3;
  double suspicion_backoff = 2.0;
  int max_backoff_steps = 3;
  double detector_jitter_fraction = 0.1;
  // Budget terms of the repair-vs-fail-safe decision: a repair is feasible
  // iff now + collection-window remainder + compute_margin +
  // emission_margin still fits before (deadline - combiner margin).
  SimDuration compute_margin = 15 * kSecond;
  SimDuration emission_margin = 15 * kSecond;
  // Extra recruit re-sends (backoff schedule; spares ack-dedup).
  int recruit_resends = 2;
};

// Stable operator identity for the liveness lease of one chain operator:
// (repair generation, role, partition, vgroup). Generation 0 is the
// originally planned chain; recruited replacements use their repair epoch,
// so a recruit is a fresh detector entry, never inheriting the suspicion
// of the operator it replaces.
uint64_t RepairOpId(RecruitRole role, uint32_t partition, uint32_t vgroup,
                    uint32_t generation);

// The repair controller: owned by (and running in the event context of)
// the primary combiner. Monitors every (partition, vertical-group) chain
// through operator heartbeat leases; when the partitions still able to
// complete drop below n, it estimates the repair time against the
// remaining deadline budget and either re-provisions the broken chains on
// spare edgelets (Recruit / RecruitAck / re-solicitation) or fails safe —
// requesting termination at detection time instead of idling to the
// deadline.
//
// Determinism: all state mutations happen in the combiner device's event
// context (scan ticks, message deliveries), and all randomness is the
// detector's per-operator counter-based NodeRng jitter — so runs replay
// bit-identically for any parsim shard count.
class RepairController {
 public:
  struct Config {
    bool enabled = false;
    uint64_t query_id = 0;
    int n_needed = 1;
    uint32_t total_partitions = 0;  // n + m
    uint32_t num_vgroups = 1;
    resilience::FailureDetectorConfig detector;
    // Absolute times of this execution's schedule.
    SimTime start_at = 0;
    SimTime collection_end = 0;
    SimTime deadline = kSimTimeNever;
    SimDuration combiner_margin = 60 * kSecond;
    SimDuration compute_margin = 15 * kSecond;
    SimDuration emission_margin = 15 * kSecond;
    int recruit_resends = 2;
    SimDuration resend_interval = kDefaultResendInterval;
    // Rank-ordered spares reserved by the planner; consumed front-first.
    std::vector<net::NodeId> spare_pool;
    // Every contributor device (re-solicitation fan-out).
    std::vector<net::NodeId> contributors;
    ExecutionTrace* trace = nullptr;
  };

  RepairController(net::SimEngine* sim, device::Device* dev, Config config);

  // Registers the generation-0 chains and schedules the periodic scan.
  void Start();
  // Scanning stops once this returns true (the combiner's result is ready).
  void set_done(std::function<bool()> done) { done_ = std::move(done); }

  // Routed by the owning combiner from its message handler.
  void OnHeartbeat(const OperatorHeartbeatMsg& msg);
  void OnRecruitAck(const RecruitAckMsg& msg);
  // Called when the combiner accepts a partial for (partition, vgroup).
  void NotePartialDelivered(uint32_t partition, uint32_t vgroup,
                            uint32_t epoch);

  // Fail-safe early termination: requested when live complete partitions
  // dropped below n and repair is infeasible (no budget or no spares).
  bool abort_requested() const { return abort_requested_; }
  // Absolute simulation time of the abort decision (strictly before the
  // deadline); kSimTimeNever when no abort was requested.
  SimTime abort_time() const { return abort_time_; }

  uint64_t detections() const { return detector_.detections(); }
  uint32_t repairs_attempted() const { return repairs_attempted_; }
  uint32_t repairs_succeeded() const { return repairs_succeeded_; }
  size_t spares_used() const { return spare_next_; }

 private:
  // One (partition, vgroup) chain: the operators currently responsible for
  // it (originals or the latest recruits) and its delivery state.
  struct Chain {
    uint64_t builder_op = 0;
    uint64_t computer_op = 0;
    uint32_t epoch = 0;  // 0 = original generation
    net::NodeId builder_node = 0;
    net::NodeId computer_node = 0;
    bool delivered = false;
    bool builder_acked = true;   // recruits start false until RecruitAck
    bool computer_acked = true;
    bool resolicited = false;
    bool repair_counted = false;
  };

  void Tick();
  bool ChainBroken(const Chain& chain) const;
  // Time + spare-pool feasibility of repairing `broken_chains` chains now.
  bool RepairFeasible(SimTime now, int broken_chains) const;
  void RepairPartition(uint32_t partition, SimTime now);
  void SendRecruit(RecruitRole role, net::NodeId to, uint32_t partition,
                   uint32_t vgroup, uint32_t epoch, net::NodeId peer);
  void Resolicit(uint32_t partition, uint32_t vgroup, net::NodeId builder);
  void FailSafe(SimTime now, int missing);

  net::SimEngine* sim_;
  device::Device* dev_;
  Config config_;
  resilience::FailureDetector detector_;
  std::function<bool()> done_;
  std::vector<std::vector<Chain>> chains_;  // [partition][vgroup]
  size_t spare_next_ = 0;
  uint32_t next_epoch_ = kRepairEpochBase;
  uint32_t repairs_attempted_ = 0;
  uint32_t repairs_succeeded_ = 0;
  bool abort_requested_ = false;
  SimTime abort_time_ = kSimTimeNever;
};

// A reserved spare edgelet, provisioned with the published query plan but
// idle until recruited. On kRecruit it instantiates the assigned inner
// actor (snapshot builder or computer) on its device, acks the controller,
// and from then on forwards protocol traffic to the inner actor.
class SpareActor : public ActorBase {
 public:
  struct Config {
    uint64_t query_id = 0;
    uint64_t quota = 0;  // ceil(C/n), as for original builders
    query::GroupingSetsSpec gs_spec;
    std::vector<std::vector<std::string>> vgroup_columns;
    std::vector<std::vector<size_t>> vgroup_set_indices;
    std::vector<net::NodeId> combiners;
    SimTime stop_at = kSimTimeNever;
    SimDuration liveness_period = 5 * kSecond;
    int emission_resends = 2;
    SimDuration resend_interval = kDefaultResendInterval;
    ExecutionTrace* trace = nullptr;
  };

  SpareActor(net::SimEngine* sim, device::Device* dev, Config config);
  ~SpareActor() override;

  bool recruited() const { return recruited_; }
  RecruitRole role() const { return assignment_.role; }
  uint32_t partition() const { return assignment_.partition; }
  uint32_t vgroup() const { return assignment_.vgroup; }
  uint32_t epoch() const { return assignment_.epoch; }
  // Non-null iff recruited into the respective role.
  const SnapshotBuilderActor* builder() const { return builder_.get(); }
  const ComputerActor* computer() const { return computer_.get(); }

 protected:
  void HandleMessage(const net::Message& msg) override;

 private:
  void OnRecruit(const net::Message& msg);
  void SendAck();

  Config config_;
  bool recruited_ = false;
  RecruitMsg assignment_;
  std::unique_ptr<SnapshotBuilderActor> builder_;
  std::unique_ptr<ComputerActor> computer_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_REPAIR_H_
