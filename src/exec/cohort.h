#ifndef EDGELET_EXEC_COHORT_H_
#define EDGELET_EXEC_COHORT_H_

#include <vector>

#include "exec/actor.h"

namespace edgelet::exec {

// A cohort super-node: one device-bound actor standing in for many
// contributor-only individuals (device::Fleet contributor cohorts). Each
// member keeps its own identity — contributor key, data row, and contact
// time — and contributes exactly like a ContributorActor would: predicates
// evaluated on its single row, the qualifying projection sent per vertical
// group to the member's OWN hash-assigned partition. What collapses is the
// per-individual simulation machinery: one net::Node, one enclave, one
// actor, and one outstanding timer event per cohort instead of per member,
// which is what takes a 1M-member sweep from O(devices) to
// O(operators + cohorts) memory.
//
// Determinism: members contribute in (send_at, row) order through a
// chained event loop on the hosting device's own timeline, so every
// network draw comes from the host's NodeRng stream in a schedule-
// independent order. A cohort lives wholly on one shard (it is one node),
// making cohort executions bit-identical across shard counts — the same
// invariant, and the same argument, as individual contributors. Relative
// to individual mode the fleet topology differs (fewer nodes, shared
// churn/latency streams per cohort), so cohort and individual reports are
// deliberately NOT comparable; the invariant is within a mode.
class CohortActor : public ActorBase {
 public:
  // One folded individual.
  struct Member {
    uint64_t contributor_key = 0;
    uint32_t row = 0;  // index into the hosting device's local table
    SimTime send_at = 0;
  };

  struct Config {
    uint64_t query_id = 0;
    std::vector<query::Predicate> predicates;
    // One projection per vertical group (see ContributorActor::Config).
    std::vector<std::vector<std::string>> vgroup_columns;
    // builders[partition][vgroup] = rank-ordered replica group.
    std::vector<std::vector<std::vector<net::NodeId>>> builders;
    std::vector<Member> members;
    ExecutionTrace* trace = nullptr;
  };

  CohortActor(net::SimEngine* sim, device::Device* dev, Config config);

  // Orders members by (send_at, row) and schedules the chained
  // contribution loop: one pending event per cohort at any time.
  void Start();

  size_t member_count() const { return config_.members.size(); }
  size_t members_contributed() const { return members_contributed_; }

 protected:
  // Cohorts are mostly send-only, but a repair controller may re-solicit
  // the projection of every member hashing into a rebuilt partition.
  void HandleMessage(const net::Message& msg) override;

 private:
  // Contributes every member due at the current time starting at `index`,
  // then schedules one event for the next pending member.
  void ContributeFrom(size_t index);
  // One member's contribution; returns whether anything was sent.
  bool ContributeMember(const Member& member);
  void OnResolicit(const net::Message& msg);

  Config config_;
  size_t members_contributed_ = 0;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_COHORT_H_
