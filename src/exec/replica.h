#ifndef EDGELET_EXEC_REPLICA_H_
#define EDGELET_EXEC_REPLICA_H_

#include <functional>
#include <vector>

#include "device/device.h"
#include "exec/defaults.h"
#include "exec/protocol.h"
#include "net/simulator.h"

namespace edgelet::exec {

// Leader/standby coordination for the Backup resiliency strategy ([14]):
// every replica of an operator receives the same inputs and maintains the
// same state (hot standby), but only the leader emits output. The leader
// pings its higher-ranked replicas periodically; replica r promotes itself
// when no lower-ranked replica has pinged for rank-graded timeout r*T, so
// takeovers cascade in rank order without a coordinator.
//
// With a singleton group (Overcollection mode) the role is trivially leader
// and completely silent — no ping traffic.
class ReplicaRole {
 public:
  struct Config {
    uint64_t group_id = 0;
    // Rank-ordered members; must contain the owning device's id.
    std::vector<net::NodeId> members;
    SimDuration ping_period = kDefaultPingPeriod;
    SimDuration failover_timeout = kDefaultFailoverTimeout;
    // Ping/monitor loop stops after this time (the query deadline);
    // prevents an idle replica group from keeping the simulation alive.
    SimTime stop_at = kSimTimeNever;
  };

  ReplicaRole(net::SimEngine* sim, device::Device* dev, Config config);

  // Aborts the process if the role is misconfigured (see misconfigured()):
  // a replica that can neither ping nor promote must not run.
  void Start();

  // True when the owning device is absent from config.members — a planner
  // bug that previously went silent (the device got rank == members.size()
  // and simply never participated).
  bool misconfigured() const { return misconfigured_; }

  uint32_t rank() const { return rank_; }
  bool is_leader() const { return believes_leader_; }
  size_t group_size() const { return config_.members.size(); }
  uint64_t group_id() const { return config_.group_id; }

  // Routed by the owning actor for kLeaderPing messages of this group.
  void HandlePing(const LeaderPingMsg& ping);

  // Invoked once when this replica decides to take over.
  void set_on_promote(std::function<void()> fn) { on_promote_ = std::move(fn); }

 private:
  void Tick();

  net::SimEngine* sim_;
  device::Device* dev_;
  Config config_;
  uint32_t rank_ = 0;
  bool misconfigured_ = false;
  bool believes_leader_ = false;
  bool promoted_fired_ = false;
  SimTime last_lower_ping_ = 0;
  std::function<void()> on_promote_;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_REPLICA_H_
