#ifndef EDGELET_EXEC_DEFAULTS_H_
#define EDGELET_EXEC_DEFAULTS_H_

#include "common/sim_time.h"

namespace edgelet::exec {

// Single source of truth for the liveness / retransmission timing defaults
// shared by ExecutionConfig and the per-actor sub-configs it populates
// (ReplicaRole, SnapshotBuilderActor, ComputerActor, CombinerActor). The
// values used to be duplicated per struct and had drifted (ReplicaRole
// defaulted failover to 15s while ExecutionConfig wired 20s); a test pins
// that every struct default now agrees with these constants.
inline constexpr SimDuration kDefaultPingPeriod = 5 * kSecond;
inline constexpr SimDuration kDefaultFailoverTimeout = 20 * kSecond;
inline constexpr SimDuration kDefaultResendInterval = 15 * kSecond;

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_DEFAULTS_H_
