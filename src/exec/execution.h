#ifndef EDGELET_EXEC_EXECUTION_H_
#define EDGELET_EXEC_EXECUTION_H_

#include <memory>

#include "common/serialize.h"
#include "device/fleet.h"
#include "exec/cohort.h"
#include "exec/combiner.h"
#include "exec/computer.h"
#include "exec/repair.h"
#include "exec/snapshot_builder.h"
#include "query/qep.h"
#include "query/query.h"

namespace edgelet::exec {

// The two resiliency strategies of [14]. Overcollection runs n+m
// single-instance partitions and tolerates losing up to m; Backup runs
// exactly n partitions with replicated operators and leader failover.
enum class Strategy : uint8_t {
  kOvercollection = 0,
  kBackup = 1,
};

std::string_view StrategyName(Strategy strategy);

// Planner output: the physical plan — which device hosts which operator
// replica. Produced by core::Planner, consumed by QueryExecution.
struct Deployment {
  query::Query query;
  query::Qep qep;
  Strategy strategy = Strategy::kOvercollection;
  int n = 1;
  int m = 0;
  uint64_t quota = 0;  // ceil(C / n) tuples per partition
  // Attribute columns per vertical group and the grouping sets each
  // evaluates.
  std::vector<std::vector<std::string>> vgroup_columns;
  std::vector<std::vector<size_t>> vgroup_set_indices;
  // Rank-ordered replica groups (singletons under Overcollection).
  // Vertical partitioning applies from the contributor onward (paper
  // Fig. 2): each (partition, vertical-group) pair has its own snapshot
  // builder chain, so no single edgelet ever holds a separated attribute
  // pair.
  std::vector<std::vector<std::vector<net::NodeId>>>
      sb_groups;  // [partition][vgroup][rank]
  std::vector<std::vector<std::vector<net::NodeId>>>
      computer_groups;  // [partition][vgroup][rank]
  // Overcollection: independent active instances (Combiner + Active
  // Backup). Backup strategy: one leader/standby group.
  std::vector<net::NodeId> combiner_group;
  net::NodeId querier = 0;
  // Rank-ordered spare edgelets reserved by the planner for mid-query
  // repair: provisioned with the plan, idle until recruited. Empty when the
  // eligible crowd is fully consumed by the primary deployment.
  std::vector<net::NodeId> spare_pool;

  // Overcollection gathers (n+m) partitions of quota tuples each, so the
  // crowd must contain at least this many qualifying contributors (plus
  // margin for hash imbalance and message loss) for every chain to fill.
  uint64_t MinQualifyingCrowd() const {
    return static_cast<uint64_t>(n + m) * quota;
  }
};

struct ExecutionConfig {
  // Contributors transmit at a uniformly random time inside this window
  // (their opportunistic contact).
  SimDuration collection_window = 60 * kSecond;
  // Hard completion contract for the Resiliency property.
  SimDuration deadline = 10 * kMinute;
  // Combiners emit at deadline - margin so the answer can still reach the
  // querier in time.
  SimDuration combiner_margin = 60 * kSecond;
  // K-Means cadence (paper §2.2).
  SimDuration heartbeat_period = 30 * kSecond;
  int num_heartbeats = 8;
  // Backup strategy liveness parameters (single source of truth:
  // exec/defaults.h — the ReplicaRole::Config defaults are the same
  // constants, so an execution that forgets to forward these still agrees
  // with one that does).
  SimDuration ping_period = kDefaultPingPeriod;
  SimDuration failover_timeout = kDefaultFailoverTimeout;
  // Crash-failure injection over the Data Processor devices.
  bool inject_failures = true;
  double failure_probability = 0.0;
  uint64_t seed = 1;
  // Record a step-by-step ExecutionTrace (the demo GUI's timeline view).
  bool enable_trace = false;
  // Extra emissions of the final result (delivery is as uncertain as any
  // other message; the querier deduplicates).
  int result_resends = 2;
  // Extra emissions of the other one-shot protocol messages (snapshot
  // slices, computed partials); receivers deduplicate. Contributions and
  // K-Means broadcasts are naturally redundant and are not repeated.
  int emission_resends = 2;
  SimDuration resend_interval = kDefaultResendInterval;
  // Mid-query failure detection + deadline-aware partition repair
  // (DESIGN.md §5f). Applies to Grouping Sets executions under the
  // Overcollection strategy when the plan reserved spares.
  RepairConfig repair;
};

// Canonical byte encoding of an ExecutionReport: every field, fixed order.
// Two reports are equal iff their encodings are byte-identical; the
// determinism tests and the parallel trial harness use this to prove that
// serial and parallel sweeps produce identical per-seed results.
struct ExecutionReport;
void SerializeReport(const ExecutionReport& report, Writer* w);
// FNV-1a fingerprint over SerializeReport's bytes.
uint64_t ReportFingerprint(const ExecutionReport& report);

struct ExecutionReport {
  bool success = false;
  // Relative to the execution's start (the paper's completion-before-
  // deadline contract).
  SimTime completion_time = kSimTimeNever;
  data::Table result;
  std::vector<uint32_t> partitions_used;
  std::vector<uint32_t> epochs_used;
  int n = 0;
  int m = 0;
  Strategy strategy = Strategy::kOvercollection;
  size_t processors_killed = 0;
  size_t contributors_participating = 0;
  uint32_t duplicate_results = 0;
  // Network activity attributable to this execution.
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t bytes_sent = 0;
  // Contributor keys whose rows form the merged snapshot, per vertical
  // group (Grouping Sets executions; used for exact validity
  // verification — each vertical chain samples its own C/n rows per
  // partition).
  std::vector<std::vector<uint64_t>> snapshot_contributors_by_vgroup;
  // Worst observed cleartext exposure across processor enclaves.
  uint64_t max_observed_exposure_tuples = 0;
  // Repair subsystem outcome (zeros / kSimTimeNever when repair was off).
  uint64_t failures_detected = 0;
  uint32_t repairs_attempted = 0;
  uint32_t repairs_succeeded = 0;
  // When the controller failed safe (relative to the execution's start;
  // strictly less than the deadline). kSimTimeNever otherwise.
  SimTime early_abort_time = kSimTimeNever;
};

// Runs one planned query over the fleet on the discrete-event simulator.
class QueryExecution {
 public:
  QueryExecution(net::SimEngine* sim, net::Network* network,
                 device::Fleet* fleet, Deployment deployment,
                 ExecutionConfig config);
  ~QueryExecution();

  QueryExecution(const QueryExecution&) = delete;
  QueryExecution& operator=(const QueryExecution&) = delete;

  // Instantiates actors, schedules contributions and failures.
  Status Start();
  // Runs the simulator to the deadline and assembles the report.
  Status RunToCompletion();

  const ExecutionReport& report() const { return report_; }
  // Non-null iff config.enable_trace; valid for this object's lifetime.
  const ExecutionTrace* trace() const { return trace_.get(); }

 private:
  Status BuildContributors();
  Status BuildSnapshotBuilders();
  Status BuildComputers();
  Status BuildCombiners();
  Status BuildSpares();
  void InjectFailures();
  void CollectReport();
  // Liveness beacon wiring for one original (generation-0) chain operator.
  LivenessBeacon::Config MakeLiveness(RecruitRole role, uint32_t partition,
                                      uint32_t vgroup) const;

  net::SimEngine* sim_;
  net::Network* network_;
  device::Fleet* fleet_;
  Deployment deployment_;
  ExecutionConfig config_;

  std::vector<std::unique_ptr<ContributorActor>> contributors_;
  // Cohort fleets (fleet->cohort_size() > 1) get one CohortActor per
  // contributor device instead; exactly one of these two vectors is
  // populated.
  std::vector<std::unique_ptr<CohortActor>> cohorts_;
  // [partition][vgroup][rank].
  std::vector<std::vector<std::vector<std::unique_ptr<SnapshotBuilderActor>>>>
      builders_;
  std::vector<std::unique_ptr<ComputerActor>> computers_;
  std::vector<std::unique_ptr<CombinerActor>> combiners_;
  std::vector<std::unique_ptr<SpareActor>> spares_;
  std::unique_ptr<QuerierActor> querier_;
  // True when this execution runs the repair subsystem: repair requested,
  // Grouping Sets over Overcollection, and the plan reserved spares. When
  // false the execution is bit-identical to the pre-repair code path.
  bool repair_active_ = false;

  std::unique_ptr<ExecutionTrace> trace_;
  net::NetworkStats stats_before_;
  ExecutionReport report_;
  bool started_ = false;
  // Simulation time when Start() ran; all schedule points are relative to
  // it so several executions can share one simulator sequentially.
  SimTime base_ = 0;
};

}  // namespace edgelet::exec

#endif  // EDGELET_EXEC_EXECUTION_H_
