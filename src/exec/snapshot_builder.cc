#include "exec/snapshot_builder.h"

#include "common/logging.h"

namespace edgelet::exec {

SnapshotBuilderActor::SnapshotBuilderActor(net::SimEngine* sim,
                                           device::Device* dev, Config config)
    : ActorBase(sim, dev), config_(std::move(config)) {
  replica_ = std::make_unique<ReplicaRole>(sim, dev, config_.replica);
  replica_->set_on_promote([this]() {
    if (config_.trace != nullptr) {
      config_.trace->Record(this->sim()->now(),
                            TraceEventKind::kLeaderFailover,
                            this->dev()->id(), config_.partition,
                            config_.vgroup,
                            "snapshot builder rank " +
                                std::to_string(replica_->rank()) +
                                " takes over");
    }
    // Taking over: if the snapshot is ready, (re-)emit it under this
    // replica's epoch so downstream consumers get a consistent slice.
    if (complete_) EmitSliceWithResends();
  });
}

void SnapshotBuilderActor::Start() {
  replica_->Start();
  if (config_.liveness.enabled) {
    beacon_ = std::make_unique<LivenessBeacon>(sim(), dev(), config_.liveness);
    beacon_->Start();
  }
}

void SnapshotBuilderActor::HandleMessage(const net::Message& msg) {
  switch (msg.type) {
    case kContribution:
      OnContribution(msg);
      break;
    case kLeaderPing: {
      auto ping = LeaderPingMsg::Decode(msg.payload);
      if (ping.ok()) replica_->HandlePing(*ping);
      break;
    }
    default:
      break;
  }
}

void SnapshotBuilderActor::OnContribution(const net::Message& msg) {
  if (complete_) return;  // quota reached: later contributions are ignored
  if (!OpenSealed(msg).ok()) return;
  auto contribution = ContributionMsg::Decode(opened_payload());
  if (!contribution.ok() || contribution->query_id != config_.query_id) {
    return;
  }
  // Idempotence: a contributor that re-sends (store-and-forward replays)
  // is only counted once.
  if (!seen_contributors_.insert(contribution->contributor_key).second) {
    return;
  }
  if (!have_schema_) {
    buffer_ = data::Table(contribution->rows.schema());
    have_schema_ = true;
  }
  const uint64_t contributed_rows = contribution->rows.num_rows();
  // The decoded message is ours: move its tuples into the buffer instead
  // of copying value-by-value.
  for (auto& row : contribution->rows.TakeRows()) {
    if (buffer_.num_rows() >= config_.quota) break;
    buffer_.AppendUnchecked(std::move(row));
    included_.push_back(contribution->contributor_key);
  }
  // Raw cleartext data is now inside this enclave: exposure accounting.
  dev()->enclave().RecordClearTextTuples(contributed_rows,
                                         buffer_.schema().num_columns());
  MaybeEmit();
}

void SnapshotBuilderActor::MaybeEmit() {
  if (complete_ || buffer_.num_rows() < config_.quota) return;
  complete_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kSnapshotComplete,
                          dev()->id(), config_.partition, config_.vgroup,
                          std::to_string(buffer_.num_rows()) + " tuples");
  }
  if (replica_->is_leader()) {
    // Building the representative snapshot costs compute time on this
    // device class before the slice goes out.
    sim()->ScheduleAfter(dev()->id(), dev()->ComputeCost(buffer_.num_rows()),
                         [this]() { EmitSliceWithResends(); });
  }
}

void SnapshotBuilderActor::EmitSliceWithResends() {
  EmitSlice();
  for (int i = 1; i <= config_.emission_resends; ++i) {
    sim()->ScheduleAfter(dev()->id(), ResendBackoffDelay(i, config_.resend_interval),
        [this]() {
          // Suppressed after a leadership yield: the replica that took
          // over re-emits its own epoch's slice.
          if (replica_->is_leader()) EmitSlice();
        });
  }
}

void SnapshotBuilderActor::EmitSlice() {
  emitted_ = true;
  if (config_.trace != nullptr) {
    config_.trace->Record(sim()->now(), TraceEventKind::kSliceEmitted,
                          dev()->id(), config_.partition, config_.vgroup);
  }
  SnapshotSliceMsg msg;
  msg.query_id = config_.query_id;
  msg.partition = config_.partition;
  msg.vgroup = config_.vgroup;
  msg.epoch = emit_epoch();
  msg.rows = buffer_;
  SealAndSendAll(config_.computers, kSnapshotSlice, msg.Encode());
}

}  // namespace edgelet::exec
