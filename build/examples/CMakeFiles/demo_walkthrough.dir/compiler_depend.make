# Empty compiler generated dependencies file for demo_walkthrough.
# This may be replaced when dependencies are built.
