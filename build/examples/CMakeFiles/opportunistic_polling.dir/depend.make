# Empty dependencies file for opportunistic_polling.
# This may be replaced when dependencies are built.
