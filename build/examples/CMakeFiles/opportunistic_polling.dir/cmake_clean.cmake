file(REMOVE_RECURSE
  "CMakeFiles/opportunistic_polling.dir/opportunistic_polling.cpp.o"
  "CMakeFiles/opportunistic_polling.dir/opportunistic_polling.cpp.o.d"
  "opportunistic_polling"
  "opportunistic_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opportunistic_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
