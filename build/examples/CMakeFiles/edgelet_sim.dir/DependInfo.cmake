
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/edgelet_sim.cpp" "examples/CMakeFiles/edgelet_sim.dir/edgelet_sim.cpp.o" "gcc" "examples/CMakeFiles/edgelet_sim.dir/edgelet_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgelet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
