# Empty dependencies file for edgelet_sim.
# This may be replaced when dependencies are built.
