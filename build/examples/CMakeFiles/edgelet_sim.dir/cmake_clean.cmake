file(REMOVE_RECURSE
  "CMakeFiles/edgelet_sim.dir/edgelet_sim.cpp.o"
  "CMakeFiles/edgelet_sim.dir/edgelet_sim.cpp.o.d"
  "edgelet_sim"
  "edgelet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
