file(REMOVE_RECURSE
  "CMakeFiles/health_survey.dir/health_survey.cpp.o"
  "CMakeFiles/health_survey.dir/health_survey.cpp.o.d"
  "health_survey"
  "health_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
