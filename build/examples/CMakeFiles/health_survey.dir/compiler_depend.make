# Empty compiler generated dependencies file for health_survey.
# This may be replaced when dependencies are built.
