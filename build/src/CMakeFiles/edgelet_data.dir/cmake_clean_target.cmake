file(REMOVE_RECURSE
  "libedgelet_data.a"
)
