file(REMOVE_RECURSE
  "CMakeFiles/edgelet_data.dir/data/csv.cc.o"
  "CMakeFiles/edgelet_data.dir/data/csv.cc.o.d"
  "CMakeFiles/edgelet_data.dir/data/generator.cc.o"
  "CMakeFiles/edgelet_data.dir/data/generator.cc.o.d"
  "CMakeFiles/edgelet_data.dir/data/partition.cc.o"
  "CMakeFiles/edgelet_data.dir/data/partition.cc.o.d"
  "CMakeFiles/edgelet_data.dir/data/schema.cc.o"
  "CMakeFiles/edgelet_data.dir/data/schema.cc.o.d"
  "CMakeFiles/edgelet_data.dir/data/table.cc.o"
  "CMakeFiles/edgelet_data.dir/data/table.cc.o.d"
  "CMakeFiles/edgelet_data.dir/data/value.cc.o"
  "CMakeFiles/edgelet_data.dir/data/value.cc.o.d"
  "libedgelet_data.a"
  "libedgelet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
