# Empty dependencies file for edgelet_data.
# This may be replaced when dependencies are built.
