# Empty compiler generated dependencies file for edgelet_device.
# This may be replaced when dependencies are built.
