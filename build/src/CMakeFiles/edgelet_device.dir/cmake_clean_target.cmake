file(REMOVE_RECURSE
  "libedgelet_device.a"
)
