file(REMOVE_RECURSE
  "CMakeFiles/edgelet_device.dir/device/device.cc.o"
  "CMakeFiles/edgelet_device.dir/device/device.cc.o.d"
  "CMakeFiles/edgelet_device.dir/device/fleet.cc.o"
  "CMakeFiles/edgelet_device.dir/device/fleet.cc.o.d"
  "libedgelet_device.a"
  "libedgelet_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
