file(REMOVE_RECURSE
  "libedgelet_privacy.a"
)
