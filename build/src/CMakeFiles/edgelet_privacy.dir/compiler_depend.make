# Empty compiler generated dependencies file for edgelet_privacy.
# This may be replaced when dependencies are built.
