file(REMOVE_RECURSE
  "CMakeFiles/edgelet_privacy.dir/privacy/exposure.cc.o"
  "CMakeFiles/edgelet_privacy.dir/privacy/exposure.cc.o.d"
  "CMakeFiles/edgelet_privacy.dir/privacy/vertical_partitioner.cc.o"
  "CMakeFiles/edgelet_privacy.dir/privacy/vertical_partitioner.cc.o.d"
  "libedgelet_privacy.a"
  "libedgelet_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
