
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/exposure.cc" "src/CMakeFiles/edgelet_privacy.dir/privacy/exposure.cc.o" "gcc" "src/CMakeFiles/edgelet_privacy.dir/privacy/exposure.cc.o.d"
  "/root/repo/src/privacy/vertical_partitioner.cc" "src/CMakeFiles/edgelet_privacy.dir/privacy/vertical_partitioner.cc.o" "gcc" "src/CMakeFiles/edgelet_privacy.dir/privacy/vertical_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgelet_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
