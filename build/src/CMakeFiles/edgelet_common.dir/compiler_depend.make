# Empty compiler generated dependencies file for edgelet_common.
# This may be replaced when dependencies are built.
