file(REMOVE_RECURSE
  "libedgelet_common.a"
)
