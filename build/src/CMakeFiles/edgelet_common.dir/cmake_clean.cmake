file(REMOVE_RECURSE
  "CMakeFiles/edgelet_common.dir/common/bytes.cc.o"
  "CMakeFiles/edgelet_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/hash.cc.o"
  "CMakeFiles/edgelet_common.dir/common/hash.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/logging.cc.o"
  "CMakeFiles/edgelet_common.dir/common/logging.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/rng.cc.o"
  "CMakeFiles/edgelet_common.dir/common/rng.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/serialize.cc.o"
  "CMakeFiles/edgelet_common.dir/common/serialize.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/sim_time.cc.o"
  "CMakeFiles/edgelet_common.dir/common/sim_time.cc.o.d"
  "CMakeFiles/edgelet_common.dir/common/status.cc.o"
  "CMakeFiles/edgelet_common.dir/common/status.cc.o.d"
  "libedgelet_common.a"
  "libedgelet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
