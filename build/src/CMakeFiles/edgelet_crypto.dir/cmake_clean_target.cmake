file(REMOVE_RECURSE
  "libedgelet_crypto.a"
)
