# Empty dependencies file for edgelet_crypto.
# This may be replaced when dependencies are built.
