file(REMOVE_RECURSE
  "CMakeFiles/edgelet_crypto.dir/crypto/aead.cc.o"
  "CMakeFiles/edgelet_crypto.dir/crypto/aead.cc.o.d"
  "CMakeFiles/edgelet_crypto.dir/crypto/chacha20.cc.o"
  "CMakeFiles/edgelet_crypto.dir/crypto/chacha20.cc.o.d"
  "CMakeFiles/edgelet_crypto.dir/crypto/poly1305.cc.o"
  "CMakeFiles/edgelet_crypto.dir/crypto/poly1305.cc.o.d"
  "CMakeFiles/edgelet_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/edgelet_crypto.dir/crypto/sha256.cc.o.d"
  "libedgelet_crypto.a"
  "libedgelet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
