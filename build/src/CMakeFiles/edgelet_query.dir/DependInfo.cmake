
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/edgelet_query.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/groupby.cc" "src/CMakeFiles/edgelet_query.dir/query/groupby.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/groupby.cc.o.d"
  "/root/repo/src/query/grouping_sets.cc" "src/CMakeFiles/edgelet_query.dir/query/grouping_sets.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/grouping_sets.cc.o.d"
  "/root/repo/src/query/hll.cc" "src/CMakeFiles/edgelet_query.dir/query/hll.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/hll.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/edgelet_query.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/qep.cc" "src/CMakeFiles/edgelet_query.dir/query/qep.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/qep.cc.o.d"
  "/root/repo/src/query/quantile.cc" "src/CMakeFiles/edgelet_query.dir/query/quantile.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/quantile.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/edgelet_query.dir/query/query.cc.o" "gcc" "src/CMakeFiles/edgelet_query.dir/query/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgelet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
