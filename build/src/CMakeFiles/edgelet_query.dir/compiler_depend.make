# Empty compiler generated dependencies file for edgelet_query.
# This may be replaced when dependencies are built.
