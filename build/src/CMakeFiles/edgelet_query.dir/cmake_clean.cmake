file(REMOVE_RECURSE
  "CMakeFiles/edgelet_query.dir/query/aggregate.cc.o"
  "CMakeFiles/edgelet_query.dir/query/aggregate.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/groupby.cc.o"
  "CMakeFiles/edgelet_query.dir/query/groupby.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/grouping_sets.cc.o"
  "CMakeFiles/edgelet_query.dir/query/grouping_sets.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/hll.cc.o"
  "CMakeFiles/edgelet_query.dir/query/hll.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/predicate.cc.o"
  "CMakeFiles/edgelet_query.dir/query/predicate.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/qep.cc.o"
  "CMakeFiles/edgelet_query.dir/query/qep.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/quantile.cc.o"
  "CMakeFiles/edgelet_query.dir/query/quantile.cc.o.d"
  "CMakeFiles/edgelet_query.dir/query/query.cc.o"
  "CMakeFiles/edgelet_query.dir/query/query.cc.o.d"
  "libedgelet_query.a"
  "libedgelet_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
