file(REMOVE_RECURSE
  "libedgelet_query.a"
)
