file(REMOVE_RECURSE
  "libedgelet_net.a"
)
