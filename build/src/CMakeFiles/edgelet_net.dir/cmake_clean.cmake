file(REMOVE_RECURSE
  "CMakeFiles/edgelet_net.dir/net/message.cc.o"
  "CMakeFiles/edgelet_net.dir/net/message.cc.o.d"
  "CMakeFiles/edgelet_net.dir/net/network.cc.o"
  "CMakeFiles/edgelet_net.dir/net/network.cc.o.d"
  "CMakeFiles/edgelet_net.dir/net/simulator.cc.o"
  "CMakeFiles/edgelet_net.dir/net/simulator.cc.o.d"
  "libedgelet_net.a"
  "libedgelet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
