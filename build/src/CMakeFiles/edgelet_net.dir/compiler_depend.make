# Empty compiler generated dependencies file for edgelet_net.
# This may be replaced when dependencies are built.
