file(REMOVE_RECURSE
  "libedgelet_tee.a"
)
