# Empty dependencies file for edgelet_tee.
# This may be replaced when dependencies are built.
