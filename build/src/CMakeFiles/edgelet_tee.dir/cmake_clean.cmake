file(REMOVE_RECURSE
  "CMakeFiles/edgelet_tee.dir/tee/enclave.cc.o"
  "CMakeFiles/edgelet_tee.dir/tee/enclave.cc.o.d"
  "libedgelet_tee.a"
  "libedgelet_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
