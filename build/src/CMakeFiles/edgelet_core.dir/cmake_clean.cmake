file(REMOVE_RECURSE
  "CMakeFiles/edgelet_core.dir/core/framework.cc.o"
  "CMakeFiles/edgelet_core.dir/core/framework.cc.o.d"
  "CMakeFiles/edgelet_core.dir/core/planner.cc.o"
  "CMakeFiles/edgelet_core.dir/core/planner.cc.o.d"
  "libedgelet_core.a"
  "libedgelet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
