file(REMOVE_RECURSE
  "libedgelet_core.a"
)
