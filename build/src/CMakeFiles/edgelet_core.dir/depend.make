# Empty dependencies file for edgelet_core.
# This may be replaced when dependencies are built.
