file(REMOVE_RECURSE
  "libedgelet_ml.a"
)
