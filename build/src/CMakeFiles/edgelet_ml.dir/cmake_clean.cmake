file(REMOVE_RECURSE
  "CMakeFiles/edgelet_ml.dir/ml/kmeans.cc.o"
  "CMakeFiles/edgelet_ml.dir/ml/kmeans.cc.o.d"
  "CMakeFiles/edgelet_ml.dir/ml/metrics.cc.o"
  "CMakeFiles/edgelet_ml.dir/ml/metrics.cc.o.d"
  "libedgelet_ml.a"
  "libedgelet_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
