# Empty dependencies file for edgelet_ml.
# This may be replaced when dependencies are built.
