# Empty dependencies file for edgelet_exec.
# This may be replaced when dependencies are built.
