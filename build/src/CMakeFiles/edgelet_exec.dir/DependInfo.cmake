
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/actor.cc" "src/CMakeFiles/edgelet_exec.dir/exec/actor.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/actor.cc.o.d"
  "/root/repo/src/exec/combiner.cc" "src/CMakeFiles/edgelet_exec.dir/exec/combiner.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/combiner.cc.o.d"
  "/root/repo/src/exec/computer.cc" "src/CMakeFiles/edgelet_exec.dir/exec/computer.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/computer.cc.o.d"
  "/root/repo/src/exec/execution.cc" "src/CMakeFiles/edgelet_exec.dir/exec/execution.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/execution.cc.o.d"
  "/root/repo/src/exec/protocol.cc" "src/CMakeFiles/edgelet_exec.dir/exec/protocol.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/protocol.cc.o.d"
  "/root/repo/src/exec/replica.cc" "src/CMakeFiles/edgelet_exec.dir/exec/replica.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/replica.cc.o.d"
  "/root/repo/src/exec/snapshot_builder.cc" "src/CMakeFiles/edgelet_exec.dir/exec/snapshot_builder.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/snapshot_builder.cc.o.d"
  "/root/repo/src/exec/trace.cc" "src/CMakeFiles/edgelet_exec.dir/exec/trace.cc.o" "gcc" "src/CMakeFiles/edgelet_exec.dir/exec/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgelet_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgelet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
