file(REMOVE_RECURSE
  "CMakeFiles/edgelet_exec.dir/exec/actor.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/actor.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/combiner.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/combiner.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/computer.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/computer.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/execution.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/execution.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/protocol.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/protocol.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/replica.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/replica.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/snapshot_builder.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/snapshot_builder.cc.o.d"
  "CMakeFiles/edgelet_exec.dir/exec/trace.cc.o"
  "CMakeFiles/edgelet_exec.dir/exec/trace.cc.o.d"
  "libedgelet_exec.a"
  "libedgelet_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
