file(REMOVE_RECURSE
  "libedgelet_exec.a"
)
