# Empty compiler generated dependencies file for edgelet_resilience.
# This may be replaced when dependencies are built.
