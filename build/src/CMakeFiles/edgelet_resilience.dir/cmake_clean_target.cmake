file(REMOVE_RECURSE
  "libedgelet_resilience.a"
)
