file(REMOVE_RECURSE
  "CMakeFiles/edgelet_resilience.dir/resilience/overcollection.cc.o"
  "CMakeFiles/edgelet_resilience.dir/resilience/overcollection.cc.o.d"
  "libedgelet_resilience.a"
  "libedgelet_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelet_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
