file(REMOVE_RECURSE
  "CMakeFiles/tee_enclave_test.dir/tee_enclave_test.cc.o"
  "CMakeFiles/tee_enclave_test.dir/tee_enclave_test.cc.o.d"
  "tee_enclave_test"
  "tee_enclave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tee_enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
