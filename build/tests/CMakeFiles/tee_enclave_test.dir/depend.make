# Empty dependencies file for tee_enclave_test.
# This may be replaced when dependencies are built.
