# Empty compiler generated dependencies file for query_groupby_test.
# This may be replaced when dependencies are built.
