file(REMOVE_RECURSE
  "CMakeFiles/query_groupby_test.dir/query_groupby_test.cc.o"
  "CMakeFiles/query_groupby_test.dir/query_groupby_test.cc.o.d"
  "query_groupby_test"
  "query_groupby_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_groupby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
