file(REMOVE_RECURSE
  "CMakeFiles/exec_trace_test.dir/exec_trace_test.cc.o"
  "CMakeFiles/exec_trace_test.dir/exec_trace_test.cc.o.d"
  "exec_trace_test"
  "exec_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
