# Empty dependencies file for exec_trace_test.
# This may be replaced when dependencies are built.
