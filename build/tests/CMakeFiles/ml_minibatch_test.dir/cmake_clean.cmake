file(REMOVE_RECURSE
  "CMakeFiles/ml_minibatch_test.dir/ml_minibatch_test.cc.o"
  "CMakeFiles/ml_minibatch_test.dir/ml_minibatch_test.cc.o.d"
  "ml_minibatch_test"
  "ml_minibatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_minibatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
