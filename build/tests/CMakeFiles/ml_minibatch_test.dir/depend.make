# Empty dependencies file for ml_minibatch_test.
# This may be replaced when dependencies are built.
