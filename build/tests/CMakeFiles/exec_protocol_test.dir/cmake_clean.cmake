file(REMOVE_RECURSE
  "CMakeFiles/exec_protocol_test.dir/exec_protocol_test.cc.o"
  "CMakeFiles/exec_protocol_test.dir/exec_protocol_test.cc.o.d"
  "exec_protocol_test"
  "exec_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
