# Empty compiler generated dependencies file for exec_protocol_test.
# This may be replaced when dependencies are built.
