# Empty compiler generated dependencies file for query_aggregate_test.
# This may be replaced when dependencies are built.
