# Empty dependencies file for query_quantile_test.
# This may be replaced when dependencies are built.
