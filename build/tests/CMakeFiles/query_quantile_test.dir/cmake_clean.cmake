file(REMOVE_RECURSE
  "CMakeFiles/query_quantile_test.dir/query_quantile_test.cc.o"
  "CMakeFiles/query_quantile_test.dir/query_quantile_test.cc.o.d"
  "query_quantile_test"
  "query_quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
