file(REMOVE_RECURSE
  "CMakeFiles/exec_end_to_end_test.dir/exec_end_to_end_test.cc.o"
  "CMakeFiles/exec_end_to_end_test.dir/exec_end_to_end_test.cc.o.d"
  "exec_end_to_end_test"
  "exec_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
