file(REMOVE_RECURSE
  "CMakeFiles/exec_actors_test.dir/exec_actors_test.cc.o"
  "CMakeFiles/exec_actors_test.dir/exec_actors_test.cc.o.d"
  "exec_actors_test"
  "exec_actors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_actors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
