# Empty dependencies file for exec_actors_test.
# This may be replaced when dependencies are built.
