# Empty compiler generated dependencies file for exec_failure_paths_test.
# This may be replaced when dependencies are built.
