file(REMOVE_RECURSE
  "CMakeFiles/exec_failure_paths_test.dir/exec_failure_paths_test.cc.o"
  "CMakeFiles/exec_failure_paths_test.dir/exec_failure_paths_test.cc.o.d"
  "exec_failure_paths_test"
  "exec_failure_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_failure_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
