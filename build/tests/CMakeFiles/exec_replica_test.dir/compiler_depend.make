# Empty compiler generated dependencies file for exec_replica_test.
# This may be replaced when dependencies are built.
