file(REMOVE_RECURSE
  "CMakeFiles/exec_replica_test.dir/exec_replica_test.cc.o"
  "CMakeFiles/exec_replica_test.dir/exec_replica_test.cc.o.d"
  "exec_replica_test"
  "exec_replica_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
