# Empty compiler generated dependencies file for query_hll_test.
# This may be replaced when dependencies are built.
