file(REMOVE_RECURSE
  "CMakeFiles/query_hll_test.dir/query_hll_test.cc.o"
  "CMakeFiles/query_hll_test.dir/query_hll_test.cc.o.d"
  "query_hll_test"
  "query_hll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_hll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
