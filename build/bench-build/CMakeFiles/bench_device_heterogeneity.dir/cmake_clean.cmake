file(REMOVE_RECURSE
  "../bench/bench_device_heterogeneity"
  "../bench/bench_device_heterogeneity.pdb"
  "CMakeFiles/bench_device_heterogeneity.dir/bench_device_heterogeneity.cpp.o"
  "CMakeFiles/bench_device_heterogeneity.dir/bench_device_heterogeneity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
