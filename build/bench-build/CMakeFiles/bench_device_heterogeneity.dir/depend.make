# Empty dependencies file for bench_device_heterogeneity.
# This may be replaced when dependencies are built.
