file(REMOVE_RECURSE
  "../bench/bench_privacy_exposure"
  "../bench/bench_privacy_exposure.pdb"
  "CMakeFiles/bench_privacy_exposure.dir/bench_privacy_exposure.cpp.o"
  "CMakeFiles/bench_privacy_exposure.dir/bench_privacy_exposure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
