# Empty compiler generated dependencies file for bench_privacy_exposure.
# This may be replaced when dependencies are built.
