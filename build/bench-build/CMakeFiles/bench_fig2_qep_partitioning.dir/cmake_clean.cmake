file(REMOVE_RECURSE
  "../bench/bench_fig2_qep_partitioning"
  "../bench/bench_fig2_qep_partitioning.pdb"
  "CMakeFiles/bench_fig2_qep_partitioning.dir/bench_fig2_qep_partitioning.cpp.o"
  "CMakeFiles/bench_fig2_qep_partitioning.dir/bench_fig2_qep_partitioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_qep_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
