# Empty compiler generated dependencies file for bench_fig2_qep_partitioning.
# This may be replaced when dependencies are built.
