file(REMOVE_RECURSE
  "../bench/bench_fig3_overcollection"
  "../bench/bench_fig3_overcollection.pdb"
  "CMakeFiles/bench_fig3_overcollection.dir/bench_fig3_overcollection.cpp.o"
  "CMakeFiles/bench_fig3_overcollection.dir/bench_fig3_overcollection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_overcollection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
