# Empty dependencies file for bench_fig3_overcollection.
# This may be replaced when dependencies are built.
