# Empty compiler generated dependencies file for bench_kmeans_heartbeats.
# This may be replaced when dependencies are built.
