file(REMOVE_RECURSE
  "../bench/bench_kmeans_heartbeats"
  "../bench/bench_kmeans_heartbeats.pdb"
  "CMakeFiles/bench_kmeans_heartbeats.dir/bench_kmeans_heartbeats.cpp.o"
  "CMakeFiles/bench_kmeans_heartbeats.dir/bench_kmeans_heartbeats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmeans_heartbeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
