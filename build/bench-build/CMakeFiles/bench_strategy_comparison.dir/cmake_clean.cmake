file(REMOVE_RECURSE
  "../bench/bench_strategy_comparison"
  "../bench/bench_strategy_comparison.pdb"
  "CMakeFiles/bench_strategy_comparison.dir/bench_strategy_comparison.cpp.o"
  "CMakeFiles/bench_strategy_comparison.dir/bench_strategy_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
