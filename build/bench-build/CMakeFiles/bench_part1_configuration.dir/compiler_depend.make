# Empty compiler generated dependencies file for bench_part1_configuration.
# This may be replaced when dependencies are built.
