file(REMOVE_RECURSE
  "../bench/bench_part1_configuration"
  "../bench/bench_part1_configuration.pdb"
  "CMakeFiles/bench_part1_configuration.dir/bench_part1_configuration.cpp.o"
  "CMakeFiles/bench_part1_configuration.dir/bench_part1_configuration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_part1_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
