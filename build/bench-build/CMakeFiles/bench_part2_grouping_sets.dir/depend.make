# Empty dependencies file for bench_part2_grouping_sets.
# This may be replaced when dependencies are built.
