file(REMOVE_RECURSE
  "../bench/bench_part2_grouping_sets"
  "../bench/bench_part2_grouping_sets.pdb"
  "CMakeFiles/bench_part2_grouping_sets.dir/bench_part2_grouping_sets.cpp.o"
  "CMakeFiles/bench_part2_grouping_sets.dir/bench_part2_grouping_sets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_part2_grouping_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
