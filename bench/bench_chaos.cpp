// Chaos scenario matrix — the validity invariant under injected faults.
// Sweeps every probabilistic fault kind (drop, burst, duplicate, delay,
// corrupt) x fault rate x strategy (Overcollection, Backup) under the
// deterministic chaos injector and audits each trial with the central
// ValidityOracle. Expected shape: trials split between *valid* (the
// delivered answer equals a centralized rerun over the recorded crowd
// sample) and *failed-safe* (no answer before the deadline); a
// *successful-but-invalid* cell is an invariant violation and fails the
// bench with exit 1.
//
// Runs on the parallel trial harness (see trial_runner.h): every
// (cell, trial) pair is an independent seed-deterministic simulation, so
// --jobs N changes wall-clock only — per-seed verdicts are identical.

#include "bench_util.h"
#include "chaos/chaos.h"
#include "common/hash.h"
#include "core/validity_oracle.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

using chaos::FaultKind;

struct TrialResult {
  bench::TrialStatus status;
  core::TrialVerdict verdict = core::TrialVerdict::kFailedSafe;
  uint64_t fingerprint = 0;
};

struct Cell {
  FaultKind kind = FaultKind::kDrop;
  double rate = 0;
  exec::Strategy strategy = exec::Strategy::kOvercollection;
  int valid = 0;
  int invalid = 0;
  int failed_safe = 0;
  int skipped = 0;
  uint64_t fingerprint = 0;  // order-combined over completed trials
};

TrialResult RunOne(const Cell& cell, int trial) {
  TrialResult r;
  uint64_t seed = 17000 + trial * 31;
  core::EdgeletFramework fw(bench::StandardFleet(120, 40, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(40, seed);
  auto d = fw.Plan(q, {}, {0.1, 0.99}, cell.strategy);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  // Chaos seed varies per trial but not per cell shape: the same schedule
  // shape replays across kinds/rates, isolating the knob under sweep.
  chaos::ChaosInjector injector(
      chaos::MakeFaultScenario(cell.kind, seed + 7, cell.rate));
  injector.AttachTo(fw.network());
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 4 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  injector.Detach();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  core::ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  if (!audit.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.verdict = audit->verdict;
  r.fingerprint = exec::ReportFingerprint(*report);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt =
      bench::ParseHarnessOptions(argc, argv, "chaos", /*default_trials=*/5);
  bench::PrintHeader(
      "Chaos matrix: validity under injected message-level faults",
      "Expected: every cell is valid or failed-safe; a successful execution "
      "whose answer diverges from the centralized rerun (invalid) fails "
      "this bench with exit 1.");

  const FaultKind kKinds[] = {FaultKind::kDrop, FaultKind::kBurst,
                              FaultKind::kDuplicate, FaultKind::kDelay,
                              FaultKind::kCorrupt};
  const double kRates[] = {0.05, 0.15, 0.30};
  const exec::Strategy kStrategies[] = {exec::Strategy::kOvercollection,
                                        exec::Strategy::kBackup};

  std::vector<Cell> cells;
  for (FaultKind kind : kKinds) {
    for (double rate : kRates) {
      for (exec::Strategy strategy : kStrategies) {
        Cell c;
        c.kind = kind;
        c.rate = rate;
        c.strategy = strategy;
        cells.push_back(c);
      }
    }
  }
  const int per_cell = opt.trials;
  const int total = static_cast<int>(cells.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(cells[i / per_cell], i % per_cell);
  });

  int skipped_total = 0;
  for (size_t c = 0; c < cells.size(); ++c) {
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++cells[c].skipped;
        ++skipped_total;
        continue;
      }
      switch (r.verdict) {
        case core::TrialVerdict::kValid: ++cells[c].valid; break;
        case core::TrialVerdict::kInvalid: ++cells[c].invalid; break;
        case core::TrialVerdict::kFailedSafe: ++cells[c].failed_safe; break;
      }
      cells[c].fingerprint = HashCombine(cells[c].fingerprint, r.fingerprint);
    }
  }

  std::printf("%10s %6s %16s %8s %8s %12s\n", "fault", "rate", "strategy",
              "valid", "invalid", "failed-safe");
  bench::PrintRule(66);
  bench::BenchJson json("chaos", opt);
  int invalid_total = 0;
  for (const Cell& c : cells) {
    std::string strategy_name(exec::StrategyName(c.strategy));
    std::printf("%10s %6.2f %16s %8d %8d %12d\n",
                chaos::FaultKindName(c.kind), c.rate, strategy_name.c_str(),
                c.valid, c.invalid, c.failed_safe);
    invalid_total += c.invalid;
    json.AddRow({{"fault", bench::JsonStr(chaos::FaultKindName(c.kind))},
                 {"rate", bench::JsonNum(c.rate)},
                 {"strategy", bench::JsonStr(exec::StrategyName(c.strategy))},
                 {"valid", bench::JsonNum(c.valid)},
                 {"invalid", bench::JsonNum(c.invalid)},
                 {"failed_safe", bench::JsonNum(c.failed_safe)},
                 {"skipped", bench::JsonNum(c.skipped)},
                 {"report_fingerprint",
                  bench::JsonStr(std::to_string(c.fingerprint))}});
  }
  std::printf("\n(%d trials per cell; fleet 120/40, snapshot 40, presumed "
              "p=0.10, target 0.99)\n", per_cell);
  if (skipped_total > 0) {
    std::printf("WARNING: %d trial(s) skipped (Init/Plan/Execute/Audit "
                "failure) — excluded from the verdict counts above.\n",
                skipped_total);
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  if (invalid_total > 0) {
    std::fprintf(stderr,
                 "FAIL: %d successful-but-invalid trial(s) — the validity "
                 "invariant is broken.\n",
                 invalid_total);
    return 1;
  }
  return 0;
}
