// Chaos scenario matrix — the validity invariant under injected faults.
// Sweeps every probabilistic fault kind (drop, burst, duplicate, delay,
// corrupt, plus a "crash" pseudo-kind that kills processor devices outright)
// x fault rate x configuration (Overcollection with repair off/on, Backup)
// under the deterministic chaos injector and audits each trial with the
// central ValidityOracle. Expected shape: trials split between *valid* (the
// delivered answer equals a centralized rerun over the recorded crowd
// sample) and *failed-safe* (no answer before the deadline); a
// *successful-but-invalid* cell is an invariant violation and fails the
// bench with exit 1 — with or without the repair subsystem. The repair-on
// rows additionally report how often mid-query recruitment ran and
// completed, showing the detection + repair path is exercised, not idle.
//
// Runs on the parallel trial harness (see trial_runner.h): every
// (cell, trial) pair is an independent seed-deterministic simulation, so
// --jobs N changes wall-clock only — per-seed verdicts are identical.

#include "bench_util.h"
#include "chaos/chaos.h"
#include "common/hash.h"
#include "core/validity_oracle.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

using chaos::FaultKind;

// The sweep's fault axis: the five message-level injector kinds plus
// device crashes (ExecutionConfig failure injection at the given rate).
struct BenchFault {
  const char* name;
  bool is_crash;
  FaultKind kind;  // meaningful when !is_crash
};

// Overcollection with and without the repair subsystem, and Backup as the
// replication baseline (repair applies only to Overcollection plans).
struct BenchMode {
  const char* name;
  exec::Strategy strategy;
  bool repair;
};

struct TrialResult {
  bench::TrialStatus status;
  core::TrialVerdict verdict = core::TrialVerdict::kFailedSafe;
  uint32_t repairs_attempted = 0;
  uint32_t repairs_succeeded = 0;
  uint64_t fingerprint = 0;
};

struct Cell {
  BenchFault fault;
  double rate = 0;
  BenchMode mode;
  int valid = 0;
  int invalid = 0;
  int failed_safe = 0;
  int skipped = 0;
  uint64_t repairs_attempted = 0;
  uint64_t repairs_succeeded = 0;
  uint64_t fingerprint = 0;  // order-combined over completed trials
};

TrialResult RunOne(const Cell& cell, int trial) {
  TrialResult r;
  uint64_t seed = 17000 + trial * 31;
  core::EdgeletFramework fw(bench::StandardFleet(120, 40, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(40, seed);
  auto d = fw.Plan(q, {}, {0.1, 0.99}, cell.mode.strategy);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 30 * kSecond;
  ec.deadline = 4 * kMinute;
  ec.inject_failures = false;
  ec.repair.enabled = cell.mode.repair;
  // Chaos seed varies per trial but not per cell shape: the same schedule
  // shape replays across kinds/rates, isolating the knob under sweep.
  chaos::ChaosInjector injector(
      chaos::MakeFaultScenario(cell.fault.kind, seed + 7, cell.rate));
  if (cell.fault.is_crash) {
    // Crash pseudo-kind: each deployed chain operator dies with
    // probability `rate` at a deterministic random time inside the query's
    // active window (collection + early compute). The stock failure
    // injection spreads kills over the whole deadline — most of which
    // lands after completion; repair is about crashes *during* the query.
    Rng kill_rng(Mix64(seed + 7) ^ 0xC4A5);
    std::vector<net::NodeId> victims;
    for (const auto& partition : d->sb_groups) {
      for (const auto& group : partition) {
        victims.insert(victims.end(), group.begin(), group.end());
      }
    }
    for (const auto& partition : d->computer_groups) {
      for (const auto& group : partition) {
        victims.insert(victims.end(), group.begin(), group.end());
      }
    }
    net::Network* network = fw.network();
    for (net::NodeId id : victims) {
      if (!kill_rng.NextBernoulli(cell.rate)) continue;
      SimTime when = kSecond + kill_rng.NextBelow(45 * kSecond);
      fw.sim()->ScheduleAt(id, when, [network, id]() { network->Kill(id); });
    }
  } else {
    injector.AttachTo(fw.network());
  }
  auto report = fw.Execute(*d, ec);
  injector.Detach();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  core::ValidityOracle oracle(&fw);
  auto audit = oracle.Audit(*d, *report);
  if (!audit.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.verdict = audit->verdict;
  r.repairs_attempted = report->repairs_attempted;
  r.repairs_succeeded = report->repairs_succeeded;
  r.fingerprint = exec::ReportFingerprint(*report);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt =
      bench::ParseHarnessOptions(argc, argv, "chaos", /*default_trials=*/5);
  bench::PrintHeader(
      "Chaos matrix: validity under injected faults, with and without "
      "mid-query repair",
      "Expected: every cell is valid or failed-safe; a successful execution "
      "whose answer diverges from the centralized rerun (invalid) fails "
      "this bench with exit 1.");

  const BenchFault kFaults[] = {
      {"drop", false, FaultKind::kDrop},
      {"burst", false, FaultKind::kBurst},
      {"duplicate", false, FaultKind::kDuplicate},
      {"delay", false, FaultKind::kDelay},
      {"corrupt", false, FaultKind::kCorrupt},
      {"crash", true, FaultKind::kDrop},
  };
  // 0.50 deliberately exceeds what the planner provisioned for (presumed
  // p = 0.10): at that rate repair-off Overcollection trials routinely run
  // out of live partitions, which is exactly where the repair rows earn
  // their keep.
  const double kRates[] = {0.05, 0.15, 0.30, 0.50};
  const BenchMode kModes[] = {
      {"overcollection", exec::Strategy::kOvercollection, false},
      {"overcoll+repair", exec::Strategy::kOvercollection, true},
      {"backup", exec::Strategy::kBackup, false},
  };

  std::vector<Cell> cells;
  for (const BenchFault& fault : kFaults) {
    for (double rate : kRates) {
      for (const BenchMode& mode : kModes) {
        Cell c;
        c.fault = fault;
        c.rate = rate;
        c.mode = mode;
        cells.push_back(c);
      }
    }
  }
  const int per_cell = opt.trials;
  const int total = static_cast<int>(cells.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(cells[i / per_cell], i % per_cell);
  });

  int skipped_total = 0;
  for (size_t c = 0; c < cells.size(); ++c) {
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++cells[c].skipped;
        ++skipped_total;
        continue;
      }
      switch (r.verdict) {
        case core::TrialVerdict::kValid: ++cells[c].valid; break;
        case core::TrialVerdict::kInvalid: ++cells[c].invalid; break;
        case core::TrialVerdict::kFailedSafe: ++cells[c].failed_safe; break;
      }
      cells[c].repairs_attempted += r.repairs_attempted;
      cells[c].repairs_succeeded += r.repairs_succeeded;
      cells[c].fingerprint = HashCombine(cells[c].fingerprint, r.fingerprint);
    }
  }

  std::printf("%10s %6s %16s %6s %8s %12s %9s\n", "fault", "rate", "mode",
              "valid", "invalid", "failed-safe", "repairs");
  bench::PrintRule(74);
  bench::BenchJson json("chaos", opt);
  int invalid_total = 0;
  uint64_t repairs_total = 0;
  for (const Cell& c : cells) {
    char repairs[32];
    std::snprintf(repairs, sizeof(repairs), "%llu/%llu",
                  static_cast<unsigned long long>(c.repairs_succeeded),
                  static_cast<unsigned long long>(c.repairs_attempted));
    std::printf("%10s %6.2f %16s %6d %8d %12d %9s\n", c.fault.name, c.rate,
                c.mode.name, c.valid, c.invalid, c.failed_safe,
                c.mode.repair ? repairs : "-");
    invalid_total += c.invalid;
    repairs_total += c.repairs_succeeded;
    json.AddRow({{"fault", bench::JsonStr(c.fault.name)},
                 {"rate", bench::JsonNum(c.rate)},
                 {"strategy", bench::JsonStr(exec::StrategyName(
                                  c.mode.strategy))},
                 {"repair", bench::JsonBool(c.mode.repair)},
                 {"valid", bench::JsonNum(c.valid)},
                 {"invalid", bench::JsonNum(c.invalid)},
                 {"failed_safe", bench::JsonNum(c.failed_safe)},
                 {"repairs_attempted", bench::JsonNum(c.repairs_attempted)},
                 {"repairs_succeeded", bench::JsonNum(c.repairs_succeeded)},
                 {"skipped", bench::JsonNum(c.skipped)},
                 {"report_fingerprint",
                  bench::JsonStr(std::to_string(c.fingerprint))}});
  }
  std::printf("\n(%d trials per cell; fleet 120/40, snapshot 40, presumed "
              "p=0.10, target 0.99; repairs column = succeeded/attempted "
              "mid-query recruitments)\n", per_cell);
  if (skipped_total > 0) {
    std::printf("WARNING: %d trial(s) skipped (Init/Plan/Execute/Audit "
                "failure) — excluded from the verdict counts above.\n",
                skipped_total);
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  if (invalid_total > 0) {
    std::fprintf(stderr,
                 "FAIL: %d successful-but-invalid trial(s) — the validity "
                 "invariant is broken.\n",
                 invalid_total);
    return 1;
  }
  if (repairs_total == 0) {
    std::printf("NOTE: no trial exercised a successful repair — the "
                "repair-on rows ran entirely on the primary deployment.\n");
  }
  return 0;
}
