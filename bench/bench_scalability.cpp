// Q2 — "Can any form of computation be handled?" / scalability (paper
// §3.3). The demo claims scalability "demonstrated by the number of
// simulated edgelets". Sweeps the crowd size at a fixed plan and reports
// simulated completion time, message volume, and wall-clock cost of the
// simulation itself. Expected shape: messages grow linearly with the crowd;
// completion time stays roughly flat (collection parallelism); per-edgelet
// load is constant.
//
// Runs on the parallel trial harness (trial_runner.h); --trials N averages
// N seeds per crowd size (trial 0 reproduces the original fixed-seed run).

#include "bench_util.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  SimTime completion = kSimTimeNever;
  uint64_t msgs = 0;
  uint64_t bytes = 0;
  int64_t wall_ms = 0;
};

TrialResult RunOne(size_t crowd, int trial) {
  TrialResult r;
  uint64_t seed = 21 + trial;
  // Keep the plan constant: n=5, quota scales with C so that C tracks
  // the crowd (a survey of ~1/5 of the population).
  uint64_t c_card = crowd / 5;
  core::EdgeletFramework fw(bench::StandardFleet(crowd, 80, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(c_card, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = (c_card + 4) / 5;  // n = 5
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  ec.seed = seed - 19;  // trial 0 reproduces the original ec.seed = 2

  bench::WallTimer wall;
  auto report = fw.Execute(*d, ec);
  r.wall_ms = wall.ElapsedMs();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  r.completion = report->completion_time;
  r.msgs = report->messages_sent;
  r.bytes = report->bytes_sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "scalability", /*default_trials=*/1);
  bench::PrintHeader(
      "Q2: scalability with the number of simulated edgelets",
      "Expected: messages ~ linear in contributors; completion time ~ flat "
      "(bounded by the collection window + pipeline latency).");

  const std::vector<size_t> kCrowds = {100, 300, 1000, 3000, 10000};
  const int per_cell = opt.trials;
  const int total = static_cast<int>(kCrowds.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(kCrowds[i / per_cell], i % per_cell);
  });

  std::printf("%13s %8s %12s %12s %12s %10s %8s\n", "contributors", "C",
              "done(sim)", "messages", "KiB sent", "wall(ms)", "skipped");
  bench::PrintRule(82);
  bench::BenchJson json("scalability", opt);
  int skipped_total = 0;
  for (size_t c = 0; c < kCrowds.size(); ++c) {
    int completed = 0, skipped = 0, successes = 0;
    SimTime sum_completion = 0;
    uint64_t sum_msgs = 0, sum_bytes = 0;
    int64_t sum_wall = 0;
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++skipped;
        continue;
      }
      ++completed;
      if (r.success) {
        ++successes;
        sum_completion += r.completion;
      }
      sum_msgs += r.msgs;
      sum_bytes += r.bytes;
      sum_wall += r.wall_ms;
    }
    skipped_total += skipped;
    uint64_t c_card = kCrowds[c] / 5;
    if (completed == 0) {
      std::printf("%13zu %8llu %12s %12s %12s %10s %8d\n", kCrowds[c],
                  static_cast<unsigned long long>(c_card), "-", "-", "-", "-",
                  skipped);
    } else {
      std::printf(
          "%13zu %8llu %12s %12llu %12.1f %10lld %8d\n", kCrowds[c],
          static_cast<unsigned long long>(c_card),
          successes ? FormatSimTime(sum_completion / successes).c_str()
                    : "timeout",
          static_cast<unsigned long long>(sum_msgs / completed),
          sum_bytes / 1024.0 / completed,
          static_cast<long long>(sum_wall / completed), skipped);
    }
    json.AddRow(
        {{"contributors", bench::JsonNum(kCrowds[c])},
         {"snapshot_cardinality", bench::JsonNum(c_card)},
         {"completed", bench::JsonNum(completed)},
         {"skipped", bench::JsonNum(skipped)},
         {"successes", bench::JsonNum(successes)},
         {"mean_completion_sim_us",
          bench::JsonNum(successes ? sum_completion / successes : 0)},
         {"mean_msgs", bench::JsonNum(completed ? sum_msgs / completed : 0)},
         {"mean_kib",
          bench::JsonNum(completed ? sum_bytes / 1024.0 / completed : 0.0)},
         {"mean_wall_ms",
          bench::JsonNum(completed ? sum_wall / completed : int64_t{0})}});
  }
  if (skipped_total > 0) {
    std::printf("\nWARNING: %d trial(s) skipped (Init/Plan/Execute "
                "failure).\n", skipped_total);
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
