// Q2 — "Can any form of computation be handled?" / scalability (paper
// §3.3). The demo claims scalability "demonstrated by the number of
// simulated edgelets". Sweeps the crowd size at a fixed plan and reports
// simulated completion time, message volume, and wall-clock cost of the
// simulation itself. Expected shape: messages grow linearly with the crowd;
// completion time stays roughly flat (collection parallelism); per-edgelet
// load is constant.

#include <chrono>

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "Q2: scalability with the number of simulated edgelets",
      "Expected: messages ~ linear in contributors; completion time ~ flat "
      "(bounded by the collection window + pipeline latency).");

  std::printf("%13s %8s %12s %12s %12s %10s\n", "contributors", "C",
              "done(sim)", "messages", "KiB sent", "wall(ms)");
  bench::PrintRule();

  for (size_t crowd : {100u, 300u, 1000u, 3000u, 10000u}) {
    // Keep the plan constant: n=5, quota scales with C so that C tracks
    // the crowd (a survey of ~1/5 of the population).
    uint64_t c_card = crowd / 5;
    core::EdgeletFramework fw(bench::StandardFleet(crowd, 80, 21));
    if (!fw.Init().ok()) return 1;
    query::Query q = bench::SurveyQuery(c_card, 21);
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = (c_card + 4) / 5;  // n = 5
    auto d = fw.Plan(q, privacy, {0.05, 0.99},
                     exec::Strategy::kOvercollection);
    if (!d.ok()) {
      std::printf("%13zu planning failed: %s\n", crowd,
                  d.status().ToString().c_str());
      continue;
    }
    exec::ExecutionConfig ec;
    ec.collection_window = 2 * kMinute;
    ec.deadline = 10 * kMinute;
    ec.inject_failures = false;
    ec.seed = 2;

    auto wall_start = std::chrono::steady_clock::now();
    auto report = fw.Execute(*d, ec);
    auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    if (!report.ok()) {
      std::printf("%13zu execution failed\n", crowd);
      continue;
    }
    std::printf("%13zu %8llu %12s %12llu %12.1f %10lld\n", crowd,
                static_cast<unsigned long long>(c_card),
                report->success
                    ? FormatSimTime(report->completion_time).c_str()
                    : "timeout",
                static_cast<unsigned long long>(report->messages_sent),
                report->bytes_sent / 1024.0,
                static_cast<long long>(wall_ms));
  }
  return 0;
}
