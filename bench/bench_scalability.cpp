// Q2 — "Can any form of computation be handled?" / scalability (paper
// §3.3). The demo claims scalability "demonstrated by the number of
// simulated edgelets". Three phases:
//
//  1. Crowd sweep: fixed plan, growing crowd. Expected shape: messages grow
//     linearly with the crowd; completion time stays roughly flat
//     (collection parallelism); per-edgelet load is constant.
//  2. Engine shard sweep: a --devices N (default 100 000) fleet under the
//     paper's OppNet extreme — intermittent mostly-offline churn,
//     store-and-forward mailboxes with a TTL — replayed on the serial
//     engine and on the window-barrier parallel engine at each --shards
//     count. Reports events/sec per shard count and asserts the delivery
//     fingerprint is identical for every engine (the parsim determinism
//     contract, at bench scale).
//  3. Cohort exec sweep: the same --devices N but as *contributor members*
//     folded --cohort K to a device (exec::CohortActor), running the full
//     Grouping Sets pipeline end to end on every --shards count. Asserts
//     bit-identical ReportFingerprints across shard counts, and records
//     events/sec, wall ms, and process peak RSS — the 1M+ member
//     configuration whose memory is O(operators + cohorts).
//
// Phases 2 and 3 write events/sec, wall-ms, and speedup-vs-1-shard trend
// lines into the JSON artifact. --baseline PATH records those events/sec
// figures on first run and on later runs exits 1 if any comparable cell
// regressed more than 25% (cells under kBaselineMinWallMs are too noisy to
// gate and are skipped).
//
// Runs on the parallel trial harness (trial_runner.h); --trials N averages
// N seeds per cell (trial 0 reproduces the original fixed-seed run).
// Cross-trial parallelism (--jobs) composes with intra-trial parallelism
// (--shards): each harness worker drives one simulation whose shards are
// themselves worker threads.

#include <cstring>
#include <map>
#include <string>

#include "bench_util.h"
#include "net/parsim/parallel_simulator.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  SimTime completion = kSimTimeNever;
  uint64_t msgs = 0;
  uint64_t bytes = 0;
  int64_t wall_ms = 0;
};

TrialResult RunOne(size_t crowd, int trial) {
  TrialResult r;
  uint64_t seed = 21 + trial;
  // Keep the plan constant: n=5, quota scales with C so that C tracks
  // the crowd (a survey of ~1/5 of the population).
  uint64_t c_card = crowd / 5;
  core::EdgeletFramework fw(bench::StandardFleet(crowd, 80, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(c_card, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = (c_card + 4) / 5;  // n = 5
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  ec.seed = seed - 19;  // trial 0 reproduces the original ec.seed = 2

  bench::WallTimer wall;
  auto report = fw.Execute(*d, ec);
  r.wall_ms = wall.ElapsedMs();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  r.completion = report->completion_time;
  r.msgs = report->messages_sent;
  r.bytes = report->bytes_sent;
  return r;
}

// --- Phase 2: engine shard sweep (OppNet extreme) --------------------------

// Churn/latency parameters of the opportunistic configuration. min_latency
// doubles as the parallel engine's lookahead.
constexpr SimDuration kOppMinLatency = 50 * kMillisecond;
constexpr SimDuration kOppMeanExtra = 150 * kMillisecond;
constexpr SimDuration kOppMeanOnline = 15 * kSecond;
constexpr SimDuration kOppMeanOffline = 45 * kSecond;
constexpr SimDuration kOppMailboxTtl = 30 * kSecond;
constexpr SimDuration kOppBeaconPeriod = 5 * kSecond;
constexpr SimDuration kOppHorizon = 60 * kSecond;
constexpr int kOppBeacons = 12;  // per device over the horizon

struct OppNetResult {
  uint64_t events = 0;
  int64_t wall_ms = 0;
  uint64_t delivered = 0;
  uint64_t expired = 0;
  uint64_t fingerprint = 0;
};

// Every device runs a beacon loop on its own timeline: send a small message
// to a ring neighbour every period, through churn, loss, and mailboxes.
// All randomness comes from per-node streams, so the outcome is a pure
// function of (seed, devices) — identical for every engine and shard count.
struct OppNetWorkload {
  net::SimEngine* engine = nullptr;
  net::Network* net = nullptr;
  size_t devices = 0;

  struct Probe : net::Node {
    void OnMessage(const net::Message& msg) override {
      (void)msg;
      ++delivered;
    }
    uint64_t delivered = 0;
  };
  std::vector<Probe> probes;

  void Beacon(net::NodeId id, int remaining) {
    net::Message m;
    m.from = id;
    m.to = id % devices + 1;  // ring neighbour, usually another shard
    m.type = 1;
    m.payload = net->AcquirePayloadBuffer();
    m.payload.resize(16);
    net->Send(std::move(m));
    if (remaining > 1) {
      engine->ScheduleAfter(id, kOppBeaconPeriod,
                            [this, id, remaining]() {
                              Beacon(id, remaining - 1);
                            });
    }
  }
};

OppNetResult RunOppNet(size_t devices, size_t shards, int trial) {
  const uint64_t seed = 97 + trial;
  std::unique_ptr<net::SimEngine> engine;
  if (shards > 1) {
    net::parsim::ParallelSimulator::Options po;
    po.num_shards = shards;
    po.lookahead = kOppMinLatency;
    engine = std::make_unique<net::parsim::ParallelSimulator>(seed, po);
  } else {
    engine = std::make_unique<net::Simulator>(seed);
  }
  engine->ReserveEvents(devices * 4);

  net::NetworkConfig cfg;
  cfg.latency.min_latency = kOppMinLatency;
  cfg.latency.mean_extra = kOppMeanExtra;
  cfg.drop_probability = 0.01;
  cfg.store_and_forward = true;
  cfg.mailbox_ttl = kOppMailboxTtl;
  net::Network network(engine.get(), cfg);

  OppNetWorkload w;
  w.engine = engine.get();
  w.net = &network;
  w.devices = devices;
  w.probes.resize(devices);
  for (size_t i = 0; i < devices; ++i) {
    network.Register(&w.probes[i], net::ChurnModel::Intermittent(
                                       kOppMeanOnline, kOppMeanOffline));
  }
  // Stagger the beacon loops so the event queue is not one giant tie.
  for (net::NodeId id = 1; id <= devices; ++id) {
    engine->ScheduleAt(id, (id * 13) % kOppBeaconPeriod,
                       [&w, id]() { w.Beacon(id, kOppBeacons); });
  }

  bench::WallTimer wall;
  engine->RunUntil(kOppHorizon);  // churn reschedules forever: bound the run
  OppNetResult r;
  r.wall_ms = wall.ElapsedMs();
  r.events = engine->events_executed();

  net::NetworkStats stats = network.stats();
  r.delivered = stats.messages_delivered;
  r.expired = stats.expired_in_mailbox;
  // FNV-1a over everything observable: per-device delivery counts plus the
  // merged network stats. Equal across engines iff the simulations agree.
  uint64_t fp = 1469598103934665603ULL;
  auto mix = [&fp](uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ULL;
  };
  for (const auto& p : w.probes) mix(p.delivered);
  mix(stats.messages_sent);
  mix(stats.messages_delivered);
  mix(stats.dropped_random);
  mix(stats.dropped_sender_offline);
  mix(stats.expired_in_mailbox);
  mix(stats.bytes_delivered);
  r.fingerprint = fp;
  return r;
}

// --- Phase 3: cohort exec sweep (1M+ member configuration) -----------------

// Process peak RSS in KiB (Linux VmHWM; 0 where unavailable). Monotone
// per process, so a row reports the high-water mark up to and including
// its own run — exactly the "peak RSS of the sweep" the 8 GB budget is
// about.
long ReadPeakRssKib() {
  long kib = 0;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        kib = std::strtol(line + 6, nullptr, 10);
        break;
      }
    }
    std::fclose(f);
  }
  return kib;
}

struct CohortResult {
  bench::TrialStatus status;
  bool success = false;
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  int64_t wall_ms = 0;
  uint64_t members = 0;  // contributors_participating
  long peak_rss_kib = 0;
};

CohortResult RunCohortSweep(size_t members, size_t cohort, size_t shards,
                            int trial) {
  CohortResult r;
  const uint64_t seed = 141 + trial;
  core::FrameworkConfig cfg;
  cfg.fleet.num_contributors = members;
  cfg.fleet.contributor_cohort_size = cohort;
  cfg.fleet.num_processors = 80;
  cfg.fleet.enable_churn = false;
  cfg.seed = seed;
  cfg.sim_shards = shards;
  core::EdgeletFramework fw(cfg);
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  const uint64_t c_card = members / 5;
  query::Query q = bench::SurveyQuery(c_card, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = (c_card + 4) / 5;  // n = 5
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  ec.seed = seed - 19;

  bench::WallTimer wall;
  auto report = fw.Execute(*d, ec);
  r.wall_ms = wall.ElapsedMs();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  r.fingerprint = exec::ReportFingerprint(*report);
  r.events = fw.sim()->events_executed();
  r.members = report->contributors_participating;
  r.peak_rss_kib = ReadPeakRssKib();
  return r;
}

// --- Perf baseline ---------------------------------------------------------

// Cells whose *baseline-recorded* wall clock is under this are dominated
// by scheduler noise (a concurrent ctest neighbour inflates a 20 ms cell
// 10x) and are never gated; the fingerprint gates still apply at any
// size. Keying the decision on the recorded wall — not the current run's
// — keeps the gate stable under load.
constexpr int64_t kBaselineMinWallMs = 250;
constexpr double kMaxRegression = 0.25;

struct BaselineCell {
  double eps = 0;
  int64_t wall_ms = 0;
};

// Plain "key events_per_sec wall_ms" lines, one per (phase, shard) cell.
std::map<std::string, BaselineCell> LoadBaseline(const std::string& path) {
  std::map<std::string, BaselineCell> cells;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return cells;
  char key[64];
  double eps = 0;
  long long wall = 0;
  while (std::fscanf(f, "%63s %lf %lld", key, &eps, &wall) == 3) {
    cells[key] = {eps, wall};
  }
  std::fclose(f);
  return cells;
}

bool WriteBaseline(const std::string& path,
                   const std::map<std::string, BaselineCell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& [key, cell] : cells) {
    std::fprintf(f, "%s %.1f %lld\n", key.c_str(), cell.eps,
                 static_cast<long long>(cell.wall_ms));
  }
  std::fclose(f);
  return true;
}

// Strips the bench-specific flags (--devices/--shards/--cohort/--baseline)
// so the remainder can go through the shared harness parser.
void ParseShardFlags(int* argc, char** argv, size_t* devices,
                     std::vector<size_t>* shard_counts, size_t* cohort,
                     std::string* baseline_path) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < *argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 2) *devices = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--cohort") == 0 && i + 1 < *argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) *cohort = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < *argc) {
      *baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < *argc) {
      shard_counts->clear();
      for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        long v = std::strtol(tok, nullptr, 10);
        if (v >= 1) shard_counts->push_back(static_cast<size_t>(v));
      }
      if (shard_counts->empty()) shard_counts->push_back(1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t devices = 100000;
  size_t cohort = 512;
  std::string baseline_path;
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  ParseShardFlags(&argc, argv, &devices, &shard_counts, &cohort,
                  &baseline_path);
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "scalability", /*default_trials=*/1);
  bench::PrintHeader(
      "Q2: scalability with the number of simulated edgelets",
      "Expected: messages ~ linear in contributors; completion time ~ flat "
      "(bounded by the collection window + pipeline latency).");

  const std::vector<size_t> kCrowds = {100, 300, 1000, 3000, 10000};
  const int per_cell = opt.trials;
  const int total = static_cast<int>(kCrowds.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(kCrowds[i / per_cell], i % per_cell);
  });

  std::printf("%13s %8s %12s %12s %12s %10s %8s\n", "contributors", "C",
              "done(sim)", "messages", "KiB sent", "wall(ms)", "skipped");
  bench::PrintRule(82);
  bench::BenchJson json("scalability", opt);
  int skipped_total = 0;
  for (size_t c = 0; c < kCrowds.size(); ++c) {
    int completed = 0, skipped = 0, successes = 0;
    SimTime sum_completion = 0;
    uint64_t sum_msgs = 0, sum_bytes = 0;
    int64_t sum_wall = 0;
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++skipped;
        continue;
      }
      ++completed;
      if (r.success) {
        ++successes;
        sum_completion += r.completion;
      }
      sum_msgs += r.msgs;
      sum_bytes += r.bytes;
      sum_wall += r.wall_ms;
    }
    skipped_total += skipped;
    uint64_t c_card = kCrowds[c] / 5;
    if (completed == 0) {
      std::printf("%13zu %8llu %12s %12s %12s %10s %8d\n", kCrowds[c],
                  static_cast<unsigned long long>(c_card), "-", "-", "-", "-",
                  skipped);
    } else {
      std::printf(
          "%13zu %8llu %12s %12llu %12.1f %10lld %8d\n", kCrowds[c],
          static_cast<unsigned long long>(c_card),
          successes ? FormatSimTime(sum_completion / successes).c_str()
                    : "timeout",
          static_cast<unsigned long long>(sum_msgs / completed),
          sum_bytes / 1024.0 / completed,
          static_cast<long long>(sum_wall / completed), skipped);
    }
    json.AddRow(
        {{"contributors", bench::JsonNum(kCrowds[c])},
         {"snapshot_cardinality", bench::JsonNum(c_card)},
         {"completed", bench::JsonNum(completed)},
         {"skipped", bench::JsonNum(skipped)},
         {"successes", bench::JsonNum(successes)},
         {"mean_completion_sim_us",
          bench::JsonNum(successes ? sum_completion / successes : 0)},
         {"mean_msgs", bench::JsonNum(completed ? sum_msgs / completed : 0)},
         {"mean_kib",
          bench::JsonNum(completed ? sum_bytes / 1024.0 / completed : 0.0)},
         {"mean_wall_ms",
          bench::JsonNum(completed ? sum_wall / completed : int64_t{0})}});
  }
  if (skipped_total > 0) {
    std::printf("\nWARNING: %d trial(s) skipped (Init/Plan/Execute "
                "failure).\n", skipped_total);
  }

  // --- Phase 2: engine shard sweep -----------------------------------------
  bench::PrintHeader(
      "Engine shard sweep: " + std::to_string(devices) +
          "-device OppNet fleet (intermittent churn, store-and-forward, "
          "mailbox TTL)",
      "Same workload on the serial engine (shards=1) and the window-barrier "
      "parallel engine; identical fingerprints, events/sec per shard count.");

  const int shard_cells = static_cast<int>(shard_counts.size());
  std::vector<OppNetResult> opp = executor.Map(
      shard_cells * per_cell, [&](int i) {
        return RunOppNet(devices, shard_counts[i / per_cell], i % per_cell);
      });

  std::printf("%8s %12s %12s %10s %10s %12s %8s  %s\n", "shards", "events",
              "delivered", "expired", "wall(ms)", "events/sec", "speedup",
              "fingerprint");
  bench::PrintRule(95);
  // current[key] / current_wall[key]: the trend-line cells this run
  // produced, keyed "p<phase>s<shards>" for the perf baseline.
  std::map<std::string, double> current;
  std::map<std::string, int64_t> current_wall;
  bool deterministic = true;
  double p2_eps_1shard = 0.0;
  for (int s = 0; s < shard_cells; ++s) {
    uint64_t sum_events = 0, sum_delivered = 0, sum_expired = 0;
    int64_t sum_wall = 0;
    for (int t = 0; t < per_cell; ++t) {
      const OppNetResult& r = opp[s * per_cell + t];
      sum_events += r.events;
      sum_delivered += r.delivered;
      sum_expired += r.expired;
      sum_wall += r.wall_ms;
      // Every engine must agree with the shards=1 run of the same trial.
      if (r.fingerprint != opp[t].fingerprint) deterministic = false;
    }
    double wall_s = sum_wall / 1000.0 / per_cell;
    double eps = wall_s > 0 ? sum_events / per_cell / wall_s : 0.0;
    if (shard_counts[s] == 1) p2_eps_1shard = eps;
    double speedup = p2_eps_1shard > 0 ? eps / p2_eps_1shard : 0.0;
    std::string key = "p2s" + std::to_string(shard_counts[s]);
    current[key] = eps;
    current_wall[key] = sum_wall / per_cell;
    std::printf("%8zu %12llu %12llu %10llu %10lld %12.0f %7.2fx  %016llx\n",
                shard_counts[s],
                static_cast<unsigned long long>(sum_events / per_cell),
                static_cast<unsigned long long>(sum_delivered / per_cell),
                static_cast<unsigned long long>(sum_expired / per_cell),
                static_cast<long long>(sum_wall / per_cell), eps, speedup,
                static_cast<unsigned long long>(opp[s * per_cell].fingerprint));
    json.AddRow(
        {{"phase", bench::JsonStr("oppnet")},
         {"shards", bench::JsonNum(shard_counts[s])},
         {"devices", bench::JsonNum(devices)},
         {"mean_events", bench::JsonNum(sum_events / per_cell)},
         {"mean_delivered", bench::JsonNum(sum_delivered / per_cell)},
         {"mean_expired", bench::JsonNum(sum_expired / per_cell)},
         {"mean_wall_ms", bench::JsonNum(sum_wall / per_cell)},
         {"events_per_sec", bench::JsonNum(eps)},
         {"speedup_vs_1shard", bench::JsonNum(speedup)},
         {"fingerprint",
          bench::JsonStr(std::to_string(opp[s * per_cell].fingerprint))}});
  }
  if (!deterministic) {
    std::printf("\nERROR: engine fingerprints diverge across shard counts — "
                "the parsim determinism contract is broken.\n");
    json.Write(timer.ElapsedMs(), skipped_total);
    return 1;
  }
  std::printf("\nAll engines agree (bit-identical delivery fingerprints).\n");

  // --- Phase 3: cohort exec sweep ------------------------------------------
  const size_t cohort_devices = (devices + cohort - 1) / cohort;
  bench::PrintHeader(
      "Cohort exec sweep: " + std::to_string(devices) +
          " contributor members folded " + std::to_string(cohort) +
          "-to-a-device (" + std::to_string(cohort_devices) +
          " cohort super-nodes), full Grouping Sets pipeline",
      "Memory is O(operators + cohorts); the ReportFingerprint must be "
      "bit-identical for every shard count.");

  // Intra-run parallelism is the measurement here, so cells run
  // sequentially — cross-trial workers would distort both wall clock and
  // peak RSS.
  std::printf("%8s %12s %10s %12s %8s %10s %11s  %s\n", "shards", "events",
              "wall(ms)", "events/sec", "speedup", "members", "peakRSS",
              "fingerprint");
  bench::PrintRule(95);
  bool cohort_deterministic = true;
  bool cohort_success = true;
  double p3_eps_1shard = 0.0;
  std::vector<CohortResult> cohort_ref(per_cell);  // shard_counts[0] runs
  for (int s = 0; s < shard_cells; ++s) {
    uint64_t sum_events = 0, sum_members = 0;
    int64_t sum_wall = 0;
    long rss_kib = 0;
    uint64_t cell_fp = 0;
    for (int t = 0; t < per_cell; ++t) {
      CohortResult r = RunCohortSweep(devices, cohort, shard_counts[s], t);
      if (r.status.skipped) {
        ++skipped_total;
        cohort_success = false;
        std::printf("%8zu skipped (%s)\n", shard_counts[s],
                    r.status.skip_stage);
        continue;
      }
      if (s == 0) cohort_ref[t] = r;
      if (r.fingerprint != cohort_ref[t].fingerprint) {
        cohort_deterministic = false;
      }
      if (t == 0) cell_fp = r.fingerprint;
      cohort_success = cohort_success && r.success;
      sum_events += r.events;
      sum_members += r.members;
      sum_wall += r.wall_ms;
      rss_kib = r.peak_rss_kib;
    }
    double wall_s = sum_wall / 1000.0 / per_cell;
    double eps = wall_s > 0 ? sum_events / per_cell / wall_s : 0.0;
    if (shard_counts[s] == 1) p3_eps_1shard = eps;
    double speedup = p3_eps_1shard > 0 ? eps / p3_eps_1shard : 0.0;
    std::string key = "p3s" + std::to_string(shard_counts[s]);
    current[key] = eps;
    current_wall[key] = sum_wall / per_cell;
    std::printf("%8zu %12llu %10lld %12.0f %7.2fx %10llu %9ldMiB  %016llx\n",
                shard_counts[s],
                static_cast<unsigned long long>(sum_events / per_cell),
                static_cast<long long>(sum_wall / per_cell), eps, speedup,
                static_cast<unsigned long long>(sum_members / per_cell),
                rss_kib / 1024, static_cast<unsigned long long>(cell_fp));
    json.AddRow(
        {{"phase", bench::JsonStr("cohort")},
         {"shards", bench::JsonNum(shard_counts[s])},
         {"members", bench::JsonNum(devices)},
         {"cohort_size", bench::JsonNum(cohort)},
         {"cohort_devices", bench::JsonNum(cohort_devices)},
         {"mean_events", bench::JsonNum(sum_events / per_cell)},
         {"mean_wall_ms", bench::JsonNum(sum_wall / per_cell)},
         {"events_per_sec", bench::JsonNum(eps)},
         {"speedup_vs_1shard", bench::JsonNum(speedup)},
         {"mean_members_participating",
          bench::JsonNum(sum_members / per_cell)},
         {"peak_rss_kib", bench::JsonNum(rss_kib)},
         {"fingerprint", bench::JsonStr(std::to_string(cell_fp))}});
  }
  if (!cohort_deterministic) {
    std::printf("\nERROR: cohort ReportFingerprints diverge across shard "
                "counts — the parsim determinism contract is broken.\n");
    json.Write(timer.ElapsedMs(), skipped_total);
    return 1;
  }
  if (!cohort_success) {
    std::printf("\nERROR: a cohort execution was skipped or missed its "
                "deadline.\n");
    json.Write(timer.ElapsedMs(), skipped_total);
    return 1;
  }
  std::printf("\nAll cohort executions agree (bit-identical "
              "ReportFingerprints).\n");

  // --- Perf baseline: record on first run, gate on later runs --------------
  int exit_code = 0;
  if (!baseline_path.empty()) {
    std::map<std::string, BaselineCell> baseline = LoadBaseline(baseline_path);
    if (baseline.empty()) {
      std::map<std::string, BaselineCell> record;
      for (const auto& [key, eps] : current) {
        record[key] = {eps, current_wall[key]};
      }
      if (WriteBaseline(baseline_path, record)) {
        std::printf("\n[baseline recorded: %s]\n", baseline_path.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write baseline %s\n",
                     baseline_path.c_str());
      }
    } else {
      for (const auto& [key, eps] : current) {
        auto it = baseline.find(key);
        if (it == baseline.end()) continue;
        // Gate only cells that measured >= kBaselineMinWallMs both when the
        // baseline was recorded and now: a smoke-sized cell (baseline wall
        // under the bar) can be inflated 10x by a concurrent ctest neighbour
        // on a loaded box, and that is noise, not a regression.
        if (it->second.wall_ms < kBaselineMinWallMs ||
            current_wall[key] < kBaselineMinWallMs) {
          std::printf("[baseline %s: %.0f vs %.0f events/sec — cell under "
                      "%lld ms, not gated]\n",
                      key.c_str(), eps, it->second.eps,
                      static_cast<long long>(kBaselineMinWallMs));
          continue;
        }
        double floor = it->second.eps * (1.0 - kMaxRegression);
        if (eps < floor) {
          std::printf("ERROR: %s regressed: %.0f events/sec vs baseline "
                      "%.0f (floor %.0f)\n",
                      key.c_str(), eps, it->second.eps, floor);
          exit_code = 1;
        } else {
          std::printf("[baseline %s: %.0f vs %.0f events/sec — ok]\n",
                      key.c_str(), eps, it->second.eps);
        }
      }
    }
  }

  json.Write(timer.ElapsedMs(), skipped_total);
  return exit_code;
}
