// Q2 — "Can any form of computation be handled?" / scalability (paper
// §3.3). The demo claims scalability "demonstrated by the number of
// simulated edgelets". Two phases:
//
//  1. Crowd sweep: fixed plan, growing crowd. Expected shape: messages grow
//     linearly with the crowd; completion time stays roughly flat
//     (collection parallelism); per-edgelet load is constant.
//  2. Engine shard sweep: a --devices N (default 100 000) fleet under the
//     paper's OppNet extreme — intermittent mostly-offline churn,
//     store-and-forward mailboxes with a TTL — replayed on the serial
//     engine and on the window-barrier parallel engine at each --shards
//     count. Reports events/sec per shard count and asserts the delivery
//     fingerprint is identical for every engine (the parsim determinism
//     contract, at bench scale).
//
// Runs on the parallel trial harness (trial_runner.h); --trials N averages
// N seeds per cell (trial 0 reproduces the original fixed-seed run).
// Cross-trial parallelism (--jobs) composes with intra-trial parallelism
// (--shards): each harness worker drives one simulation whose shards are
// themselves worker threads.

#include <cstring>

#include "bench_util.h"
#include "net/parsim/parallel_simulator.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  SimTime completion = kSimTimeNever;
  uint64_t msgs = 0;
  uint64_t bytes = 0;
  int64_t wall_ms = 0;
};

TrialResult RunOne(size_t crowd, int trial) {
  TrialResult r;
  uint64_t seed = 21 + trial;
  // Keep the plan constant: n=5, quota scales with C so that C tracks
  // the crowd (a survey of ~1/5 of the population).
  uint64_t c_card = crowd / 5;
  core::EdgeletFramework fw(bench::StandardFleet(crowd, 80, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(c_card, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = (c_card + 4) / 5;  // n = 5
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  ec.seed = seed - 19;  // trial 0 reproduces the original ec.seed = 2

  bench::WallTimer wall;
  auto report = fw.Execute(*d, ec);
  r.wall_ms = wall.ElapsedMs();
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  r.completion = report->completion_time;
  r.msgs = report->messages_sent;
  r.bytes = report->bytes_sent;
  return r;
}

// --- Phase 2: engine shard sweep (OppNet extreme) --------------------------

// Churn/latency parameters of the opportunistic configuration. min_latency
// doubles as the parallel engine's lookahead.
constexpr SimDuration kOppMinLatency = 50 * kMillisecond;
constexpr SimDuration kOppMeanExtra = 150 * kMillisecond;
constexpr SimDuration kOppMeanOnline = 15 * kSecond;
constexpr SimDuration kOppMeanOffline = 45 * kSecond;
constexpr SimDuration kOppMailboxTtl = 30 * kSecond;
constexpr SimDuration kOppBeaconPeriod = 5 * kSecond;
constexpr SimDuration kOppHorizon = 60 * kSecond;
constexpr int kOppBeacons = 12;  // per device over the horizon

struct OppNetResult {
  uint64_t events = 0;
  int64_t wall_ms = 0;
  uint64_t delivered = 0;
  uint64_t expired = 0;
  uint64_t fingerprint = 0;
};

// Every device runs a beacon loop on its own timeline: send a small message
// to a ring neighbour every period, through churn, loss, and mailboxes.
// All randomness comes from per-node streams, so the outcome is a pure
// function of (seed, devices) — identical for every engine and shard count.
struct OppNetWorkload {
  net::SimEngine* engine = nullptr;
  net::Network* net = nullptr;
  size_t devices = 0;

  struct Probe : net::Node {
    void OnMessage(const net::Message& msg) override {
      (void)msg;
      ++delivered;
    }
    uint64_t delivered = 0;
  };
  std::vector<Probe> probes;

  void Beacon(net::NodeId id, int remaining) {
    net::Message m;
    m.from = id;
    m.to = id % devices + 1;  // ring neighbour, usually another shard
    m.type = 1;
    m.payload = net->AcquirePayloadBuffer();
    m.payload.resize(16);
    net->Send(std::move(m));
    if (remaining > 1) {
      engine->ScheduleAfter(id, kOppBeaconPeriod,
                            [this, id, remaining]() {
                              Beacon(id, remaining - 1);
                            });
    }
  }
};

OppNetResult RunOppNet(size_t devices, size_t shards, int trial) {
  const uint64_t seed = 97 + trial;
  std::unique_ptr<net::SimEngine> engine;
  if (shards > 1) {
    net::parsim::ParallelSimulator::Options po;
    po.num_shards = shards;
    po.lookahead = kOppMinLatency;
    engine = std::make_unique<net::parsim::ParallelSimulator>(seed, po);
  } else {
    engine = std::make_unique<net::Simulator>(seed);
  }
  engine->ReserveEvents(devices * 4);

  net::NetworkConfig cfg;
  cfg.latency.min_latency = kOppMinLatency;
  cfg.latency.mean_extra = kOppMeanExtra;
  cfg.drop_probability = 0.01;
  cfg.store_and_forward = true;
  cfg.mailbox_ttl = kOppMailboxTtl;
  net::Network network(engine.get(), cfg);

  OppNetWorkload w;
  w.engine = engine.get();
  w.net = &network;
  w.devices = devices;
  w.probes.resize(devices);
  for (size_t i = 0; i < devices; ++i) {
    network.Register(&w.probes[i], net::ChurnModel::Intermittent(
                                       kOppMeanOnline, kOppMeanOffline));
  }
  // Stagger the beacon loops so the event queue is not one giant tie.
  for (net::NodeId id = 1; id <= devices; ++id) {
    engine->ScheduleAt(id, (id * 13) % kOppBeaconPeriod,
                       [&w, id]() { w.Beacon(id, kOppBeacons); });
  }

  bench::WallTimer wall;
  engine->RunUntil(kOppHorizon);  // churn reschedules forever: bound the run
  OppNetResult r;
  r.wall_ms = wall.ElapsedMs();
  r.events = engine->events_executed();

  net::NetworkStats stats = network.stats();
  r.delivered = stats.messages_delivered;
  r.expired = stats.expired_in_mailbox;
  // FNV-1a over everything observable: per-device delivery counts plus the
  // merged network stats. Equal across engines iff the simulations agree.
  uint64_t fp = 1469598103934665603ULL;
  auto mix = [&fp](uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ULL;
  };
  for (const auto& p : w.probes) mix(p.delivered);
  mix(stats.messages_sent);
  mix(stats.messages_delivered);
  mix(stats.dropped_random);
  mix(stats.dropped_sender_offline);
  mix(stats.expired_in_mailbox);
  mix(stats.bytes_delivered);
  r.fingerprint = fp;
  return r;
}

// Strips the bench-specific --devices/--shards flags so the remainder can
// go through the shared harness parser.
void ParseShardFlags(int* argc, char** argv, size_t* devices,
                     std::vector<size_t>* shard_counts) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < *argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 2) *devices = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < *argc) {
      shard_counts->clear();
      for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        long v = std::strtol(tok, nullptr, 10);
        if (v >= 1) shard_counts->push_back(static_cast<size_t>(v));
      }
      if (shard_counts->empty()) shard_counts->push_back(1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t devices = 100000;
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  ParseShardFlags(&argc, argv, &devices, &shard_counts);
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "scalability", /*default_trials=*/1);
  bench::PrintHeader(
      "Q2: scalability with the number of simulated edgelets",
      "Expected: messages ~ linear in contributors; completion time ~ flat "
      "(bounded by the collection window + pipeline latency).");

  const std::vector<size_t> kCrowds = {100, 300, 1000, 3000, 10000};
  const int per_cell = opt.trials;
  const int total = static_cast<int>(kCrowds.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(kCrowds[i / per_cell], i % per_cell);
  });

  std::printf("%13s %8s %12s %12s %12s %10s %8s\n", "contributors", "C",
              "done(sim)", "messages", "KiB sent", "wall(ms)", "skipped");
  bench::PrintRule(82);
  bench::BenchJson json("scalability", opt);
  int skipped_total = 0;
  for (size_t c = 0; c < kCrowds.size(); ++c) {
    int completed = 0, skipped = 0, successes = 0;
    SimTime sum_completion = 0;
    uint64_t sum_msgs = 0, sum_bytes = 0;
    int64_t sum_wall = 0;
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++skipped;
        continue;
      }
      ++completed;
      if (r.success) {
        ++successes;
        sum_completion += r.completion;
      }
      sum_msgs += r.msgs;
      sum_bytes += r.bytes;
      sum_wall += r.wall_ms;
    }
    skipped_total += skipped;
    uint64_t c_card = kCrowds[c] / 5;
    if (completed == 0) {
      std::printf("%13zu %8llu %12s %12s %12s %10s %8d\n", kCrowds[c],
                  static_cast<unsigned long long>(c_card), "-", "-", "-", "-",
                  skipped);
    } else {
      std::printf(
          "%13zu %8llu %12s %12llu %12.1f %10lld %8d\n", kCrowds[c],
          static_cast<unsigned long long>(c_card),
          successes ? FormatSimTime(sum_completion / successes).c_str()
                    : "timeout",
          static_cast<unsigned long long>(sum_msgs / completed),
          sum_bytes / 1024.0 / completed,
          static_cast<long long>(sum_wall / completed), skipped);
    }
    json.AddRow(
        {{"contributors", bench::JsonNum(kCrowds[c])},
         {"snapshot_cardinality", bench::JsonNum(c_card)},
         {"completed", bench::JsonNum(completed)},
         {"skipped", bench::JsonNum(skipped)},
         {"successes", bench::JsonNum(successes)},
         {"mean_completion_sim_us",
          bench::JsonNum(successes ? sum_completion / successes : 0)},
         {"mean_msgs", bench::JsonNum(completed ? sum_msgs / completed : 0)},
         {"mean_kib",
          bench::JsonNum(completed ? sum_bytes / 1024.0 / completed : 0.0)},
         {"mean_wall_ms",
          bench::JsonNum(completed ? sum_wall / completed : int64_t{0})}});
  }
  if (skipped_total > 0) {
    std::printf("\nWARNING: %d trial(s) skipped (Init/Plan/Execute "
                "failure).\n", skipped_total);
  }

  // --- Phase 2: engine shard sweep -----------------------------------------
  bench::PrintHeader(
      "Engine shard sweep: " + std::to_string(devices) +
          "-device OppNet fleet (intermittent churn, store-and-forward, "
          "mailbox TTL)",
      "Same workload on the serial engine (shards=1) and the window-barrier "
      "parallel engine; identical fingerprints, events/sec per shard count.");

  const int shard_cells = static_cast<int>(shard_counts.size());
  std::vector<OppNetResult> opp = executor.Map(
      shard_cells * per_cell, [&](int i) {
        return RunOppNet(devices, shard_counts[i / per_cell], i % per_cell);
      });

  std::printf("%8s %12s %12s %10s %10s %12s  %s\n", "shards", "events",
              "delivered", "expired", "wall(ms)", "events/sec", "fingerprint");
  bench::PrintRule(86);
  bool deterministic = true;
  for (int s = 0; s < shard_cells; ++s) {
    uint64_t sum_events = 0, sum_delivered = 0, sum_expired = 0;
    int64_t sum_wall = 0;
    for (int t = 0; t < per_cell; ++t) {
      const OppNetResult& r = opp[s * per_cell + t];
      sum_events += r.events;
      sum_delivered += r.delivered;
      sum_expired += r.expired;
      sum_wall += r.wall_ms;
      // Every engine must agree with the shards=1 run of the same trial.
      if (r.fingerprint != opp[t].fingerprint) deterministic = false;
    }
    double wall_s = sum_wall / 1000.0 / per_cell;
    double eps = wall_s > 0 ? sum_events / per_cell / wall_s : 0.0;
    std::printf("%8zu %12llu %12llu %10llu %10lld %12.0f  %016llx\n",
                shard_counts[s],
                static_cast<unsigned long long>(sum_events / per_cell),
                static_cast<unsigned long long>(sum_delivered / per_cell),
                static_cast<unsigned long long>(sum_expired / per_cell),
                static_cast<long long>(sum_wall / per_cell), eps,
                static_cast<unsigned long long>(opp[s * per_cell].fingerprint));
    json.AddRow(
        {{"shards", bench::JsonNum(shard_counts[s])},
         {"devices", bench::JsonNum(devices)},
         {"mean_events", bench::JsonNum(sum_events / per_cell)},
         {"mean_delivered", bench::JsonNum(sum_delivered / per_cell)},
         {"mean_expired", bench::JsonNum(sum_expired / per_cell)},
         {"mean_wall_ms", bench::JsonNum(sum_wall / per_cell)},
         {"events_per_sec", bench::JsonNum(eps)},
         {"fingerprint",
          bench::JsonStr(std::to_string(opp[s * per_cell].fingerprint))}});
  }
  if (!deterministic) {
    std::printf("\nERROR: engine fingerprints diverge across shard counts — "
                "the parsim determinism contract is broken.\n");
    json.Write(timer.ElapsedMs(), skipped_total);
    return 1;
  }
  std::printf("\nAll engines agree (bit-identical delivery fingerprints).\n");

  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
