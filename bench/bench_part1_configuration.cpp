// P1 — Demo Part 1: QEP configuration (paper §3.2).
// Attendees "vary the failure probability value of the scenario and observe
// automatic changes in the execution plan to keep it resilient". This bench
// regenerates that interaction: for a sweep of failure presumptions it
// prints the automatically re-planned QEP parameters and the resources they
// consume.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "P1: automatic plan adaptation to the failure presumption",
      "Expected: as the presumed p rises, the planner adds overcollected "
      "partitions (m) under Overcollection and replicas under Backup; "
      "device demand rises accordingly while exposure per edgelet is "
      "unchanged (resiliency is orthogonal to privacy).");

  core::EdgeletFramework fw(bench::StandardFleet(600, 400, 3));
  if (!fw.Init().ok()) return 1;
  query::Query q = bench::SurveyQuery(200);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 40;  // n = 5
  privacy.separation = {{"region", "sex"}};

  std::printf("%8s | %20s | %26s\n", "", "Overcollection", "Backup");
  std::printf("%8s | %4s %4s %8s %7s | %8s %8s %8s\n", "p", "n", "m",
              "devices", "crowd>=", "replicas", "devices", "crowd>=");
  bench::PrintRule();
  for (double p : {0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30}) {
    resilience::ResilienceConfig resilience{p, 0.99};
    auto over = fw.Plan(q, privacy, resilience,
                        exec::Strategy::kOvercollection);
    auto backup = fw.Plan(q, privacy, resilience, exec::Strategy::kBackup);

    auto devices = [](const exec::Deployment& d) {
      size_t count = d.combiner_group.size();
      for (const auto& partition : d.sb_groups) {
        for (const auto& g : partition) count += g.size();
      }
      for (const auto& partition : d.computer_groups) {
        for (const auto& g : partition) count += g.size();
      }
      return count;
    };

    std::printf("%8.2f | ", p);
    if (over.ok()) {
      std::printf("%4d %4d %8zu %7llu | ", over->n, over->m, devices(*over),
                  static_cast<unsigned long long>(over->MinQualifyingCrowd()));
    } else {
      std::printf("%4s %4s %8s %7s | ", "-", "-", "-", "-");
    }
    if (backup.ok()) {
      std::printf("%8zu %8zu %8llu\n", backup->sb_groups[0][0].size(),
                  devices(*backup),
                  static_cast<unsigned long long>(
                      backup->MinQualifyingCrowd()));
    } else {
      std::printf("%8s %8s %8s\n", "-", "-", "-");
    }
  }

  std::printf("\nExposure invariance check (p=0 vs p=0.30, Overcollection):\n");
  auto low = fw.Plan(q, privacy, {0.0, 0.99}, exec::Strategy::kOvercollection);
  auto high =
      fw.Plan(q, privacy, {0.30, 0.99}, exec::Strategy::kOvercollection);
  if (low.ok() && high.ok()) {
    auto el = core::Planner::Exposure(*low);
    auto eh = core::Planner::Exposure(*high);
    std::printf("  max tuples/edgelet: %llu vs %llu (%s)\n",
                static_cast<unsigned long long>(el.max_tuples_per_edgelet),
                static_cast<unsigned long long>(eh.max_tuples_per_edgelet),
                el.max_tuples_per_edgelet == eh.max_tuples_per_edgelet
                    ? "unchanged, as expected"
                    : "UNEXPECTED CHANGE");
  }
  return 0;
}
