// Q1 — "Does Edgelet computing concretely make sense?" (paper §3.3 and
// Figure 1). The demo's first objective is versatility across TEE devices
// "from high-end device (PC) to low-end device (home box)". This bench
// reports the per-class cost model for typical operator workloads and the
// end-to-end effect of the fleet's device mix. Expected shape: the home box
// (STM32+TPM) is ~60x slower per tuple than the SGX PC, yet completion time
// is dominated by communication, so mixed fleets finish close to PC-only
// fleets.
//
// Runs on the parallel trial harness (trial_runner.h); --trials N runs N
// seeds per processor mix (trial 0 reproduces the original fixed-seed run).

#include "bench_util.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct MixCase {
  const char* label;
  device::DeviceMix mix;
};

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  SimTime completion = 0;
  uint64_t msgs = 0;
  bool valid = false;
};

TrialResult RunOne(const MixCase& mc, int trial) {
  TrialResult r;
  uint64_t seed = 17 + trial;
  core::FrameworkConfig cfg = bench::StandardFleet(400, 60, seed);
  cfg.fleet.processor_mix = mc.mix;
  core::EdgeletFramework fw(cfg);
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(100, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 25;
  auto d = fw.Plan(q, privacy, {0.05, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 2 * kMinute;
  ec.deadline = 10 * kMinute;
  ec.inject_failures = false;
  auto report = fw.Execute(*d, ec);
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  if (report->success) {
    r.completion = report->completion_time;
    r.msgs = report->messages_sent;
    auto validity = fw.VerifyGroupingSets(*d, *report);
    r.valid = validity.ok() && validity->valid;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "device_heterogeneity", /*default_trials=*/1);
  bench::PrintHeader(
      "Q1: heterogeneous device classes (PC/SGX, phone/TrustZone, box/TPM)",
      "Expected: per-tuple compute spans ~2 orders of magnitude across "
      "classes, but end-to-end completion is latency-dominated.");

  core::FrameworkConfig probe_cfg = bench::StandardFleet(1, 0, 1);
  core::EdgeletFramework probe(probe_cfg);
  if (!probe.Init().ok()) return 1;

  std::printf("Per-class compute model (simulated):\n");
  std::printf("%-24s %9s %14s %14s\n", "device class", "factor",
              "200 tuples", "2000 tuples");
  bench::PrintRule(66);
  struct ClassCase {
    const char* label;
    device::DeviceProfile profile;
  };
  net::Simulator sim(1);
  net::Network net_(&sim, {});
  tee::TrustAuthority authority(1);
  bench::BenchJson json("device_heterogeneity", opt);
  for (const ClassCase& cc : {
           ClassCase{"PC (Intel SGX)", device::DeviceProfile::Pc()},
           ClassCase{"Smartphone (TrustZone)",
                     device::DeviceProfile::Smartphone()},
           ClassCase{"Home box (STM32+TPM)",
                     device::DeviceProfile::HomeBox()},
       }) {
    device::DeviceProfile p = cc.profile;
    p.churn = net::ChurnModel::AlwaysOn();
    device::Device dev(&net_, &authority, p, "probe");
    std::printf("%-24s %9.1f %14s %14s\n", cc.label, p.compute_factor,
                FormatSimTime(dev.ComputeCost(200)).c_str(),
                FormatSimTime(dev.ComputeCost(2000)).c_str());
    json.AddRow({{"kind", bench::JsonStr("class_probe")},
                 {"class", bench::JsonStr(cc.label)},
                 {"compute_factor", bench::JsonNum(p.compute_factor)},
                 {"cost_200_us", bench::JsonNum(dev.ComputeCost(200))},
                 {"cost_2000_us", bench::JsonNum(dev.ComputeCost(2000))}});
  }

  const std::vector<MixCase> kMixes = {
      {"PCs only", {1.0, 0.0, 0.0}},
      {"phones only", {0.0, 1.0, 0.0}},
      {"home boxes only", {0.0, 0.0, 1.0}},
      {"mixed 40/40/20", {0.4, 0.4, 0.2}},
  };
  const int per_cell = opt.trials;
  const int total = static_cast<int>(kMixes.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    return RunOne(kMixes[i / per_cell], i % per_cell);
  });

  std::printf("\nEnd-to-end effect of the processor mix (same query/plan):\n");
  std::printf("%-28s %12s %12s %9s %8s\n", "processor mix", "done(sim)",
              "messages", "valid", "skipped");
  bench::PrintRule(74);
  int skipped_total = 0;
  for (size_t c = 0; c < kMixes.size(); ++c) {
    int completed = 0, skipped = 0, successes = 0, valid = 0;
    SimTime sum_completion = 0;
    uint64_t sum_msgs = 0;
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++skipped;
        continue;
      }
      ++completed;
      if (r.success) {
        ++successes;
        sum_completion += r.completion;
        sum_msgs += r.msgs;
        if (r.valid) ++valid;
      }
    }
    skipped_total += skipped;
    if (successes == 0) {
      std::printf("%-28s %12s %12s %9s %8d\n", kMixes[c].label, "failed", "-",
                  "-", skipped);
    } else {
      std::printf("%-28s %12s %12llu %9s %8d\n", kMixes[c].label,
                  FormatSimTime(sum_completion / successes).c_str(),
                  static_cast<unsigned long long>(sum_msgs / successes),
                  valid == successes ? "yes" : "NO", skipped);
    }
    json.AddRow(
        {{"kind", bench::JsonStr("mix")},
         {"mix", bench::JsonStr(kMixes[c].label)},
         {"completed", bench::JsonNum(completed)},
         {"skipped", bench::JsonNum(skipped)},
         {"successes", bench::JsonNum(successes)},
         {"valid", bench::JsonNum(valid)},
         {"mean_completion_sim_us",
          bench::JsonNum(successes ? sum_completion / successes : 0)},
         {"mean_msgs",
          bench::JsonNum(successes ? sum_msgs / successes : 0)}});
  }
  if (skipped_total > 0) {
    std::printf("\nWARNING: %d trial(s) skipped (Init/Plan/Execute "
                "failure).\n", skipped_total);
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
