// Q1 — "Does Edgelet computing concretely make sense?" (paper §3.3 and
// Figure 1). The demo's first objective is versatility across TEE devices
// "from high-end device (PC) to low-end device (home box)". This bench
// reports the per-class cost model for typical operator workloads and the
// end-to-end effect of the fleet's device mix. Expected shape: the home box
// (STM32+TPM) is ~60x slower per tuple than the SGX PC, yet completion time
// is dominated by communication, so mixed fleets finish close to PC-only
// fleets.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "Q1: heterogeneous device classes (PC/SGX, phone/TrustZone, box/TPM)",
      "Expected: per-tuple compute spans ~2 orders of magnitude across "
      "classes, but end-to-end completion is latency-dominated.");

  core::FrameworkConfig probe_cfg = bench::StandardFleet(1, 0, 1);
  core::EdgeletFramework probe(probe_cfg);
  if (!probe.Init().ok()) return 1;

  std::printf("Per-class compute model (simulated):\n");
  std::printf("%-24s %9s %14s %14s\n", "device class", "factor",
              "200 tuples", "2000 tuples");
  bench::PrintRule(66);
  struct ClassCase {
    const char* label;
    device::DeviceProfile profile;
  };
  net::Simulator sim(1);
  net::Network net_(&sim, {});
  tee::TrustAuthority authority(1);
  for (const ClassCase& cc : {
           ClassCase{"PC (Intel SGX)", device::DeviceProfile::Pc()},
           ClassCase{"Smartphone (TrustZone)",
                     device::DeviceProfile::Smartphone()},
           ClassCase{"Home box (STM32+TPM)",
                     device::DeviceProfile::HomeBox()},
       }) {
    device::DeviceProfile p = cc.profile;
    p.churn = net::ChurnModel::AlwaysOn();
    device::Device dev(&net_, &authority, p, "probe");
    std::printf("%-24s %9.1f %14s %14s\n", cc.label, p.compute_factor,
                FormatSimTime(dev.ComputeCost(200)).c_str(),
                FormatSimTime(dev.ComputeCost(2000)).c_str());
  }

  std::printf("\nEnd-to-end effect of the processor mix (same query/plan):\n");
  std::printf("%-28s %12s %12s %9s\n", "processor mix", "done(sim)",
              "messages", "valid");
  bench::PrintRule(66);
  struct MixCase {
    const char* label;
    device::DeviceMix mix;
  };
  for (const MixCase& mc : {
           MixCase{"PCs only", {1.0, 0.0, 0.0}},
           MixCase{"phones only", {0.0, 1.0, 0.0}},
           MixCase{"home boxes only", {0.0, 0.0, 1.0}},
           MixCase{"mixed 40/40/20", {0.4, 0.4, 0.2}},
       }) {
    core::FrameworkConfig cfg = bench::StandardFleet(400, 60, 17);
    cfg.fleet.processor_mix = mc.mix;
    core::EdgeletFramework fw(cfg);
    if (!fw.Init().ok()) return 1;
    query::Query q = bench::SurveyQuery(100, 17);
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = 25;
    auto d = fw.Plan(q, privacy, {0.05, 0.99},
                     exec::Strategy::kOvercollection);
    if (!d.ok()) return 1;
    exec::ExecutionConfig ec;
    ec.collection_window = 2 * kMinute;
    ec.deadline = 10 * kMinute;
    ec.inject_failures = false;
    auto report = fw.Execute(*d, ec);
    if (!report.ok() || !report->success) {
      std::printf("%-28s %12s\n", mc.label, "failed");
      continue;
    }
    auto validity = fw.VerifyGroupingSets(*d, *report);
    std::printf("%-28s %12s %12llu %9s\n", mc.label,
                FormatSimTime(report->completion_time).c_str(),
                static_cast<unsigned long long>(report->messages_sent),
                (validity.ok() && validity->valid) ? "yes" : "NO");
  }
  return 0;
}
