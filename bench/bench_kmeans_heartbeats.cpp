// P2-KM — K-Means accuracy vs number of heartbeats (paper §3.3 Q4).
// "Attendees will be allowed to vary the failure context (e.g.,
// disconnection probability) and see ... the effects on the results
// accuracy with respect to the number of heartbeats."
// Expected shape: inertia ratio (distributed / centralized) approaches 1 as
// heartbeats increase; higher message-loss probability slows convergence
// but never prevents a result (heartbeats force progression).

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "P2-KM: K-Means accuracy vs heartbeats x message loss",
      "Expected: accuracy (inertia ratio -> 1) improves with heartbeats; "
      "loss degrades it gracefully; a result is always produced.");

  const std::vector<int> heartbeat_counts = {1, 2, 4, 8, 12};
  const std::vector<double> drop_probs = {0.0, 0.25, 0.5};
  const int kTrialsPerCell = 3;

  std::printf("%6s", "hb \\ p");
  for (double p : drop_probs) std::printf("   p=%.2f        ", p);
  std::printf("\n%6s", "");
  for (size_t i = 0; i < drop_probs.size(); ++i) {
    std::printf("   %-7s %-7s", "inertia", "rmse");
  }
  std::printf("\n");
  bench::PrintRule();

  for (int heartbeats : heartbeat_counts) {
    std::printf("%6d", heartbeats);
    for (double drop : drop_probs) {
      double sum_ratio = 0, sum_rmse = 0;
      int done = 0;
      for (int trial = 0; trial < kTrialsPerCell; ++trial) {
        // Fleet seeds paired across cells so rows/columns are comparable.
        core::FrameworkConfig cfg = bench::StandardFleet(800, 60, 77 + trial);
        cfg.network.drop_probability = drop;
        core::EdgeletFramework fw(cfg);
        if (!fw.Init().ok()) return 1;

        query::Query q = bench::ClusterQuery(120, 4, 77);
        core::PrivacyConfig privacy;
        privacy.max_tuples_per_edgelet = 30;  // n = 4
        auto d = fw.Plan(q, privacy, {0.1, 0.99},
                         exec::Strategy::kOvercollection);
        if (!d.ok()) return 1;

        exec::ExecutionConfig ec;
        ec.collection_window = 60 * kSecond;
        ec.heartbeat_period = 20 * kSecond;
        ec.num_heartbeats = heartbeats;
        ec.deadline = ec.collection_window +
                      (heartbeats + 4) * ec.heartbeat_period + 3 * kMinute;
        ec.combiner_margin = kMinute;
        ec.inject_failures = false;
        ec.seed = 11 + trial;
        auto report = fw.Execute(*d, ec);
        if (!report.ok() || !report->success) continue;

        // Extract distributed centroids from the result table.
        ml::Matrix distributed;
        for (const auto& row : report->result.rows()) {
          std::vector<double> c;
          for (size_t f = 0; f < q.kmeans.features.size(); ++f) {
            c.push_back(row[2 + f].AsDouble());
          }
          distributed.push_back(std::move(c));
        }
        auto central = fw.CentralizedKMeans(q);
        auto points = fw.QualifyingPoints(q);
        if (!central.ok() || !points.ok()) return 1;
        auto ratio =
            ml::InertiaRatio(*points, distributed, central->centroids);
        auto rmse = ml::MatchedCentroidRmse(distributed, central->centroids);
        if (ratio.ok() && rmse.ok()) {
          sum_ratio += *ratio;
          sum_rmse += *rmse;
          ++done;
        }
      }
      if (done == 0) {
        std::printf("   %-7s %-7s", "fail", "-");
      } else {
        std::printf("   %-7.3f %-7.2f", sum_ratio / done, sum_rmse / done);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(means over %d trials; inertia = distributed/centralized "
              "inertia on all qualifying points; rmse = matched-centroid "
              "RMSE)\n",
              kTrialsPerCell);
  return 0;
}
