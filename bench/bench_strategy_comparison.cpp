// STRAT — Overcollection vs Backup (paper §2.2 and §3.3: "the
// Overcollection strategy only applies if the processing is distributive;
// otherwise, the Backup strategy can be used at the price of a higher
// complexity and lower performance").
// Expected shape: at the same resiliency goal, Backup needs more devices
// and far more messages (every input is replicated to each standby, plus
// liveness pings), and completes no faster; both deliver valid results.
//
// Runs on the parallel trial harness (trial_runner.h): --jobs fans the
// (p, strategy, trial) grid across cores without changing any result.

#include "bench_util.h"
#include "common/hash.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  bool valid = false;
  uint64_t msgs = 0;
  uint64_t bytes = 0;
  size_t devices = 0;
  uint64_t fingerprint = 0;
};

TrialResult RunOne(double p, exec::Strategy strategy, int trial) {
  TrialResult r;
  uint64_t seed = 4000 + trial;
  core::EdgeletFramework fw(bench::StandardFleet(350, 120, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(60, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 3
  auto d = fw.Plan(q, privacy, {p, 0.99}, strategy);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  r.devices = d->combiner_group.size();
  for (const auto& part : d->sb_groups) {
    for (const auto& g : part) r.devices += g.size();
  }
  for (const auto& part : d->computer_groups) {
    for (const auto& g : part) r.devices += g.size();
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 90 * kSecond;
  ec.deadline = 8 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = p;
  ec.seed = seed + 17;
  auto report = fw.Execute(*d, ec);
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.msgs = report->messages_sent;
  r.bytes = report->bytes_sent;
  r.fingerprint = exec::ReportFingerprint(*report);
  if (report->success) {
    r.success = true;
    auto validity = fw.VerifyGroupingSets(*d, *report);
    r.valid = validity.ok() && validity->valid;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "strategy_comparison", /*default_trials=*/10);
  bench::PrintHeader(
      "STRAT: Overcollection vs Backup at the same resiliency goal",
      "Expected: Backup costs more devices and messages for the same "
      "success rate; Overcollection is the cheap default for distributive "
      "processing.");

  struct CellSpec {
    double p;
    exec::Strategy strategy;
  };
  std::vector<CellSpec> cells;
  for (double p : {0.05, 0.15}) {
    for (exec::Strategy s :
         {exec::Strategy::kOvercollection, exec::Strategy::kBackup}) {
      cells.push_back({p, s});
    }
  }
  const int per_cell = opt.trials;
  const int total = static_cast<int>(cells.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results = executor.Map(total, [&](int i) {
    const CellSpec& cell = cells[i / per_cell];
    return RunOne(cell.p, cell.strategy, i % per_cell);
  });

  std::printf("%9s %-15s %9s %8s %10s %10s %9s %8s\n", "p", "strategy",
              "success", "valid", "mean msgs", "mean KiB", "devices",
              "skipped");
  bench::PrintRule(86);
  bench::BenchJson json("strategy_comparison", opt);
  int skipped_total = 0;
  for (size_t c = 0; c < cells.size(); ++c) {
    int successes = 0, valid = 0, completed = 0, skipped = 0;
    uint64_t sum_msgs = 0, sum_bytes = 0, fingerprint = 0;
    size_t devices = 0;
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++skipped;
        continue;
      }
      ++completed;
      devices = r.devices;
      sum_msgs += r.msgs;
      sum_bytes += r.bytes;
      if (r.success) ++successes;
      if (r.valid) ++valid;
      fingerprint = HashCombine(fingerprint, r.fingerprint);
    }
    skipped_total += skipped;
    std::printf("%9.2f %-15s %8d%% %7d%% %10llu %10.1f %9zu %8d\n",
                cells[c].p,
                std::string(exec::StrategyName(cells[c].strategy)).c_str(),
                completed ? 100 * successes / completed : 0,
                successes ? 100 * valid / successes : 0,
                static_cast<unsigned long long>(
                    completed ? sum_msgs / completed : 0),
                completed ? sum_bytes / 1024.0 / completed : 0.0, devices,
                skipped);
    json.AddRow(
        {{"p", bench::JsonNum(cells[c].p)},
         {"strategy",
          bench::JsonStr(exec::StrategyName(cells[c].strategy))},
         {"success", bench::JsonNum(successes)},
         {"valid", bench::JsonNum(valid)},
         {"completed", bench::JsonNum(completed)},
         {"skipped", bench::JsonNum(skipped)},
         {"mean_msgs",
          bench::JsonNum(completed ? sum_msgs / completed : 0)},
         {"mean_kib",
          bench::JsonNum(completed ? sum_bytes / 1024.0 / completed : 0.0)},
         {"devices", bench::JsonNum(devices)},
         {"report_fingerprint",
          bench::JsonStr(std::to_string(fingerprint))}});
  }
  std::printf("\n(devices = Data Processor edgelets mobilized by the plan; "
              "Backup replicates every operator, Overcollection adds m "
              "partitions)\n");
  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
