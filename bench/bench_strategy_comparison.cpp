// STRAT — Overcollection vs Backup (paper §2.2 and §3.3: "the
// Overcollection strategy only applies if the processing is distributive;
// otherwise, the Backup strategy can be used at the price of a higher
// complexity and lower performance").
// Expected shape: at the same resiliency goal, Backup needs more devices
// and far more messages (every input is replicated to each standby, plus
// liveness pings), and completes no faster; both deliver valid results.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "STRAT: Overcollection vs Backup at the same resiliency goal",
      "Expected: Backup costs more devices and messages for the same "
      "success rate; Overcollection is the cheap default for distributive "
      "processing.");

  const int kTrials = 10;
  std::printf("%9s %-15s %9s %8s %10s %10s %9s\n", "p", "strategy",
              "success", "valid", "mean msgs", "mean KiB", "devices");
  bench::PrintRule();

  for (double p : {0.05, 0.15}) {
    for (exec::Strategy strategy :
         {exec::Strategy::kOvercollection, exec::Strategy::kBackup}) {
      int successes = 0, valid = 0, planned = 0;
      uint64_t sum_msgs = 0, sum_bytes = 0;
      size_t devices = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        uint64_t seed = 4000 + trial;
        core::EdgeletFramework fw(bench::StandardFleet(350, 120, seed));
        if (!fw.Init().ok()) continue;
        query::Query q = bench::SurveyQuery(60, seed);
        core::PrivacyConfig privacy;
        privacy.max_tuples_per_edgelet = 20;  // n = 3
        auto d = fw.Plan(q, privacy, {p, 0.99}, strategy);
        if (!d.ok()) continue;
        ++planned;
        devices = d->combiner_group.size();
        for (const auto& part : d->sb_groups) {
          for (const auto& g : part) devices += g.size();
        }
        for (const auto& part : d->computer_groups) {
          for (const auto& g : part) devices += g.size();
        }
        exec::ExecutionConfig ec;
        ec.collection_window = 90 * kSecond;
        ec.deadline = 8 * kMinute;
        ec.inject_failures = true;
        ec.failure_probability = p;
        ec.seed = seed + 17;
        auto report = fw.Execute(*d, ec);
        if (!report.ok()) continue;
        sum_msgs += report->messages_sent;
        sum_bytes += report->bytes_sent;
        if (report->success) {
          ++successes;
          auto validity = fw.VerifyGroupingSets(*d, *report);
          if (validity.ok() && validity->valid) ++valid;
        }
      }
      std::printf("%9.2f %-15s %8d%% %7d%% %10llu %10.1f %9zu\n", p,
                  std::string(exec::StrategyName(strategy)).c_str(),
                  planned ? 100 * successes / planned : 0,
                  successes ? 100 * valid / successes : 0,
                  static_cast<unsigned long long>(
                      planned ? sum_msgs / planned : 0),
                  planned ? sum_bytes / 1024.0 / planned : 0.0, devices);
    }
  }
  std::printf("\n(devices = Data Processor edgelets mobilized by the plan; "
              "Backup replicates every operator, Overcollection adds m "
              "partitions)\n");
  return 0;
}
