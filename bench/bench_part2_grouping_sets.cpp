// P2-GS — Demo Part 2: distributed Grouping Sets execution (paper §3.2/3.3).
// Runs the survey query end to end under injected crash failures and checks
// the two contracted properties per trial:
//   Resiliency — completion before the deadline at rate >= the target;
//   Validity   — the delivered table equals a centralized run over the same
//                snapshot.
// Expected: success rate >= ~0.99 whenever the actual failure rate matches
// the presumption, and 100% of delivered results valid.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "P2-GS: Grouping Sets under failures — success and validity",
      "Expected: success rate >= target while actual p <= presumed p; "
      "every delivered result exactly matches the centralized rerun.");

  const int kTrials = 15;
  const double kPresumed = 0.15;

  std::printf("plan: presume p=%.2f, target 0.99; inject actual p per row\n",
              kPresumed);
  std::printf("%10s %9s %9s %11s %10s %9s\n", "actual p", "success",
              "valid", "mean done", "mean msgs", "killed");
  bench::PrintRule();

  for (double actual : {0.0, 0.05, 0.10, 0.15, 0.25}) {
    int successes = 0, valid = 0;
    double sum_done = 0;
    uint64_t sum_msgs = 0, sum_killed = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      uint64_t seed = 1000 + trial;
      core::EdgeletFramework fw(bench::StandardFleet(350, 60, seed));
      if (!fw.Init().ok()) return 1;
      query::Query q = bench::SurveyQuery(80, /*query_id=*/seed);
      core::PrivacyConfig privacy;
      privacy.max_tuples_per_edgelet = 20;  // n = 4
      auto d = fw.Plan(q, privacy, {kPresumed, 0.99},
                       exec::Strategy::kOvercollection);
      if (!d.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     d.status().ToString().c_str());
        return 1;
      }
      exec::ExecutionConfig ec;
      ec.collection_window = 90 * kSecond;
      ec.deadline = 8 * kMinute;
      ec.inject_failures = true;
      ec.failure_probability = actual;
      ec.seed = seed * 7 + 1;
      auto report = fw.Execute(*d, ec);
      if (!report.ok()) continue;
      sum_killed += report->processors_killed;
      sum_msgs += report->messages_sent;
      if (report->success) {
        ++successes;
        sum_done += ToSeconds(report->completion_time);
        auto validity = fw.VerifyGroupingSets(*d, *report);
        if (validity.ok() && validity->valid) ++valid;
      }
    }
    std::printf("%10.2f %8d%% %8d%% %10.1fs %10llu %9.1f\n", actual,
                100 * successes / kTrials,
                successes ? 100 * valid / successes : 0,
                successes ? sum_done / successes : 0.0,
                static_cast<unsigned long long>(sum_msgs / kTrials),
                static_cast<double>(sum_killed) / kTrials);
  }

  std::printf("\nNote: at actual p above the presumption the success rate "
              "may drop below the target — the contract only covers the "
              "presumed fault rate.\n");
  return 0;
}
