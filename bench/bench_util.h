#ifndef EDGELET_BENCH_BENCH_UTIL_H_
#define EDGELET_BENCH_BENCH_UTIL_H_

// Shared builders and table-printing helpers for the experiment harness.
// Every bench binary prints the series/rows of one paper figure or demo
// claim (see DESIGN.md experiment index) and exits 0.

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.h"

namespace edgelet::bench {

// The demo's Grouping Sets query (i): multiple Group-By clauses over one
// snapshot of the elderly population.
inline query::Query SurveyQuery(uint64_t snapshot_cardinality,
                                uint64_t query_id = 1) {
  query::Query q;
  q.query_id = query_id;
  q.name = "health survey";
  q.kind = query::QueryKind::kGroupingSets;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = snapshot_cardinality;
  q.grouping_sets = query::GroupingSetsSpec{
      {{"region"}, {"sex"}},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"},
       {query::AggregateFunction::kAvg, "systolic_bp"}}};
  return q;
}

// The demo's K-Means query (ii).
inline query::Query ClusterQuery(uint64_t snapshot_cardinality, int k = 4,
                                 uint64_t query_id = 2) {
  query::Query q;
  q.query_id = query_id;
  q.name = "dependency clustering";
  q.kind = query::QueryKind::kKMeans;
  q.predicates = {{"age", query::CompareOp::kGt, data::Value(int64_t{65})}};
  q.snapshot_cardinality = snapshot_cardinality;
  q.kmeans.k = k;
  q.kmeans.features = {"age", "bmi", "systolic_bp", "chronic_count"};
  q.kmeans.cluster_aggregates = {
      {query::AggregateFunction::kAvg, "dependency"}};
  return q;
}

inline core::FrameworkConfig StandardFleet(size_t contributors,
                                           size_t processors, uint64_t seed,
                                           bool churn = false) {
  core::FrameworkConfig cfg;
  cfg.fleet.num_contributors = contributors;
  cfg.fleet.num_processors = processors;
  cfg.fleet.enable_churn = churn;
  cfg.seed = seed;
  return cfg;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace edgelet::bench

#endif  // EDGELET_BENCH_BENCH_UTIL_H_
