// Q4 — "Can a query always proceed despite the failures?" (paper §3.3).
// Compares the planned (overcollected) execution against an m = 0 baseline
// across actual failure probabilities. Expected shape: without
// overcollection the success rate collapses quickly with p; with the
// planned m it stays >= the target up to the presumed p.
//
// Runs on the parallel trial harness (see trial_runner.h): every
// (cell, trial) pair is an independent seed-deterministic simulation, so
// --jobs N changes wall-clock only — per-seed reports are byte-identical
// (the JSON carries a combined report fingerprint to prove it).

#include "bench_util.h"
#include "common/hash.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  uint64_t fingerprint = 0;
};

struct Cell {
  double actual = 0;
  bool overcollect = false;
  int success = 0;
  int completed = 0;
  int skipped = 0;
  uint64_t fingerprint = 0;  // order-combined over completed trials
};

TrialResult RunOne(double presumed, double actual, bool overcollect,
                   int trial) {
  TrialResult r;
  uint64_t seed = 9000 + trial * 13 + static_cast<uint64_t>(actual * 100);
  core::EdgeletFramework fw(bench::StandardFleet(400, 60, seed));
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(80, seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;  // n = 4
  resilience::ResilienceConfig resilience{overcollect ? presumed : 0.0,
                                          overcollect ? 0.99 : 0.5};
  auto d = fw.Plan(q, privacy, resilience, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 3 * kMinute;
  ec.inject_failures = true;
  ec.failure_probability = actual;
  ec.seed = seed + 5;
  auto report = fw.Execute(*d, ec);
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  r.fingerprint = exec::ReportFingerprint(*report);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt =
      bench::ParseHarnessOptions(argc, argv, "failure_resilience",
                                 /*default_trials=*/12);
  bench::PrintHeader(
      "Q4: success rate with vs without overcollection",
      "Expected: m=0 baseline collapses as p grows; the overcollected plan "
      "(presume p=0.2, target 0.99) holds its success rate through the "
      "presumed regime.");

  const double kPresumed = 0.20;
  const std::vector<double> kActuals = {0.0, 0.05, 0.10, 0.15, 0.20, 0.30};

  // Flatten the sweep: (actual p) x (baseline, overcollected) x trials, so
  // parallelism spans the whole grid, not one cell at a time.
  std::vector<Cell> cells;
  for (double actual : kActuals) {
    for (bool overcollect : {false, true}) {
      cells.push_back({actual, overcollect});
    }
  }
  const int per_cell = opt.trials;
  const int total = static_cast<int>(cells.size()) * per_cell;

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results =
      executor.Map(total, [&](int i) {
        const Cell& cell = cells[i / per_cell];
        return RunOne(kPresumed, cell.actual, cell.overcollect, i % per_cell);
      });

  int skipped_total = 0;
  for (size_t c = 0; c < cells.size(); ++c) {
    for (int t = 0; t < per_cell; ++t) {
      const TrialResult& r = results[c * per_cell + t];
      if (r.status.skipped) {
        ++cells[c].skipped;
        ++skipped_total;
        continue;
      }
      ++cells[c].completed;
      if (r.success) ++cells[c].success;
      cells[c].fingerprint = HashCombine(cells[c].fingerprint, r.fingerprint);
    }
  }

  std::printf("%10s %22s %26s\n", "actual p", "m=0 baseline",
              "overcollected (m planned)");
  bench::PrintRule(62);
  bench::BenchJson json("failure_resilience", opt);
  for (size_t i = 0; i < cells.size(); i += 2) {
    const Cell& base = cells[i];
    const Cell& over = cells[i + 1];
    auto pct = [](const Cell& c) {
      return c.completed ? 100 * c.success / c.completed : 0;
    };
    std::printf("%10.2f %12d%% (%2d/%2d) %18d%% (%2d/%2d)\n", base.actual,
                pct(base), base.completed, per_cell, pct(over),
                over.completed, per_cell);
    for (const Cell* c : {&base, &over}) {
      json.AddRow({{"actual_p", bench::JsonNum(c->actual)},
                   {"overcollect", bench::JsonBool(c->overcollect)},
                   {"success", bench::JsonNum(c->success)},
                   {"completed", bench::JsonNum(c->completed)},
                   {"skipped", bench::JsonNum(c->skipped)},
                   {"success_rate",
                    bench::JsonNum(c->completed
                                       ? static_cast<double>(c->success) /
                                             c->completed
                                       : 0.0)},
                   {"report_fingerprint",
                    bench::JsonStr(std::to_string(c->fingerprint))}});
    }
  }
  std::printf("\n(completed/total trials in parentheses; plans: n=4, "
              "quota=20, presumed p=%.2f for the overcollected column)\n",
              kPresumed);
  if (skipped_total > 0) {
    std::printf("WARNING: %d trial(s) skipped (Init/Plan/Execute failure) — "
                "excluded from the rates above but counted here.\n",
                skipped_total);
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
